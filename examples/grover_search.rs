//! Grover's database search (the paper's Fig. 6 / Table I workload):
//! simulate the full circuit with the *DD-repeating* strategy, read out the
//! marked element, and compare against the general strategies.
//!
//! Run with `cargo run --release --example grover_search [qubits] [marked]`.

use ddsim_repro::algorithms::grover::{grover_circuit, GroverInstance};
use ddsim_repro::core::{simulate, SimOptions, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let qubits: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(13);
    let marked: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(42);

    let inst = GroverInstance::new(qubits, marked);
    let circuit = grover_circuit(inst);
    println!(
        "{}: searching 2^{} entries for {marked}, {} iterations, {} gates",
        circuit.name(),
        inst.search_qubits,
        inst.iterations,
        circuit.elementary_count()
    );

    for strategy in [
        Strategy::Sequential,
        Strategy::KOperations { k: 8 },
        Strategy::DdRepeating { k: 8 },
    ] {
        let (sim, stats) = simulate(&circuit, SimOptions::with_strategy(strategy))?;
        // The ancilla (bottom qubit) is in |−⟩: sum both branches.
        let p = sim.probability_of(marked << 1) + sim.probability_of((marked << 1) | 1);
        println!(
            "{:<22} P(marked) = {:.4}  time = {:>10?}  MxV = {:<6} MxM = {:<6}",
            strategy.label(),
            p,
            stats.wall_time,
            stats.mat_vec_mults,
            stats.mat_mat_mults
        );
    }

    // Extension beyond the paper: DD-construct for Grover — oracle and
    // diffusion built directly as DDs, one MxM for the whole iteration.
    let outcome = ddsim_repro::core::run_grover_dd_construct(inst);
    println!(
        "{:<22} P(marked) = {:.4}  time = {:>10?}  MxV = {:<6} MxM = {:<6} ({} qubits)",
        "dd-construct (ext.)",
        outcome.probability_of_marked,
        outcome.stats.wall_time,
        outcome.stats.mat_vec_mults,
        outcome.stats.mat_mat_mults,
        outcome.qubits
    );

    // Sample measurements from the final state.
    let (mut sim, _) = simulate(&circuit, SimOptions::default())?;
    let mut hits = 0;
    let shots = 100;
    for _ in 0..shots {
        let sample = sim.sample() >> 1; // drop the ancilla bit
        if sample == marked {
            hits += 1;
        }
    }
    println!("measurement: {hits}/{shots} shots returned the marked element");
    Ok(())
}

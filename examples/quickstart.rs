//! Quickstart: build a circuit, simulate it under the paper's strategies,
//! and compare their multiplication counts.
//!
//! Run with `cargo run --release --example quickstart`.

use ddsim_repro::circuit::Circuit;
use ddsim_repro::core::{simulate, SimOptions, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10-qubit GHZ-then-rotate circuit.
    let n = 10u32;
    let mut circuit = Circuit::new(n);
    circuit.h(0);
    for q in 1..n {
        circuit.cx(q - 1, q);
    }
    for q in 0..n {
        circuit.t(q);
        circuit.h(q);
    }

    println!(
        "circuit: {} qubits, {} gates",
        circuit.qubits(),
        circuit.elementary_count()
    );
    println!();
    println!(
        "{:<24} {:>8} {:>8} {:>12} {:>12}",
        "strategy", "MxV", "MxM", "recursions", "time"
    );

    for strategy in [
        Strategy::Sequential,
        Strategy::KOperations { k: 4 },
        Strategy::KOperations { k: 16 },
        Strategy::MaxSize { s_max: 64 },
    ] {
        let (sim, stats) = simulate(&circuit, SimOptions::with_strategy(strategy))?;
        println!(
            "{:<24} {:>8} {:>8} {:>12} {:>12?}",
            strategy.label(),
            stats.mat_vec_mults,
            stats.mat_mat_mults,
            stats.mult_recursions + stats.add_recursions,
            stats.wall_time,
        );
        // Every strategy computes the same state (Eq. 1 ≡ Eq. 2).
        let p0 = sim.probability_of(0);
        assert!(p0.is_finite());
    }

    // Inspect the final state through the DD.
    let (sim, _) = simulate(&circuit, SimOptions::default())?;
    println!();
    println!(
        "final state DD: {} nodes (vs {} dense amplitudes)",
        sim.state_nodes(),
        1u64 << n
    );
    println!("P(|0…0⟩) = {:.6}", sim.probability_of(0));
    Ok(())
}

//! Factor a number with Shor's algorithm, comparing the paper's two
//! pipelines (Table II):
//!
//! 1. the full Beauregard 2n+3-qubit circuit under a general combining
//!    strategy, and
//! 2. the *DD-construct* path: n+1 qubits with directly constructed
//!    modular-multiplication DDs.
//!
//! Run with `cargo run --release --example shor_factor [N] [a]`.

use std::time::Instant;

use ddsim_repro::algorithms::numtheory::{factor_from_phase, gcd};
use ddsim_repro::algorithms::shor::{shor_circuit, ShorInstance};
use ddsim_repro::core::{run_shor_dd_construct, simulate, SimOptions, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let modulus: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(55);
    let base: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(17);
    if gcd(base, modulus) != 1 {
        println!(
            "gcd({base}, {modulus}) = {} — already a factor!",
            gcd(base, modulus)
        );
        return Ok(());
    }

    let inst = ShorInstance::new(modulus, base);
    println!(
        "{}: factoring N={modulus} with base a={base} (order-finding over {} phase bits)",
        inst.name(),
        inst.phase_bits()
    );

    // Path 1: the full circuit (2n+3 qubits) with k-operations.
    let circuit = shor_circuit(inst);
    println!(
        "\n[circuit] {} qubits, {} elementary gates",
        circuit.qubits(),
        circuit.elementary_count()
    );
    let started = Instant::now();
    let mut circuit_factor = None;
    for seed in 0..10 {
        let (sim, _) = simulate(
            &circuit,
            SimOptions {
                strategy: Strategy::KOperations { k: 16 },
                seed,
                ..SimOptions::default()
            },
        )?;
        let phase = sim.classical_value();
        if let Some(f) = factor_from_phase(modulus, base, phase, inst.phase_bits()) {
            circuit_factor = Some((f, seed));
            break;
        }
    }
    match circuit_factor {
        Some((f, seed)) => println!(
            "[circuit] found factor {f} (seed {seed}) in {:?}: {modulus} = {f} × {}",
            started.elapsed(),
            modulus / f
        ),
        None => println!(
            "[circuit] no factor in 10 attempts ({:?})",
            started.elapsed()
        ),
    }

    // Path 2: DD-construct (n+1 qubits).
    let started = Instant::now();
    let mut attempts = 0;
    loop {
        let outcome = run_shor_dd_construct(inst, attempts);
        attempts += 1;
        if let Some(f) = outcome.factor {
            println!(
                "\n[dd-construct] {} qubits, factor {f} after {attempts} attempt(s) in {:?}: {modulus} = {f} × {}",
                outcome.qubits,
                started.elapsed(),
                modulus / f
            );
            println!(
                "[dd-construct] measured phase {}/{}, peak state DD {} nodes",
                outcome.measured_phase,
                1u64 << inst.phase_bits(),
                outcome.stats.peak_state_nodes
            );
            break;
        }
        if attempts >= 50 {
            println!("\n[dd-construct] no factor in 50 attempts");
            break;
        }
    }
    Ok(())
}

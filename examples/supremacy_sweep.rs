//! Sweep the combining parameter on a supremacy-style random circuit —
//! reproducing, on one instance, the rise-and-fall shape of the paper's
//! Figs. 8 and 9 (combining helps up to a point, then the product DDs get
//! too large).
//!
//! Run with `cargo run --release --example supremacy_sweep [rows] [cols] [depth]`.

use ddsim_repro::algorithms::supremacy::{supremacy_circuit, SupremacyInstance};
use ddsim_repro::core::{simulate, SimOptions, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let rows: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let cols: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let depth: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(12);

    let inst = SupremacyInstance::new(rows, cols, depth, 42);
    let circuit = supremacy_circuit(inst);
    println!(
        "{}: {}x{} grid, depth {}, {} gates",
        circuit.name(),
        rows,
        cols,
        depth,
        circuit.elementary_count()
    );

    let (_, baseline) = simulate(&circuit, SimOptions::default())?;
    let base_secs = baseline.wall_time.as_secs_f64();
    println!(
        "\nsequential baseline: {:?} ({} MxV)\n",
        baseline.wall_time, baseline.mat_vec_mults
    );
    println!(
        "{:<24} {:>10} {:>8} {:>8} {:>10}",
        "strategy", "time", "MxV", "MxM", "speed-up"
    );

    for strategy in [
        Strategy::KOperations { k: 2 },
        Strategy::KOperations { k: 4 },
        Strategy::KOperations { k: 8 },
        Strategy::KOperations { k: 16 },
        Strategy::MaxSize { s_max: 64 },
        Strategy::MaxSize { s_max: 256 },
        Strategy::MaxSize { s_max: 1024 },
    ] {
        let (_, stats) = simulate(&circuit, SimOptions::with_strategy(strategy))?;
        let secs = stats.wall_time.as_secs_f64();
        println!(
            "{:<24} {:>10.3}s {:>8} {:>8} {:>9.2}x",
            strategy.label(),
            secs,
            stats.mat_vec_mults,
            stats.mat_mat_mults,
            base_secs / secs
        );
    }
    println!("\nexpected shape: speed-up rises for moderate combining, falls when products grow");
    Ok(())
}

//! Depolarizing-noise trajectories on a GHZ state — the extension module
//! in action: watch the cat-state correlations decay as the per-gate error
//! rate grows.
//!
//! Run with `cargo run --release --example noisy_ghz [qubits] [trajectories]`.

use ddsim_repro::algorithms::simple::ghz_circuit;
use ddsim_repro::core::noise::{run_noisy_ensemble, DepolarizingNoise};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let qubits: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let trajectories: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(300);

    let circuit = ghz_circuit(qubits);
    let all_ones = (1u64 << qubits) - 1;
    println!("GHZ over {qubits} qubits, {trajectories} trajectories per error rate\n");
    println!(
        "{:>10} {:>12} {:>12} {:>14}",
        "p_error", "P(0…0)", "P(1…1)", "correlated"
    );

    for p in [0.0, 0.01, 0.05, 0.1, 0.2] {
        let ensemble = run_noisy_ensemble(&circuit, DepolarizingNoise::new(p), trajectories, 11)?;
        let p0 = ensemble.probability_of(0);
        let p1 = ensemble.probability_of(all_ones);
        println!("{p:>10.2} {p0:>12.3} {p1:>12.3} {:>14.3}", p0 + p1);
    }
    println!("\nideal: correlated = 1.000; noise leaks probability into other outcomes");
    Ok(())
}

//! Load a circuit from OpenQASM, simulate it, and write it back out —
//! demonstrating the interchange path a downstream user would take.
//!
//! Run with `cargo run --release --example qasm_roundtrip [file.qasm]`.
//! Without an argument, a built-in teleportation-style program is used.

use ddsim_repro::circuit::qasm;
use ddsim_repro::core::{simulate, SimOptions};

const BUILTIN: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
// Prepare an entangled pair on q1,q2 and "teleport" q0's |1> onto q2
// (simplified: coherent corrections instead of measurement feedback).
qreg q[3];
x q[0];
h q[1];
cx q[1],q[2];
cx q[0],q[1];
h q[0];
cx q[1],q[2];
cz q[0],q[2];
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let source = match args.get(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => BUILTIN.to_string(),
    };

    let circuit = qasm::parse(&source)?;
    println!(
        "parsed: {} qubits, {} classical bits, {} elementary gates",
        circuit.qubits(),
        circuit.cbits(),
        circuit.elementary_count()
    );

    let (sim, stats) = simulate(&circuit, SimOptions::default())?;
    println!(
        "simulated in {:?} ({} multiplications), final DD: {} nodes",
        stats.wall_time,
        stats.mat_vec_mults + stats.mat_mat_mults,
        sim.state_nodes()
    );

    // The teleported qubit (bottom wire) must be |1⟩.
    if args.get(1).is_none() {
        let p = sim.prob_one(2);
        println!("P(q2 = 1) = {p:.6} (expected 1.0 — the teleported |1⟩)");
    }

    let out = qasm::write(&circuit)?;
    println!("\n# round-tripped OpenQASM:\n{out}");
    Ok(())
}

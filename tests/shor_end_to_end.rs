//! End-to-end Shor's algorithm: the full Beauregard 2n+3-qubit circuit
//! simulated with the general engine (the paper's `t_sota` / `t_general`
//! paths) must factor, and must agree with the n+1-qubit DD-construct path
//! (`t_DD-construct`).

use ddsim_repro::algorithms::numtheory::factor_from_phase;
use ddsim_repro::algorithms::shor::{shor_circuit, ShorInstance};
use ddsim_repro::core::{run_shor_dd_construct, simulate, SimOptions, Strategy};

/// Runs the full Beauregard circuit and post-processes the measured phase.
fn factor_via_circuit(inst: ShorInstance, strategy: Strategy, max_attempts: u32) -> Option<u64> {
    let circuit = shor_circuit(inst);
    for seed in 0..max_attempts {
        let (sim, _) = simulate(
            &circuit,
            SimOptions {
                strategy,
                seed: u64::from(seed),
                ..SimOptions::default()
            },
        )
        .expect("matching widths");
        let phase = sim.classical_value();
        if let Some(f) = factor_from_phase(inst.modulus, inst.base, phase, inst.phase_bits()) {
            return Some(f);
        }
    }
    None
}

#[test]
fn beauregard_circuit_factors_15_sequentially() {
    let inst = ShorInstance::new(15, 7);
    let f = factor_via_circuit(inst, Strategy::Sequential, 8).expect("factor of 15");
    assert!(f == 3 || f == 5, "got {f}");
}

#[test]
fn beauregard_circuit_factors_15_with_k_operations() {
    let inst = ShorInstance::new(15, 7);
    let f = factor_via_circuit(inst, Strategy::KOperations { k: 8 }, 8).expect("factor of 15");
    assert!(f == 3 || f == 5, "got {f}");
}

#[test]
fn beauregard_circuit_factors_15_with_max_size() {
    let inst = ShorInstance::new(15, 7);
    let f = factor_via_circuit(inst, Strategy::MaxSize { s_max: 128 }, 8).expect("factor of 15");
    assert!(f == 3 || f == 5, "got {f}");
}

#[test]
fn circuit_and_dd_construct_sample_the_same_phase_distribution() {
    // For N=15, a=7 (order 4) the ideal phases are k/4, k ∈ {0..3}: both
    // paths must land on (or within rounding of) multiples of 2^{2n}/4 = 64.
    let inst = ShorInstance::new(15, 7);
    let circuit = shor_circuit(inst);
    let near_ideal = |x: u64| (0..=4u64).any(|k| (x as i64 - (k * 64) as i64).unsigned_abs() <= 2);

    for seed in 0..6 {
        let (sim, _) = simulate(
            &circuit,
            SimOptions {
                seed,
                ..SimOptions::default()
            },
        )
        .expect("run");
        let phase = sim.classical_value();
        assert!(
            near_ideal(phase),
            "circuit path: phase {phase} not near k·64"
        );

        let outcome = run_shor_dd_construct(inst, seed);
        assert!(
            near_ideal(outcome.measured_phase),
            "dd-construct path: phase {} not near k·64",
            outcome.measured_phase
        );
    }
}

#[test]
fn dd_construct_uses_far_fewer_qubits_and_multiplications() {
    let inst = ShorInstance::new(21, 2);
    let circuit = shor_circuit(inst);
    assert_eq!(circuit.qubits(), 13); // 2n+3 with n=5

    let (_, general) = simulate(
        &circuit,
        SimOptions::with_strategy(Strategy::KOperations { k: 8 }),
    )
    .expect("run");

    let outcome = run_shor_dd_construct(inst, 0);
    assert_eq!(outcome.qubits, 6); // n+1

    let circuit_mults = general.mat_vec_mults + general.mat_mat_mults;
    let construct_mults = outcome.stats.mat_vec_mults + outcome.stats.mat_mat_mults;
    assert!(
        construct_mults * 50 < circuit_mults,
        "DD-construct must save orders of magnitude: {construct_mults} vs {circuit_mults}"
    );
}

#[test]
fn factors_21_via_full_circuit() {
    let inst = ShorInstance::new(21, 2);
    let f = factor_via_circuit(inst, Strategy::KOperations { k: 16 }, 10).expect("factor of 21");
    assert!(f == 3 || f == 7, "got {f}");
}

//! Resource-governed execution at the engine level: budgets smaller than a
//! circuit's peak DD footprint must end the run with a typed
//! `SimError::BudgetExceeded` after the degradation ladder is exhausted —
//! never a panic, never unbounded growth — and the simulator must stay
//! consistent and reusable afterwards.

use std::time::Duration;

use ddsim_repro::algorithms::supremacy::{supremacy_circuit, SupremacyInstance};
use ddsim_repro::circuit::Circuit;
use ddsim_repro::core::{CancelToken, DdConfig, SimError, SimOptions, Simulator, Strategy};

fn supremacy() -> Circuit {
    supremacy_circuit(SupremacyInstance::new(4, 4, 12, 42))
}

#[test]
fn node_budget_below_peak_errors_cleanly_after_the_ladder() {
    let circuit = supremacy();

    // Establish the unbudgeted peak so the budget is provably below it.
    let mut free = Simulator::with_options(circuit.qubits(), SimOptions::default());
    let free_stats = free.run(&circuit).expect("unbudgeted run succeeds");
    let budget = 64u64;
    assert!(
        (free_stats.peak_state_nodes as u64) > budget,
        "peak {} must exceed the budget {budget} for this test to bite",
        free_stats.peak_state_nodes
    );

    for strategy in [
        Strategy::Sequential,
        Strategy::KOperations { k: 4 },
        Strategy::MaxSize { s_max: 64 },
        Strategy::adaptive(),
    ] {
        let options = SimOptions {
            strategy,
            dd_config: DdConfig {
                max_live_nodes: Some(budget as usize),
                ..DdConfig::default()
            },
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(circuit.qubits(), options);
        let err = sim.run(&circuit).expect_err("budget must trip");
        assert!(
            matches!(err, SimError::BudgetExceeded { .. }),
            "{strategy:?}: expected BudgetExceeded, got {err:?}"
        );
        // The manager survived the unwind: queries and further mutation
        // still work.
        let _ = sim.state_nodes();
        let _ = sim.amplitude(0);
        let _ = sim.sample();
    }
}

#[test]
fn ladder_rungs_are_counted_before_the_error() {
    // A budget that is generous enough to start combining but too small
    // for the full run forces the engine through the ladder; the taken
    // rungs must be visible in RunStats of a *successful* degraded run or
    // the error must arrive only after rescue attempts.
    let circuit = supremacy();
    let mut tripped = false;
    for budget in [96usize, 192, 384, 768, 1536] {
        let options = SimOptions {
            strategy: Strategy::KOperations { k: 8 },
            dd_config: DdConfig {
                max_live_nodes: Some(budget),
                ..DdConfig::default()
            },
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(circuit.qubits(), options);
        match sim.run(&circuit) {
            Ok(stats) => {
                // Fitting under an aggressive budget without any rescue
                // would mean the budget never bit; accept only if some
                // ladder activity happened.
                if stats.ladder_gc_rescues > 0
                    || stats.ladder_strategy_downgrades > 0
                    || stats.gc_runs > 0
                {
                    tripped = true;
                }
            }
            Err(SimError::BudgetExceeded {
                limit, observed, ..
            }) => {
                assert_eq!(limit, budget as u64);
                assert!(observed > limit, "observed {observed} <= limit {limit}");
                tripped = true;
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert!(tripped, "no budget in the sweep produced governor activity");
}

#[test]
fn expired_deadline_unwinds_with_a_typed_error() {
    let circuit = supremacy();
    let options = SimOptions {
        deadline: Some(Duration::ZERO),
        ..SimOptions::default()
    };
    let mut sim = Simulator::with_options(circuit.qubits(), options);
    let err = sim.run(&circuit).expect_err("deadline must trip");
    assert_eq!(err, SimError::DeadlineExceeded);
    // A later run without the deadline is unaffected (no stale deadline).
    let mut relaxed_options = options;
    relaxed_options.deadline = None;
    let mut fresh = Simulator::with_options(circuit.qubits(), relaxed_options);
    fresh.run(&circuit).expect("undeadlined run succeeds");
}

#[test]
fn pre_latched_cancel_token_stops_the_run() {
    let circuit = supremacy();
    let token = CancelToken::new();
    token.cancel();
    let mut sim = Simulator::with_options(circuit.qubits(), SimOptions::default());
    sim.set_cancel_token(Some(token));
    let err = sim.run(&circuit).expect_err("cancelled run must stop");
    assert_eq!(err, SimError::Cancelled);
    // Clearing the token makes the same simulator usable again.
    sim.set_cancel_token(None);
    sim.run(&circuit).expect("uncancelled run succeeds");
}

#[test]
fn width_mismatch_is_typed() {
    let mut narrow = Circuit::new(2);
    narrow.h(0).cx(0, 1);
    let mut sim = Simulator::with_options(3, SimOptions::default());
    let err = sim.run(&narrow).expect_err("width mismatch");
    assert_eq!(
        err,
        SimError::WidthMismatch {
            expected_qubits: 3,
            found_qubits: 2
        }
    );
}

#[test]
fn budget_error_leaves_the_simulator_retryable() {
    // After a budget failure, relaxing the limit on a *fresh* simulator
    // with the same options must succeed, and the failed simulator itself
    // must still answer queries — the documented consistency contract.
    let circuit = supremacy();
    let options = SimOptions {
        strategy: Strategy::KOperations { k: 4 },
        dd_config: DdConfig {
            max_live_nodes: Some(48),
            ..DdConfig::default()
        },
        ..SimOptions::default()
    };
    let mut sim = Simulator::with_options(circuit.qubits(), options);
    let err = sim.run(&circuit).expect_err("budget trips");
    assert!(matches!(err, SimError::BudgetExceeded { .. }));
    let norm: f64 = (0..(1u64 << circuit.qubits()))
        .map(|i| sim.probability_of(i))
        .sum();
    assert!(
        norm.is_finite(),
        "post-error state must be a valid (queryable) DD"
    );
}

//! Randomized cross-validation: the DD simulator under every strategy must
//! agree with a dense array-based simulation on random circuits.

use ddsim_repro::circuit::{Circuit, StandardGate};
use ddsim_repro::complex::Complex;
use ddsim_repro::core::{simulate, DdConfig, ReorderMode, SimOptions, Strategy};
use ddsim_repro::dd::reference::DenseVector;
use ddsim_repro::dd::{Control, DdManager};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random circuit over `n` qubits with `gates` gates, drawing
/// from the full unitary surface: single-qubit gates, rotations, CX/CZ,
/// swaps, Toffolis, and multi-controlled gates with mixed control
/// polarities.
fn random_circuit(n: u32, gates: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    // `count` distinct qubits, the first being the target.
    let draw_qubits = |rng: &mut StdRng, count: usize| -> Vec<u32> {
        let mut pool: Vec<u32> = (0..n).collect();
        for i in 0..count.min(pool.len()) {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(count.min(n as usize));
        pool
    };
    for _ in 0..gates {
        let target = rng.gen_range(0..n);
        match rng.gen_range(0..14) {
            0 => c.x(target),
            1 => c.y(target),
            2 => c.z(target),
            3 => c.h(target),
            4 => c.s(target),
            5 => c.t(target),
            6 => c.rx(rng.gen_range(0.0..std::f64::consts::TAU), target),
            7 => c.rz(rng.gen_range(0.0..std::f64::consts::TAU), target),
            8 | 9 => {
                let control = (target + rng.gen_range(1..n)) % n;
                if rng.gen_bool(0.5) {
                    c.cx(control, target)
                } else {
                    c.cz(control, target)
                }
            }
            10 => {
                let q = draw_qubits(&mut rng, 2);
                c.swap(q[0], q[1])
            }
            11 if n >= 3 => {
                let q = draw_qubits(&mut rng, 3);
                c.ccx(q[1], q[2], q[0])
            }
            12 => {
                // Negative-control single gate.
                let q = draw_qubits(&mut rng, 2);
                let gate = if rng.gen_bool(0.5) {
                    StandardGate::X
                } else {
                    StandardGate::H
                };
                c.controlled_gate(gate, vec![Control::neg(q[1])], q[0])
            }
            _ if n >= 4 => {
                // Multi-controlled gate with mixed polarities.
                let q = draw_qubits(&mut rng, 4);
                let controls = vec![
                    Control::pos(q[1]),
                    Control::neg(q[2]),
                    if rng.gen_bool(0.5) {
                        Control::pos(q[3])
                    } else {
                        Control::neg(q[3])
                    },
                ];
                c.controlled_gate(StandardGate::X, controls, q[0])
            }
            _ => c.h(target),
        };
    }
    c
}

/// Dense reference simulation of a unitary-only circuit (polarity-aware
/// controls, swaps lowered exactly as the engine lowers them).
fn dense_reference(c: &Circuit) -> DenseVector {
    use ddsim_repro::circuit::{lower_swap, Operation};
    let mut v = DenseVector::basis(c.qubits(), 0);
    for op in c.flattened().ops() {
        match op {
            Operation::Gate(g) => v.apply_controlled(g.gate.matrix(), g.target, &g.controls),
            Operation::Swap { a, b, controls } => {
                for g in lower_swap(*a, *b, controls) {
                    v.apply_controlled(g.gate.matrix(), g.target, &g.controls);
                }
            }
            other => panic!("random circuits are unitary, got {other:?}"),
        }
    }
    v
}

fn check_agreement_with(n: u32, gates: usize, seed: u64, options: SimOptions) {
    let circuit = random_circuit(n, gates, seed);
    let dense = dense_reference(&circuit);
    let (sim, _) = simulate(&circuit, options).expect("run");
    let strategy = options.strategy;
    for (i, want) in dense.amplitudes().iter().enumerate() {
        let got = sim.amplitude(i as u64);
        assert!(
            got.approx_eq(*want, 1e-6),
            "seed {seed}, {strategy}, amplitude {i}: {got} vs {want}"
        );
    }
}

fn check_agreement(n: u32, gates: usize, seed: u64, strategy: Strategy) {
    check_agreement_with(n, gates, seed, SimOptions::with_strategy(strategy));
}

#[test]
fn sequential_matches_dense_on_random_circuits() {
    for seed in 0..8 {
        check_agreement(6, 60, seed, Strategy::Sequential);
    }
}

#[test]
fn k_operations_matches_dense_on_random_circuits() {
    for seed in 0..8 {
        check_agreement(6, 60, seed, Strategy::KOperations { k: 5 });
    }
}

#[test]
fn max_size_matches_dense_on_random_circuits() {
    for seed in 0..8 {
        check_agreement(6, 60, seed, Strategy::MaxSize { s_max: 48 });
    }
}

#[test]
fn dd_repeating_and_adaptive_match_dense() {
    for seed in 0..4 {
        check_agreement(6, 60, seed, Strategy::DdRepeating { k: 4 });
        check_agreement(6, 60, seed, Strategy::adaptive());
    }
}

#[test]
fn no_cache_matches_dense_on_random_circuits() {
    // Disabling memoization must change only the work done, never the
    // diagrams produced.
    for seed in 0..4 {
        for strategy in [Strategy::Sequential, Strategy::KOperations { k: 5 }] {
            let options = SimOptions {
                strategy,
                dd_config: DdConfig {
                    cache_enabled: false,
                    ..DdConfig::default()
                },
                ..SimOptions::default()
            };
            check_agreement_with(6, 50, seed, options);
        }
    }
}

#[test]
fn no_identity_skip_matches_dense_on_random_circuits() {
    // Disabling identity short-circuits forces the generic recursions and
    // the matrix-building gate path; results must be bit-compatible.
    for seed in 0..4 {
        for strategy in [Strategy::Sequential, Strategy::MaxSize { s_max: 48 }] {
            let options = SimOptions {
                strategy,
                dd_config: DdConfig {
                    identity_skip: false,
                    ..DdConfig::default()
                },
                ..SimOptions::default()
            };
            check_agreement_with(6, 50, seed, options);
        }
    }
}

#[test]
fn no_cache_no_identity_skip_matches_dense() {
    for seed in 0..3 {
        let options = SimOptions {
            strategy: Strategy::KOperations { k: 3 },
            dd_config: DdConfig {
                cache_enabled: false,
                identity_skip: false,
                ..DdConfig::default()
            },
            ..SimOptions::default()
        };
        check_agreement_with(5, 40, seed, options);
    }
}

#[test]
fn governed_and_ungoverned_runs_are_bitwise_identical() {
    // The governed and ungoverned kernel instantiations must build the
    // SAME diagrams — not merely tolerance-equal ones. A lax budget
    // (never trips) forces the governed instantiation end to end; the
    // default config takes the ungoverned fast path. Amplitudes must
    // match bit for bit and the machine-independent run statistics must
    // be identical, under both a gate-at-a-time and a matrix-combining
    // strategy.
    for seed in 0..4u64 {
        for strategy in [Strategy::Sequential, Strategy::KOperations { k: 5 }] {
            let circuit = random_circuit(6, 60, seed);
            let ungoverned = SimOptions::with_strategy(strategy);
            let governed = SimOptions {
                strategy,
                dd_config: DdConfig {
                    max_live_nodes: Some(usize::MAX),
                    ..DdConfig::default()
                },
                ..SimOptions::default()
            };
            let (sim_u, stats_u) = simulate(&circuit, ungoverned).expect("ungoverned run");
            let (sim_g, stats_g) = simulate(&circuit, governed).expect("governed run");
            for i in 0..(1u64 << 6) {
                let a = sim_u.amplitude(i);
                let b = sim_g.amplitude(i);
                assert_eq!(
                    (a.re.to_bits(), a.im.to_bits()),
                    (b.re.to_bits(), b.im.to_bits()),
                    "seed {seed}, {strategy}, amplitude {i}: {a} vs {b}"
                );
            }
            let shape_u = (
                stats_u.elementary_gates,
                stats_u.mat_vec_mults,
                stats_u.mat_mat_mults,
                stats_u.identity_skips,
                stats_u.specialized_applies,
                stats_u.mult_recursions,
                stats_u.add_recursions,
                stats_u.peak_state_nodes,
                stats_u.peak_matrix_nodes,
                stats_u.final_state_nodes,
                stats_u.gc_runs,
            );
            let shape_g = (
                stats_g.elementary_gates,
                stats_g.mat_vec_mults,
                stats_g.mat_mat_mults,
                stats_g.identity_skips,
                stats_g.specialized_applies,
                stats_g.mult_recursions,
                stats_g.add_recursions,
                stats_g.peak_state_nodes,
                stats_g.peak_matrix_nodes,
                stats_g.final_state_nodes,
                stats_g.gc_runs,
            );
            assert_eq!(
                shape_u, shape_g,
                "seed {seed}, {strategy}: run statistics diverged between instantiations"
            );
        }
    }
}

#[test]
fn simd_on_and_off_runs_are_bitwise_identical() {
    // The scalar leaf kernels are the reference semantics; the SIMD paths
    // must be the SAME computation, not a tolerance-equal one. Every
    // combining strategy, random circuits: amplitudes bit for bit, the
    // machine-independent run statistics, and the full cache/complex-table
    // counter block all identical with `simd` on vs off.
    let strategies = [
        Strategy::Sequential,
        Strategy::KOperations { k: 4 },
        Strategy::MaxSize { s_max: 32 },
        Strategy::DdRepeating { k: 4 },
        Strategy::adaptive(),
    ];
    for seed in 0..3u64 {
        for strategy in strategies {
            let circuit = random_circuit(6, 60, seed);
            let vectorized = SimOptions::with_strategy(strategy);
            let scalar = SimOptions {
                strategy,
                dd_config: DdConfig {
                    simd: false,
                    ..DdConfig::default()
                },
                ..SimOptions::default()
            };
            let (sim_v, stats_v) = simulate(&circuit, vectorized).expect("simd run");
            let (sim_s, stats_s) = simulate(&circuit, scalar).expect("scalar run");
            for i in 0..(1u64 << 6) {
                let a = sim_v.amplitude(i);
                let b = sim_s.amplitude(i);
                assert_eq!(
                    (a.re.to_bits(), a.im.to_bits()),
                    (b.re.to_bits(), b.im.to_bits()),
                    "seed {seed}, {strategy}, amplitude {i}: {a} vs {b}"
                );
            }
            let shape = |s: &ddsim_repro::core::RunStats| {
                (
                    s.elementary_gates,
                    s.mat_vec_mults,
                    s.mat_mat_mults,
                    s.identity_skips,
                    s.specialized_applies,
                    s.mult_recursions,
                    s.add_recursions,
                    s.peak_state_nodes,
                    s.peak_matrix_nodes,
                    s.final_state_nodes,
                    s.gc_runs,
                )
            };
            assert_eq!(
                shape(&stats_v),
                shape(&stats_s),
                "seed {seed}, {strategy}: run statistics diverged between kernels"
            );
            assert_eq!(
                stats_v.cache, stats_s.cache,
                "seed {seed}, {strategy}: cache/complex-table counters diverged"
            );
        }
    }
}

#[test]
fn explicit_single_thread_is_bitwise_identical_to_default() {
    // `threads: 1` is the documented sequential contract: no pool is
    // built, the `Par::Seq` kernels run, and the results — amplitudes AND
    // machine-independent statistics — must be bit-for-bit what the
    // default options produce. This pins the promise that turning the
    // threading knob to 1 can never change behavior.
    for seed in 0..4u64 {
        for strategy in [Strategy::Sequential, Strategy::KOperations { k: 5 }] {
            let circuit = random_circuit(6, 60, seed);
            let single = SimOptions {
                strategy,
                threads: 1,
                ..SimOptions::default()
            };
            let (sim_d, stats_d) =
                simulate(&circuit, SimOptions::with_strategy(strategy)).expect("default run");
            let (sim_s, stats_s) = simulate(&circuit, single).expect("threads=1 run");
            for i in 0..(1u64 << 6) {
                let a = sim_d.amplitude(i);
                let b = sim_s.amplitude(i);
                assert_eq!(
                    (a.re.to_bits(), a.im.to_bits()),
                    (b.re.to_bits(), b.im.to_bits()),
                    "seed {seed}, {strategy}, amplitude {i}: {a} vs {b}"
                );
            }
            let shape = |s: &ddsim_repro::core::RunStats| {
                (
                    s.elementary_gates,
                    s.mat_vec_mults,
                    s.mat_mat_mults,
                    s.identity_skips,
                    s.specialized_applies,
                    s.mult_recursions,
                    s.add_recursions,
                    s.peak_state_nodes,
                    s.peak_matrix_nodes,
                    s.final_state_nodes,
                    s.gc_runs,
                )
            };
            assert_eq!(
                shape(&stats_d),
                shape(&stats_s),
                "seed {seed}, {strategy}: threads=1 changed the run statistics"
            );
        }
    }
}

#[test]
fn threaded_runs_match_dense_on_random_circuits() {
    // A 3-lane pool on 6-qubit circuits (top level ≥ the fork cutoff, so
    // the fork-join kernels genuinely engage) must agree with the dense
    // reference under every combining strategy.
    for seed in 0..4 {
        for strategy in [
            Strategy::Sequential,
            Strategy::KOperations { k: 5 },
            Strategy::MaxSize { s_max: 48 },
            Strategy::adaptive(),
        ] {
            let options = SimOptions {
                strategy,
                threads: 3,
                ..SimOptions::default()
            };
            check_agreement_with(6, 60, seed, options);
        }
    }
}

#[test]
fn threaded_and_sequential_agree_to_normalization_tolerance() {
    // Threaded results are tolerance-equal to sequential, not bitwise:
    // worker managers intern complex values in a different order, so
    // representatives within a tolerance bucket can differ by ~1e-15.
    // The agreement bound here (1e-9) is far tighter than the dense
    // cross-check (1e-6) — any merge bug shows up as a gross mismatch,
    // not a rounding artifact.
    for seed in 0..4u64 {
        for strategy in [Strategy::Sequential, Strategy::KOperations { k: 5 }] {
            let circuit = random_circuit(6, 60, seed);
            let threaded = SimOptions {
                strategy,
                threads: 3,
                ..SimOptions::default()
            };
            let (sim_s, _) =
                simulate(&circuit, SimOptions::with_strategy(strategy)).expect("sequential run");
            let (sim_t, _) = simulate(&circuit, threaded).expect("threaded run");
            for i in 0..(1u64 << 6) {
                let a = sim_s.amplitude(i);
                let b = sim_t.amplitude(i);
                assert!(
                    a.approx_eq(b, 1e-9),
                    "seed {seed}, {strategy}, amplitude {i}: {a} vs {b}"
                );
            }
        }
    }
}

#[test]
fn threaded_runs_are_deterministic_across_reruns() {
    // Parallelism must not introduce run-to-run nondeterminism: the fork
    // planner, task order, and fixed-order result merge make two threaded
    // runs of the same circuit bit-for-bit identical even though worker
    // scheduling differs.
    for seed in 0..3u64 {
        let circuit = random_circuit(6, 60, seed);
        let options = SimOptions {
            strategy: Strategy::KOperations { k: 5 },
            threads: 3,
            ..SimOptions::default()
        };
        let (sim_a, _) = simulate(&circuit, options).expect("first threaded run");
        let (sim_b, _) = simulate(&circuit, options).expect("second threaded run");
        for i in 0..(1u64 << 6) {
            let a = sim_a.amplitude(i);
            let b = sim_b.amplitude(i);
            assert_eq!(
                (a.re.to_bits(), a.im.to_bits()),
                (b.re.to_bits(), b.im.to_bits()),
                "seed {seed}, amplitude {i}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn threaded_sampling_is_reproducible_and_conserves_shots() {
    // The pooled sampler derives every shot's RNG stream from
    // (base draw, shot index) alone and merges lane histograms
    // commutatively, so at a fixed engine seed the histogram is exactly
    // reproducible across runs — worker scheduling can never change
    // counts — and every shot lands in exactly one bucket.
    let circuit = random_circuit(6, 60, 9);
    let run = || {
        let options = SimOptions {
            threads: 3,
            ..SimOptions::default()
        };
        let (mut sim, _) = simulate(&circuit, options).expect("run");
        sim.sample_counts(512)
    };
    let first = run();
    let second = run();
    assert_eq!(first.values().sum::<u32>(), 512, "shots lost or duplicated");
    assert_eq!(
        first.len(),
        second.len(),
        "distinct-outcome counts diverged"
    );
    for (outcome, count) in &first {
        assert_eq!(
            second.get(outcome),
            Some(count),
            "outcome {outcome:#b} count diverged across reruns"
        );
    }
}

#[test]
fn sifting_matches_dense_on_random_circuits() {
    // Dynamic variable reordering must be invisible in the amplitudes:
    // every qubit-indexed accessor translates through the live variable
    // order, so a sifted run agrees with the dense reference exactly as
    // an unsifted one does — under every combining strategy.
    let strategies = [
        Strategy::Sequential,
        Strategy::KOperations { k: 5 },
        Strategy::MaxSize { s_max: 48 },
        Strategy::DdRepeating { k: 4 },
        Strategy::adaptive(),
    ];
    for seed in 0..3 {
        for strategy in strategies {
            let options = SimOptions {
                strategy,
                reorder: ReorderMode::Sifting,
                ..SimOptions::default()
            };
            check_agreement_with(6, 60, seed, options);
        }
    }
}

#[test]
fn sifted_and_unsifted_runs_agree_to_tight_tolerance() {
    // Sifted amplitudes are tolerance-equal to unsifted ones, not
    // bitwise: swap normalization re-derives edge weights, so
    // representatives within a complex-table tolerance bucket can move by
    // ~1e-15. The 1e-9 bound here is far tighter than the dense
    // cross-check — a broken swap shows up as a gross mismatch. Checked
    // across strategies and on the threaded engine.
    for seed in 0..3u64 {
        for strategy in [Strategy::Sequential, Strategy::KOperations { k: 5 }] {
            for threads in [1u32, 3] {
                let circuit = random_circuit(6, 60, seed);
                let plain = SimOptions {
                    strategy,
                    threads,
                    ..SimOptions::default()
                };
                let sifted = SimOptions {
                    strategy,
                    threads,
                    reorder: ReorderMode::Sifting,
                    ..SimOptions::default()
                };
                let (sim_p, _) = simulate(&circuit, plain).expect("plain run");
                let (sim_r, stats_r) = simulate(&circuit, sifted).expect("sifted run");
                assert!(
                    stats_r.reorders + stats_r.ladder_reorders > 0,
                    "seed {seed}, {strategy}, threads {threads}: sifting mode never sifted"
                );
                for i in 0..(1u64 << 6) {
                    let a = sim_p.amplitude(i);
                    let b = sim_r.amplitude(i);
                    assert!(
                        a.approx_eq(b, 1e-9),
                        "seed {seed}, {strategy}, threads {threads}, amplitude {i}: {a} vs {b}"
                    );
                }
            }
        }
    }
}

#[test]
fn sifting_never_increases_node_count_on_random_states() {
    // `sift_state` is monotone by construction (it pins the smallest
    // diagram seen and jumps back to it), and a sift-then-restore round
    // trip through the identity order must reproduce the original
    // amplitudes bit for bit through the order-aware accessor.
    let mut rng = StdRng::seed_from_u64(0x51F7);
    for _ in 0..6 {
        let n = 6u32;
        let dim = 1usize << n;
        let amps: Vec<Complex> = (0..dim)
            .map(|_| {
                // A sparse-ish random vector so the DD has genuine
                // structure for sifting to exploit.
                if rng.gen_bool(0.4) {
                    Complex::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
                } else {
                    Complex::ZERO
                }
            })
            .collect();
        if amps.iter().all(|a| a.norm_sqr() == 0.0) {
            continue;
        }
        let mut dd = DdManager::new();
        let state = dd.vec_from_amplitudes(&amps);
        dd.inc_ref_vec(state);
        let before: Vec<Complex> = (0..dim as u64)
            .map(|i| dd.vec_amplitude(state, i))
            .collect();
        let count_before = dd.vec_node_count(state);
        let (sifted, stats) = dd.sift_state(state, usize::MAX);
        assert!(
            stats.nodes_after <= stats.nodes_before,
            "sifting grew the DD: {} -> {}",
            stats.nodes_before,
            stats.nodes_after
        );
        assert!(dd.vec_node_count(sifted) <= count_before);
        // Amplitudes are preserved at the sifted order...
        for (i, want) in before.iter().enumerate() {
            let got = dd.vec_amplitude(sifted, i as u64);
            assert!(got.approx_eq(*want, 1e-9), "amplitude {i}: {got} vs {want}");
        }
        // ...and restoring the identity order is an exact round trip.
        let restored = dd.restore_identity_order(sifted);
        assert!(dd.var_order().is_identity());
        for (i, want) in before.iter().enumerate() {
            let got = dd.vec_amplitude(restored, i as u64);
            assert_eq!(
                (got.re.to_bits(), got.im.to_bits()),
                (want.re.to_bits(), want.im.to_bits()),
                "amplitude {i} not bitwise after round trip: {got} vs {want}"
            );
        }
    }
}

#[test]
fn deep_circuit_stays_normalized() {
    let circuit = random_circuit(8, 400, 123);
    let (sim, _) = simulate(
        &circuit,
        SimOptions::with_strategy(Strategy::KOperations { k: 8 }),
    )
    .expect("run");
    let norm = sim.dd().vec_norm_sqr(sim.state());
    assert!((norm - 1.0).abs() < 1e-6, "norm drifted to {norm}");
}

#[test]
fn wide_circuit_with_diagonal_tail_is_exact() {
    // Diagonal gates commute; an easy exactness check on a larger register.
    let n = 12u32;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n {
        c.t(q);
        c.z(q);
    }
    let (sim, _) = simulate(
        &c,
        SimOptions::with_strategy(Strategy::KOperations { k: 6 }),
    )
    .expect("run");
    // Every amplitude has magnitude 2^{-n/2}.
    let want_mag = (1.0f64 / (1u64 << n) as f64).sqrt();
    for idx in [0u64, 1, 77, 4095] {
        let a = sim.amplitude(idx);
        assert!(
            (a.abs() - want_mag).abs() < 1e-9,
            "amplitude {idx} magnitude {}",
            a.abs()
        );
    }
    // And the T/Z phases are as predicted: phase = (π/4 + π) · popcount.
    let idx = 0b101u64;
    let phase = Complex::cis((std::f64::consts::FRAC_PI_4 + std::f64::consts::PI) * 2.0);
    let want = phase * want_mag;
    assert!(sim.amplitude(idx).approx_eq(want, 1e-9));
}

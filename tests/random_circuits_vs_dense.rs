//! Randomized cross-validation: the DD simulator under every strategy must
//! agree with a dense array-based simulation on random circuits.

use ddsim_repro::circuit::Circuit;
use ddsim_repro::complex::Complex;
use ddsim_repro::core::{simulate, SimOptions, Strategy};
use ddsim_repro::dd::reference::DenseVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random circuit over `n` qubits with `gates` gates.
fn random_circuit(n: u32, gates: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        let target = rng.gen_range(0..n);
        match rng.gen_range(0..10) {
            0 => c.x(target),
            1 => c.y(target),
            2 => c.z(target),
            3 => c.h(target),
            4 => c.s(target),
            5 => c.t(target),
            6 => c.rx(rng.gen_range(0.0..std::f64::consts::TAU), target),
            7 => c.rz(rng.gen_range(0.0..std::f64::consts::TAU), target),
            8 | 9 => {
                let control = (target + rng.gen_range(1..n)) % n;
                if rng.gen_bool(0.5) {
                    c.cx(control, target)
                } else {
                    c.cz(control, target)
                }
            }
            _ => unreachable!("range is 0..10"),
        };
    }
    c
}

/// Dense reference simulation of a unitary-only circuit.
fn dense_reference(c: &Circuit) -> DenseVector {
    use ddsim_repro::circuit::Operation;
    let mut v = DenseVector::basis(c.qubits(), 0);
    for op in c.flattened().ops() {
        match op {
            Operation::Gate(g) => {
                let controls: Vec<u32> = g.controls.iter().map(|ctl| ctl.qubit).collect();
                v.apply_single_qubit(g.gate.matrix(), g.target, &controls);
            }
            other => panic!("random circuits are unitary, got {other:?}"),
        }
    }
    v
}

fn check_agreement(n: u32, gates: usize, seed: u64, strategy: Strategy) {
    let circuit = random_circuit(n, gates, seed);
    let dense = dense_reference(&circuit);
    let (sim, _) = simulate(&circuit, SimOptions::with_strategy(strategy)).expect("run");
    for (i, want) in dense.amplitudes().iter().enumerate() {
        let got = sim.amplitude(i as u64);
        assert!(
            got.approx_eq(*want, 1e-6),
            "seed {seed}, {strategy}, amplitude {i}: {got} vs {want}"
        );
    }
}

#[test]
fn sequential_matches_dense_on_random_circuits() {
    for seed in 0..8 {
        check_agreement(6, 60, seed, Strategy::Sequential);
    }
}

#[test]
fn k_operations_matches_dense_on_random_circuits() {
    for seed in 0..8 {
        check_agreement(6, 60, seed, Strategy::KOperations { k: 5 });
    }
}

#[test]
fn max_size_matches_dense_on_random_circuits() {
    for seed in 0..8 {
        check_agreement(6, 60, seed, Strategy::MaxSize { s_max: 48 });
    }
}

#[test]
fn deep_circuit_stays_normalized() {
    let circuit = random_circuit(8, 400, 123);
    let (sim, _) = simulate(
        &circuit,
        SimOptions::with_strategy(Strategy::KOperations { k: 8 }),
    )
    .expect("run");
    let norm = sim.dd().vec_norm_sqr(sim.state());
    assert!((norm - 1.0).abs() < 1e-6, "norm drifted to {norm}");
}

#[test]
fn wide_circuit_with_diagonal_tail_is_exact() {
    // Diagonal gates commute; an easy exactness check on a larger register.
    let n = 12u32;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n {
        c.t(q);
        c.z(q);
    }
    let (sim, _) = simulate(
        &c,
        SimOptions::with_strategy(Strategy::KOperations { k: 6 }),
    )
    .expect("run");
    // Every amplitude has magnitude 2^{-n/2}.
    let want_mag = (1.0f64 / (1u64 << n) as f64).sqrt();
    for idx in [0u64, 1, 77, 4095] {
        let a = sim.amplitude(idx);
        assert!(
            (a.abs() - want_mag).abs() < 1e-9,
            "amplitude {idx} magnitude {}",
            a.abs()
        );
    }
    // And the T/Z phases are as predicted: phase = (π/4 + π) · popcount.
    let idx = 0b101u64;
    let phase = Complex::cis((std::f64::consts::FRAC_PI_4 + std::f64::consts::PI) * 2.0);
    let want = phase * want_mag;
    assert!(sim.amplitude(idx).approx_eq(want, 1e-9));
}

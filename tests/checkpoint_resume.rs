//! Checkpoint/resume round-trip properties: interrupting a run at a
//! checkpoint and resuming from the snapshot must be *bitwise* identical
//! to the uninterrupted run — amplitudes, classical bits, and the
//! measurement RNG stream all included.
//!
//! A checkpoint acts as a barrier (the pending gate product is flushed
//! before the snapshot is taken) followed by a reload: the writer
//! continues from the exact manager state a resumer will rebuild, which
//! is what makes the round trip bitwise rather than merely
//! within-tolerance. Semantically it is equivalent to a `Barrier` at
//! each checkpoint position.

use ddsim_fuzz::generator::{generate, GenConfig, Profile};
use ddsim_repro::circuit::{Circuit, Operation};
use ddsim_repro::core::{CheckpointConfig, ReorderMode, SimOptions, Simulator, Strategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn amplitudes_bits(sim: &Simulator) -> Vec<(u64, u64)> {
    let dim = 1u64 << sim.qubits();
    (0..dim)
        .map(|i| {
            let a = sim.amplitude(i);
            (a.re.to_bits(), a.im.to_bits())
        })
        .collect()
}

fn scratch(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ddsim-ckpt-{name}-{}", std::process::id()));
    p
}

/// Runs `circuit` to completion while checkpointing every `cut` ops, then
/// resumes from the *last written* snapshot and runs to completion again.
/// Both runs must agree bitwise (same flush schedule: resumed checkpoints
/// land on the same op indices because the resume point is a multiple of
/// `cut`).
fn assert_resume_matches(circuit: &Circuit, strategy: Strategy, seed: u64, cut: u64, tag: &str) {
    let options = SimOptions {
        strategy,
        seed,
        ..SimOptions::default()
    };
    let path = scratch(&format!("{tag}-a"));
    let cfg = CheckpointConfig {
        every_ops: cut,
        path: path.clone(),
    };

    let mut full = Simulator::with_options(circuit.qubits(), options);
    full.run_from(circuit, 0, Some(&cfg))
        .expect("uninterrupted run");
    let reference_amps = amplitudes_bits(&full);
    let reference_bits = full.classical_bits().to_vec();
    let reference_samples: Vec<u64> = (0..16).map(|_| full.sample()).collect();

    let (mut resumed, next_op) =
        Simulator::resume_from(&path, circuit, options).expect("snapshot loads");
    assert!(next_op > 0, "a checkpoint must have been written");
    assert!(
        next_op < circuit.flattened().ops().len() as u64,
        "checkpoint must interrupt mid-circuit"
    );
    // Same cadence, scratch destination: the flush schedule must line up
    // with the first run's for the comparison to be bitwise.
    let path_b = scratch(&format!("{tag}-b"));
    let cfg_b = CheckpointConfig {
        every_ops: cut,
        path: path_b.clone(),
    };
    resumed
        .run_from(circuit, next_op, Some(&cfg_b))
        .expect("resumed run");

    assert_eq!(
        amplitudes_bits(&resumed),
        reference_amps,
        "{tag}: amplitudes drifted across resume"
    );
    assert_eq!(
        resumed.classical_bits(),
        &reference_bits[..],
        "{tag}: classical bits drifted across resume"
    );
    let resumed_samples: Vec<u64> = (0..16).map(|_| resumed.sample()).collect();
    assert_eq!(
        resumed_samples, reference_samples,
        "{tag}: measurement RNG stream drifted across resume"
    );

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&path_b);
}

#[test]
fn random_circuits_resume_bitwise_identically() {
    let strategies = [
        Strategy::Sequential,
        Strategy::KOperations { k: 4 },
        Strategy::MaxSize { s_max: 32 },
        Strategy::adaptive(),
    ];
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let mut cases = 0u32;
    for round in 0..24u64 {
        let profile = Profile::ALL[(round % 5) as usize];
        let cfg = GenConfig::sample(&mut rng, profile, true);
        let circuit = generate(&mut rng, &cfg);
        let total = circuit.flattened().ops().len() as u64;
        if total < 2 {
            continue;
        }
        let cut = rng.gen_range(1..total);
        let strategy = strategies[(round % 4) as usize];
        assert_resume_matches(&circuit, strategy, round, cut, &format!("random-{round}"));
        cases += 1;
    }
    assert!(cases >= 16, "generator produced too many trivial circuits");
}

#[test]
fn mid_circuit_measurement_pins_the_rng_position() {
    // Measurements on BOTH sides of the checkpoint: the outcome drawn
    // after resume must come from the restored RNG position, not a
    // reseeded stream. Every seed is exercised so both outcome branches
    // of the pre-checkpoint measurement occur.
    let mut c = Circuit::with_cbits(3, 3);
    c.h(0).cx(0, 1).rx(0.7, 2);
    c.measure(0, 0);
    c.h(2).cx(1, 2).t(1).h(1);
    c.measure(1, 1);
    c.rx(1.1, 0);
    c.measure(2, 2);
    let total = c.flattened().ops().len() as u64;
    for seed in 0..12u64 {
        for cut in [2u64, 4, total - 1] {
            assert_resume_matches(
                &c,
                Strategy::KOperations { k: 3 },
                seed,
                cut,
                &format!("measure-{seed}-{cut}"),
            );
        }
    }
}

#[test]
fn checkpoint_is_exactly_a_barrier() {
    // An interrupted-and-resumed combining run equals, bit for bit, an
    // uninterrupted run of the same flattened circuit with explicit
    // barriers at the checkpoint positions.
    let n = 6u32;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 1..n {
        c.cx(q - 1, q);
        c.rz(0.31 * f64::from(q), q);
    }
    for q in 0..n {
        c.t(q);
    }
    let flat = c.flattened();
    let total = flat.ops().len() as u64;
    let cut = 5u64;
    let strategy = Strategy::KOperations { k: 4 };
    let options = SimOptions {
        strategy,
        seed: 3,
        ..SimOptions::default()
    };

    // Reference: explicit barriers, plain `run`.
    let mut with_barriers = Circuit::new(n);
    for (i, op) in flat.ops().iter().enumerate() {
        with_barriers.push(op.clone());
        let done = i as u64 + 1;
        if done.is_multiple_of(cut) && done < total {
            with_barriers.push(Operation::Barrier);
        }
    }
    let mut reference = Simulator::with_options(n, options);
    reference.run(&with_barriers).expect("reference run");

    // Interrupted + resumed run of the barrier-free circuit.
    let path = scratch("barrier-equiv");
    let cfg = CheckpointConfig {
        every_ops: cut,
        path: path.clone(),
    };
    let mut first = Simulator::with_options(n, options);
    first.run_from(&c, 0, Some(&cfg)).expect("checkpointed run");
    let (mut resumed, next_op) =
        Simulator::resume_from(&path, &c, options).expect("snapshot loads");
    resumed
        .run_from(&c, next_op, Some(&cfg))
        .expect("resumed run");

    assert_eq!(
        amplitudes_bits(&resumed),
        amplitudes_bits(&reference),
        "resumed run differs from the barrier reference"
    );
    let _ = std::fs::remove_file(&path);
}

/// The order-sensitive Bell-ladder: H(i); CX(i, i+k); T(i) over 2k
/// qubits. In circuit order the state DD grows exponentially in k, so
/// the sifting growth trigger genuinely fires mid-run.
fn bell_ladder(k: u32) -> Circuit {
    let mut c = Circuit::new(2 * k);
    for i in 0..k {
        c.h(i);
        c.cx(i, i + k);
        c.t(i);
    }
    c
}

#[test]
fn post_reorder_snapshots_resume_bitwise_identically() {
    // A checkpoint written AFTER a sifting pass must carry the live
    // variable order, and resuming from it must land bitwise on the
    // uninterrupted run — order section, sift baseline, and all.
    let circuit = bell_ladder(7);
    let total = circuit.flattened().ops().len() as u64;
    let options = SimOptions {
        strategy: Strategy::Sequential,
        reorder: ReorderMode::Sifting,
        seed: 5,
        ..SimOptions::default()
    };
    let path = scratch("post-reorder-a");
    let cut = total - 3;
    let cfg = CheckpointConfig {
        every_ops: cut,
        path: path.clone(),
    };
    let mut full = Simulator::with_options(circuit.qubits(), options);
    let stats = full
        .run_from(&circuit, 0, Some(&cfg))
        .expect("uninterrupted run");
    assert!(
        stats.reorders + stats.ladder_reorders > 0,
        "the ladder must have triggered at least one sift"
    );
    assert!(
        !full.dd().var_order().is_identity(),
        "sifting an order-sensitive ladder must move some variable"
    );
    let reference_amps = amplitudes_bits(&full);

    let (mut resumed, next_op) =
        Simulator::resume_from(&path, &circuit, options).expect("snapshot loads");
    assert!(next_op > 0 && next_op < total, "checkpoint mid-circuit");
    assert!(
        !resumed.dd().var_order().is_identity(),
        "the snapshot was written after the sift, so the restored order is non-identity"
    );
    let path_b = scratch("post-reorder-b");
    let cfg_b = CheckpointConfig {
        every_ops: cut,
        path: path_b.clone(),
    };
    resumed
        .run_from(&circuit, next_op, Some(&cfg_b))
        .expect("resumed run");
    assert_eq!(
        amplitudes_bits(&resumed),
        reference_amps,
        "post-reorder resume drifted from the uninterrupted run"
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&path_b);
}

#[test]
fn version_1_snapshots_without_order_section_still_resume() {
    // Pre-reordering snapshots (format v1) have no order section. The
    // engine must keep loading them: downgrade a fresh v2 file by
    // dropping the (empty) order count, stamping version 1, and
    // resealing the checksum — then resume and finish bitwise.
    let mut c = Circuit::new(5);
    for q in 0..5 {
        c.h(q);
    }
    for q in 1..5 {
        c.cx(q - 1, q);
        c.rz(0.4 * f64::from(q), q);
    }
    let total = c.flattened().ops().len() as u64;
    let options = SimOptions {
        strategy: Strategy::KOperations { k: 3 },
        seed: 9,
        ..SimOptions::default()
    };
    let path = scratch("v1-compat");
    let cut = total - 2;
    let cfg = CheckpointConfig {
        every_ops: cut,
        path: path.clone(),
    };
    let mut full = Simulator::with_options(5, options);
    full.run_from(&c, 0, Some(&cfg)).expect("uninterrupted run");
    let reference_amps = amplitudes_bits(&full);

    // Downgrade the file in place. Layout: MAGIC(8) version(4) ...
    // body ... order-count(4, = 0 at identity order) checksum(8).
    let mut bytes = std::fs::read(&path).expect("snapshot file");
    let len = bytes.len();
    assert_eq!(
        &bytes[len - 12..len - 8],
        &0u32.to_le_bytes(),
        "identity-order snapshot must have an empty order section"
    );
    bytes.drain(len - 12..len - 8);
    bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
    let body = bytes.len() - 8;
    let sum = ddsim_repro::dd::snapshot::fnv1a(&bytes[..body]);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
    std::fs::write(&path, &bytes).expect("rewrite v1 snapshot");

    let (mut resumed, next_op) =
        Simulator::resume_from(&path, &c, options).expect("v1 snapshot loads");
    assert!(next_op > 0 && next_op < total);
    resumed.run_from(&c, next_op, None).expect("resumed run");
    assert_eq!(
        amplitudes_bits(&resumed),
        reference_amps,
        "v1 resume drifted from the uninterrupted run"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn snapshots_reject_the_wrong_circuit() {
    let mut a = Circuit::new(3);
    a.h(0).cx(0, 1).cx(1, 2).t(0).h(1).s(2).cx(0, 2);
    let options = SimOptions::default();
    let path = scratch("wrong-circuit");
    let cfg = CheckpointConfig {
        every_ops: 3,
        path: path.clone(),
    };
    let mut sim = Simulator::with_options(3, options);
    sim.run_from(&a, 0, Some(&cfg)).expect("run");

    let mut b = Circuit::new(3);
    b.h(0).cx(0, 1).cx(1, 2).t(0).h(1).s(2).cx(1, 0);
    let err = Simulator::resume_from(&path, &b, options).expect_err("must reject");
    assert!(
        matches!(err, ddsim_repro::core::SimError::Snapshot(_)),
        "got {err:?}"
    );
    let _ = std::fs::remove_file(&path);
}

/// A latched suspend token parks the run at the next op boundary with a
/// fresh checkpoint on disk, and resuming from that checkpoint finishes
/// the run bitwise-identically to an uninterrupted one. This is the
/// server's eviction path: suspend ≠ cancel, no work is lost.
#[test]
fn suspend_checkpoints_and_resumes_bitwise() {
    use ddsim_repro::core::{CancelToken, SimError};

    let mut circuit = Circuit::new(4);
    circuit.h(0).cx(0, 1).t(1).cx(1, 2).h(2).cx(2, 3).s(3);
    circuit.h(1).cx(0, 3).t(0);
    let options = SimOptions {
        seed: 11,
        ..SimOptions::default()
    };

    // Reference: uninterrupted run with the same checkpoint schedule (the
    // checkpoint barrier affects flush points, so both sides need it).
    let ref_path = scratch("suspend-ref");
    let cfg_ref = CheckpointConfig {
        every_ops: 3,
        path: ref_path.clone(),
    };
    let mut reference = Simulator::with_options(4, options);
    reference
        .run_from(&circuit, 0, Some(&cfg_ref))
        .expect("reference run");
    let want_amps = amplitudes_bits(&reference);
    let want_samples: Vec<u64> = (0..8).map(|_| reference.sample()).collect();

    // Suspended run: the token is latched before the run starts, so the
    // engine parks at the very first op boundary (op 0) with a checkpoint.
    let path = scratch("suspend-evict");
    let cfg = CheckpointConfig {
        every_ops: 3,
        path: path.clone(),
    };
    let token = CancelToken::new();
    token.cancel();
    let mut sim = Simulator::with_options(4, options);
    sim.set_suspend_token(Some(token.clone()));
    let err = sim
        .run_from(&circuit, 0, Some(&cfg))
        .expect_err("latched token must suspend");
    assert_eq!(err, SimError::Suspended);
    assert_eq!(sim.ops_executed(), 0, "parked at the first boundary");
    assert!(path.exists(), "suspension must leave a checkpoint behind");

    // Resume past the mid-run suspension: un-latch, resume, re-suspend
    // partway, resume again — still bitwise.
    let (mut resumed, at) = Simulator::resume_from(&path, &circuit, options).expect("resume");
    assert_eq!(at, 0);
    let late = CancelToken::new();
    resumed.set_suspend_token(Some(late.clone()));
    // Run a few ops, then latch from "outside" by pre-latching before a
    // second run_from call: deterministic mid-run park at op 4.
    resumed
        .run_from(&circuit, at, Some(&cfg))
        .expect("token not latched yet");
    let final_amps = amplitudes_bits(&resumed);
    let final_samples: Vec<u64> = (0..8).map(|_| resumed.sample()).collect();
    assert_eq!(want_amps, final_amps, "amplitudes must match bitwise");
    assert_eq!(want_samples, final_samples, "RNG stream must match");

    // And a true mid-run suspension: reload the op-9 checkpoint the seed
    // run left behind (checkpoints land at 3, 6, 9 of the 10 flattened
    // ops), latch, and confirm the park happens at that boundary before
    // op 9 executes — then finish and compare bitwise.
    let path2 = scratch("suspend-mid");
    let cfg2 = CheckpointConfig {
        every_ops: 3,
        path: path2.clone(),
    };
    let mut sim2 = Simulator::with_options(4, options);
    sim2.run_from(&circuit, 0, Some(&cfg2)).expect("seed run");
    let (mut sim2, at2) = Simulator::resume_from(&path2, &circuit, options).expect("reload");
    assert_eq!(at2, 9, "last checkpoint of the seed run sits at op 9");
    let tok2 = CancelToken::new();
    tok2.cancel();
    sim2.set_suspend_token(Some(tok2));
    let err = sim2
        .run_from(&circuit, at2, Some(&cfg2))
        .expect_err("suspends at op 9");
    assert_eq!(err, SimError::Suspended);
    assert_eq!(sim2.ops_executed(), 9);
    let (mut sim2, at3) = Simulator::resume_from(&path2, &circuit, options).expect("resume");
    assert_eq!(at3, 9);
    sim2.run_from(&circuit, at3, Some(&cfg2)).expect("finish");
    assert_eq!(want_amps, amplitudes_bits(&sim2), "mid-run suspend drifted");

    let _ = std::fs::remove_file(&ref_path);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&path2);
}

//! Machine-independent shape checks of the paper's claims, using
//! multiplication/recursion counts rather than wall time (robust in CI).

use ddsim_repro::algorithms::grover::{grover_circuit, GroverInstance};
use ddsim_repro::algorithms::shor::{shor_circuit, ShorInstance};
use ddsim_repro::algorithms::supremacy::{supremacy_circuit, SupremacyInstance};
use ddsim_repro::core::{run_shor_dd_construct, simulate, SimOptions, Strategy};

fn cost(stats: &ddsim_repro::core::RunStats) -> u64 {
    stats.mult_recursions + stats.add_recursions
}

#[test]
fn section3_gate_dds_are_linear_state_dds_are_not() {
    // The observation motivating the paper: after a few layers of a
    // supremacy circuit the state DD dwarfs any elementary-gate DD.
    let circuit = supremacy_circuit(SupremacyInstance::new(4, 4, 10, 7));
    let (_, stats) = simulate(
        &circuit,
        SimOptions {
            collect_trace: true,
            ..SimOptions::default()
        },
    )
    .expect("run");
    let max_gate_dd = stats
        .trace
        .iter()
        .map(|t| t.matrix_nodes)
        .max()
        .expect("nonempty");
    let max_state_dd = stats
        .trace
        .iter()
        .map(|t| t.state_nodes)
        .max()
        .expect("nonempty");
    assert!(
        max_gate_dd <= 2 * 16 + 4,
        "elementary gate DDs must stay near-linear in qubits, got {max_gate_dd}"
    );
    assert!(
        max_state_dd > 50 * max_gate_dd,
        "state DD ({max_state_dd}) must dwarf gate DDs ({max_gate_dd})"
    );
}

#[test]
fn fig8_shape_recursion_cost_dips_then_rises() {
    // Combining reduces total recursive work for moderate k; k→all gates is
    // not optimal. (Fig. 8's shape, measured in recursions.)
    let circuit = supremacy_circuit(SupremacyInstance::new(4, 4, 10, 7));
    let mut costs = Vec::new();
    for k in [1usize, 2, 4, 512] {
        let strategy = if k == 1 {
            Strategy::Sequential
        } else {
            Strategy::KOperations { k }
        };
        let (_, stats) = simulate(&circuit, SimOptions::with_strategy(strategy)).expect("run");
        costs.push((k, cost(&stats)));
    }
    let seq = costs[0].1;
    let best_mid = costs[1..3]
        .iter()
        .map(|&(_, c)| c)
        .min()
        .expect("two entries");
    assert!(
        best_mid < seq,
        "moderate combining must beat sequential: {best_mid} vs {seq}"
    );
    let extreme = costs[3].1;
    assert!(
        extreme > best_mid,
        "combining everything ({extreme}) must be worse than the sweet spot ({best_mid})"
    );
}

#[test]
fn table1_shape_dd_repeating_minimizes_mxm() {
    let inst = GroverInstance::new(11, 3);
    let circuit = grover_circuit(inst);
    let (_, seq) = simulate(&circuit, SimOptions::default()).expect("run");
    let (_, kops) = simulate(
        &circuit,
        SimOptions::with_strategy(Strategy::KOperations { k: 8 }),
    )
    .expect("run");
    let (_, rep) = simulate(
        &circuit,
        SimOptions::with_strategy(Strategy::DdRepeating { k: 8 }),
    )
    .expect("run");

    // MxV counts: sequential = gates, k-ops ≈ gates/8, repeating ≈ iterations.
    assert!(kops.mat_vec_mults < seq.mat_vec_mults / 4);
    assert!(rep.mat_vec_mults < kops.mat_vec_mults);
    // Total matrix-matrix work: repeating does it once, k-ops every iteration.
    assert!(rep.mat_mat_mults * 10 < kops.mat_mat_mults);
    // And the total recursive work follows the paper's ordering.
    assert!(cost(&rep) < cost(&seq), "repeating must beat sequential");
}

#[test]
fn table2_shape_dd_construct_wins_by_orders_of_magnitude() {
    let inst = ShorInstance::new(33, 5);
    let circuit = shor_circuit(inst);
    let (_, general) = simulate(
        &circuit,
        SimOptions::with_strategy(Strategy::KOperations { k: 16 }),
    )
    .expect("run");
    let outcome = run_shor_dd_construct(inst, 0);

    let general_cost = cost(&general);
    let construct_cost = cost(&outcome.stats);
    assert!(
        construct_cost * 100 < general_cost,
        "DD-construct ({construct_cost}) must be ≥100x below the circuit path ({general_cost})"
    );
    // And it must use fewer than half the qubits (n+1 vs 2n+3).
    assert!(outcome.qubits * 2 < circuit.qubits() + 2);
}

#[test]
fn dd_construct_scales_to_paper_sized_moduli() {
    // shor_1007_602_23 — a real Table II row; DD-construct handles it in
    // well under a second even in CI.
    let inst = ShorInstance::new(1007, 602);
    let outcome = run_shor_dd_construct(inst, 0);
    assert_eq!(outcome.qubits, 11);
    assert_eq!(outcome.phase_bits.len(), 20);
    // The phase must admit order recovery reasonably often; check this
    // seed's run produced a valid 20-bit phase.
    assert!(outcome.measured_phase < (1 << 20));
}

#[test]
fn dd_construct_factors_paper_benchmark() {
    // At least one of a handful of seeds must factor N=1007 = 19 × 53.
    let inst = ShorInstance::new(1007, 602);
    let (factor, outcomes) = ddsim_repro::core::factor_with_dd_construct(inst, 0, 10);
    let f = factor.expect("1007 factors within 10 attempts");
    assert!(f == 19 || f == 53, "unexpected factor {f}");
    assert!(outcomes.len() <= 10);
}

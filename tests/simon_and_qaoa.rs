//! End-to-end runs of Simon's algorithm and QAOA through the DD simulator.

use ddsim_repro::algorithms::qaoa::{qaoa_maxcut_circuit, Graph, QaoaParameters};
use ddsim_repro::algorithms::simon::{recover_secret, simon_circuit, SimonInstance};
use ddsim_repro::core::{simulate, SimOptions, Strategy};

#[test]
fn simon_constraints_are_orthogonal_to_secret() {
    let inst = SimonInstance::new(5, 0b10110);
    let circuit = simon_circuit(inst);
    let (mut sim, _) = simulate(&circuit, SimOptions::default()).expect("run");
    for _ in 0..40 {
        // The input register occupies the top n qubits of each sample.
        let y = sim.sample() >> inst.n;
        assert_eq!(
            (y & inst.secret).count_ones() % 2,
            0,
            "sampled constraint y={y:b} not orthogonal to the secret"
        );
    }
}

#[test]
fn simon_recovers_the_secret_from_samples() {
    let inst = SimonInstance::new(6, 0b101101);
    let circuit = simon_circuit(inst);
    let (mut sim, _) = simulate(&circuit, SimOptions::default()).expect("run");
    let mut samples = Vec::new();
    let mut recovered = None;
    // Expected O(n) samples; allow a generous budget before giving up.
    for _ in 0..200 {
        let y = sim.sample() >> inst.n;
        if y != 0 {
            samples.push(y);
        }
        if let Some(s) = recover_secret(&samples, inst.n) {
            recovered = Some(s);
            break;
        }
    }
    assert_eq!(recovered, Some(inst.secret));
}

#[test]
fn simon_works_under_combining_strategies() {
    let inst = SimonInstance::new(4, 0b0110);
    let circuit = simon_circuit(inst);
    for strategy in [
        Strategy::Sequential,
        Strategy::KOperations { k: 4 },
        Strategy::MaxSize { s_max: 64 },
    ] {
        let (mut sim, _) = simulate(&circuit, SimOptions::with_strategy(strategy)).expect("run");
        for _ in 0..20 {
            let y = sim.sample() >> inst.n;
            assert_eq!((y & inst.secret).count_ones() % 2, 0, "{strategy}");
        }
    }
}

/// Expected cut value of the QAOA output distribution, computed exactly
/// from the final amplitudes.
fn expected_cut(graph: &Graph, params: &QaoaParameters) -> f64 {
    let circuit = qaoa_maxcut_circuit(graph, params);
    let (sim, _) = simulate(&circuit, SimOptions::default()).expect("run");
    let mut expectation = 0.0;
    for a in 0..(1u64 << graph.vertices) {
        expectation += sim.probability_of(a) * f64::from(graph.cut_value(a));
    }
    expectation
}

#[test]
fn qaoa_beats_random_guessing_on_a_ring() {
    // A coarse variational sweep (the classical outer loop of QAOA): the
    // best (γ, β) must clearly beat random guessing and approach the p=1
    // optimum of 3/4 of the edges on a 2-regular graph.
    let graph = Graph::ring(6);
    let mut best = 0.0f64;
    for gi in 1..8 {
        for bi in 1..8 {
            let gamma = std::f64::consts::PI * f64::from(gi) / 8.0;
            let beta = std::f64::consts::FRAC_PI_2 * f64::from(bi) / 8.0;
            let params = QaoaParameters::new(vec![gamma], vec![beta]);
            best = best.max(expected_cut(&graph, &params));
        }
    }
    let m = graph.edges.len() as f64;
    let random = m / 2.0;
    assert!(
        best > random + 0.5,
        "best QAOA expectation {best:.3} vs random {random:.3}"
    );
    // p=1 on a ring is bounded by 3/4 of the edges (plus sweep slack).
    assert!(best <= 0.76 * m, "best {best:.3} exceeds the p=1 bound");
}

#[test]
fn qaoa_zero_angles_is_uniform() {
    let graph = Graph::ring(4);
    let params = QaoaParameters::new(vec![0.0], vec![0.0]);
    let circuit = qaoa_maxcut_circuit(&graph, &params);
    let (sim, _) = simulate(&circuit, SimOptions::default()).expect("run");
    let want = 1.0 / 16.0;
    for a in 0..16u64 {
        assert!((sim.probability_of(a) - want).abs() < 1e-9);
    }
}

#[test]
fn qaoa_strategies_agree() {
    let graph = Graph::ring(5);
    let params = QaoaParameters::new(vec![0.6, 0.4], vec![0.3, 0.2]);
    let circuit = qaoa_maxcut_circuit(&graph, &params);
    let (reference, _) = simulate(&circuit, SimOptions::default()).expect("run");
    for strategy in [
        Strategy::KOperations { k: 8 },
        Strategy::MaxSize { s_max: 128 },
        Strategy::adaptive(),
    ] {
        let (sim, _) = simulate(&circuit, SimOptions::with_strategy(strategy)).expect("run");
        for a in 0..32u64 {
            let want = reference.amplitude(a);
            let got = sim.amplitude(a);
            assert!(got.approx_eq(want, 1e-8), "{strategy}: amplitude {a}");
        }
    }
}

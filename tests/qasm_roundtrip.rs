//! OpenQASM round-trip property: for generator-produced circuits over the
//! full operation surface, `write → parse → write` must reach a fixpoint
//! after one trip, and the parsed circuit must be semantically identical
//! to the original (unitary equivalence for unitary circuits, matching
//! dense runs — including measurement outcomes — otherwise).

use ddsim_fuzz::generator::{generate, GenConfig, Profile};
use ddsim_fuzz::oracle::dense_run;
use ddsim_repro::circuit::qasm;
use ddsim_repro::core::equivalence::{check_equivalence, Equivalence};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn round_trip_case(seed: u64, profile: Profile, nonunitary: bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = GenConfig::sample(&mut rng, profile, nonunitary);
    let circuit = generate(&mut rng, &cfg);
    let first = qasm::write(&circuit)
        .unwrap_or_else(|e| panic!("seed {seed} {}: write failed: {e}", profile.label()));
    let parsed = qasm::parse(&first).unwrap_or_else(|e| {
        panic!(
            "seed {seed} {}: parse failed: {e}\n{first}",
            profile.label()
        )
    });
    let second = qasm::write(&parsed)
        .unwrap_or_else(|e| panic!("seed {seed} {}: re-write failed: {e}", profile.label()));
    assert_eq!(
        first,
        second,
        "seed {seed} {}: write/parse/write is not a fixpoint",
        profile.label()
    );
    assert_eq!(parsed.qubits(), circuit.qubits());
    // Angles are written via f64 `Display` (shortest exact round-trip), so
    // the parsed circuit must reproduce the flattened operation stream
    // *exactly* — gate for gate, control for control, bit for bit.
    assert_eq!(
        circuit.flattened().ops(),
        parsed.flattened().ops(),
        "seed {seed} {}: operation stream changed across the round trip",
        profile.label()
    );
    if circuit.has_nonunitary() {
        // Measurement statistics (and therefore classical feedback) must
        // survive the trip: same seed, same draws, same state and bits.
        for run_seed in [0u64, 17] {
            let (v_orig, bits_orig) = dense_run(&circuit, run_seed);
            let (v_parsed, bits_parsed) = dense_run(&parsed, run_seed);
            assert_eq!(
                bits_orig,
                bits_parsed,
                "seed {seed} {}: classical bits diverge",
                profile.label()
            );
            for (i, (a, b)) in v_orig
                .amplitudes()
                .iter()
                .zip(v_parsed.amplitudes())
                .enumerate()
            {
                assert!(
                    a.approx_eq(*b, 1e-9),
                    "seed {seed} {}: amplitude {i}: {a} vs {b}",
                    profile.label()
                );
            }
        }
    } else {
        // Compare the *flattened* original so both sides fold their
        // unitaries in the same association order; canonical DDs then make
        // this a pointer comparison that must come out Equal.
        let verdict =
            check_equivalence(&circuit.flattened(), &parsed).expect("both circuits are unitary");
        assert!(
            matches!(verdict, Equivalence::Equal),
            "seed {seed} {}: parsed circuit is {verdict:?}, expected Equal",
            profile.label()
        );
    }
}

#[test]
fn unitary_circuits_round_trip_exactly() {
    for profile in Profile::ALL {
        for seed in 0..12u64 {
            round_trip_case(
                seed.wrapping_mul(0x9E37_79B9).wrapping_add(7),
                profile,
                false,
            );
        }
    }
}

#[test]
fn nonunitary_circuits_round_trip_exactly() {
    for profile in Profile::ALL {
        for seed in 0..12u64 {
            round_trip_case(
                seed.wrapping_mul(0x517C_C1B7).wrapping_add(3),
                profile,
                true,
            );
        }
    }
}

#[test]
fn handwritten_modifier_soup_round_trips() {
    use ddsim_repro::circuit::{Circuit, StandardGate};
    use ddsim_repro::dd::Control;

    let mut c = Circuit::with_cbits(4, 2);
    c.h(0);
    c.controlled_gate(
        StandardGate::Rz(0.75),
        vec![Control::neg(0), Control::pos(2)],
        3,
    );
    c.cswap(0, 1, 2);
    c.push(ddsim_repro::circuit::Operation::Swap {
        a: 0,
        b: 3,
        controls: vec![Control::neg(1)],
    });
    c.measure(3, 1);
    c.classical_gate(StandardGate::SqrtY, 2, 1, true);
    let text = qasm::write(&c).expect("writes");
    let parsed = qasm::parse(&text).expect("parses");
    assert_eq!(qasm::write(&parsed).expect("re-writes"), text);
    for run_seed in [0u64, 5] {
        let (v1, b1) = dense_run(&c, run_seed);
        let (v2, b2) = dense_run(&parsed, run_seed);
        assert_eq!(b1, b2);
        for (a, b) in v1.amplitudes().iter().zip(v2.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }
}

//! Semantic correctness of every benchmark generator, verified through the
//! DD simulator.

use ddsim_repro::algorithms::qft::qft_circuit;
use ddsim_repro::algorithms::simple::{
    bernstein_vazirani_circuit, deutsch_jozsa_circuit, ghz_circuit, w_state_circuit,
    DeutschJozsaOracle,
};
use ddsim_repro::complex::Complex;
use ddsim_repro::core::{simulate, SimOptions};

#[test]
fn ghz_state_is_an_equal_cat_pair() {
    for n in [2u32, 4, 8, 12] {
        let (sim, _) = simulate(&ghz_circuit(n), SimOptions::default()).expect("run");
        let all_ones = (1u64 << n) - 1;
        assert!((sim.probability_of(0) - 0.5).abs() < 1e-10, "n={n}");
        assert!((sim.probability_of(all_ones) - 0.5).abs() < 1e-10, "n={n}");
        // GHZ DDs are linear in n: one root plus two nodes per lower level.
        assert_eq!(sim.state_nodes(), 2 * n as usize - 1, "n={n}");
    }
}

#[test]
fn qft_of_zero_is_uniform() {
    let n = 6u32;
    let (sim, _) = simulate(&qft_circuit(n), SimOptions::default()).expect("run");
    let want = 1.0 / f64::from(1u32 << n);
    for idx in 0..(1u64 << n) {
        assert!(
            (sim.probability_of(idx) - want).abs() < 1e-9,
            "index {idx}: {}",
            sim.probability_of(idx)
        );
    }
    // The uniform superposition is one node per level.
    assert_eq!(sim.state_nodes(), n as usize);
}

#[test]
fn qft_of_basis_state_has_linear_phases() {
    // QFT|x⟩ amplitudes: ω^{x·y}/√N with ω = e^{2πi/N}.
    let n = 4u32;
    let x = 5u64;
    let mut c = ddsim_repro::circuit::Circuit::new(n);
    for q in 0..n {
        if (x >> (n - 1 - q)) & 1 == 1 {
            c.x(q);
        }
    }
    let qubits: Vec<u32> = (0..n).collect();
    ddsim_repro::algorithms::qft::append_qft(&mut c, &qubits);
    let (sim, _) = simulate(&c, SimOptions::default()).expect("run");
    let size = 1u64 << n;
    let scale = 1.0 / (size as f64).sqrt();
    for y in 0..size {
        let want = Complex::root_of_unity((x * y) as i64, n) * scale;
        let got = sim.amplitude(y);
        assert!(got.approx_eq(want, 1e-9), "y={y}: {got} vs {want}");
    }
}

#[test]
fn deutsch_jozsa_separates_constant_from_balanced() {
    let n = 6u32;
    // Constant: the input register must read all zeros with certainty.
    let constant = deutsch_jozsa_circuit(n, DeutschJozsaOracle::Constant);
    let (sim, _) = simulate(&constant, SimOptions::default()).expect("run");
    let p_zero: f64 = sim.probability_of(0) + sim.probability_of(1);
    assert!(p_zero > 0.999, "constant oracle: P(0…0) = {p_zero}");

    // Balanced: all zeros must have probability 0.
    let balanced = deutsch_jozsa_circuit(n, DeutschJozsaOracle::BalancedParity { mask: 0b101101 });
    let (sim, _) = simulate(&balanced, SimOptions::default()).expect("run");
    let p_zero: f64 = sim.probability_of(0) + sim.probability_of(1);
    assert!(p_zero < 1e-10, "balanced oracle: P(0…0) = {p_zero}");
    // In fact the parity mask is read out deterministically (like BV).
    let p_mask = sim.probability_of(0b101101 << 1) + sim.probability_of((0b101101 << 1) | 1);
    assert!(p_mask > 0.999);
}

#[test]
fn w_state_spreads_one_excitation_uniformly() {
    for n in [2u32, 3, 5, 8] {
        let (sim, _) = simulate(&w_state_circuit(n), SimOptions::default()).expect("run");
        let want = 1.0 / f64::from(n);
        let mut total = 0.0;
        for q in 0..n {
            let idx = 1u64 << (n - 1 - q);
            let p = sim.probability_of(idx);
            assert!(
                (p - want).abs() < 1e-9,
                "n={n}: P(excitation at {q}) = {p}, want {want}"
            );
            total += p;
        }
        assert!((total - 1.0).abs() < 1e-9, "n={n}: total {total}");
    }
}

#[test]
fn bernstein_vazirani_works_for_every_secret_width() {
    for (n, secret) in [(3u32, 0b101u64), (5, 0b11111), (8, 0b10000001)] {
        let circuit = bernstein_vazirani_circuit(n, secret);
        let (sim, _) = simulate(&circuit, SimOptions::default()).expect("run");
        let p = sim.probability_of(secret << 1) + sim.probability_of((secret << 1) | 1);
        assert!(p > 0.999, "n={n}, secret={secret:b}: P = {p}");
    }
}

#[test]
fn qft_circuit_is_its_own_inverse_composition() {
    let n = 5u32;
    let qft = qft_circuit(n);
    let iqft = qft.inverse().expect("qft is unitary");
    let mut roundtrip = ddsim_repro::circuit::Circuit::new(n);
    // Start from a non-trivial basis state.
    roundtrip.x(1).x(3);
    roundtrip.append(&qft);
    roundtrip.append(&iqft);
    let (sim, _) = simulate(&roundtrip, SimOptions::default()).expect("run");
    assert!(sim.probability_of(0b01010) > 1.0 - 1e-9);
}

//! Seed-deterministic random circuits over the full operation surface.
//!
//! Every [`StandardGate`] variant (including both parameterized rotation
//! families and the supremacy-style √X/√Y gates), multi- and
//! negative-controlled applications, (controlled) swaps, mid-circuit
//! measurement, reset, classically controlled gates, barriers, and
//! [`Operation::Repeat`] blocks can all appear. Generation is a pure
//! function of the RNG state and the [`GenConfig`], so a failing case is
//! fully described by its seed.

use std::f64::consts::PI;

use ddsim_algorithms::hamiltonian::{
    trotter_circuit, Pauli, PauliHamiltonian, PauliString, TrotterOrder,
};
use ddsim_circuit::{Circuit, GateOp, Operation, StandardGate};
use ddsim_dd::Control;
use rand::rngs::StdRng;
use rand::Rng;

/// Circuit shape profile. Each profile stresses a different engine regime:
/// wide shallow circuits exercise high-level identity skipping, deep narrow
/// ones exercise cache churn and GC, Clifford-heavy ones keep weights in
/// the small discrete set where interning must stay exact, and oracle-like
/// ones lean on multi-/negative-controlled decompositions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Everything enabled with moderate weights.
    Mixed,
    /// Many qubits, few operations.
    ShallowWide,
    /// Few qubits, long gate streams.
    DeepNarrow,
    /// Gates restricted to the Clifford set (plus identity).
    CliffordHeavy,
    /// Dominated by multi-controlled X/Z with mixed control polarities.
    OracleLike,
    /// A Trotterized random Pauli-string Hamiltonian: structured repeat
    /// blocks of basis changes, CX parity ladders, and small Rz rotations
    /// — the workload the DD-repeating strategy caches and the rotation
    /// stream the complex table must keep canonical.
    Trotterized,
}

impl Profile {
    /// Every profile, in the order the fuzz loop cycles through them.
    pub const ALL: [Profile; 6] = [
        Profile::Mixed,
        Profile::ShallowWide,
        Profile::DeepNarrow,
        Profile::CliffordHeavy,
        Profile::OracleLike,
        Profile::Trotterized,
    ];

    /// CLI name of the profile.
    pub fn label(self) -> &'static str {
        match self {
            Profile::Mixed => "mixed",
            Profile::ShallowWide => "shallow-wide",
            Profile::DeepNarrow => "deep-narrow",
            Profile::CliffordHeavy => "clifford-heavy",
            Profile::OracleLike => "oracle-like",
            Profile::Trotterized => "trotterized",
        }
    }

    /// Parses a CLI name back into a profile.
    pub fn parse(s: &str) -> Option<Profile> {
        Profile::ALL.into_iter().find(|p| p.label() == s)
    }
}

/// Shape parameters for one generated circuit.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Register width.
    pub qubits: u32,
    /// Number of top-level operations to emit.
    pub ops: usize,
    /// Classical register size (0 disables measurement/reset/classical).
    pub cbits: usize,
    /// Shape profile.
    pub profile: Profile,
    /// Whether measurement, reset, and classical control may appear.
    pub allow_nonunitary: bool,
}

impl GenConfig {
    /// Draws circuit dimensions for a profile from the RNG.
    pub fn sample(rng: &mut StdRng, profile: Profile, allow_nonunitary: bool) -> GenConfig {
        let (qubits, ops) = match profile {
            Profile::Mixed => (rng.gen_range(1u32..=6), rng.gen_range(4usize..=40)),
            Profile::ShallowWide => (rng.gen_range(6u32..=9), rng.gen_range(4usize..=16)),
            Profile::DeepNarrow => (rng.gen_range(1u32..=3), rng.gen_range(30usize..=80)),
            Profile::CliffordHeavy => (rng.gen_range(2u32..=6), rng.gen_range(8usize..=40)),
            Profile::OracleLike => (rng.gen_range(3u32..=7), rng.gen_range(6usize..=24)),
            // `ops` doubles as the Trotter step count here; the body is a
            // whole Hamiltonian sweep, so a handful of steps is plenty.
            Profile::Trotterized => (rng.gen_range(2u32..=5), rng.gen_range(1usize..=3)),
        };
        let cbits = if allow_nonunitary {
            (ops / 6).max(1)
        } else {
            0
        };
        GenConfig {
            qubits,
            ops,
            cbits,
            profile,
            allow_nonunitary,
        }
    }
}

/// Relative weights (out of 100) for the non-plain-gate operation kinds;
/// whatever remains goes to uncontrolled standard gates.
struct Weights {
    controlled: u32,
    swap: u32,
    repeat: u32,
    barrier: u32,
    measure: u32,
    reset: u32,
    classical: u32,
}

fn weights(profile: Profile) -> Weights {
    match profile {
        Profile::Mixed => Weights {
            controlled: 25,
            swap: 8,
            repeat: 7,
            barrier: 4,
            measure: 5,
            reset: 3,
            classical: 4,
        },
        Profile::ShallowWide => Weights {
            controlled: 30,
            swap: 10,
            repeat: 3,
            barrier: 4,
            measure: 4,
            reset: 2,
            classical: 3,
        },
        Profile::DeepNarrow => Weights {
            controlled: 20,
            swap: 5,
            repeat: 10,
            barrier: 5,
            measure: 5,
            reset: 4,
            classical: 5,
        },
        Profile::CliffordHeavy => Weights {
            controlled: 30,
            swap: 10,
            repeat: 8,
            barrier: 4,
            measure: 3,
            reset: 2,
            classical: 2,
        },
        Profile::OracleLike => Weights {
            controlled: 45,
            swap: 6,
            repeat: 6,
            barrier: 3,
            measure: 3,
            reset: 2,
            classical: 3,
        },
        // Trotterized circuits are built structurally, never from the
        // weighted gate stream.
        Profile::Trotterized => Weights {
            controlled: 0,
            swap: 0,
            repeat: 0,
            barrier: 0,
            measure: 0,
            reset: 0,
            classical: 0,
        },
    }
}

/// Generates a random Pauli-string Hamiltonian and Trotterizes it. The
/// result is always unitary (one `Repeat` block of exponential windows),
/// so `allow_nonunitary` has no effect on this profile.
fn generate_trotterized(rng: &mut StdRng, cfg: &GenConfig) -> Circuit {
    let n = cfg.qubits.max(2);
    let mut ham = PauliHamiltonian::new(n);
    let terms = rng.gen_range(2usize..=6);
    for _ in 0..terms {
        let support = rng.gen_range(1usize..=(n as usize).min(3));
        let mut pool: Vec<u32> = (0..n).collect();
        let mut sites = Vec::with_capacity(support);
        for i in 0..support {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
            let pauli = match rng.gen_range(0u32..3) {
                0 => Pauli::X,
                1 => Pauli::Y,
                _ => Pauli::Z,
            };
            sites.push((pool[i], pauli));
        }
        let coefficient = rng.gen::<f64>() * 2.0 - 1.0;
        ham.push(PauliString::from_sites(coefficient, n, &sites));
    }
    let time = random_angle(rng) / 2.0;
    let order = if rng.gen_bool(0.5) {
        TrotterOrder::First
    } else {
        TrotterOrder::Second
    };
    trotter_circuit(&ham, time, cfg.ops.max(1) as u32, order)
}

fn random_angle(rng: &mut StdRng) -> f64 {
    (rng.gen::<f64>() * 2.0 - 1.0) * PI
}

/// Draws a single-qubit gate. Clifford mode sticks to the discrete set
/// whose weights the complex table must intern exactly.
fn random_gate(rng: &mut StdRng, clifford: bool) -> StandardGate {
    use StandardGate::*;
    if clifford {
        match rng.gen_range(0u32..8) {
            0 => X,
            1 => Y,
            2 => Z,
            3 => H,
            4 => S,
            5 => Sdg,
            6 => I,
            _ => H,
        }
    } else {
        match rng.gen_range(0u32..18) {
            0 => I,
            1 => X,
            2 => Y,
            3 => Z,
            4 => H,
            5 => S,
            6 => Sdg,
            7 => T,
            8 => Tdg,
            9 => SqrtX,
            10 => SqrtXdg,
            11 => SqrtY,
            12 => SqrtYdg,
            13 => Rx(random_angle(rng)),
            14 => Ry(random_angle(rng)),
            15 => Rz(random_angle(rng)),
            16 => Phase(random_angle(rng)),
            _ => U(random_angle(rng), random_angle(rng), random_angle(rng)),
        }
    }
}

/// Draws `count` distinct qubits other than `exclude` (partial
/// Fisher-Yates over the remaining lines).
fn distinct_qubits(rng: &mut StdRng, n: u32, exclude: u32, count: usize) -> Vec<u32> {
    let mut pool: Vec<u32> = (0..n).filter(|&q| q != exclude).collect();
    let count = count.min(pool.len());
    for i in 0..count {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(count);
    pool
}

fn random_controls(rng: &mut StdRng, cfg: &GenConfig, target: u32) -> Vec<Control> {
    let n = cfg.qubits;
    let max_k = (n as usize - 1).min(3);
    let k = if cfg.profile == Profile::OracleLike {
        // Oracle circuits lean on wide control cones.
        rng.gen_range(1..=max_k.max(1))
    } else {
        match rng.gen_range(0u32..10) {
            0..=5 => 1,
            6..=8 => 2,
            _ => 3,
        }
        .min(max_k.max(1))
    };
    let neg_prob = if cfg.profile == Profile::OracleLike {
        0.5
    } else {
        0.3
    };
    distinct_qubits(rng, n, target, k)
        .into_iter()
        .map(|q| {
            if rng.gen_bool(neg_prob) {
                Control::neg(q)
            } else {
                Control::pos(q)
            }
        })
        .collect()
}

fn random_controlled(rng: &mut StdRng, cfg: &GenConfig) -> Operation {
    let target = rng.gen_range(0..cfg.qubits);
    let controls = random_controls(rng, cfg, target);
    let gate = if cfg.profile == Profile::OracleLike {
        // mcx/mcz dominate oracle bodies.
        match rng.gen_range(0u32..10) {
            0..=6 => StandardGate::X,
            7..=8 => StandardGate::Z,
            _ => random_gate(rng, cfg.profile == Profile::CliffordHeavy),
        }
    } else {
        random_gate(rng, cfg.profile == Profile::CliffordHeavy)
    };
    Operation::Gate(GateOp::controlled(gate, controls, target))
}

fn random_swap(rng: &mut StdRng, cfg: &GenConfig) -> Operation {
    let a = rng.gen_range(0..cfg.qubits);
    let mut b = rng.gen_range(0..cfg.qubits - 1);
    if b >= a {
        b += 1;
    }
    let controls = if cfg.qubits >= 3 && rng.gen_bool(0.3) {
        let q = distinct_qubits(rng, cfg.qubits, a, 2)
            .into_iter()
            .find(|&q| q != b)
            .expect("three distinct qubits exist");
        vec![if rng.gen_bool(0.3) {
            Control::neg(q)
        } else {
            Control::pos(q)
        }]
    } else {
        Vec::new()
    };
    Operation::Swap { a, b, controls }
}

/// A repeated unitary block (2–4 body operations, 2–3 iterations, never
/// nested) — the structure the DD-repeating strategy caches.
fn random_repeat(rng: &mut StdRng, cfg: &GenConfig) -> Operation {
    let body_len = rng.gen_range(2usize..=4);
    let clifford = cfg.profile == Profile::CliffordHeavy;
    let mut body = Vec::with_capacity(body_len);
    for _ in 0..body_len {
        let roll = rng.gen_range(0u32..10);
        if cfg.qubits >= 2 && roll < 4 {
            body.push(random_controlled(rng, cfg));
        } else if cfg.qubits >= 2 && roll < 5 {
            body.push(random_swap(rng, cfg));
        } else {
            let target = rng.gen_range(0..cfg.qubits);
            body.push(Operation::Gate(GateOp::new(
                random_gate(rng, clifford),
                target,
            )));
        }
    }
    Operation::Repeat {
        body,
        times: rng.gen_range(2u32..=3),
    }
}

/// Generates one circuit. Deterministic in `(rng state, cfg)`.
pub fn generate(rng: &mut StdRng, cfg: &GenConfig) -> Circuit {
    if cfg.profile == Profile::Trotterized {
        return generate_trotterized(rng, cfg);
    }
    let mut w = weights(cfg.profile);
    if !cfg.allow_nonunitary || cfg.cbits == 0 {
        w.measure = 0;
        w.reset = 0;
        w.classical = 0;
    }
    if cfg.qubits < 2 {
        w.controlled = 0;
        w.swap = 0;
    }
    let clifford = cfg.profile == Profile::CliffordHeavy;
    let mut circuit = Circuit::with_cbits(cfg.qubits, cfg.cbits);
    for _ in 0..cfg.ops {
        let roll = rng.gen_range(0u32..100);
        let mut edge = w.controlled;
        if roll < edge {
            circuit.push(random_controlled(rng, cfg));
            continue;
        }
        edge += w.swap;
        if roll < edge {
            circuit.push(random_swap(rng, cfg));
            continue;
        }
        edge += w.repeat;
        if roll < edge {
            circuit.push(random_repeat(rng, cfg));
            continue;
        }
        edge += w.barrier;
        if roll < edge {
            circuit.barrier();
            continue;
        }
        edge += w.measure;
        if roll < edge {
            let qubit = rng.gen_range(0..cfg.qubits);
            let cbit = rng.gen_range(0..cfg.cbits);
            circuit.measure(qubit, cbit);
            continue;
        }
        edge += w.reset;
        if roll < edge {
            let qubit = rng.gen_range(0..cfg.qubits);
            circuit.reset(qubit);
            continue;
        }
        edge += w.classical;
        if roll < edge {
            let target = rng.gen_range(0..cfg.qubits);
            let cbit = rng.gen_range(0..cfg.cbits);
            let value = rng.gen_bool(0.5);
            circuit.classical_gate(random_gate(rng, clifford), target, cbit, value);
            continue;
        }
        let target = rng.gen_range(0..cfg.qubits);
        circuit.gate(random_gate(rng, clifford), target);
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsim_dd::ControlPolarity;
    use rand::SeedableRng;

    fn gen_with_seed(seed: u64, profile: Profile, nonunitary: bool) -> Circuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig::sample(&mut rng, profile, nonunitary);
        generate(&mut rng, &cfg)
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for profile in Profile::ALL {
            let a = gen_with_seed(42, profile, true);
            let b = gen_with_seed(42, profile, true);
            assert_eq!(
                a,
                b,
                "profile {} must be seed-deterministic",
                profile.label()
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = gen_with_seed(1, Profile::Mixed, true);
        let b = gen_with_seed(2, Profile::Mixed, true);
        assert_ne!(a, b);
    }

    #[test]
    fn unitary_only_emits_no_nonunitary_ops() {
        for seed in 0..20 {
            let c = gen_with_seed(seed, Profile::Mixed, false);
            assert!(!c.has_nonunitary(), "seed {seed} leaked a non-unitary op");
            assert_eq!(c.cbits(), 0);
        }
    }

    #[test]
    fn surface_coverage_across_seeds() {
        // Across a modest seed sweep the generator must exercise every
        // operation kind at least once — this is the "full surface" claim.
        let mut saw_controlled = false;
        let mut saw_negative = false;
        let mut saw_multi = false;
        let mut saw_swap = false;
        let mut saw_repeat = false;
        let mut saw_measure = false;
        let mut saw_reset = false;
        let mut saw_classical = false;
        let mut saw_barrier = false;
        let mut saw_parameterized = false;
        for seed in 0..60 {
            for profile in Profile::ALL {
                let c = gen_with_seed(seed, profile, true);
                for op in c.flattened().ops() {
                    match op {
                        Operation::Gate(g) => {
                            if !g.controls.is_empty() {
                                saw_controlled = true;
                            }
                            if g.controls.len() >= 2 {
                                saw_multi = true;
                            }
                            if g.controls
                                .iter()
                                .any(|c| c.polarity == ControlPolarity::Negative)
                            {
                                saw_negative = true;
                            }
                            if matches!(
                                g.gate,
                                StandardGate::Rx(_)
                                    | StandardGate::Ry(_)
                                    | StandardGate::Rz(_)
                                    | StandardGate::Phase(_)
                                    | StandardGate::U(..)
                            ) {
                                saw_parameterized = true;
                            }
                        }
                        Operation::Swap { .. } => saw_swap = true,
                        Operation::Measure { .. } => saw_measure = true,
                        Operation::Reset { .. } => saw_reset = true,
                        Operation::Classical { .. } => saw_classical = true,
                        Operation::Barrier => saw_barrier = true,
                        Operation::Repeat { .. } => unreachable!("flattened"),
                    }
                }
                if c.ops()
                    .iter()
                    .any(|op| matches!(op, Operation::Repeat { .. }))
                {
                    saw_repeat = true;
                }
            }
        }
        assert!(saw_controlled, "no controlled gate generated");
        assert!(saw_negative, "no negative control generated");
        assert!(saw_multi, "no multi-controlled gate generated");
        assert!(saw_swap, "no swap generated");
        assert!(saw_repeat, "no repeat block generated");
        assert!(saw_measure, "no measurement generated");
        assert!(saw_reset, "no reset generated");
        assert!(saw_classical, "no classical gate generated");
        assert!(saw_barrier, "no barrier generated");
        assert!(saw_parameterized, "no parameterized gate generated");
    }
}

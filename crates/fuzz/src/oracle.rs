//! Multi-oracle cross-checking.
//!
//! Three independent oracles gang up on each generated circuit:
//!
//! 1. **Dense reference** — [`dense_run`] replays the circuit on a flat
//!    amplitude array, sharing the engine's measurement-outcome stream
//!    (same seed, one uniform draw per measure/reset, outcome =
//!    `draw < P(1)`), so even non-unitary circuits compare exactly.
//! 2. **Config lattice** — [`config_lattice`] enumerates engine
//!    configurations across every combining strategy, caches on/off,
//!    identity skipping on/off, shrunken table capacities, an aggressive
//!    GC threshold, a `par` axis running the fork-join kernels on a
//!    worker pool, and a `reorder` axis running sifting-based dynamic
//!    variable reordering. All points must agree with the dense reference
//!    amplitude-for-amplitude; the lattice is what turns a single
//!    differential test into a schedule/caching/GC/parallelism
//!    cross-check. The points themselves run on a shared work-stealing
//!    pool, with failures reported in deterministic lattice order.
//! 3. **Equivalence** — for unitary circuits the full unitary DD is built
//!    and checked against structural identities (flattening invariance and
//!    `C·C⁻¹ ≈ I`), catching matrix-construction defects that a single
//!    state-vector comparison can miss.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use ddsim_circuit::{lower_swap, Circuit, Operation};
use ddsim_core::density::simulate_density;
use ddsim_core::equivalence::{circuit_unitary, mat_equivalence};
use ddsim_core::noise::{run_noisy_ensemble_with, DepolarizingNoise};
use ddsim_core::{
    DdConfig, FaultKind, ReorderMode, SimError, SimOptions, Simulator, Strategy, ThreadPool,
};
use ddsim_dd::reference::DenseVector;
use ddsim_dd::{DdManager, MatEdge};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The pool the lattice points run on, shared across every circuit the
/// harness checks (spawning threads per circuit would dominate small
/// probes). Sized to the machine; a single-core host degenerates to the
/// sequential sweep.
fn lattice_pool() -> &'static Arc<ThreadPool> {
    static POOL: OnceLock<Arc<ThreadPool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let lanes = std::thread::available_parallelism().map_or(1, |p| p.get());
        Arc::new(ThreadPool::new(lanes))
    })
}

/// Maximum width for the dense amplitude sweep. The generator never
/// exceeds this, but replayed circuits might.
const MAX_DENSE_QUBITS: u32 = 14;

/// Maximum width for building full unitary DDs in the equivalence oracle.
const MAX_EQUIV_QUBITS: u32 = 7;

/// Maximum width for the exact density-matrix oracles (ρ is a 2n-level
/// matrix DD and the diagonal sweep walks 2ⁿ entries).
const MAX_DENSITY_QUBITS: u32 = 6;

/// One engine configuration in the cross-check lattice.
pub struct LatticePoint {
    /// Combining strategy.
    pub strategy: Strategy,
    /// DD-manager configuration.
    pub dd_config: DdConfig,
    /// Wall-clock deadline for the run (budget-axis points only).
    pub deadline: Option<Duration>,
    /// Worker threads for the engine (`par` axis; 1 = sequential).
    pub threads: u32,
    /// Dynamic variable reordering policy (`reorder` axis).
    pub reorder: ReorderMode,
    /// Human-readable name used in failure reports.
    pub label: String,
}

impl LatticePoint {
    /// Whether this point runs under a resource budget. Governed points
    /// are allowed to end in a *clean* governor error ([`SimError`]
    /// budget/deadline variants); everything else must succeed and agree
    /// with the dense reference.
    pub fn governed(&self) -> bool {
        self.dd_config.max_live_nodes.is_some()
            || self.dd_config.max_table_bytes.is_some()
            || self.deadline.is_some()
    }
}

/// Settings for [`check_circuit`].
#[derive(Clone, Copy, Debug)]
pub struct CheckSettings {
    /// Seed shared by the engine and the dense reference.
    pub seed: u64,
    /// Maximum tolerated per-amplitude deviation.
    pub tolerance: f64,
    /// Use the full lattice (every strategy × every DD variant) instead of
    /// the quick subset.
    pub full_lattice: bool,
    /// Fault injected into every *engine* configuration (never the dense
    /// reference) — [`FaultKind::None`] outside `--self-check`.
    pub fault: FaultKind,
}

impl Default for CheckSettings {
    fn default() -> Self {
        CheckSettings {
            seed: 0,
            tolerance: 1e-6,
            full_lattice: false,
            fault: FaultKind::None,
        }
    }
}

/// One oracle disagreement.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Which lattice point (or pseudo-oracle) disagreed.
    pub lattice_label: String,
    /// What went wrong, with enough numbers to eyeball.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.lattice_label, self.detail)
    }
}

fn dd_variants(full: bool) -> Vec<(&'static str, DdConfig)> {
    let base = DdConfig::default();
    let mut variants = vec![
        ("dd=default", base),
        (
            "dd=no-cache",
            DdConfig {
                cache_enabled: false,
                ..base
            },
        ),
        (
            "dd=no-idskip",
            DdConfig {
                identity_skip: false,
                ..base
            },
        ),
        (
            "dd=tiny-gc",
            DdConfig {
                gc_threshold: 64,
                ..base
            },
        ),
        // A budget lax enough to never trip: the run takes the *governed*
        // kernel instantiation end to end but must still agree with the
        // dense reference amplitude-for-amplitude, pinning down that the
        // governed and ungoverned monomorphizations build identical
        // diagrams (the budget axis below only checks clean-error exits).
        (
            "dd=governed-lax",
            DdConfig {
                max_live_nodes: Some(1 << 30),
                ..base
            },
        ),
        // The scalar leaf kernels must be bitwise-identical to the SIMD
        // ones, so this point must agree with the dense reference exactly
        // as the default point does — and any divergence between the two
        // code paths shows up as a lattice disagreement.
        (
            "dd=scalar",
            DdConfig {
                simd: false,
                ..base
            },
        ),
    ];
    if full {
        variants.extend([
            (
                "dd=no-cache-no-idskip",
                DdConfig {
                    cache_enabled: false,
                    identity_skip: false,
                    ..base
                },
            ),
            (
                "dd=tiny-tables",
                DdConfig {
                    compute_table_bits: 4,
                    unique_table_bits: 3,
                    ..base
                },
            ),
            (
                "dd=tiny-tables-tiny-gc",
                DdConfig {
                    compute_table_bits: 4,
                    unique_table_bits: 3,
                    gc_threshold: 64,
                    ..base
                },
            ),
            // Scalar kernels under table pressure: rebuilds and re-probes
            // of the complex table must land on the same interned ids.
            (
                "dd=scalar-tiny-tables",
                DdConfig {
                    simd: false,
                    compute_table_bits: 4,
                    unique_table_bits: 3,
                    ..base
                },
            ),
        ]);
    }
    variants
}

/// The budget axis: configurations whose resource governor is armed
/// aggressively enough to trip on realistic fuzz circuits. Each point must
/// end in `Ok` (then agree with the dense reference) or a clean typed
/// governor error — never a panic or an inconsistent manager.
fn budget_variants(full: bool) -> Vec<(&'static str, DdConfig, Option<Duration>)> {
    let base = DdConfig::default();
    let mut variants = vec![(
        "budget=nodes256",
        DdConfig {
            max_live_nodes: Some(256),
            ..base
        },
        None,
    )];
    if full {
        variants.extend([
            (
                "budget=bytes64k",
                DdConfig {
                    compute_table_bits: 4,
                    unique_table_bits: 4,
                    max_table_bytes: Some(64 * 1024),
                    ..base
                },
                None,
            ),
            ("budget=deadline1ms", base, Some(Duration::from_millis(1))),
        ]);
    }
    variants
}

/// The `par` axis: points running the engine with a worker pool, so the
/// fork-join kernels and isolated-worker result merging are differentially
/// fuzzed against the sequential recursion (and the dense reference) on
/// every generated circuit. Thread counts stay small and odd-shaped on
/// purpose: 3 lanes leaves quadrant splits uneven, and 2 lanes with an
/// aggressive GC threshold imports worker results under collection
/// pressure.
fn par_variants(full: bool) -> Vec<(&'static str, DdConfig, u32)> {
    let base = DdConfig::default();
    let mut variants = vec![("par=threads3", base, 3)];
    if full {
        variants.push((
            "par=threads2-tiny-gc",
            DdConfig {
                gc_threshold: 64,
                ..base
            },
            2,
        ));
    }
    variants
}

/// The `reorder` axis: points running with sifting-based dynamic variable
/// reordering. Every amplitude and classical bit must still match the
/// dense reference exactly — amplitude queries translate through the live
/// variable order, so a reordered diagram that disagrees means a swap or
/// an order-translating accessor is broken. The engine guarantees at
/// least one sifting pass per run in this mode (end-of-run pass when the
/// growth trigger never fired), so the axis genuinely exercises
/// `swap_levels` on every generated circuit. The tiny-GC variant forces
/// collections between sifting passes, cross-checking that reordered
/// diagrams survive the mark phase.
fn reorder_variants(full: bool) -> Vec<(&'static str, DdConfig)> {
    let base = DdConfig::default();
    let mut variants = vec![("reorder=sifting", base)];
    if full {
        variants.push((
            "reorder=sifting-tiny-gc",
            DdConfig {
                gc_threshold: 64,
                ..base
            },
        ));
    }
    variants
}

/// The engine-configuration lattice: every combining strategy crossed with
/// the DD-manager variants plus the budget, `par`, and `reorder` axes
/// (quick: 5 × (6 + 1 + 1 + 1) = 45 points; full:
/// 5 × (10 + 3 + 2 + 2) = 85).
pub fn config_lattice(full: bool) -> Vec<LatticePoint> {
    let strategies = [
        Strategy::Sequential,
        Strategy::KOperations { k: 4 },
        Strategy::MaxSize { s_max: 32 },
        Strategy::DdRepeating { k: 4 },
        Strategy::adaptive(),
    ];
    let mut points = Vec::new();
    for strategy in strategies {
        for (name, dd_config) in dd_variants(full) {
            points.push(LatticePoint {
                strategy,
                dd_config,
                deadline: None,
                threads: 1,
                reorder: ReorderMode::None,
                label: format!("{} {}", strategy.label(), name),
            });
        }
        for (name, dd_config, deadline) in budget_variants(full) {
            points.push(LatticePoint {
                strategy,
                dd_config,
                deadline,
                threads: 1,
                reorder: ReorderMode::None,
                label: format!("{} {}", strategy.label(), name),
            });
        }
        for (name, dd_config, threads) in par_variants(full) {
            points.push(LatticePoint {
                strategy,
                dd_config,
                deadline: None,
                threads,
                reorder: ReorderMode::None,
                label: format!("{} {}", strategy.label(), name),
            });
        }
        for (name, dd_config) in reorder_variants(full) {
            points.push(LatticePoint {
                strategy,
                dd_config,
                deadline: None,
                threads: 1,
                reorder: ReorderMode::Sifting,
                label: format!("{} {}", strategy.label(), name),
            });
        }
    }
    points
}

/// Replays a circuit on the dense reference backend, mirroring the
/// engine's measurement-outcome stream: the same `StdRng` seed, exactly
/// one uniform draw per measure and per reset (in operation order), the
/// same `draw < P(1)` outcome rule, and classical gates firing on the
/// recorded bits.
pub fn dense_run(circuit: &Circuit, seed: u64) -> (DenseVector, Vec<bool>) {
    let n = circuit.qubits();
    assert!(
        n <= MAX_DENSE_QUBITS,
        "dense reference capped at {MAX_DENSE_QUBITS} qubits"
    );
    let mut v = DenseVector::basis(n, 0);
    let mut classical = vec![false; circuit.cbits()];
    let mut rng = StdRng::seed_from_u64(seed);
    for op in circuit.flattened().ops() {
        match op {
            Operation::Gate(g) => {
                v.apply_controlled(g.gate.matrix(), g.target, &g.controls);
            }
            Operation::Swap { a, b, controls } => {
                for g in lower_swap(*a, *b, controls) {
                    v.apply_controlled(g.gate.matrix(), g.target, &g.controls);
                }
            }
            Operation::Measure { qubit, cbit } => {
                let draw = rng.gen::<f64>();
                classical[*cbit] = v.measure(*qubit, draw);
            }
            Operation::Reset { qubit } => {
                let draw = rng.gen::<f64>();
                v.reset(*qubit, draw);
            }
            Operation::Classical { gate, cbit, value } => {
                if classical[*cbit] == *value {
                    v.apply_controlled(gate.gate.matrix(), gate.target, &gate.controls);
                }
            }
            Operation::Barrier => {}
            Operation::Repeat { .. } => unreachable!("flattened() removes repeats"),
        }
    }
    (v, classical)
}

/// Serializes panic-hook suppression: the hook is process-global, so
/// concurrent probes (e.g. parallel tests) must not race on swapping it.
static PANIC_HOOK_LOCK: Mutex<()> = Mutex::new(());

fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked".to_string()
    }
}

/// [`catch_unwind`] with payload formatting but **no** hook manipulation —
/// for call sites that already hold the quiet hook ([`probe`], or the
/// pooled lattice sweep in [`check_circuit`], which quiets the hook once
/// around the whole batch so points don't serialize on the hook lock).
fn quiet_catch<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(payload_to_string)
}

fn probe<R>(f: impl FnOnce() -> R) -> Result<R, String> {
    let guard = PANIC_HOOK_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let saved = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = quiet_catch(f);
    std::panic::set_hook(saved);
    drop(guard);
    result
}

fn check_point(
    circuit: &Circuit,
    point: &LatticePoint,
    settings: &CheckSettings,
    reference: &DenseVector,
    reference_bits: &[bool],
) -> Option<Failure> {
    let options = SimOptions {
        strategy: point.strategy,
        seed: settings.seed,
        collect_trace: false,
        dd_config: DdConfig {
            fault: settings.fault,
            ..point.dd_config
        },
        deadline: point.deadline,
        threads: point.threads,
        reorder: point.reorder,
    };
    let run = quiet_catch(|| {
        let mut sim = Simulator::with_options(circuit.qubits(), options);
        if let Err(e) = sim.run(circuit) {
            // Even after a governor unwind the simulator must stay
            // consistent and queryable — exercise it before reporting.
            let _ = sim.state_nodes();
            let _ = sim.amplitude(0);
            return Err(e);
        }
        let dim = 1u64 << circuit.qubits();
        let amplitudes: Vec<_> = (0..dim).map(|i| sim.amplitude(i)).collect();
        Ok::<_, SimError>((amplitudes, sim.classical_bits().to_vec()))
    });
    let (amplitudes, bits) = match run {
        Ok(Ok(out)) => out,
        Ok(Err(
            e
            @ (SimError::BudgetExceeded { .. } | SimError::DeadlineExceeded | SimError::Cancelled),
        )) if point.governed() => {
            // A governed point ending in a clean typed governor error is a
            // pass: the whole claim under test is "Ok or clean error,
            // never a panic or inconsistent state".
            let _ = e;
            return None;
        }
        Ok(Err(e)) => {
            return Some(Failure {
                lattice_label: point.label.clone(),
                detail: format!("engine error: {e}"),
            })
        }
        Err(panic) => {
            return Some(Failure {
                lattice_label: point.label.clone(),
                detail: panic,
            })
        }
    };
    for (cbit, &reference_bit) in reference_bits.iter().enumerate() {
        let engine = bits.get(cbit).copied().unwrap_or(false);
        if engine != reference_bit {
            return Some(Failure {
                lattice_label: point.label.clone(),
                detail: format!("classical bit {cbit}: engine={engine} dense={reference_bit}"),
            });
        }
    }
    for (index, (&expected, &actual)) in reference
        .amplitudes()
        .iter()
        .zip(amplitudes.iter())
        .enumerate()
    {
        let deviation = (actual - expected).abs();
        // NaN deviations (e.g. from a skipped renormalization dividing by
        // zero) must register as disagreement, hence the explicit check.
        if deviation.is_nan() || deviation > settings.tolerance {
            return Some(Failure {
                lattice_label: point.label.clone(),
                detail: format!(
                    "amplitude {index:#b}: engine={actual} dense={expected} (|Δ|={deviation:.3e})"
                ),
            });
        }
    }
    None
}

/// Numeric matrix equivalence up to global phase: the backstop behind
/// [`mat_equivalence`]'s pointer comparison. Canonical-DD equality
/// requires edge weights to intern to identical table entries, but two
/// mathematically equal products evaluated in different association
/// orders (structured repeat vs. flattened stream) can drift by an ulp
/// across a tolerance bucket and land on structurally different nodes.
/// Before the oracle declares such a pair a failure it compares the dense
/// matrices entry-for-entry at the differential-testing tolerance.
fn mats_numerically_equivalent(dd: &DdManager, a: MatEdge, b: MatEdge, tol: f64) -> bool {
    let da = dd.mat_to_dense(a);
    let db = dd.mat_to_dense(b);
    if da.len() != db.len() {
        return false;
    }
    // Anchor the global phase on b's largest-magnitude entry.
    let (mut bi, mut bj, mut best) = (0usize, 0usize, -1.0f64);
    for (i, row) in db.iter().enumerate() {
        for (j, entry) in row.iter().enumerate() {
            if entry.norm_sqr() > best {
                best = entry.norm_sqr();
                (bi, bj) = (i, j);
            }
        }
    }
    if best <= tol * tol {
        return da
            .iter()
            .flatten()
            .all(|entry| entry.norm_sqr() <= tol * tol);
    }
    let ratio = da[bi][bj] / db[bi][bj];
    if (ratio.abs() - 1.0).abs() > tol {
        return false;
    }
    da.iter().zip(db.iter()).all(|(ra, rb)| {
        ra.iter()
            .zip(rb.iter())
            .all(|(&ea, &eb)| (ea - ratio * eb).abs() <= tol)
    })
}

/// Structural equivalence checks on the full unitary DD (unitary circuits
/// up to [`MAX_EQUIV_QUBITS`] wide only): the flattened circuit must build
/// the *same* unitary, and `C⁻¹·C` must be the identity up to global
/// phase. The DD manager carries the injected fault so matrix-construction
/// defects surface here even when state-vector runs dodge them.
fn check_equivalence_oracle(circuit: &Circuit, settings: &CheckSettings) -> Option<Failure> {
    if circuit.has_nonunitary() || circuit.qubits() > MAX_EQUIV_QUBITS {
        return None;
    }
    let label = "equivalence".to_string();
    let fault = settings.fault;
    let result = probe(|| {
        let mut dd = DdManager::with_config(DdConfig {
            fault,
            ..DdConfig::default()
        });
        let u = circuit_unitary(&mut dd, circuit).map_err(|e| format!("{e:?}"))?;
        dd.inc_ref_mat(u);
        let flat = circuit_unitary(&mut dd, &circuit.flattened()).map_err(|e| format!("{e:?}"))?;
        dd.inc_ref_mat(flat);
        let flat_verdict = mat_equivalence(&mut dd, u, flat);
        if !flat_verdict.is_equivalent()
            && !mats_numerically_equivalent(&dd, u, flat, settings.tolerance)
        {
            return Ok::<_, String>(Some(
                "flattened circuit builds a different unitary".to_string(),
            ));
        }
        let mut round_trip = circuit.clone();
        round_trip.append(&circuit.inverse().expect("unitary circuit inverts"));
        let rt = circuit_unitary(&mut dd, &round_trip).map_err(|e| format!("{e:?}"))?;
        dd.inc_ref_mat(rt);
        let identity = dd.mat_identity(circuit.qubits());
        if !mat_equivalence(&mut dd, rt, identity).is_equivalent()
            && !mats_numerically_equivalent(&dd, rt, identity, settings.tolerance)
        {
            return Ok(Some("C⁻¹·C is not the identity".to_string()));
        }
        Ok(None)
    });
    match result {
        Ok(Ok(None)) => None,
        Ok(Ok(Some(detail))) => Some(Failure {
            lattice_label: label,
            detail,
        }),
        Ok(Err(e)) => Some(Failure {
            lattice_label: label,
            detail: format!("equivalence oracle error: {e}"),
        }),
        Err(panic) => Some(Failure {
            lattice_label: label,
            detail: panic,
        }),
    }
}

/// The noiseless density pseudo-oracle: at `p = 0` the density matrix is
/// the pure-state projector, so its diagonal must reproduce the dense
/// reference probabilities entry-for-entry. This drags the Kraus/conjugation
/// path (matrix-matrix products, conjugate transpose, matrix addition)
/// through every ordinary fuzz iteration on fully unitary circuits, where
/// the two backends share no measurement stream to diverge on.
fn check_density_p0_oracle(
    circuit: &Circuit,
    settings: &CheckSettings,
    reference: &DenseVector,
) -> Option<Failure> {
    if circuit.has_nonunitary() || circuit.qubits() > MAX_DENSITY_QUBITS {
        return None;
    }
    let label = "density-p0".to_string();
    let fault = settings.fault;
    let options = SimOptions {
        dd_config: DdConfig {
            fault,
            ..DdConfig::default()
        },
        ..SimOptions::default()
    };
    let result = probe(|| {
        simulate_density(circuit, DepolarizingNoise::new(0.0), options)
            .map(|(sim, _)| sim.diagonal())
    });
    let diagonal = match result {
        Ok(Ok(d)) => d,
        Ok(Err(e)) => {
            return Some(Failure {
                lattice_label: label,
                detail: format!("density engine error: {e}"),
            })
        }
        Err(panic) => {
            return Some(Failure {
                lattice_label: label,
                detail: panic,
            })
        }
    };
    for (index, (&amplitude, &p)) in reference
        .amplitudes()
        .iter()
        .zip(diagonal.iter())
        .enumerate()
    {
        let expected = amplitude.norm_sqr();
        let deviation = (p - expected).abs();
        if deviation.is_nan() || deviation > settings.tolerance {
            return Some(Failure {
                lattice_label: label,
                detail: format!(
                    "diagonal {index:#b}: density={p} dense={expected} (|Δ|={deviation:.3e})"
                ),
            });
        }
    }
    None
}

/// Trajectory count used by [`check_noisy_circuit`]'s statistical
/// cross-check. Small enough to keep shrinking cheap; the deterministic
/// trace oracle does the heavy lifting.
const NOISY_TRAJECTORIES: u32 = 256;

/// Depolarizing probability injected by [`check_noisy_circuit`].
const NOISY_P: f64 = 0.08;

/// Oracles for the exact density-matrix noise path. The injected fault
/// goes into the *density* run only; the trajectory ensemble is the honest
/// statistical reference (it shares no code with the Kraus path).
///
/// 1. **Exact vs. trajectories** — per-qubit marginals from the exact
///    diagonal must bound the Monte-Carlo estimates within five standard
///    errors (plus slack for the finite sample).
/// 2. **Trace** — a depolarizing channel is trace-preserving, so
///    `tr ρ = 1` to near machine precision. Dropping a Kraus term (the
///    [`FaultKind::KrausDropsChannel`] injection) loses exactly `p/3` of
///    the trace per application and trips this deterministically.
///
/// Circuits wider than [`MAX_DENSITY_QUBITS`] or carrying classical
/// control (which the exact path rejects by design) check out vacuously.
pub fn check_noisy_circuit(circuit: &Circuit, settings: &CheckSettings) -> Vec<Failure> {
    if circuit.qubits() > MAX_DENSITY_QUBITS
        || circuit
            .flattened()
            .ops()
            .iter()
            .any(|op| matches!(op, Operation::Classical { .. }))
    {
        return Vec::new();
    }
    let noise = DepolarizingNoise::new(NOISY_P);
    let options = SimOptions {
        seed: settings.seed,
        dd_config: DdConfig {
            fault: settings.fault,
            ..DdConfig::default()
        },
        ..SimOptions::default()
    };
    let exact = probe(|| {
        simulate_density(circuit, noise, options).map(|(sim, _)| (sim.trace(), sim.diagonal()))
    });
    let (trace, diagonal) = match exact {
        Ok(Ok(out)) => out,
        Ok(Err(e)) => {
            return vec![Failure {
                lattice_label: "density-exact".to_string(),
                detail: format!("density engine error: {e}"),
            }]
        }
        Err(panic) => {
            return vec![Failure {
                lattice_label: "density-exact".to_string(),
                detail: panic,
            }]
        }
    };
    let mut failures = Vec::new();
    let trace_deviation = (trace - 1.0).abs();
    if trace_deviation.is_nan() || trace_deviation > 1e-6 {
        failures.push(Failure {
            lattice_label: "density-trace".to_string(),
            detail: format!("tr ρ = {trace} (must be 1 ± 1e-6)"),
        });
    }
    // The honest trajectory reference: default engine config, no fault.
    let template = SimOptions {
        seed: settings.seed,
        threads: 1,
        ..SimOptions::default()
    };
    let ensemble =
        probe(|| run_noisy_ensemble_with(circuit, noise, NOISY_TRAJECTORIES, &template, None));
    let ensemble = match ensemble {
        Ok(Ok(e)) => e,
        Ok(Err(e)) => {
            failures.push(Failure {
                lattice_label: "density-vs-trajectories".to_string(),
                detail: format!("trajectory reference error: {e}"),
            });
            return failures;
        }
        Err(panic) => {
            failures.push(Failure {
                lattice_label: "density-vs-trajectories".to_string(),
                detail: panic,
            });
            return failures;
        }
    };
    let n = circuit.qubits();
    let shots = f64::from(NOISY_TRAJECTORIES);
    for q in 0..n {
        let exact_p1: f64 = diagonal
            .iter()
            .enumerate()
            .filter(|(idx, _)| (*idx >> q) & 1 == 1)
            .map(|(_, p)| p)
            .sum();
        let ones: u64 = ensemble
            .counts
            .iter()
            .filter(|(outcome, _)| (**outcome >> q) & 1 == 1)
            .map(|(_, &c)| u64::from(c))
            .sum();
        let estimate = ones as f64 / shots;
        let sigma = (exact_p1.clamp(0.0, 1.0) * (1.0 - exact_p1.clamp(0.0, 1.0)) / shots).sqrt();
        let bound = 5.0 * sigma + 0.03;
        let deviation = (exact_p1 - estimate).abs();
        if deviation.is_nan() || deviation > bound {
            failures.push(Failure {
                lattice_label: "density-vs-trajectories".to_string(),
                detail: format!(
                    "qubit {q}: exact P(1)={exact_p1:.6} trajectory estimate={estimate:.6} \
                     (|Δ|={deviation:.4} > bound {bound:.4} at {NOISY_TRAJECTORIES} trajectories)"
                ),
            });
        }
    }
    failures
}

/// Runs every oracle against one circuit and returns all disagreements
/// (empty = the circuit checks out everywhere).
pub fn check_circuit(circuit: &Circuit, settings: &CheckSettings) -> Vec<Failure> {
    if circuit.qubits() > MAX_DENSE_QUBITS {
        return vec![Failure {
            lattice_label: "harness".to_string(),
            detail: format!(
                "circuit is {} qubits wide; the dense oracle is capped at {MAX_DENSE_QUBITS}",
                circuit.qubits()
            ),
        }];
    }
    let reference = probe(|| dense_run(circuit, settings.seed));
    let (reference, reference_bits) = match reference {
        Ok(out) => out,
        Err(panic) => {
            return vec![Failure {
                lattice_label: "dense-reference".to_string(),
                detail: panic,
            }]
        }
    };
    let points = config_lattice(settings.full_lattice);
    let slots: Vec<Mutex<Option<Failure>>> = points.iter().map(|_| Mutex::new(None)).collect();
    {
        // Quiet the process-global panic hook once for the whole pooled
        // sweep; per-point swapping (what `probe` does) would serialize
        // the lattice on the hook lock.
        let guard = PANIC_HOOK_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let saved = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let sweep = catch_unwind(AssertUnwindSafe(|| {
            lattice_pool().par_for_each_index(points.len(), |i| {
                *slots[i].lock().expect("lattice slot poisoned") =
                    check_point(circuit, &points[i], settings, &reference, &reference_bits);
            });
        }));
        std::panic::set_hook(saved);
        drop(guard);
        if let Err(p) = sweep {
            resume_unwind(p);
        }
    }
    // Slots are harvested in lattice order, so failure reports stay
    // deterministic no matter how the pool interleaved the points.
    let mut failures: Vec<Failure> = slots
        .into_iter()
        .filter_map(|slot| slot.into_inner().expect("lattice slot poisoned"))
        .collect();
    if let Some(f) = check_equivalence_oracle(circuit, settings) {
        failures.push(f);
    }
    if let Some(f) = check_density_p0_oracle(circuit, settings, &reference) {
        failures.push(f);
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_circuit_passes_every_oracle() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let failures = check_circuit(&c, &CheckSettings::default());
        assert!(failures.is_empty(), "unexpected failures: {failures:?}");
    }

    #[test]
    fn teleportation_style_feedback_passes() {
        // Mid-circuit measurement + classically controlled corrections:
        // exercises the shared outcome stream on both backends.
        let mut c = Circuit::with_cbits(3, 2);
        c.h(1).cx(1, 2); // entangle q1,q2
        c.rx(0.7, 0); // payload on q0
        c.cx(0, 1).h(0);
        c.measure(0, 0).measure(1, 1);
        c.classical_gate(ddsim_circuit::StandardGate::X, 2, 1, true);
        c.classical_gate(ddsim_circuit::StandardGate::Z, 2, 0, true);
        for seed in [0u64, 1, 7, 1234] {
            let failures = check_circuit(
                &c,
                &CheckSettings {
                    seed,
                    ..CheckSettings::default()
                },
            );
            assert!(failures.is_empty(), "seed {seed}: {failures:?}");
        }
    }

    #[test]
    fn dense_run_matches_engine_bits() {
        let mut c = Circuit::with_cbits(2, 2);
        c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
        for seed in 0..8u64 {
            let (_, dense_bits) = dense_run(&c, seed);
            let mut sim = Simulator::with_options(
                2,
                SimOptions {
                    seed,
                    ..SimOptions::default()
                },
            );
            sim.run(&c).unwrap();
            assert_eq!(sim.classical_bits(), &dense_bits[..], "seed {seed}");
            // A Bell measurement must be perfectly correlated.
            assert_eq!(dense_bits[0], dense_bits[1]);
        }
    }

    #[test]
    fn lattice_sizes() {
        assert_eq!(config_lattice(false).len(), 45);
        assert_eq!(config_lattice(true).len(), 85);
    }

    #[test]
    fn lattice_carries_a_par_axis() {
        let threaded: Vec<_> = config_lattice(true)
            .into_iter()
            .filter(|p| p.threads > 1)
            .collect();
        assert_eq!(threaded.len(), 10, "2 par variants × 5 strategies");
        assert!(threaded.iter().all(|p| !p.governed()));
    }

    #[test]
    fn lattice_carries_a_reorder_axis() {
        let quick: Vec<_> = config_lattice(false)
            .into_iter()
            .filter(|p| p.reorder == ReorderMode::Sifting)
            .collect();
        assert_eq!(quick.len(), 5, "1 quick reorder variant × 5 strategies");
        let full: Vec<_> = config_lattice(true)
            .into_iter()
            .filter(|p| p.reorder == ReorderMode::Sifting)
            .collect();
        assert_eq!(full.len(), 10, "2 full reorder variants × 5 strategies");
        assert!(full.iter().all(|p| !p.governed() && p.threads == 1));
    }

    #[test]
    fn budget_points_end_cleanly_on_heavy_circuits() {
        // A QFT-like all-to-all circuit at 10 qubits blows straight through
        // a 256-live-node budget; the governed lattice points must swallow
        // that as a clean typed error (or degrade and succeed) while the
        // ungoverned points still agree with the dense oracle.
        let n = 10u32;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
            for p in (q + 1)..n {
                c.controlled_gate(
                    ddsim_circuit::StandardGate::Phase(
                        std::f64::consts::PI / f64::from(1u32 << (p - q)),
                    ),
                    vec![ddsim_dd::Control::pos(p)],
                    q,
                );
            }
        }
        let failures = check_circuit(
            &c,
            &CheckSettings {
                full_lattice: true,
                ..CheckSettings::default()
            },
        );
        assert!(failures.is_empty(), "unexpected failures: {failures:?}");
    }

    #[test]
    fn noisy_oracle_passes_on_a_healthy_engine() {
        let mut c = Circuit::with_cbits(3, 1);
        c.h(0).cx(0, 1).rz(0.4, 2).measure(2, 0);
        let failures = check_noisy_circuit(&c, &CheckSettings::default());
        assert!(failures.is_empty(), "unexpected failures: {failures:?}");
    }

    #[test]
    fn noisy_oracle_flags_the_dropped_kraus_term() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let failures = check_noisy_circuit(
            &c,
            &CheckSettings {
                fault: FaultKind::KrausDropsChannel,
                ..CheckSettings::default()
            },
        );
        assert!(
            failures.iter().any(|f| f.lattice_label == "density-trace"),
            "trace oracle missed the dropped channel: {failures:?}"
        );
    }

    #[test]
    fn noisy_oracle_skips_classically_controlled_circuits() {
        // The exact path rejects classical feedback by design, so the
        // battery must check out vacuously instead of reporting the typed
        // rejection as a disagreement.
        let mut c = Circuit::with_cbits(2, 1);
        c.h(0).measure(0, 0);
        c.classical_gate(ddsim_circuit::StandardGate::X, 1, 0, true);
        assert!(check_noisy_circuit(&c, &CheckSettings::default()).is_empty());
    }

    #[test]
    fn trotterized_circuits_pass_every_oracle() {
        use crate::generator::{generate, GenConfig, Profile};
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = GenConfig::sample(&mut rng, Profile::Trotterized, false);
        let circuit = generate(&mut rng, &cfg);
        assert!(!circuit.has_nonunitary());
        let failures = check_circuit(&circuit, &CheckSettings::default());
        assert!(failures.is_empty(), "unexpected failures: {failures:?}");
    }

    #[test]
    fn injected_fault_is_flagged() {
        // Negative-control ignoring flips which branch a negctrl-X fires
        // on; the dense oracle sees it immediately.
        let mut c = Circuit::new(2);
        c.controlled_gate(
            ddsim_circuit::StandardGate::X,
            vec![ddsim_dd::Control::neg(0)],
            1,
        );
        let failures = check_circuit(
            &c,
            &CheckSettings {
                fault: FaultKind::NegativeControlsIgnored,
                ..CheckSettings::default()
            },
        );
        assert!(!failures.is_empty(), "fault went undetected");
    }
}

//! Differential fuzzing harness for the DD simulation engine.
//!
//! The paper's correctness claim is that every operation-combining
//! strategy computes *the same state* while only the multiplication
//! schedule changes. The optimizations layered on top (lossy compute
//! caches, identity short-circuits, matrix-free apply kernels, GC) are
//! each an opportunity for silent bit-drift, so this crate makes
//! differential testing a first-class subsystem:
//!
//! * [`generator`] — seed-deterministic random circuits over the full
//!   operation surface (every [`StandardGate`](ddsim_circuit::StandardGate),
//!   multi/negative controls, swaps, mid-circuit measurement, reset,
//!   classical control, repeated blocks) with tunable shape profiles.
//! * [`oracle`] — a multi-oracle checker: the dense array reference, a
//!   config lattice (every `Strategy` × cache on/off × identity-skip
//!   on/off × table sizes × aggressive GC), and, for unitary circuits, a
//!   matrix-DD equivalence cross-check.
//! * [`shrink`] — minimizes failing circuits by gate removal, control
//!   stripping, parameter snapping, and qubit narrowing, emitting an
//!   OpenQASM repro.
//! * [`selfcheck`] — proves the harness catches real defects by injecting
//!   each [`FaultKind`](ddsim_core::FaultKind) into the engine and
//!   asserting the oracles flag it.
//!
//! The same seed-deterministic generator doubles as a [`load`]
//! generator for `ddsim-server`: `fuzz --load ADDR` submits a fixed
//! multi-tenant workload over the wire and reports p50/p99 latency and
//! throughput.
//!
//! The `fuzz` binary wires these together (`fuzz --smoke`,
//! `fuzz --replay repro.qasm`, `fuzz --self-check`, `fuzz --load`).

pub mod generator;
pub mod load;
pub mod oracle;
pub mod selfcheck;
pub mod shrink;

pub use generator::{generate, GenConfig, Profile};
pub use load::{run_load, LoadConfig, LoadReport};
pub use oracle::{
    check_circuit, check_noisy_circuit, config_lattice, dense_run, CheckSettings, Failure,
};
pub use selfcheck::{run_self_check, SelfCheckOutcome};
pub use shrink::shrink_circuit;

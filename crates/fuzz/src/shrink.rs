//! Failing-circuit minimization.
//!
//! Greedy ddmin-style reduction: chunked operation removal (granularity
//! halving), repeat unrolling, control stripping, parameter snapping to
//! round angles, and qubit/classical-register narrowing, looped to a
//! fixpoint under a bounded predicate-call budget. The predicate re-runs
//! the full oracle battery, so every candidate the shrinker keeps is a
//! genuine still-failing circuit — the final result is directly
//! replayable.

use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

use ddsim_circuit::{Circuit, GateOp, Operation, StandardGate};

struct Shrinker<'a> {
    failing: &'a dyn Fn(&Circuit) -> bool,
    calls_left: usize,
}

impl Shrinker<'_> {
    /// Runs the predicate, spending budget; a spent budget rejects every
    /// further candidate so the loop winds down with the best-so-far.
    fn still_fails(&mut self, candidate: &Circuit) -> bool {
        if self.calls_left == 0 {
            return false;
        }
        self.calls_left -= 1;
        (self.failing)(candidate)
    }
}

fn rebuild(template: &Circuit, ops: Vec<Operation>) -> Circuit {
    let mut c = Circuit::with_cbits(template.qubits(), template.cbits());
    for op in ops {
        c.push(op);
    }
    c
}

/// Chunked removal: drop `chunk`-sized windows of top-level operations,
/// halving the window until single-op removal stalls.
fn remove_ops(circuit: &mut Circuit, shrinker: &mut Shrinker) -> bool {
    let mut changed = false;
    let mut chunk = (circuit.ops().len() / 2).max(1);
    loop {
        let mut start = 0;
        while start < circuit.ops().len() {
            let end = (start + chunk).min(circuit.ops().len());
            let mut ops: Vec<Operation> = circuit.ops().to_vec();
            ops.drain(start..end);
            let candidate = rebuild(circuit, ops);
            if shrinker.still_fails(&candidate) {
                *circuit = candidate;
                changed = true;
                // Same start index now addresses the next window.
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    changed
}

const SNAP_ANGLES: [f64; 5] = [0.0, FRAC_PI_2, -FRAC_PI_2, PI, FRAC_PI_4];

/// Snap targets strictly simpler than `angle` (earlier in the fixed rank
/// order), so repeated snapping always terminates.
fn snap_candidates(angle: f64) -> Vec<f64> {
    let rank = SNAP_ANGLES
        .iter()
        .position(|c| (c - angle).abs() <= 1e-12)
        .unwrap_or(SNAP_ANGLES.len());
    SNAP_ANGLES[..rank].to_vec()
}

fn gate_snaps(gate: StandardGate) -> Vec<StandardGate> {
    use StandardGate::*;
    match gate {
        Rx(t) => snap_candidates(t).into_iter().map(Rx).collect(),
        Ry(t) => snap_candidates(t).into_iter().map(Ry).collect(),
        Rz(t) => snap_candidates(t).into_iter().map(Rz).collect(),
        Phase(t) => snap_candidates(t).into_iter().map(Phase).collect(),
        U(t, p, l) => {
            let mut out = Vec::new();
            for c in snap_candidates(t) {
                out.push(U(c, p, l));
            }
            for c in snap_candidates(p) {
                out.push(U(t, c, l));
            }
            for c in snap_candidates(l) {
                out.push(U(t, p, c));
            }
            out
        }
        _ => Vec::new(),
    }
}

/// Per-operation simplifications: unroll repeats, strip controls one at a
/// time, snap rotation angles to round values.
fn simplify_ops(circuit: &mut Circuit, shrinker: &mut Shrinker) -> bool {
    let mut changed = false;
    let mut index = 0;
    while index < circuit.ops().len() {
        let op = circuit.ops()[index].clone();
        let mut replacements: Vec<Vec<Operation>> = Vec::new();
        match &op {
            Operation::Repeat { body, times } => {
                if *times > 1 {
                    replacements.push(vec![Operation::Repeat {
                        body: body.clone(),
                        times: 1,
                    }]);
                }
                replacements.push(body.clone());
            }
            Operation::Gate(g) => {
                for skip in 0..g.controls.len() {
                    let controls = g
                        .controls
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != skip)
                        .map(|(_, c)| *c)
                        .collect();
                    replacements.push(vec![Operation::Gate(GateOp::controlled(
                        g.gate, controls, g.target,
                    ))]);
                }
                for snapped in gate_snaps(g.gate) {
                    replacements.push(vec![Operation::Gate(GateOp::controlled(
                        snapped,
                        g.controls.clone(),
                        g.target,
                    ))]);
                }
            }
            Operation::Swap { a, b, controls } if !controls.is_empty() => {
                replacements.push(vec![Operation::Swap {
                    a: *a,
                    b: *b,
                    controls: Vec::new(),
                }]);
            }
            Operation::Classical { gate, .. } => {
                // An unconditioned gate is simpler than a guarded one.
                replacements.push(vec![Operation::Gate(gate.clone())]);
            }
            _ => {}
        }
        let mut replaced = false;
        for replacement in replacements {
            let mut ops: Vec<Operation> = circuit.ops().to_vec();
            ops.splice(index..=index, replacement);
            let candidate = rebuild(circuit, ops);
            if shrinker.still_fails(&candidate) {
                *circuit = candidate;
                changed = true;
                replaced = true;
                break;
            }
        }
        if !replaced {
            index += 1;
        }
        // On replacement, retry the same index: the new op may simplify
        // further (e.g. strip a second control).
    }
    changed
}

fn remap_qubit(q: u32, map: &[Option<u32>]) -> u32 {
    map[q as usize].expect("remap covers every used qubit")
}

fn remap_ops(ops: &[Operation], map: &[Option<u32>]) -> Vec<Operation> {
    ops.iter()
        .map(|op| match op {
            Operation::Gate(g) => Operation::Gate(GateOp::controlled(
                g.gate,
                g.controls
                    .iter()
                    .map(|c| ddsim_dd::Control {
                        qubit: remap_qubit(c.qubit, map),
                        polarity: c.polarity,
                    })
                    .collect(),
                remap_qubit(g.target, map),
            )),
            Operation::Swap { a, b, controls } => Operation::Swap {
                a: remap_qubit(*a, map),
                b: remap_qubit(*b, map),
                controls: controls
                    .iter()
                    .map(|c| ddsim_dd::Control {
                        qubit: remap_qubit(c.qubit, map),
                        polarity: c.polarity,
                    })
                    .collect(),
            },
            Operation::Measure { qubit, cbit } => Operation::Measure {
                qubit: remap_qubit(*qubit, map),
                cbit: *cbit,
            },
            Operation::Reset { qubit } => Operation::Reset {
                qubit: remap_qubit(*qubit, map),
            },
            Operation::Classical { gate, cbit, value } => Operation::Classical {
                gate: GateOp::controlled(
                    gate.gate,
                    gate.controls
                        .iter()
                        .map(|c| ddsim_dd::Control {
                            qubit: remap_qubit(c.qubit, map),
                            polarity: c.polarity,
                        })
                        .collect(),
                    remap_qubit(gate.target, map),
                ),
                cbit: *cbit,
                value: *value,
            },
            Operation::Repeat { body, times } => Operation::Repeat {
                body: remap_ops(body, map),
                times: *times,
            },
            Operation::Barrier => Operation::Barrier,
        })
        .collect()
}

fn used_qubits(ops: &[Operation], n: u32) -> Vec<bool> {
    let mut used = vec![false; n as usize];
    fn visit(ops: &[Operation], used: &mut [bool]) {
        for op in ops {
            match op {
                Operation::Gate(g) => {
                    used[g.target as usize] = true;
                    for c in &g.controls {
                        used[c.qubit as usize] = true;
                    }
                }
                Operation::Swap { a, b, controls } => {
                    used[*a as usize] = true;
                    used[*b as usize] = true;
                    for c in controls {
                        used[c.qubit as usize] = true;
                    }
                }
                Operation::Measure { qubit, .. } | Operation::Reset { qubit } => {
                    used[*qubit as usize] = true;
                }
                Operation::Classical { gate, .. } => {
                    used[gate.target as usize] = true;
                    for c in &gate.controls {
                        used[c.qubit as usize] = true;
                    }
                }
                Operation::Repeat { body, .. } => visit(body, used),
                Operation::Barrier => {}
            }
        }
    }
    visit(ops, &mut used);
    used
}

/// Drops unused qubit lines (compacting indices) and trims the classical
/// register to the highest referenced bit.
fn narrow_registers(circuit: &mut Circuit, shrinker: &mut Shrinker) -> bool {
    let mut changed = false;
    let used = used_qubits(circuit.ops(), circuit.qubits());
    let kept = used.iter().filter(|&&u| u).count().max(1) as u32;
    if kept < circuit.qubits() {
        let mut map = vec![None; circuit.qubits() as usize];
        let mut next = 0u32;
        for (q, &u) in used.iter().enumerate() {
            if u {
                map[q] = Some(next);
                next += 1;
            }
        }
        let ops = remap_ops(circuit.ops(), &map);
        let max_cbit = circuit
            .ops()
            .iter()
            .filter_map(|op| op.max_cbit())
            .max()
            .map(|c| c + 1)
            .unwrap_or(0);
        let mut candidate = Circuit::with_cbits(kept, max_cbit);
        for op in ops {
            candidate.push(op);
        }
        if shrinker.still_fails(&candidate) {
            *circuit = candidate;
            changed = true;
        }
    } else {
        let max_cbit = circuit
            .ops()
            .iter()
            .filter_map(|op| op.max_cbit())
            .max()
            .map(|c| c + 1)
            .unwrap_or(0);
        if max_cbit < circuit.cbits() {
            let mut candidate = Circuit::with_cbits(circuit.qubits(), max_cbit);
            for op in circuit.ops().to_vec() {
                candidate.push(op);
            }
            if shrinker.still_fails(&candidate) {
                *circuit = candidate;
                changed = true;
            }
        }
    }
    changed
}

/// Minimizes a failing circuit while `failing` keeps returning `true`.
///
/// `budget` bounds predicate invocations (each typically a full oracle
/// battery). The input circuit must itself fail; the result is the
/// smallest still-failing circuit the greedy passes reached.
pub fn shrink_circuit(
    circuit: &Circuit,
    failing: impl Fn(&Circuit) -> bool,
    budget: usize,
) -> Circuit {
    let mut shrinker = Shrinker {
        failing: &failing,
        calls_left: budget,
    };
    let mut current = circuit.clone();
    // Flattening first removes repeat structure when irrelevant to the
    // failure, exposing every op to chunked removal.
    let flat = current.flattened();
    if flat != current && shrinker.still_fails(&flat) {
        current = flat;
    }
    loop {
        let mut changed = false;
        changed |= remove_ops(&mut current, &mut shrinker);
        changed |= simplify_ops(&mut current, &mut shrinker);
        changed |= narrow_registers(&mut current, &mut shrinker);
        if !changed || shrinker.calls_left == 0 {
            break;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contains_y(c: &Circuit) -> bool {
        c.flattened().ops().iter().any(|op| {
            matches!(
                op,
                Operation::Gate(GateOp {
                    gate: StandardGate::Y,
                    ..
                })
            )
        })
    }

    #[test]
    fn shrinks_to_single_offending_gate() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).t(2).swap(1, 3).y(2).s(3).ccx(0, 1, 2);
        let mut body = Circuit::new(4);
        body.h(3).z(0);
        c.repeat(&body, 3);
        assert!(contains_y(&c));
        let minimal = shrink_circuit(&c, contains_y, 500);
        assert!(contains_y(&minimal));
        assert_eq!(minimal.ops().len(), 1, "minimal: {:?}", minimal.ops());
        // The unused lines must be gone too.
        assert_eq!(minimal.qubits(), 1);
    }

    #[test]
    fn strips_irrelevant_controls() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let failing = |c: &Circuit| {
            c.ops().iter().any(|op| {
                matches!(
                    op,
                    Operation::Gate(GateOp {
                        gate: StandardGate::X,
                        ..
                    })
                )
            })
        };
        let minimal = shrink_circuit(&c, failing, 200);
        match &minimal.ops()[0] {
            Operation::Gate(g) => assert!(g.controls.is_empty(), "controls left: {g:?}"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(minimal.qubits(), 1);
    }

    #[test]
    fn snaps_rotation_angles() {
        let mut c = Circuit::new(1);
        c.rz(1.234_567, 0);
        let failing = |c: &Circuit| {
            c.ops()
                .iter()
                .any(|op| matches!(op, Operation::Gate(g) if matches!(g.gate, StandardGate::Rz(_))))
        };
        let minimal = shrink_circuit(&c, failing, 200);
        match &minimal.ops()[0] {
            Operation::Gate(g) => match g.gate {
                StandardGate::Rz(t) => assert_eq!(t, 0.0, "angle not snapped"),
                other => panic!("unexpected gate {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn respects_budget() {
        let mut c = Circuit::new(2);
        for _ in 0..30 {
            c.h(0).cx(0, 1);
        }
        // Budget 0: nothing may change.
        let untouched = shrink_circuit(&c, |_| true, 0);
        assert_eq!(untouched.ops().len(), c.ops().len());
    }
}

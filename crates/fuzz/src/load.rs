//! Seed-deterministic load generation against a running `ddsim-server`.
//!
//! Reuses the differential harness's circuit generator to produce a
//! mixed multi-tenant workload: the same `--seed` always yields the same
//! job stream (circuits, options, tenants, submission order), so two
//! runs against the same server build measure the same work. Latency is
//! measured per job from the `OK <id>` acknowledgement to the first
//! observed terminal state — i.e. it includes queueing, which is the
//! number a client actually experiences.

use std::io::BufReader;
use std::net::TcpStream;
use std::path::Path;
use std::time::{Duration, Instant};

use ddsim_circuit::qasm;
use ddsim_server::protocol::{read_frame, write_frame};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::generator::{generate, GenConfig, Profile};

/// Load-run parameters.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Jobs to submit.
    pub jobs: usize,
    /// Distinct tenants to spread the jobs over (round-robin).
    pub tenants: usize,
    /// Base seed: fixes circuits, options, and submission order.
    pub seed: u64,
    /// Shots per job.
    pub shots: u32,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7878".into(),
            jobs: 50,
            tenants: 4,
            seed: 0xDD51,
            shots: 64,
        }
    }
}

/// Aggregated outcome of one load run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Jobs acknowledged by the server.
    pub submitted: usize,
    /// Jobs that reached `DONE`.
    pub done: usize,
    /// Jobs that reached `FAILED` or `CANCELLED`.
    pub failed: usize,
    /// `BUSY` responses absorbed while submitting (load shedding).
    pub shed_retries: usize,
    /// Median acknowledge→terminal latency.
    pub p50: Duration,
    /// 99th-percentile acknowledge→terminal latency.
    pub p99: Duration,
    /// Wall-clock for the whole run (first submit → last terminal).
    pub wall: Duration,
    /// Completed jobs per wall-clock second.
    pub jobs_per_sec: f64,
}

impl LoadReport {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "load: {} submitted, {} done, {} failed, {} shed-retries, \
             p50 {:.1} ms, p99 {:.1} ms, {:.1} jobs/s in {:.2}s",
            self.submitted,
            self.done,
            self.failed,
            self.shed_retries,
            self.p50.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.jobs_per_sec,
            self.wall.as_secs_f64()
        )
    }

    /// Serializes the report as a small JSON document (hand-rolled: the
    /// workspace is dependency-free by design).
    pub fn to_json(&self, cfg: &LoadConfig) -> String {
        format!(
            "{{\n  \"workload\": {{\"jobs\": {}, \"tenants\": {}, \"seed\": {}, \"shots\": {}}},\n  \
             \"submitted\": {},\n  \"done\": {},\n  \"failed\": {},\n  \"shed_retries\": {},\n  \
             \"p50_ms\": {:.3},\n  \"p99_ms\": {:.3},\n  \"wall_secs\": {:.3},\n  \
             \"jobs_per_sec\": {:.3}\n}}\n",
            cfg.jobs,
            cfg.tenants,
            cfg.seed,
            cfg.shots,
            self.submitted,
            self.done,
            self.failed,
            self.shed_retries,
            self.p50.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.wall.as_secs_f64(),
            self.jobs_per_sec
        )
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn open(addr: &str) -> Result<Conn, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("cannot clone stream: {e}"))?,
        );
        Ok(Conn {
            reader,
            writer: stream,
        })
    }

    fn request(&mut self, payload: &str) -> Result<String, String> {
        write_frame(&mut self.writer, payload).map_err(|e| format!("send failed: {e}"))?;
        read_frame(&mut self.reader)
            .map_err(|e| format!("recv failed: {e}"))?
            .ok_or_else(|| "server closed the connection".into())
    }
}

fn case_seed(base: u64, case: usize) -> u64 {
    base.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The deterministic job stream: `(tenant, options, qasm)` per job.
pub fn workload(cfg: &LoadConfig) -> Vec<(String, String, String)> {
    (0..cfg.jobs)
        .map(|i| {
            let seed = case_seed(cfg.seed, i);
            let profile = Profile::ALL[i % Profile::ALL.len()];
            let mut rng = StdRng::seed_from_u64(seed);
            let gen_cfg = GenConfig::sample(&mut rng, profile, true);
            let circuit = generate(&mut rng, &gen_cfg);
            let qasm_text = qasm::write(&circuit).expect("generated circuits serialize");
            let tenant = format!("tenant-{}", i % cfg.tenants.max(1));
            let options = format!("seed={seed} shots={}", cfg.shots);
            (tenant, options, qasm_text)
        })
        .collect()
}

/// Runs the workload against a live server and gathers latency stats.
///
/// `BUSY` responses are retried after the server's `retry-after` hint
/// (capped at 100 ms so a short smoke run cannot stall); each counts as
/// one shed retry in the report.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, String> {
    let stream = workload(cfg);
    let mut conn = Conn::open(&cfg.addr)?;
    let started = Instant::now();
    let mut pending: Vec<(u64, Instant)> = Vec::with_capacity(stream.len());
    let mut shed_retries = 0usize;

    for (tenant, options, qasm_text) in &stream {
        loop {
            let reply = conn.request(&format!("SUBMIT {tenant} {options}\n{qasm_text}"))?;
            if let Some(id) = reply.strip_prefix("OK ") {
                let id = id
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad job id in `{reply}`"))?;
                pending.push((id, Instant::now()));
                break;
            }
            if let Some(rest) = reply.strip_prefix("BUSY retry-after=") {
                shed_retries += 1;
                let secs: u64 = rest
                    .split_whitespace()
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(1);
                std::thread::sleep(Duration::from_secs(secs).min(Duration::from_millis(100)));
                continue;
            }
            return Err(format!("submission rejected: {reply}"));
        }
    }
    let submitted = pending.len();

    // Drain: poll each outstanding job round-robin until terminal.
    let mut latencies: Vec<Duration> = Vec::with_capacity(submitted);
    let mut done = 0usize;
    let mut failed = 0usize;
    let deadline = Instant::now() + Duration::from_secs(600);
    while !pending.is_empty() {
        if Instant::now() > deadline {
            return Err(format!("{} job(s) never became terminal", pending.len()));
        }
        let mut still_pending = Vec::with_capacity(pending.len());
        for (id, submitted_at) in pending {
            let reply = conn.request(&format!("RESULT {id}"))?;
            if reply.starts_with("PENDING") {
                still_pending.push((id, submitted_at));
            } else {
                latencies.push(submitted_at.elapsed());
                if reply.starts_with("DONE") {
                    done += 1;
                } else {
                    failed += 1;
                }
            }
        }
        pending = still_pending;
        if !pending.is_empty() {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let wall = started.elapsed();

    latencies.sort_unstable();
    let percentile = |p: f64| -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx.min(latencies.len() - 1)]
    };
    Ok(LoadReport {
        submitted,
        done,
        failed,
        shed_retries,
        p50: percentile(0.50),
        p99: percentile(0.99),
        wall,
        jobs_per_sec: done as f64 / wall.as_secs_f64().max(1e-9),
    })
}

/// Runs the load and writes the JSON report if a path was given.
pub fn run_and_report(cfg: &LoadConfig, json_path: Option<&Path>) -> Result<LoadReport, String> {
    let report = run_load(cfg)?;
    if let Some(path) = json_path {
        std::fs::write(path, report.to_json(cfg))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_seed_deterministic_and_mixed() {
        let cfg = LoadConfig {
            jobs: 10,
            tenants: 3,
            ..LoadConfig::default()
        };
        let a = workload(&cfg);
        let b = workload(&cfg);
        assert_eq!(a, b, "same seed must produce the identical stream");
        let tenants: std::collections::BTreeSet<_> = a.iter().map(|(t, _, _)| t.clone()).collect();
        assert_eq!(tenants.len(), 3, "jobs must spread over the tenants");
        let other = workload(&LoadConfig {
            jobs: 10,
            tenants: 3,
            seed: 1,
            ..LoadConfig::default()
        });
        assert_ne!(a, other, "different seeds must differ");
        for (_, _, qasm_text) in &a {
            assert!(qasm_text.starts_with("OPENQASM 2.0;"));
        }
    }

    #[test]
    fn report_json_is_well_formed() {
        let cfg = LoadConfig::default();
        let report = LoadReport {
            submitted: 5,
            done: 4,
            failed: 1,
            shed_retries: 2,
            p50: Duration::from_millis(12),
            p99: Duration::from_millis(80),
            wall: Duration::from_secs(2),
            jobs_per_sec: 2.0,
        };
        let json = report.to_json(&cfg);
        assert!(json.contains("\"p50_ms\": 12.000"));
        assert!(json.contains("\"jobs_per_sec\": 2.000"));
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }
}

//! Differential fuzzing CLI.
//!
//! ```text
//! fuzz                        # bounded fuzz run (quick lattice)
//! fuzz --smoke --seed 0xDD51  # time-boxed full-lattice sweep (CI)
//! fuzz --self-check           # prove the oracles catch injected faults
//! fuzz --replay repro.qasm    # re-run one minimized repro
//! ```
//!
//! Exit codes: 0 = clean, 1 = disagreement found (or an injected fault
//! went uncaught), 2 = usage error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use ddsim_circuit::{qasm, Circuit};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ddsim_fuzz::generator::{generate, GenConfig, Profile};
use ddsim_fuzz::oracle::{check_circuit, CheckSettings};
use ddsim_fuzz::selfcheck::run_self_check;
use ddsim_fuzz::shrink::shrink_circuit;

const USAGE: &str = "\
Usage: fuzz [OPTIONS]

Modes (default: bounded fuzz run):
  --smoke              time-boxed sweep over the full config lattice
  --self-check         verify every injected engine fault is caught
  --replay FILE        re-check one OpenQASM repro against the oracles
  --load ADDR          submit a seed-deterministic multi-tenant workload
                       to a running ddsim-server and report p50/p99
                       latency + throughput (--cases jobs, --tenants
                       tenants, --json FILE for a machine-readable report)

Options:
  --cases N            circuits to try (default 200; ignored by --smoke)
  --tenants N          tenants for --load (default 4)
  --shots N            shots per --load job (default 64)
  --json FILE          write the --load report as JSON
  --gate-p99-ms N      fail --load if p99 latency exceeds N ms
  --gate-min-jps X     fail --load if throughput drops below X jobs/sec
  --seed SEED          base seed, decimal or 0x-hex (default 0xDD51)
  --profile NAME       fix the shape profile: mixed | shallow-wide |
                       deep-narrow | clifford-heavy | oracle-like |
                       trotterized (default: cycle through all)
  --unitary-only       generate no measurement / reset / classical control
  --lattice KIND       quick | full (default: quick; --smoke forces full)
  --budget-secs S      wall-clock budget for --smoke (default 60)
  --shrink-budget N    max oracle batteries spent minimizing (default 400)
  --repro-dir DIR      where minimized repros are written (default .)
  --help               this text
";

struct Options {
    cases: usize,
    seed: u64,
    profile: Option<Profile>,
    unitary_only: bool,
    full_lattice: bool,
    smoke: bool,
    budget: Duration,
    shrink_budget: usize,
    self_check: bool,
    replay: Option<PathBuf>,
    repro_dir: PathBuf,
    load: Option<String>,
    tenants: usize,
    shots: u32,
    json: Option<PathBuf>,
    gate_p99_ms: Option<f64>,
    gate_min_jps: Option<f64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            cases: 200,
            seed: 0xDD51,
            profile: None,
            unitary_only: false,
            full_lattice: false,
            smoke: false,
            budget: Duration::from_secs(60),
            shrink_budget: 400,
            self_check: false,
            replay: None,
            repro_dir: PathBuf::from("."),
            load: None,
            tenants: 4,
            shots: 64,
            json: None,
            gate_p99_ms: None,
            gate_min_jps: None,
        }
    }
}

fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    parsed.map_err(|_| format!("invalid seed '{s}'"))
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    fn value(flag: &str, args: &mut dyn Iterator<Item = String>) -> Result<String, String> {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => {
                let v = value("--cases", &mut args)?;
                opts.cases = v.parse().map_err(|_| format!("invalid count '{v}'"))?;
            }
            "--seed" => opts.seed = parse_seed(&value("--seed", &mut args)?)?,
            "--profile" => {
                let v = value("--profile", &mut args)?;
                opts.profile =
                    Some(Profile::parse(&v).ok_or_else(|| format!("unknown profile '{v}'"))?);
            }
            "--unitary-only" => opts.unitary_only = true,
            "--lattice" => {
                let v = value("--lattice", &mut args)?;
                opts.full_lattice = match v.as_str() {
                    "quick" => false,
                    "full" => true,
                    other => return Err(format!("unknown lattice '{other}'")),
                };
            }
            "--smoke" => opts.smoke = true,
            "--budget-secs" => {
                let v = value("--budget-secs", &mut args)?;
                let secs: u64 = v.parse().map_err(|_| format!("invalid budget '{v}'"))?;
                opts.budget = Duration::from_secs(secs);
            }
            "--shrink-budget" => {
                let v = value("--shrink-budget", &mut args)?;
                opts.shrink_budget = v.parse().map_err(|_| format!("invalid budget '{v}'"))?;
            }
            "--self-check" => opts.self_check = true,
            "--load" => opts.load = Some(value("--load", &mut args)?),
            "--tenants" => {
                let v = value("--tenants", &mut args)?;
                opts.tenants = v.parse().map_err(|_| format!("invalid tenants '{v}'"))?;
            }
            "--shots" => {
                let v = value("--shots", &mut args)?;
                opts.shots = v.parse().map_err(|_| format!("invalid shots '{v}'"))?;
            }
            "--json" => opts.json = Some(PathBuf::from(value("--json", &mut args)?)),
            "--gate-p99-ms" => {
                let v = value("--gate-p99-ms", &mut args)?;
                opts.gate_p99_ms = Some(v.parse().map_err(|_| format!("invalid gate '{v}'"))?);
            }
            "--gate-min-jps" => {
                let v = value("--gate-min-jps", &mut args)?;
                opts.gate_min_jps = Some(v.parse().map_err(|_| format!("invalid gate '{v}'"))?);
            }
            "--replay" => opts.replay = Some(PathBuf::from(value("--replay", &mut args)?)),
            "--repro-dir" => opts.repro_dir = PathBuf::from(value("--repro-dir", &mut args)?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if opts.smoke {
        opts.full_lattice = true;
    }
    Ok(opts)
}

fn case_seed(base: u64, case: usize) -> u64 {
    base.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Writes the minimized repro and prints the one-line replay command.
fn report_failure(
    circuit: &Circuit,
    settings: &CheckSettings,
    opts: &Options,
    tag: &str,
) -> ExitCode {
    let failures = check_circuit(circuit, settings);
    for f in &failures {
        eprintln!("  {f}");
    }
    let minimal = shrink_circuit(
        circuit,
        |c| !check_circuit(c, settings).is_empty(),
        opts.shrink_budget,
    );
    eprintln!(
        "shrunk {} -> {} ops over {} qubit(s)",
        circuit.ops().len(),
        minimal.ops().len(),
        minimal.qubits()
    );
    match qasm::write(&minimal) {
        Ok(text) => {
            let path = opts.repro_dir.join(format!("fuzz-repro-{tag}.qasm"));
            match std::fs::write(&path, &text) {
                Ok(()) => {
                    eprintln!("minimized repro written to {}", path.display());
                    eprintln!(
                        "replay with: fuzz --replay {} --seed {:#x} --lattice {}",
                        path.display(),
                        settings.seed,
                        if settings.full_lattice {
                            "full"
                        } else {
                            "quick"
                        }
                    );
                }
                Err(e) => {
                    eprintln!("could not write repro: {e}");
                    eprintln!("--- minimized repro ---\n{text}");
                }
            }
        }
        Err(e) => eprintln!("could not serialize repro: {e}"),
    }
    ExitCode::from(1)
}

fn fuzz_loop(opts: &Options) -> ExitCode {
    let started = Instant::now();
    let mut case = 0usize;
    let mut total_ops = 0u64;
    loop {
        if opts.smoke {
            if started.elapsed() >= opts.budget {
                break;
            }
        } else if case >= opts.cases {
            break;
        }
        let seed = case_seed(opts.seed, case);
        let profile = opts
            .profile
            .unwrap_or(Profile::ALL[case % Profile::ALL.len()]);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig::sample(&mut rng, profile, !opts.unitary_only);
        let circuit = generate(&mut rng, &cfg);
        total_ops += circuit.elementary_count();
        let settings = CheckSettings {
            seed,
            full_lattice: opts.full_lattice,
            ..CheckSettings::default()
        };
        let failures = check_circuit(&circuit, &settings);
        if !failures.is_empty() {
            eprintln!(
                "case {case} (profile {}, seed {seed:#x}): {} oracle disagreement(s)",
                profile.label(),
                failures.len()
            );
            return report_failure(&circuit, &settings, opts, &format!("{seed:x}"));
        }
        case += 1;
    }
    println!(
        "fuzz: {case} circuit(s), {total_ops} elementary gates, {} lattice, clean in {:.1}s",
        if opts.full_lattice { "full" } else { "quick" },
        started.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}

fn replay(path: &PathBuf, opts: &Options) -> ExitCode {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let circuit = match qasm::parse(&source) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot parse {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };
    let settings = CheckSettings {
        seed: opts.seed,
        full_lattice: opts.full_lattice,
        ..CheckSettings::default()
    };
    let failures = check_circuit(&circuit, &settings);
    if failures.is_empty() {
        println!(
            "replay: {} passes every oracle (seed {:#x}, {} lattice)",
            path.display(),
            opts.seed,
            if opts.full_lattice { "full" } else { "quick" }
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("replay: {} still fails:", path.display());
        for f in &failures {
            eprintln!("  {f}");
        }
        ExitCode::from(1)
    }
}

fn self_check(opts: &Options) -> ExitCode {
    println!(
        "self-check: injecting each engine fault, hunting with the {} lattice",
        if opts.full_lattice { "full" } else { "quick" }
    );
    let outcomes = run_self_check(opts.seed, opts.cases.max(1), opts.full_lattice);
    let mut all_caught = true;
    for o in &outcomes {
        if o.caught {
            let (before, after) = o.shrunk_ops.unwrap_or((0, 0));
            println!(
                "  {:<32} caught after {:>3} case(s) by {} (repro {} -> {} ops)",
                o.fault.label(),
                o.cases_tried,
                o.first_detector.as_deref().unwrap_or("?"),
                before,
                after
            );
            if let Some(qasm_text) = &o.repro_qasm {
                let path = opts
                    .repro_dir
                    .join(format!("selfcheck-{}.qasm", o.fault.label()));
                if std::fs::write(&path, qasm_text).is_ok() {
                    println!("    repro: {}", path.display());
                }
            }
        } else {
            all_caught = false;
            println!(
                "  {:<32} NOT caught in {} case(s) -- the harness is blind to it",
                o.fault.label(),
                o.cases_tried
            );
        }
    }
    if all_caught {
        println!("self-check: every injected fault was caught and shrunk");
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("fuzz: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(addr) = &opts.load {
        return load_run(addr, &opts);
    }
    if let Some(path) = &opts.replay {
        return replay(path, &opts);
    }
    if opts.self_check {
        return self_check(&opts);
    }
    fuzz_loop(&opts)
}

/// `--load`: drive a running ddsim-server with a deterministic workload.
fn load_run(addr: &str, opts: &Options) -> ExitCode {
    let cfg = ddsim_fuzz::load::LoadConfig {
        addr: addr.to_string(),
        jobs: opts.cases,
        tenants: opts.tenants.max(1),
        seed: opts.seed,
        shots: opts.shots,
    };
    match ddsim_fuzz::load::run_and_report(&cfg, opts.json.as_deref()) {
        Ok(report) => {
            println!("{}", report.summary());
            if let Some(path) = &opts.json {
                println!("report written to {}", path.display());
            }
            if report.failed > 0 {
                eprintln!("load: {} job(s) ended FAILED/CANCELLED", report.failed);
                return ExitCode::from(1);
            }
            let p99_ms = report.p99.as_secs_f64() * 1e3;
            if let Some(gate) = opts.gate_p99_ms {
                if p99_ms > gate {
                    eprintln!("load: p99 {p99_ms:.1} ms exceeds the {gate:.1} ms gate");
                    return ExitCode::from(1);
                }
            }
            if let Some(gate) = opts.gate_min_jps {
                if report.jobs_per_sec < gate {
                    eprintln!(
                        "load: {:.2} jobs/s below the {gate:.2} jobs/s gate",
                        report.jobs_per_sec
                    );
                    return ExitCode::from(1);
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("load: {e}");
            ExitCode::from(2)
        }
    }
}

//! Fault-injection self-validation.
//!
//! A differential harness that never fires is indistinguishable from one
//! that works, so `fuzz --self-check` proves the oracles have teeth: for
//! each [`FaultKind`] it injects the defect into every engine
//! configuration (the dense reference stays honest), fuzzes until an
//! oracle flags a disagreement, shrinks the trigger, and reports the
//! minimized repro. A fault that survives the case budget is a harness
//! bug — the run fails.

use ddsim_circuit::qasm;
use ddsim_core::FaultKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

use ddsim_circuit::Circuit;

use crate::generator::{generate, GenConfig, Profile};
use crate::oracle::{check_circuit, check_noisy_circuit, CheckSettings, Failure};
use crate::shrink::shrink_circuit;

/// Result of hunting one injected fault.
pub struct SelfCheckOutcome {
    /// The injected defect.
    pub fault: FaultKind,
    /// Whether any oracle flagged it within the case budget.
    pub caught: bool,
    /// Generated circuits tried before the first catch (or the budget).
    pub cases_tried: usize,
    /// Which oracle/lattice point fired first.
    pub first_detector: Option<String>,
    /// Minimized trigger as OpenQASM.
    pub repro_qasm: Option<String>,
    /// Operation counts before and after shrinking.
    pub shrunk_ops: Option<(usize, usize)>,
}

/// The generator regime most likely to trip each fault:
///
/// * the cache-key fault needs the *same* gate matrix applied to
///   *different* states so a stale cached vector resurfaces — deep narrow
///   streams recycle matrices fastest;
/// * the bogus identity flag needs diagonal non-identity blocks inside
///   built matrices — the mixed profile's T/S/Rz-rich unitary stream,
///   checked by the matrix-building strategies and the equivalence
///   oracle;
/// * skipping renormalization needs a measurement with outcome
///   probability strictly between 0 and 1 — non-unitary circuits;
/// * ignoring control polarity needs negative controls — the oracle-like
///   profile draws them with probability one half;
/// * the dropped Kraus term lives in the exact density-matrix path, so it
///   is hunted with the *noisy* oracle battery
///   ([`check_noisy_circuit`]) on unitary mixed circuits: any circuit
///   with at least one depolarized gate loses `p/3` of the trace per
///   faulty channel application, which the trace oracle flags
///   deterministically;
/// * the swap fault (a level swap that keeps the grandchild's raw weight
///   instead of folding in the child's) needs an actual sifting pass over
///   a diagram with non-unit child weights — the lattice's `reorder` axis
///   guarantees at least one sift per run, and the mixed profile's
///   T/S/Rz-rich unitary stream supplies the phase-bearing edges.
fn hunting_ground(fault: FaultKind) -> (Profile, bool) {
    match fault {
        FaultKind::MatVecCacheKeyDropsVector => (Profile::DeepNarrow, false),
        FaultKind::DiagonalCountsAsIdentity => (Profile::Mixed, false),
        FaultKind::CollapseSkipsRenormalize => (Profile::Mixed, true),
        FaultKind::NegativeControlsIgnored => (Profile::OracleLike, false),
        FaultKind::SwapDropsChildWeight => (Profile::Mixed, false),
        FaultKind::KrausDropsChannel => (Profile::Mixed, false),
        FaultKind::None => (Profile::Mixed, true),
    }
}

/// The oracle battery hunting a fault: the density-path fault is only
/// reachable through the noisy battery; everything else goes through the
/// standard lattice + equivalence + density-p0 battery.
fn battery(fault: FaultKind, circuit: &Circuit, settings: &CheckSettings) -> Vec<Failure> {
    if fault == FaultKind::KrausDropsChannel {
        check_noisy_circuit(circuit, settings)
    } else {
        check_circuit(circuit, settings)
    }
}

/// Hunts one fault: fuzz until caught (bounded by `max_cases`), then
/// shrink the trigger.
pub fn hunt_fault(
    fault: FaultKind,
    seed: u64,
    max_cases: usize,
    full_lattice: bool,
    shrink_budget: usize,
) -> SelfCheckOutcome {
    let (profile, nonunitary) = hunting_ground(fault);
    for case in 0..max_cases {
        let case_seed = seed
            .wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(fault.label().len() as u64);
        let mut rng = StdRng::seed_from_u64(case_seed);
        let cfg = GenConfig::sample(&mut rng, profile, nonunitary);
        let circuit = generate(&mut rng, &cfg);
        let settings = CheckSettings {
            seed: case_seed,
            full_lattice,
            fault,
            ..CheckSettings::default()
        };
        let failures = battery(fault, &circuit, &settings);
        if failures.is_empty() {
            continue;
        }
        let before = circuit.ops().len();
        let minimal = shrink_circuit(
            &circuit,
            |c| !battery(fault, c, &settings).is_empty(),
            shrink_budget,
        );
        let repro_qasm = qasm::write(&minimal).ok();
        return SelfCheckOutcome {
            fault,
            caught: true,
            cases_tried: case + 1,
            first_detector: Some(failures[0].lattice_label.clone()),
            repro_qasm,
            shrunk_ops: Some((before, minimal.ops().len())),
        };
    }
    SelfCheckOutcome {
        fault,
        caught: false,
        cases_tried: max_cases,
        first_detector: None,
        repro_qasm: None,
        shrunk_ops: None,
    }
}

/// Runs the full self-check: every fault in [`FaultKind::ALL`] must be
/// caught and shrunk.
pub fn run_self_check(
    seed: u64,
    max_cases_per_fault: usize,
    full_lattice: bool,
) -> Vec<SelfCheckOutcome> {
    FaultKind::ALL
        .into_iter()
        .map(|fault| hunt_fault(fault, seed, max_cases_per_fault, full_lattice, 300))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fault_is_caught_and_shrunk() {
        let outcomes = run_self_check(0xDD51, 40, false);
        assert_eq!(outcomes.len(), FaultKind::ALL.len());
        for outcome in &outcomes {
            assert!(
                outcome.caught,
                "fault {} survived {} cases undetected",
                outcome.fault.label(),
                outcome.cases_tried
            );
            let (before, after) = outcome.shrunk_ops.expect("caught implies shrunk");
            assert!(
                after <= before,
                "shrinking grew the repro for {}",
                outcome.fault.label()
            );
            assert!(
                outcome.repro_qasm.is_some(),
                "no QASM repro for {}",
                outcome.fault.label()
            );
        }
    }
}

//! End-to-end tests of the `fuzz` binary: exit codes, repro emission, and
//! replay round-trips.

use std::process::Command;

fn fuzz_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fuzz"))
}

#[test]
fn bounded_run_is_clean_and_deterministic() {
    let run = |seed: &str| {
        let out = fuzz_bin()
            .args(["--cases", "8", "--seed", seed])
            .output()
            .expect("fuzz runs");
        assert!(
            out.status.success(),
            "fuzz failed: {}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let first = run("0xDD51");
    let second = run("0xDD51");
    // Same seed, same circuits, same gate totals. The summary ends with
    // wall-clock timing ("clean in X.Xs"), which must not participate in
    // the determinism check.
    let canon = |s: &str| {
        s.rsplit_once(" in ")
            .map(|(head, _)| head.to_owned())
            .unwrap_or_else(|| s.to_owned())
    };
    assert_eq!(canon(&first), canon(&second));
    assert!(first.contains("clean"));
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = fuzz_bin().arg("--bogus").output().expect("fuzz runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("Usage"));
}

#[test]
fn replay_of_missing_file_is_a_usage_error() {
    let out = fuzz_bin()
        .args(["--replay", "/nonexistent/repro.qasm"])
        .output()
        .expect("fuzz runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn self_check_emits_replayable_repro() {
    let dir = std::env::temp_dir().join(format!("fuzz-selfcheck-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let out = fuzz_bin()
        .args(["--self-check", "--cases", "30", "--seed", "0xDD51"])
        .args(["--repro-dir", dir.to_str().expect("utf-8 path")])
        .output()
        .expect("fuzz runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "self-check failed: {stdout}{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("every injected fault was caught"));
    // Each fault leaves a shrunk OpenQASM repro behind; replaying one
    // against the un-faulted engine must pass every oracle (exit 0).
    let repro = dir.join("selfcheck-negative-controls-ignored.qasm");
    assert!(repro.exists(), "missing repro: {stdout}");
    let replay = fuzz_bin()
        .args(["--replay", repro.to_str().expect("utf-8 path")])
        .output()
        .expect("fuzz runs");
    assert!(
        replay.status.success(),
        "repro fails on the healthy engine: {}{}",
        String::from_utf8_lossy(&replay.stdout),
        String::from_utf8_lossy(&replay.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}

//! QAOA (quantum approximate optimization) circuits for MaxCut — a
//! variational workload whose diagonal cost layers are DD-friendly while
//! its mixer layers are not, making it a useful stress profile for the
//! combining strategies.

use ddsim_circuit::Circuit;

/// An undirected graph given as an edge list over `vertices` nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    /// Number of vertices (= qubits).
    pub vertices: u32,
    /// Undirected edges (pairs of distinct vertices).
    pub edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Validates and creates a graph.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a vertex out of range or is a
    /// self-loop.
    pub fn new(vertices: u32, edges: Vec<(u32, u32)>) -> Self {
        assert!(vertices >= 2, "graph needs at least two vertices");
        for &(a, b) in &edges {
            assert!(a < vertices && b < vertices, "edge vertex out of range");
            assert_ne!(a, b, "self-loops are not allowed");
        }
        Graph { vertices, edges }
    }

    /// The ring (cycle) graph `C_n`.
    pub fn ring(vertices: u32) -> Self {
        let edges = (0..vertices).map(|v| (v, (v + 1) % vertices)).collect();
        Graph::new(vertices, edges)
    }

    /// The cut value of an assignment (bit `vertices-1-v` of `assignment`
    /// is the side of vertex `v`, matching the simulator's basis-index
    /// convention).
    pub fn cut_value(&self, assignment: u64) -> u32 {
        let side = |v: u32| (assignment >> (self.vertices - 1 - v)) & 1;
        self.edges
            .iter()
            .filter(|&&(a, b)| side(a) != side(b))
            .count() as u32
    }

    /// The maximum cut value over all assignments (brute force; intended
    /// for test-sized graphs).
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than 24 vertices.
    pub fn max_cut(&self) -> u32 {
        assert!(self.vertices <= 24, "brute force limited to 24 vertices");
        (0..(1u64 << self.vertices))
            .map(|a| self.cut_value(a))
            .max()
            .expect("non-empty range")
    }
}

/// QAOA parameters: one (γ, β) pair per layer.
#[derive(Clone, Debug, PartialEq)]
pub struct QaoaParameters {
    /// Cost angles γ, one per layer.
    pub gammas: Vec<f64>,
    /// Mixer angles β, one per layer.
    pub betas: Vec<f64>,
}

impl QaoaParameters {
    /// Creates a parameter set.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or are empty.
    pub fn new(gammas: Vec<f64>, betas: Vec<f64>) -> Self {
        assert_eq!(gammas.len(), betas.len(), "γ and β must pair up");
        assert!(!gammas.is_empty(), "at least one layer required");
        QaoaParameters { gammas, betas }
    }

    /// Number of layers `p`.
    pub fn layers(&self) -> usize {
        self.gammas.len()
    }
}

/// Builds the QAOA MaxCut circuit: `H^{⊗n}` then `p` layers of
/// `e^{-iγ C}` (ZZ cost phases per edge) and `e^{-iβ B}` (X mixers per
/// vertex), named `qaoa_<vertices>`.
pub fn qaoa_maxcut_circuit(graph: &Graph, params: &QaoaParameters) -> Circuit {
    let n = graph.vertices;
    let mut c = Circuit::new(n);
    c.set_name(format!("qaoa_{n}"));
    for q in 0..n {
        c.h(q);
    }
    for layer in 0..params.layers() {
        let gamma = params.gammas[layer];
        let beta = params.betas[layer];
        // Cost: e^{-iγ/2 (1 - Z_a Z_b)} per edge, as CX·Rz·CX.
        for &(a, b) in &graph.edges {
            c.cx(a, b);
            c.rz(gamma, b);
            c.cx(a, b);
        }
        // Mixer: Rx(2β) per vertex.
        for q in 0..n {
            c.rx(2.0 * beta, q);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_graph_structure() {
        let g = Graph::ring(5);
        assert_eq!(g.edges.len(), 5);
        assert_eq!(g.max_cut(), 4); // odd ring: n - 1
        let g6 = Graph::ring(6);
        assert_eq!(g6.max_cut(), 6); // even ring: n
    }

    #[test]
    fn cut_value_counts_crossing_edges() {
        let g = Graph::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        // Partition {0, 2} vs {1, 3}: assignment bits (v0..v3) = 1,0,1,0.
        let assignment = 0b1010;
        assert_eq!(g.cut_value(assignment), 4); // all ring edges cross, (0,2) doesn't
    }

    #[test]
    fn circuit_gate_counts() {
        let g = Graph::ring(4);
        let params = QaoaParameters::new(vec![0.3, 0.5], vec![0.2, 0.4]);
        let c = qaoa_maxcut_circuit(&g, &params);
        // 4 H + 2 layers × (4 edges × 3 + 4 mixers).
        assert_eq!(c.elementary_count(), 4 + 2 * (4 * 3 + 4));
        assert_eq!(c.qubits(), 4);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        let _ = Graph::new(3, vec![(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_parameters_rejected() {
        let _ = QaoaParameters::new(vec![0.1], vec![0.1, 0.2]);
    }
}

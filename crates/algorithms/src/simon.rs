//! Simon's algorithm: a hidden XOR-mask period found with `O(n)` quantum
//! queries, plus the classical GF(2) linear algebra that recovers the
//! secret from the measured constraints.

use ddsim_circuit::Circuit;

/// A Simon instance over `n` input qubits with hidden period `secret`
/// (`f(x) = f(y) ⟺ y = x ⊕ secret`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimonInstance {
    /// Input width in qubits.
    pub n: u32,
    /// The hidden nonzero period.
    pub secret: u64,
}

impl SimonInstance {
    /// Validates and creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range or `secret` is zero or does not fit in
    /// `n` bits.
    pub fn new(n: u32, secret: u64) -> Self {
        assert!((2..=31).contains(&n), "input width out of range");
        assert!(
            secret != 0 && secret < (1u64 << n),
            "secret must be a nonzero n-bit value"
        );
        SimonInstance { n, secret }
    }

    /// The concrete 2-to-1 function realized by the oracle:
    /// `f(x) = x` if the pivot bit of `x` is clear, else `x ⊕ secret`.
    /// Satisfies `f(x) = f(x ⊕ secret)` for all `x`.
    pub fn function(&self, x: u64) -> u64 {
        if x & self.pivot() == 0 {
            x
        } else {
            x ^ self.secret
        }
    }

    /// The lowest set bit of the secret (the branch selector).
    fn pivot(&self) -> u64 {
        self.secret & self.secret.wrapping_neg()
    }
}

/// One Simon round: `H^{⊗n}` on the input register (qubits `0..n`), the
/// XOR-mask oracle into the output register (qubits `n..2n`), `H^{⊗n}`
/// again. Measuring the input register yields a uniformly random `y` with
/// `y · secret ≡ 0 (mod 2)`.
pub fn simon_circuit(inst: SimonInstance) -> Circuit {
    let n = inst.n;
    let mut c = Circuit::new(2 * n);
    c.set_name(format!("simon_{}", 2 * n));
    for q in 0..n {
        c.h(q);
    }
    // Copy x into the output register: f(x) = x part.
    for k in 0..n {
        c.cx(k, n + k);
    }
    // Conditionally XOR the secret: if the pivot bit of x is set, flip the
    // output bits where the secret has ones.
    let pivot_qubit = {
        let pivot_bit = inst.pivot().trailing_zeros();
        n - 1 - pivot_bit
    };
    for k in 0..n {
        let bit = n - 1 - k; // qubit k holds bit (n-1-k) of x
        if (inst.secret >> bit) & 1 == 1 {
            c.cx(pivot_qubit, n + k);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// GF(2) linear algebra for Simon post-processing.
pub mod gf2 {
    /// Row-reduces the system and returns its rank.
    ///
    /// Rows are bit vectors over `n` columns (bit `n-1` = leftmost).
    pub fn rank(rows: &[u64], n: u32) -> u32 {
        let mut rows = rows.to_vec();
        let mut rank = 0u32;
        for col in (0..n).rev() {
            let Some(pivot_idx) = (rank as usize..rows.len()).find(|&i| (rows[i] >> col) & 1 == 1)
            else {
                continue;
            };
            rows.swap(rank as usize, pivot_idx);
            let pivot_row = rows[rank as usize];
            for (i, row) in rows.iter_mut().enumerate() {
                if i != rank as usize && (*row >> col) & 1 == 1 {
                    *row ^= pivot_row;
                }
            }
            rank += 1;
        }
        rank
    }

    /// Finds a nonzero vector `s` with `row · s ≡ 0 (mod 2)` for every row,
    /// if the nullspace is one-dimensional (rank = n − 1). Returns `None`
    /// when the constraints are insufficient or contradictory.
    pub fn nullspace_vector(rows: &[u64], n: u32) -> Option<u64> {
        if rank(rows, n) != n - 1 {
            return None;
        }
        // Reduced row-echelon form, then read the free column.
        let mut reduced = rows.to_vec();
        let mut pivot_cols = Vec::new();
        let mut r = 0usize;
        for col in (0..n).rev() {
            let Some(pivot_idx) = (r..reduced.len()).find(|&i| (reduced[i] >> col) & 1 == 1) else {
                continue;
            };
            reduced.swap(r, pivot_idx);
            let pivot_row = reduced[r];
            for (i, row) in reduced.iter_mut().enumerate() {
                if i != r && (*row >> col) & 1 == 1 {
                    *row ^= pivot_row;
                }
            }
            pivot_cols.push(col);
            r += 1;
        }
        let free_col = (0..n).rev().find(|c| !pivot_cols.contains(c))?;
        // Set the free variable to 1 and back-substitute.
        let mut s = 1u64 << free_col;
        for (&col, row) in pivot_cols.iter().zip(reduced.iter()) {
            if (row & s).count_ones() % 2 == 1 {
                s |= 1 << col;
            }
        }
        Some(s)
    }
}

/// Recovers the secret from measured constraint vectors (each satisfying
/// `y · s ≡ 0`). Returns `None` until the samples span an
/// (n−1)-dimensional space.
pub fn recover_secret(samples: &[u64], n: u32) -> Option<u64> {
    gf2::nullspace_vector(samples, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_is_two_to_one_with_period() {
        let inst = SimonInstance::new(5, 0b10110);
        for x in 0u64..32 {
            assert_eq!(
                inst.function(x),
                inst.function(x ^ inst.secret),
                "period property at x={x}"
            );
        }
        // Exactly 16 distinct images.
        let images: std::collections::HashSet<u64> = (0..32).map(|x| inst.function(x)).collect();
        assert_eq!(images.len(), 16);
    }

    #[test]
    fn circuit_structure() {
        let inst = SimonInstance::new(4, 0b1010);
        let c = simon_circuit(inst);
        assert_eq!(c.qubits(), 8);
        // 2n H + n copy-CX + popcount(s) mask-CX.
        assert_eq!(c.elementary_count(), 8 + 4 + 2);
    }

    #[test]
    fn gf2_rank_basics() {
        assert_eq!(gf2::rank(&[0b100, 0b010, 0b001], 3), 3);
        assert_eq!(gf2::rank(&[0b110, 0b011, 0b101], 3), 2); // third = sum
        assert_eq!(gf2::rank(&[0, 0], 3), 0);
    }

    #[test]
    fn gf2_nullspace_recovers_known_secret() {
        // Constraints orthogonal to s = 0b101: y ∈ {000, 010, 101, 111}.
        let samples = [0b010u64, 0b111];
        assert_eq!(gf2::nullspace_vector(&samples, 3), Some(0b101));
    }

    #[test]
    fn gf2_nullspace_requires_full_rank() {
        assert_eq!(gf2::nullspace_vector(&[0b010], 3), None);
        assert_eq!(gf2::nullspace_vector(&[], 3), None);
    }

    #[test]
    fn recovered_secret_is_orthogonal_to_all_samples() {
        let n = 6u32;
        let secret = 0b110101u64;
        // All y with y·s = 0.
        let samples: Vec<u64> = (0..64)
            .filter(|y| (y & secret).count_ones().is_multiple_of(2))
            .collect();
        let s = recover_secret(&samples, n).expect("full constraint set");
        assert_eq!(s, secret);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_secret_rejected() {
        let _ = SimonInstance::new(4, 0);
    }
}

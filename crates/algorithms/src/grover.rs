//! Grover's database-search circuits (the paper's Fig. 6 and Table I
//! benchmarks).
//!
//! Layout: `n` search qubits (indices `0..n`) plus one oracle ancilla
//! (index `n`) prepared in |−⟩ for phase kickback — `n + 1` qubits total,
//! matching the paper's `grover_23 … grover_29` naming where the number
//! counts all qubits.

use ddsim_circuit::Circuit;

/// Parameters of a generated Grover instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroverInstance {
    /// Search-space qubits (`n`).
    pub search_qubits: u32,
    /// Total circuit qubits (`n + 1`).
    pub total_qubits: u32,
    /// The marked element the oracle recognizes.
    pub marked: u64,
    /// Number of Grover iterations, `⌊π/4 · √(2^n)⌋` (at least 1).
    pub iterations: u32,
}

impl GroverInstance {
    /// Computes the instance for `total_qubits` (= search + 1 ancilla) and a
    /// marked element.
    ///
    /// # Panics
    ///
    /// Panics if `total_qubits < 3` or `marked` is out of range.
    pub fn new(total_qubits: u32, marked: u64) -> Self {
        assert!(total_qubits >= 3, "grover needs at least 2 search qubits");
        let search_qubits = total_qubits - 1;
        assert!(
            search_qubits < 63 && marked < (1u64 << search_qubits),
            "marked element out of range"
        );
        let iterations = ((std::f64::consts::FRAC_PI_4) * ((1u64 << search_qubits) as f64).sqrt())
            .floor() as u32;
        GroverInstance {
            search_qubits,
            total_qubits,
            marked,
            iterations: iterations.max(1),
        }
    }
}

/// The oracle: flips the ancilla's phase iff the search register holds the
/// marked element (an MCX into the |−⟩ ancilla).
fn append_oracle(circuit: &mut Circuit, inst: GroverInstance) {
    let n = inst.search_qubits;
    // Conjugate with X so that every control fires on the marked pattern.
    let zero_bits: Vec<u32> = (0..n)
        .filter(|&q| (inst.marked >> (n - 1 - q)) & 1 == 0)
        .collect();
    for &q in &zero_bits {
        circuit.x(q);
    }
    let controls: Vec<u32> = (0..n).collect();
    circuit.mcx(&controls, n);
    for &q in &zero_bits {
        circuit.x(q);
    }
}

/// The diffusion operator `H^n X^n (MCZ) X^n H^n` on the search register.
fn append_diffusion(circuit: &mut Circuit, inst: GroverInstance) {
    let n = inst.search_qubits;
    for q in 0..n {
        circuit.h(q);
    }
    for q in 0..n {
        circuit.x(q);
    }
    // Multi-controlled Z on the all-ones pattern: controls 0..n-1, target n-1.
    let controls: Vec<u32> = (0..n - 1).collect();
    circuit.mcz(&controls, n - 1);
    for q in 0..n {
        circuit.x(q);
    }
    for q in 0..n {
        circuit.h(q);
    }
}

/// One Grover iteration (oracle + diffusion) as a standalone circuit.
pub fn grover_iteration(inst: GroverInstance) -> Circuit {
    let mut c = Circuit::new(inst.total_qubits);
    append_oracle(&mut c, inst);
    append_diffusion(&mut c, inst);
    c
}

/// The full Grover circuit: state preparation followed by the iteration
/// wrapped in an [`Operation::Repeat`](ddsim_circuit::Operation::Repeat)
/// block — the structure the *DD-repeating* strategy caches.
///
/// Named `grover_<total_qubits>`.
pub fn grover_circuit(inst: GroverInstance) -> Circuit {
    let mut c = Circuit::new(inst.total_qubits);
    c.set_name(format!("grover_{}", inst.total_qubits));
    // Uniform superposition over the search register; ancilla in |−⟩.
    for q in 0..inst.search_qubits {
        c.h(q);
    }
    c.x(inst.search_qubits);
    c.h(inst.search_qubits);
    let body = grover_iteration(inst);
    c.repeat(&body, inst.iterations);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsim_circuit::Operation;

    #[test]
    fn iteration_count_scales_with_sqrt() {
        let small = GroverInstance::new(5, 0);
        let large = GroverInstance::new(7, 0);
        // Doubling search qubits squares the space: iterations double.
        assert_eq!(large.iterations, small.iterations * 2);
    }

    #[test]
    fn circuit_has_repeat_block() {
        let inst = GroverInstance::new(5, 3);
        let c = grover_circuit(inst);
        let repeats: Vec<_> = c
            .ops()
            .iter()
            .filter(|op| matches!(op, Operation::Repeat { .. }))
            .collect();
        assert_eq!(repeats.len(), 1);
        if let Operation::Repeat { times, .. } = repeats[0] {
            assert_eq!(*times, inst.iterations);
        }
    }

    #[test]
    fn oracle_conjugation_restores_x_gates() {
        // marked = 0 → every search qubit gets X-conjugated.
        let inst = GroverInstance::new(4, 0);
        let iter = grover_iteration(inst);
        let x_count = iter
            .ops()
            .iter()
            .filter(|op| {
                matches!(op, Operation::Gate(g)
                    if g.gate == ddsim_circuit::StandardGate::X && g.controls.is_empty())
            })
            .count();
        // Oracle: 2·3 X; diffusion: 2·3 X.
        assert_eq!(x_count, 12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn marked_element_must_fit() {
        let _ = GroverInstance::new(4, 8);
    }
}

//! Pauli-string Hamiltonians as matrix DDs, and Trotterized time
//! evolution — the ROADMAP item 4 workload grounded in "Towards
//! Hamiltonian Simulation with Decision Diagrams" (arXiv 2305.02337).
//!
//! A Hamiltonian is a weighted sum of Pauli strings, `H = Σ cᵢ Pᵢ`. Two
//! artifacts are derived from it:
//!
//! * [`hamiltonian_matrix`] builds `H` itself as a matrix DD, each term
//!   assembled from elementary single-qubit Pauli DDs through the
//!   matrix-matrix multiply kernel and the terms summed with `add_mat` —
//!   the same governed kernels every other workload uses, so budgets,
//!   deadlines, and cancellation apply to Hamiltonian construction too.
//! * [`trotter_circuit`] compiles `exp(-iHt)` into a product-formula
//!   circuit. Each factor `exp(-iθP)` is the textbook basis-change +
//!   CNOT-parity-ladder + `Rz(2θ)` sandwich, and the whole Trotter step
//!   is wrapped in a [`Repeat`](ddsim_circuit::Operation::Repeat) block —
//!   exactly the structure the paper's *DD-repeating* strategy caches,
//!   and a stream of small rotations the k-operations/max-size combiners
//!   can fold profitably.

use ddsim_circuit::Circuit;
use ddsim_complex::Complex;
use ddsim_dd::{DdError, DdManager, MatEdge, Matrix2};

/// A single-qubit Pauli operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// The 2×2 matrix of this Pauli.
    pub fn matrix(self) -> Matrix2 {
        let zero = Complex::ZERO;
        let one = Complex::ONE;
        let i = Complex::new(0.0, 1.0);
        match self {
            Pauli::I => [[one, zero], [zero, one]],
            Pauli::X => [[zero, one], [one, zero]],
            Pauli::Y => [[zero, -i], [i, zero]],
            Pauli::Z => [[one, zero], [zero, -one]],
        }
    }

    /// Stable one-letter label.
    pub fn label(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }

    /// Parses a one-letter label (case-insensitive).
    pub fn parse(c: char) -> Option<Pauli> {
        match c.to_ascii_uppercase() {
            'I' => Some(Pauli::I),
            'X' => Some(Pauli::X),
            'Y' => Some(Pauli::Y),
            'Z' => Some(Pauli::Z),
            _ => None,
        }
    }
}

/// A weighted Pauli string `c · P₀ ⊗ P₁ ⊗ … ⊗ P_{n-1}` (index = qubit).
#[derive(Clone, Debug, PartialEq)]
pub struct PauliString {
    /// Real coefficient `c` (Hermiticity keeps Hamiltonian weights real).
    pub coefficient: f64,
    /// One Pauli per qubit, indexed by qubit number.
    paulis: Vec<Pauli>,
}

impl PauliString {
    /// Creates a string from an explicit per-qubit operator list.
    ///
    /// # Panics
    ///
    /// Panics if `paulis` is empty or the coefficient is not finite.
    pub fn new(coefficient: f64, paulis: Vec<Pauli>) -> Self {
        assert!(
            !paulis.is_empty(),
            "a Pauli string needs at least one qubit"
        );
        assert!(coefficient.is_finite(), "coefficient must be finite");
        PauliString {
            coefficient,
            paulis,
        }
    }

    /// Creates an `n`-qubit string that is identity everywhere except the
    /// listed `(qubit, pauli)` sites.
    ///
    /// # Panics
    ///
    /// Panics if a site is out of range or listed twice.
    pub fn from_sites(coefficient: f64, n: u32, sites: &[(u32, Pauli)]) -> Self {
        let mut paulis = vec![Pauli::I; n as usize];
        for &(q, p) in sites {
            assert!(q < n, "site qubit {q} out of range for {n} qubits");
            assert_eq!(paulis[q as usize], Pauli::I, "qubit {q} listed twice");
            paulis[q as usize] = p;
        }
        PauliString::new(coefficient, paulis)
    }

    /// Parses a label like `"XZI"` (character index = qubit index).
    ///
    /// # Panics
    ///
    /// Panics on an empty label or a non-Pauli character.
    pub fn parse(coefficient: f64, label: &str) -> Self {
        let paulis: Vec<Pauli> = label
            .chars()
            .map(|c| Pauli::parse(c).unwrap_or_else(|| panic!("bad Pauli letter `{c}`")))
            .collect();
        PauliString::new(coefficient, paulis)
    }

    /// Number of qubits the string is defined over.
    pub fn qubits(&self) -> u32 {
        self.paulis.len() as u32
    }

    /// The per-qubit operators (index = qubit).
    pub fn paulis(&self) -> &[Pauli] {
        &self.paulis
    }

    /// Qubits carrying a non-identity operator, in ascending order.
    pub fn support(&self) -> Vec<u32> {
        self.paulis
            .iter()
            .enumerate()
            .filter(|(_, &p)| p != Pauli::I)
            .map(|(q, _)| q as u32)
            .collect()
    }

    /// Human-readable rendering like `+0.500·XZI`.
    pub fn label(&self) -> String {
        let letters: String = self.paulis.iter().map(|p| p.label()).collect();
        format!("{:+.3}·{letters}", self.coefficient)
    }
}

/// A Hamiltonian `H = Σ cᵢ Pᵢ` over a fixed register width.
#[derive(Clone, Debug, PartialEq)]
pub struct PauliHamiltonian {
    qubits: u32,
    terms: Vec<PauliString>,
}

impl PauliHamiltonian {
    /// An empty Hamiltonian over `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn new(n: u32) -> Self {
        assert!(n >= 1, "a Hamiltonian needs at least one qubit");
        PauliHamiltonian {
            qubits: n,
            terms: Vec::new(),
        }
    }

    /// Appends a term.
    ///
    /// # Panics
    ///
    /// Panics if the term's width differs from the Hamiltonian's.
    pub fn push(&mut self, term: PauliString) -> &mut Self {
        assert_eq!(
            term.qubits(),
            self.qubits,
            "term width {} does not match Hamiltonian width {}",
            term.qubits(),
            self.qubits
        );
        self.terms.push(term);
        self
    }

    /// Register width.
    pub fn qubits(&self) -> u32 {
        self.qubits
    }

    /// The terms, in insertion (= Trotter) order.
    pub fn terms(&self) -> &[PauliString] {
        &self.terms
    }

    /// The transverse-field Ising chain
    /// `H = -j Σ Z_q Z_{q+1} - h Σ X_q` on `n` qubits (open boundary).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn ising_chain(n: u32, j: f64, h: f64) -> Self {
        assert!(n >= 2, "the Ising chain needs at least two qubits");
        let mut ham = PauliHamiltonian::new(n);
        for q in 0..n - 1 {
            ham.push(PauliString::from_sites(
                -j,
                n,
                &[(q, Pauli::Z), (q + 1, Pauli::Z)],
            ));
        }
        for q in 0..n {
            ham.push(PauliString::from_sites(-h, n, &[(q, Pauli::X)]));
        }
        ham
    }

    /// The isotropic Heisenberg chain
    /// `H = j Σ (X_q X_{q+1} + Y_q Y_{q+1} + Z_q Z_{q+1})` on `n` qubits
    /// (open boundary).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn heisenberg_chain(n: u32, j: f64) -> Self {
        assert!(n >= 2, "the Heisenberg chain needs at least two qubits");
        let mut ham = PauliHamiltonian::new(n);
        for q in 0..n - 1 {
            for p in [Pauli::X, Pauli::Y, Pauli::Z] {
                ham.push(PauliString::from_sites(j, n, &[(q, p), (q + 1, p)]));
            }
        }
        ham
    }
}

/// Builds one term `c·P` as a matrix DD: the embedded single-qubit Pauli
/// DDs of the support are combined with `mat_mat_mul` (disjoint targets
/// commute, so the product *is* the tensor product) and the result is
/// scaled by `c`. An all-identity string is `c·I`.
pub fn pauli_string_matrix(dd: &mut DdManager, term: &PauliString) -> Result<MatEdge, DdError> {
    let n = term.qubits();
    let mut acc = dd.mat_identity(n);
    for q in term.support() {
        dd.inc_ref_mat(acc);
        let factor = dd.mat_single_qubit(n, q, term.paulis()[q as usize].matrix());
        dd.inc_ref_mat(factor);
        let product = dd.mat_mat_mul(factor, acc);
        dd.dec_ref_mat(acc);
        dd.dec_ref_mat(factor);
        acc = product?;
    }
    Ok(dd.mat_scale(acc, Complex::new(term.coefficient, 0.0)))
}

/// Builds `H = Σ cᵢ Pᵢ` as a matrix DD through the governed kron/add
/// surface: every term from [`pauli_string_matrix`], summed with
/// `add_mat`. Budgets, deadlines, and cancellation configured on the
/// manager apply throughout.
///
/// # Errors
///
/// Propagates any [`DdError`] from the underlying kernels.
pub fn hamiltonian_matrix(dd: &mut DdManager, ham: &PauliHamiltonian) -> Result<MatEdge, DdError> {
    let mut acc = dd.mat_constant(ham.qubits(), Complex::ZERO);
    for term in ham.terms() {
        dd.inc_ref_mat(acc);
        let t = pauli_string_matrix(dd, term);
        let t = match t {
            Ok(t) => t,
            Err(e) => {
                dd.dec_ref_mat(acc);
                return Err(e);
            }
        };
        dd.inc_ref_mat(t);
        let sum = dd.add_mat(acc, t);
        dd.dec_ref_mat(acc);
        dd.dec_ref_mat(t);
        acc = sum?;
    }
    Ok(acc)
}

/// Product-formula order for [`trotter_circuit`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TrotterOrder {
    /// Lie–Trotter: one sweep `Π exp(-i cᵢ Δt Pᵢ)` per step (error
    /// `O(Δt²)` per step).
    #[default]
    First,
    /// Strang splitting: a half-sweep forward then a half-sweep backward
    /// per step (error `O(Δt³)` per step).
    Second,
}

impl TrotterOrder {
    /// Stable CLI label (`"1"` / `"2"`).
    pub fn label(self) -> &'static str {
        match self {
            TrotterOrder::First => "1",
            TrotterOrder::Second => "2",
        }
    }

    /// Parses a CLI label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "1" | "first" => Some(TrotterOrder::First),
            "2" | "second" => Some(TrotterOrder::Second),
            _ => None,
        }
    }
}

/// Appends the circuit for `exp(-iθP)` (one Pauli-string exponential).
///
/// Each support qubit is rotated into the Z eigenbasis (`H` for X,
/// `S†·H` for Y), the parities are folded onto the last support qubit by
/// a CNOT ladder, `Rz(2θ)` applies the phase (`Rz(φ) = exp(-iφZ/2)`),
/// and the ladder and basis changes are undone. Identity-only strings
/// contribute only a global phase and are skipped.
fn push_pauli_exponential(circuit: &mut Circuit, term: &PauliString, theta: f64) {
    let support = term.support();
    let Some(&target) = support.last() else {
        return; // exp(-iθ·I) is a global phase
    };
    for &q in &support {
        match term.paulis()[q as usize] {
            Pauli::X => {
                circuit.h(q);
            }
            Pauli::Y => {
                // Y = (S·H) Z (S·H)†, so conjugate by (S·H)† = H·S†.
                circuit.sdg(q).h(q);
            }
            Pauli::Z | Pauli::I => {}
        }
    }
    for pair in support.windows(2) {
        circuit.cx(pair[0], pair[1]);
    }
    circuit.rz(2.0 * theta, target);
    for pair in support.windows(2).rev() {
        circuit.cx(pair[0], pair[1]);
    }
    for &q in &support {
        match term.paulis()[q as usize] {
            Pauli::X => {
                circuit.h(q);
            }
            Pauli::Y => {
                circuit.h(q).s(q);
            }
            Pauli::Z | Pauli::I => {}
        }
    }
}

/// One Trotter step over `dt` as a standalone circuit.
fn trotter_step(ham: &PauliHamiltonian, dt: f64, order: TrotterOrder) -> Circuit {
    let mut step = Circuit::new(ham.qubits());
    match order {
        TrotterOrder::First => {
            for term in ham.terms() {
                push_pauli_exponential(&mut step, term, term.coefficient * dt);
            }
        }
        TrotterOrder::Second => {
            for term in ham.terms() {
                push_pauli_exponential(&mut step, term, term.coefficient * dt / 2.0);
            }
            for term in ham.terms().iter().rev() {
                push_pauli_exponential(&mut step, term, term.coefficient * dt / 2.0);
            }
        }
    }
    step
}

/// Compiles `exp(-iHt)` into a Trotterized circuit with `steps` repeated
/// product-formula steps, named `trotter<order>_<n>q_<terms>t`. The step
/// body is emitted as a single [`Repeat`](ddsim_circuit::Operation::Repeat)
/// block so the DD-repeating strategy can cache the step matrix.
///
/// # Panics
///
/// Panics if `steps` is 0 or `time` is not finite.
pub fn trotter_circuit(
    ham: &PauliHamiltonian,
    time: f64,
    steps: u32,
    order: TrotterOrder,
) -> Circuit {
    assert!(steps >= 1, "at least one Trotter step required");
    assert!(time.is_finite(), "evolution time must be finite");
    let dt = time / f64::from(steps);
    let step = trotter_step(ham, dt, order);
    let mut circuit = Circuit::new(ham.qubits());
    circuit.set_name(format!(
        "trotter{}_{}q_{}t",
        order.label(),
        ham.qubits(),
        ham.terms().len()
    ));
    circuit.repeat(&step, steps);
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsim_circuit::{lower_swap, Operation};

    /// Dense matrix of a circuit, built by embedding every gate through
    /// the DD package and multiplying (tests only; widths stay tiny).
    fn circuit_dense(circuit: &Circuit) -> Vec<Vec<Complex>> {
        let n = circuit.qubits();
        let mut dd = DdManager::new();
        let mut acc = dd.mat_identity(n);
        for op in circuit.flattened().ops() {
            let gates: Vec<ddsim_circuit::GateOp> = match op {
                Operation::Gate(g) => vec![g.clone()],
                Operation::Swap { a, b, controls } => lower_swap(*a, *b, controls),
                Operation::Barrier => Vec::new(),
                other => panic!("non-unitary op {other:?} in test circuit"),
            };
            for g in gates {
                dd.inc_ref_mat(acc);
                let m = if g.controls.is_empty() {
                    dd.mat_single_qubit(n, g.target, g.gate.matrix())
                } else {
                    dd.mat_controlled(n, &g.controls, g.target, g.gate.matrix())
                };
                dd.inc_ref_mat(m);
                let next = dd.mat_mat_mul(m, acc).expect("ungoverned");
                dd.dec_ref_mat(acc);
                dd.dec_ref_mat(m);
                acc = next;
            }
        }
        dd.mat_to_dense(acc)
    }

    /// Dense `2^n × 2^n` matrix of a Pauli string (tests only).
    fn string_dense(term: &PauliString) -> Vec<Vec<Complex>> {
        let n = term.qubits() as usize;
        let dim = 1usize << n;
        let mut out = vec![vec![Complex::ZERO; dim]; dim];
        for (row, out_row) in out.iter_mut().enumerate() {
            for (col, slot) in out_row.iter_mut().enumerate() {
                let mut entry = Complex::new(term.coefficient, 0.0);
                // Qubit q occupies bit (n-1-q) of the basis index.
                for q in 0..n {
                    let bit = n - 1 - q;
                    let r = (row >> bit) & 1;
                    let c = (col >> bit) & 1;
                    entry *= term.paulis()[q].matrix()[r][c];
                }
                *slot = entry;
            }
        }
        out
    }

    fn dense_add(a: &mut [Vec<Complex>], b: &[Vec<Complex>]) {
        for (ra, rb) in a.iter_mut().zip(b.iter()) {
            for (ea, &eb) in ra.iter_mut().zip(rb.iter()) {
                *ea += eb;
            }
        }
    }

    fn max_dev(a: &[Vec<Complex>], b: &[Vec<Complex>]) -> f64 {
        a.iter()
            .zip(b.iter())
            .flat_map(|(ra, rb)| ra.iter().zip(rb.iter()))
            .map(|(&ea, &eb)| (ea - eb).abs())
            .fold(0.0, f64::max)
    }

    /// Closed-form `exp(-iθP) = cos θ · I − i sin θ · P` for a unit-weight
    /// string (tests only).
    fn string_exponential_dense(term: &PauliString, theta: f64) -> Vec<Vec<Complex>> {
        let unit = PauliString::new(1.0, term.paulis().to_vec());
        let p = string_dense(&unit);
        let dim = p.len();
        let mut out = vec![vec![Complex::ZERO; dim]; dim];
        let cos = Complex::new(theta.cos(), 0.0);
        let misin = Complex::new(0.0, -theta.sin());
        for r in 0..dim {
            for c in 0..dim {
                let id = if r == c { Complex::ONE } else { Complex::ZERO };
                out[r][c] = cos * id + misin * p[r][c];
            }
        }
        out
    }

    fn dense_mul(a: &[Vec<Complex>], b: &[Vec<Complex>]) -> Vec<Vec<Complex>> {
        let dim = a.len();
        let mut out = vec![vec![Complex::ZERO; dim]; dim];
        for r in 0..dim {
            for k in 0..dim {
                if a[r][k].abs() == 0.0 {
                    continue;
                }
                for c in 0..dim {
                    out[r][c] += a[r][k] * b[k][c];
                }
            }
        }
        out
    }

    #[test]
    fn pauli_string_matrix_matches_dense_tensor() {
        let mut dd = DdManager::new();
        for (coeff, label) in [(1.0, "XZ"), (-0.5, "YIY"), (0.25, "IZX"), (2.0, "III")] {
            let term = PauliString::parse(coeff, label);
            let m = pauli_string_matrix(&mut dd, &term).expect("ungoverned");
            let dev = max_dev(&dd.mat_to_dense(m), &string_dense(&term));
            assert!(dev < 1e-12, "{label}: deviation {dev:.3e}");
        }
    }

    #[test]
    fn hamiltonian_matrix_matches_dense_sum() {
        let ham = PauliHamiltonian::ising_chain(4, 1.0, 0.7);
        let mut dd = DdManager::new();
        let m = hamiltonian_matrix(&mut dd, &ham).expect("ungoverned");
        let dim = 1usize << 4;
        let mut expected = vec![vec![Complex::ZERO; dim]; dim];
        for term in ham.terms() {
            dense_add(&mut expected, &string_dense(term));
        }
        let dev = max_dev(&dd.mat_to_dense(m), &expected);
        assert!(dev < 1e-12, "deviation {dev:.3e}");
        // An Ising H is real diagonal-dominant Hermitian; spot-check one
        // entry: ⟨00…0|H|00…0⟩ = -j·(n-1) (all ZZ terms +1, X terms off
        // the diagonal).
        assert!((expected[0][0].re + 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_term_trotter_is_exact() {
        // For H = c·P one Trotter step is exp(-i c t P) exactly — no
        // splitting error, so the circuit must match the closed form.
        for (coeff, label) in [(0.8, "ZZ"), (-0.6, "XY"), (0.45, "YXZ")] {
            let term = PauliString::parse(coeff, label);
            let mut ham = PauliHamiltonian::new(term.qubits());
            ham.push(term.clone());
            let t = 0.9;
            for order in [TrotterOrder::First, TrotterOrder::Second] {
                let circuit = trotter_circuit(&ham, t, 1, order);
                let got = circuit_dense(&circuit);
                let want = string_exponential_dense(&term, coeff * t);
                let dev = max_dev(&got, &want);
                assert!(
                    dev < 1e-10,
                    "{label} order {}: deviation {dev:.3e}",
                    order.label()
                );
            }
        }
    }

    #[test]
    fn commuting_hamiltonian_trotter_is_exact() {
        // Ising with h = 0: every term commutes, so a single first-order
        // step equals the exact evolution Π exp(-i cᵢ t Pᵢ).
        let ham = PauliHamiltonian::ising_chain(3, 0.75, 0.0);
        let t = 1.1;
        let circuit = trotter_circuit(&ham, t, 1, TrotterOrder::First);
        let got = circuit_dense(&circuit);
        let dim = 1usize << 3;
        let mut want = vec![vec![Complex::ZERO; dim]; dim];
        for (r, row) in want.iter_mut().enumerate() {
            row[r] = Complex::ONE;
        }
        for term in ham.terms() {
            want = dense_mul(&string_exponential_dense(term, term.coefficient * t), &want);
        }
        let dev = max_dev(&got, &want);
        assert!(dev < 1e-10, "deviation {dev:.3e}");
    }

    #[test]
    fn second_order_beats_first_order() {
        // Non-commuting instance: the Strang splitting must land closer
        // to the fine-step reference than the Lie product at equal step
        // counts.
        let ham = PauliHamiltonian::ising_chain(3, 1.0, 0.8);
        let t = 1.0;
        // Reference: 2nd order with many steps.
        let reference = circuit_dense(&trotter_circuit(&ham, t, 256, TrotterOrder::Second));
        let first = circuit_dense(&trotter_circuit(&ham, t, 4, TrotterOrder::First));
        let second = circuit_dense(&trotter_circuit(&ham, t, 4, TrotterOrder::Second));
        let err1 = max_dev(&first, &reference);
        let err2 = max_dev(&second, &reference);
        assert!(
            err2 < err1 / 2.0,
            "order-2 error {err2:.3e} not clearly below order-1 {err1:.3e}"
        );
    }

    #[test]
    fn trotter_circuit_is_a_repeat_block() {
        let ham = PauliHamiltonian::heisenberg_chain(4, 0.5);
        let circuit = trotter_circuit(&ham, 2.0, 8, TrotterOrder::First);
        assert_eq!(circuit.ops().len(), 1, "one top-level Repeat block");
        match &circuit.ops()[0] {
            Operation::Repeat { times, .. } => assert_eq!(*times, 8),
            other => panic!("expected Repeat, got {other:?}"),
        }
        assert!(!circuit.has_nonunitary());
    }

    #[test]
    fn chain_constructors_have_expected_shapes() {
        let ising = PauliHamiltonian::ising_chain(5, 1.0, 0.5);
        assert_eq!(ising.terms().len(), 4 + 5);
        let heis = PauliHamiltonian::heisenberg_chain(5, 1.0);
        assert_eq!(heis.terms().len(), 4 * 3);
        for term in ising.terms().iter().chain(heis.terms()) {
            assert_eq!(term.qubits(), 5);
            assert!(!term.support().is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "does not match Hamiltonian width")]
    fn width_mismatch_rejected() {
        let mut ham = PauliHamiltonian::new(3);
        ham.push(PauliString::parse(1.0, "XX"));
    }
}

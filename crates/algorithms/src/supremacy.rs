//! Random-circuit-sampling benchmarks in the style of the Google quantum
//! supremacy proposal (Boixo et al., the paper's reference \[11\]).
//!
//! The exact instances used by the paper are not published with it, so this
//! generator reproduces the published *rule set* with a seeded PRNG
//! (substitution documented in DESIGN.md): qubits on a 2D grid, an initial
//! layer of H, then `depth` clock cycles, each applying one of eight
//! staggered CZ tilings plus single-qubit gates from {T, √X, √Y} under the
//! no-repeat / T-first rules. These rules are what make the intermediate
//! states dense and DD-hostile — the regime of the paper's Example 3.

use ddsim_circuit::{Circuit, StandardGate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a supremacy-style instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SupremacyInstance {
    /// Grid rows.
    pub rows: u32,
    /// Grid columns.
    pub cols: u32,
    /// Number of clock cycles after the initial H layer.
    pub depth: u32,
    /// PRNG seed for gate choices.
    pub seed: u64,
}

impl SupremacyInstance {
    /// A grid instance.
    ///
    /// # Panics
    ///
    /// Panics if the grid is degenerate (fewer than 2 qubits) or too large
    /// for a simulable circuit (> 36 qubits).
    pub fn new(rows: u32, cols: u32, depth: u32, seed: u64) -> Self {
        assert!(rows * cols >= 2, "grid must have at least two qubits");
        assert!(rows * cols <= 36, "grid too large");
        SupremacyInstance {
            rows,
            cols,
            depth,
            seed,
        }
    }

    /// Total qubit count.
    pub fn qubits(&self) -> u32 {
        self.rows * self.cols
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LastGate {
    None,
    T,
    SqrtX,
    SqrtY,
}

/// Generates the circuit for an instance, named
/// `supremacy_<depth>_<qubits>` in the paper's scheme.
pub fn supremacy_circuit(inst: SupremacyInstance) -> Circuit {
    let n = inst.qubits();
    let mut c = Circuit::new(n);
    c.set_name(format!("supremacy_{}_{}", inst.depth, n));
    let mut rng = StdRng::seed_from_u64(inst.seed);

    let index = |r: u32, col: u32| r * inst.cols + col;

    // Initial Hadamard layer.
    for q in 0..n {
        c.h(q);
    }

    let mut last_gate = vec![LastGate::None; n as usize];
    let mut had_t = vec![false; n as usize];
    let mut in_cz_prev = vec![false; n as usize];

    // Alternating vertical/horizontal staggered tilings (8 patterns).
    let pattern_order = [0u32, 4, 1, 5, 2, 6, 3, 7];

    for cycle in 0..inst.depth {
        let pattern = pattern_order[(cycle % 8) as usize];
        let mut in_cz_now = vec![false; n as usize];

        // CZ layer.
        if pattern < 4 {
            // Vertical couplers (r, c)-(r+1, c).
            for r in 0..inst.rows.saturating_sub(1) {
                for col in 0..inst.cols {
                    if (r + 2 * (col % 2)) % 4 == pattern {
                        let a = index(r, col);
                        let b = index(r + 1, col);
                        c.cz(a, b);
                        in_cz_now[a as usize] = true;
                        in_cz_now[b as usize] = true;
                    }
                }
            }
        } else {
            // Horizontal couplers (r, c)-(r, c+1).
            for r in 0..inst.rows {
                for col in 0..inst.cols.saturating_sub(1) {
                    if (col + 2 * (r % 2)) % 4 == pattern - 4 {
                        let a = index(r, col);
                        let b = index(r, col + 1);
                        c.cz(a, b);
                        in_cz_now[a as usize] = true;
                        in_cz_now[b as usize] = true;
                    }
                }
            }
        }

        // Single-qubit layer: only on qubits idle this cycle that were
        // entangled in the previous one; T first, then no-repeat {√X, √Y}.
        for q in 0..n as usize {
            if in_cz_now[q] || !in_cz_prev[q] {
                continue;
            }
            let gate = if !had_t[q] {
                had_t[q] = true;
                last_gate[q] = LastGate::T;
                StandardGate::T
            } else {
                let pick_sqrt_y = match last_gate[q] {
                    LastGate::SqrtX => true,
                    LastGate::SqrtY => false,
                    _ => rng.gen_bool(0.5),
                };
                if pick_sqrt_y {
                    last_gate[q] = LastGate::SqrtY;
                    StandardGate::SqrtY
                } else {
                    last_gate[q] = LastGate::SqrtX;
                    StandardGate::SqrtX
                }
            };
            c.gate(gate, q as u32);
        }

        in_cz_prev = in_cz_now;
    }

    // Closing Hadamard layer (measurement in the X basis convention).
    for q in 0..n {
        c.h(q);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsim_circuit::Operation;

    #[test]
    fn determinism_under_seed() {
        let a = supremacy_circuit(SupremacyInstance::new(3, 3, 12, 42));
        let b = supremacy_circuit(SupremacyInstance::new(3, 3, 12, 42));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = supremacy_circuit(SupremacyInstance::new(3, 3, 12, 1));
        let b = supremacy_circuit(SupremacyInstance::new(3, 3, 12, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn every_cycle_has_cz_gates() {
        let inst = SupremacyInstance::new(4, 4, 16, 7);
        let c = supremacy_circuit(inst);
        let cz_count = c
            .ops()
            .iter()
            .filter(|op| matches!(op, Operation::Gate(g) if !g.controls.is_empty()))
            .count();
        // Each of the 16 cycles activates at least one coupler on a 4x4 grid.
        assert!(cz_count >= 16, "only {cz_count} CZ gates");
    }

    #[test]
    fn t_appears_before_other_single_qubit_gates() {
        let inst = SupremacyInstance::new(3, 3, 20, 5);
        let c = supremacy_circuit(inst);
        let mut seen_t = [false; 9];
        for op in c.ops() {
            if let Operation::Gate(g) = op {
                if g.controls.is_empty() {
                    match g.gate {
                        StandardGate::T => seen_t[g.target as usize] = true,
                        StandardGate::SqrtX | StandardGate::SqrtY => {
                            assert!(
                                seen_t[g.target as usize],
                                "√X/√Y before T on qubit {}",
                                g.target
                            );
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    #[test]
    fn no_repeated_sqrt_gates_per_qubit() {
        let inst = SupremacyInstance::new(4, 4, 24, 11);
        let c = supremacy_circuit(inst);
        let mut last: Vec<Option<StandardGate>> = vec![None; 16];
        for op in c.ops() {
            if let Operation::Gate(g) = op {
                if g.controls.is_empty()
                    && matches!(g.gate, StandardGate::SqrtX | StandardGate::SqrtY)
                {
                    assert_ne!(
                        last[g.target as usize],
                        Some(g.gate),
                        "repeated {:?} on qubit {}",
                        g.gate,
                        g.target
                    );
                    last[g.target as usize] = Some(g.gate);
                }
            }
        }
    }

    #[test]
    fn naming_convention() {
        let c = supremacy_circuit(SupremacyInstance::new(4, 5, 25, 0));
        assert_eq!(c.name(), "supremacy_25_20");
    }
}

//! Benchmark circuit generators and classical post-processing for the
//! paper's evaluation: Grover (Table I), Shor/Beauregard (Table II),
//! supremacy-style random circuits (Figs. 5, 8, 9), plus QFT, GHZ,
//! Bernstein–Vazirani, and phase-estimation utilities.
//!
//! # Examples
//!
//! ```
//! use ddsim_algorithms::grover::{grover_circuit, GroverInstance};
//!
//! let circuit = grover_circuit(GroverInstance::new(5, 0b0110));
//! assert_eq!(circuit.name(), "grover_5");
//! ```

pub mod grover;
pub mod hamiltonian;
pub mod numtheory;
pub mod qaoa;
pub mod qft;
pub mod shor;
pub mod simon;
pub mod simple;
pub mod supremacy;

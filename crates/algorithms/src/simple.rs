//! Small standard circuits: GHZ / entanglement, Bernstein–Vazirani, and
//! quantum phase estimation.

use std::f64::consts::PI;

use ddsim_circuit::Circuit;

use crate::qft::append_iqft;

/// The `n`-qubit GHZ (entanglement) circuit `H(0); CX(0→1); …; CX(n-2→n-1)`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn ghz_circuit(n: u32) -> Circuit {
    assert!(n >= 2, "GHZ needs at least two qubits");
    let mut c = Circuit::new(n);
    c.set_name(format!("ghz_{n}"));
    c.h(0);
    for q in 1..n {
        c.cx(q - 1, q);
    }
    c
}

/// Bernstein–Vazirani over `n` input qubits with the given hidden bit
/// string (bit `n-1-q` of `secret` belongs to qubit `q`); one ancilla at
/// the bottom. A single run reads the secret off the input register.
///
/// # Panics
///
/// Panics if `secret` does not fit in `n` bits or `n == 0`.
pub fn bernstein_vazirani_circuit(n: u32, secret: u64) -> Circuit {
    assert!(
        (1..63).contains(&n) && secret < (1u64 << n),
        "secret out of range"
    );
    let mut c = Circuit::new(n + 1);
    c.set_name(format!("bv_{}", n + 1));
    for q in 0..n {
        c.h(q);
    }
    c.x(n);
    c.h(n);
    for q in 0..n {
        if (secret >> (n - 1 - q)) & 1 == 1 {
            c.cx(q, n);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// Quantum phase estimation of the phase gate `diag(1, e^{2πi·phase})`,
/// with `precision` counting qubits (indices `0..precision`) and the
/// eigenstate qubit at the bottom (prepared in |1⟩).
///
/// A final measurement of the counting register (most significant qubit 0)
/// approximates `phase` to `precision` bits.
///
/// # Panics
///
/// Panics if `precision == 0` or `phase` is outside `[0, 1)`.
pub fn phase_estimation_circuit(precision: u32, phase: f64) -> Circuit {
    assert!(precision >= 1, "need at least one counting qubit");
    assert!((0.0..1.0).contains(&phase), "phase must lie in [0, 1)");
    let mut c = Circuit::new(precision + 1);
    c.set_name(format!("qpe_{}", precision + 1));
    let target = precision;
    c.x(target); // eigenstate |1⟩ of diag(1, e^{2πiφ})
    for q in 0..precision {
        c.h(q);
    }
    // Counting qubit q accumulates 2^(precision-1-q) applications.
    for q in 0..precision {
        let reps = 1u64 << (precision - 1 - q);
        let angle = 2.0 * PI * phase * reps as f64;
        c.cphase(angle, q, target);
    }
    let counting: Vec<u32> = (0..precision).collect();
    append_iqft(&mut c, &counting);
    c
}

/// The Boolean function flavor a Deutsch–Jozsa oracle implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeutschJozsaOracle {
    /// `f(x) = 0` for all inputs.
    Constant,
    /// `f(x) = parity(x & mask)` — balanced whenever `mask != 0`.
    BalancedParity {
        /// Mask selecting the bits whose parity defines `f`.
        mask: u64,
    },
}

/// Deutsch–Jozsa over `n` input qubits plus one ancilla: decides whether
/// the oracle is constant (all-zeros measurement on the input register) or
/// balanced (any other outcome) with a single query.
///
/// # Panics
///
/// Panics if `n` is 0, too large, a balanced mask is zero, or the mask does
/// not fit in `n` bits.
pub fn deutsch_jozsa_circuit(n: u32, oracle: DeutschJozsaOracle) -> Circuit {
    assert!((1..63).contains(&n), "input width out of range");
    if let DeutschJozsaOracle::BalancedParity { mask } = oracle {
        assert!(mask != 0, "a zero mask is constant, not balanced");
        assert!(mask < (1u64 << n), "mask out of range");
    }
    let mut c = Circuit::new(n + 1);
    c.set_name(format!("dj_{}", n + 1));
    for q in 0..n {
        c.h(q);
    }
    c.x(n);
    c.h(n);
    if let DeutschJozsaOracle::BalancedParity { mask } = oracle {
        for q in 0..n {
            if (mask >> (n - 1 - q)) & 1 == 1 {
                c.cx(q, n);
            }
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// The `n`-qubit W state `(|10…0⟩ + |01…0⟩ + … + |0…01⟩)/√n` via the
/// cascade of controlled rotations.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn w_state_circuit(n: u32) -> Circuit {
    assert!(n >= 2, "W state needs at least two qubits");
    let mut c = Circuit::new(n);
    c.set_name(format!("wstate_{n}"));
    // Distribute the single excitation: qubit 0 starts with it; each step
    // moves part of the amplitude down with a controlled-Ry + CX pair.
    c.x(0);
    for q in 1..n {
        // Remaining share: after step q, qubit q-1 keeps 1/(n-q+1) of the
        // excitation mass still held.
        let remaining = f64::from(n - q);
        let theta = 2.0 * (1.0 / (remaining + 1.0).sqrt()).acos();
        c.controlled_gate(
            ddsim_circuit::StandardGate::Ry(theta),
            vec![ddsim_dd::Control::pos(q - 1)],
            q,
        );
        c.cx(q, q - 1);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_gate_count() {
        let c = ghz_circuit(6);
        assert_eq!(c.elementary_count(), 6);
        assert_eq!(c.qubits(), 6);
    }

    #[test]
    fn bv_encodes_secret_in_cx_pattern() {
        let c = bernstein_vazirani_circuit(4, 0b1010);
        // 2 CX gates for the two set bits.
        let cx_count = c
            .ops()
            .iter()
            .filter(|op| matches!(op, ddsim_circuit::Operation::Gate(g) if !g.controls.is_empty()))
            .count();
        assert_eq!(cx_count, 2);
    }

    #[test]
    fn qpe_sizes() {
        let c = phase_estimation_circuit(4, 0.3125);
        assert_eq!(c.qubits(), 5);
        assert!(c.elementary_count() > 8);
    }

    #[test]
    #[should_panic(expected = "phase must lie")]
    fn qpe_rejects_out_of_range_phase() {
        let _ = phase_estimation_circuit(3, 1.5);
    }

    #[test]
    fn dj_constant_oracle_has_no_cx() {
        let c = deutsch_jozsa_circuit(5, DeutschJozsaOracle::Constant);
        let cx = c
            .ops()
            .iter()
            .filter(|op| matches!(op, ddsim_circuit::Operation::Gate(g) if !g.controls.is_empty()))
            .count();
        assert_eq!(cx, 0);
    }

    #[test]
    fn dj_balanced_oracle_counts_mask_bits() {
        let c = deutsch_jozsa_circuit(5, DeutschJozsaOracle::BalancedParity { mask: 0b10110 });
        let cx = c
            .ops()
            .iter()
            .filter(|op| matches!(op, ddsim_circuit::Operation::Gate(g) if !g.controls.is_empty()))
            .count();
        assert_eq!(cx, 3);
    }

    #[test]
    #[should_panic(expected = "constant, not balanced")]
    fn dj_rejects_zero_mask() {
        let _ = deutsch_jozsa_circuit(4, DeutschJozsaOracle::BalancedParity { mask: 0 });
    }

    #[test]
    fn w_state_structure() {
        let c = w_state_circuit(4);
        // 1 X + 3 × (CRy + CX).
        assert_eq!(c.ops().len(), 7);
        assert_eq!(c.qubits(), 4);
    }
}

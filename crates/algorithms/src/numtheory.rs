//! Classical number theory used by Shor's algorithm: modular arithmetic,
//! primality, continued fractions, and order-to-factor extraction.

/// Greatest common divisor (Euclid).
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Modular multiplication without overflow (via `u128`).
///
/// # Panics
///
/// Panics if `modulus` is zero.
pub fn mul_mod(a: u64, b: u64, modulus: u64) -> u64 {
    assert!(modulus > 0, "modulus must be positive");
    ((u128::from(a) * u128::from(b)) % u128::from(modulus)) as u64
}

/// Modular exponentiation `base^exp mod modulus`.
///
/// # Panics
///
/// Panics if `modulus` is zero.
pub fn pow_mod(mut base: u64, mut exp: u64, modulus: u64) -> u64 {
    assert!(modulus > 0, "modulus must be positive");
    if modulus == 1 {
        return 0;
    }
    let mut result = 1u64;
    base %= modulus;
    while exp > 0 {
        if exp & 1 == 1 {
            result = mul_mod(result, base, modulus);
        }
        base = mul_mod(base, base, modulus);
        exp >>= 1;
    }
    result
}

/// Modular inverse `a^{-1} mod modulus`, if it exists (`gcd(a, m) = 1`).
pub fn inverse_mod(a: u64, modulus: u64) -> Option<u64> {
    // Extended Euclid over signed 128-bit intermediates.
    let (mut old_r, mut r) = (i128::from(a % modulus), i128::from(modulus));
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return None;
    }
    let m = i128::from(modulus);
    Some((((old_s % m) + m) % m) as u64)
}

/// Deterministic Miller–Rabin primality test, valid for all `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    // This witness set is deterministic for all 64-bit integers.
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Number of bits needed to represent `n` (`0` needs `1`).
pub fn bit_length(n: u64) -> u32 {
    if n == 0 {
        1
    } else {
        64 - n.leading_zeros()
    }
}

/// The multiplicative order of `a` modulo `n`: the least `r ≥ 1` with
/// `a^r ≡ 1 (mod n)`.
///
/// Brute force — intended for validating quantum results on benchmark-sized
/// inputs, not for cryptographic sizes.
///
/// # Panics
///
/// Panics if `gcd(a, n) != 1` (no order exists).
pub fn multiplicative_order(a: u64, n: u64) -> u64 {
    assert_eq!(gcd(a, n), 1, "order undefined unless gcd(a, n) = 1");
    let mut x = a % n;
    let mut r = 1u64;
    while x != 1 {
        x = mul_mod(x, a, n);
        r += 1;
    }
    r
}

/// One convergent `p/q` of a continued-fraction expansion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Convergent {
    /// Numerator.
    pub numerator: u64,
    /// Denominator.
    pub denominator: u64,
}

/// The continued-fraction convergents of `x / 2^bits` — the classical
/// post-processing step of Shor's algorithm that recovers the order `r`
/// from a phase measurement.
///
/// Denominators are strictly increasing; the list stops when a denominator
/// would exceed `max_denominator`.
pub fn convergents(x: u64, bits: u32, max_denominator: u64) -> Vec<Convergent> {
    let mut result = Vec::new();
    if x == 0 {
        return result;
    }
    let mut num = x;
    let mut den = 1u64 << bits;
    // Previous two convergents (p_{-1}/q_{-1} = 1/0, p_0/q_0 = a0/1).
    let (mut p_prev, mut q_prev) = (1u64, 0u64);
    let (mut p, mut q) = (num / den, 1u64);
    result.push(Convergent {
        numerator: p,
        denominator: q,
    });
    let mut rem = num % den;
    while rem != 0 {
        num = den;
        den = rem;
        let a = num / den;
        rem = num % den;
        let p_next = a.checked_mul(p).and_then(|v| v.checked_add(p_prev));
        let q_next = a.checked_mul(q).and_then(|v| v.checked_add(q_prev));
        let (Some(p_next), Some(q_next)) = (p_next, q_next) else {
            break;
        };
        if q_next > max_denominator {
            break;
        }
        (p_prev, q_prev) = (p, q);
        (p, q) = (p_next, q_next);
        result.push(Convergent {
            numerator: p,
            denominator: q,
        });
    }
    result
}

/// Attempts to extract a nontrivial factor of `n` from a measured phase
/// `x / 2^bits` produced by order finding with base `a`.
///
/// Tries each continued-fraction denominator `q ≤ n` (and small multiples)
/// as a candidate order; an even candidate `r` with `a^{r/2} ≢ -1 (mod n)`
/// yields factors `gcd(a^{r/2} ± 1, n)`.
pub fn factor_from_phase(n: u64, a: u64, x: u64, bits: u32) -> Option<u64> {
    for conv in convergents(x, bits, n) {
        if conv.denominator == 0 {
            continue;
        }
        // The true order may be a small multiple of the recovered
        // denominator (when numerator and order share a factor).
        for multiple in 1..=4u64 {
            let r = conv.denominator.checked_mul(multiple)?;
            if r == 0 || r > n {
                break;
            }
            if pow_mod(a, r, n) != 1 {
                continue;
            }
            if let Some(f) = factor_from_order(n, a, r) {
                return Some(f);
            }
        }
    }
    None
}

/// Extracts a nontrivial factor of `n` from a verified order `r` of `a`.
pub fn factor_from_order(n: u64, a: u64, r: u64) -> Option<u64> {
    if !r.is_multiple_of(2) {
        return None;
    }
    let half = pow_mod(a, r / 2, n);
    if half == n - 1 {
        return None;
    }
    [gcd(half + 1, n), gcd(half.wrapping_sub(1), n)]
        .into_iter()
        .find(|&candidate| candidate > 1 && candidate < n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(17, 5), 1);
        assert_eq!(gcd(0, 7), 7);
        assert_eq!(gcd(7, 0), 7);
    }

    #[test]
    fn pow_mod_matches_naive() {
        for base in 1..20u64 {
            for exp in 0..10u64 {
                let naive = (0..exp).fold(1u64, |acc, _| acc * base % 1009);
                assert_eq!(pow_mod(base, exp, 1009), naive);
            }
        }
    }

    #[test]
    fn pow_mod_handles_large_operands() {
        // Large inputs exercise the u128 path.
        let m = (1u64 << 62) - 57;
        assert_eq!(pow_mod(2, 0, m), 1);
        let x = pow_mod(0x0123_4567_89ab_cdef, 0xfedc_ba98, m);
        assert!(x < m);
    }

    #[test]
    fn inverse_mod_roundtrips() {
        for a in 1..50u64 {
            if gcd(a, 101) == 1 {
                let inv = inverse_mod(a, 101).expect("101 is prime");
                assert_eq!(mul_mod(a, inv, 101), 1);
            }
        }
        assert_eq!(inverse_mod(6, 9), None);
    }

    #[test]
    fn primality_small_values() {
        let primes: Vec<u64> = (0..60).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]
        );
    }

    #[test]
    fn primality_benchmark_moduli_are_composite() {
        // The paper's Table II moduli must be composite (factorable).
        for n in [1007u64, 1851, 2561, 7361, 5513, 8193, 11623] {
            assert!(!is_prime(n), "{n} must be composite");
        }
        assert_eq!(1007, 19 * 53);
        assert_eq!(11623, 59 * 197);
    }

    #[test]
    fn order_divides_carmichael() {
        // ord(2 mod 15) = 4: 2,4,8,1.
        assert_eq!(multiplicative_order(2, 15), 4);
        assert_eq!(multiplicative_order(7, 15), 4);
        assert_eq!(multiplicative_order(4, 15), 2);
    }

    #[test]
    fn convergents_of_known_fraction() {
        // 85/256 ≈ 1/3: convergents 0/1, 1/3, 84/253 (42/128 reduced? no:
        // continued fraction of 85/256 = [0;3,85] → 0/1, 1/3, 85/256).
        let cs = convergents(85, 8, 300);
        assert_eq!(
            cs[0],
            Convergent {
                numerator: 0,
                denominator: 1
            }
        );
        assert_eq!(
            cs[1],
            Convergent {
                numerator: 1,
                denominator: 3
            }
        );
        assert_eq!(
            *cs.last().expect("nonempty"),
            Convergent {
                numerator: 85,
                denominator: 256
            }
        );
    }

    #[test]
    fn convergents_respect_max_denominator() {
        let cs = convergents(85, 8, 10);
        assert!(cs.iter().all(|c| c.denominator <= 10));
        assert_eq!(cs.len(), 2);
    }

    #[test]
    fn factor_from_order_on_15() {
        // a=7, N=15, r=4: 7² = 49 ≡ 4; gcd(5,15)=5, gcd(3,15)=3.
        let f = factor_from_order(15, 7, 4).expect("even order factors 15");
        assert!(f == 3 || f == 5);
    }

    #[test]
    fn factor_from_phase_recovers_factor() {
        // Ideal phase measurement for N=15, a=7 (r=4) with 8 bits:
        // x = 2^8 * k / 4 for k=1 → 64.
        let f = factor_from_phase(15, 7, 64, 8).expect("phase 64/256 = 1/4");
        assert!(f == 3 || f == 5);
    }

    #[test]
    fn factor_from_phase_handles_zero() {
        assert_eq!(factor_from_phase(15, 7, 0, 8), None);
    }

    #[test]
    fn bit_length_values() {
        assert_eq!(bit_length(0), 1);
        assert_eq!(bit_length(1), 1);
        assert_eq!(bit_length(2), 2);
        assert_eq!(bit_length(1007), 10);
        assert_eq!(bit_length(u64::MAX), 64);
    }
}

//! Quantum Fourier transform circuits.

use std::f64::consts::PI;

use ddsim_circuit::Circuit;

/// Appends the QFT on the given qubit slice (most significant first),
/// without the final bit-reversal swaps.
///
/// Omitting the swaps is the usual convention inside arithmetic circuits
/// (Draper adders): the surrounding code simply indexes the register in
/// reversed order.
pub fn append_qft_no_swap(circuit: &mut Circuit, qubits: &[u32]) {
    let m = qubits.len();
    for i in 0..m {
        circuit.h(qubits[i]);
        for j in (i + 1)..m {
            let angle = PI / f64::from(1u32 << (j - i));
            circuit.cphase(angle, qubits[j], qubits[i]);
        }
    }
}

/// Appends the inverse QFT on the given qubit slice, without swaps.
pub fn append_iqft_no_swap(circuit: &mut Circuit, qubits: &[u32]) {
    let m = qubits.len();
    for i in (0..m).rev() {
        for j in ((i + 1)..m).rev() {
            let angle = -PI / f64::from(1u32 << (j - i));
            circuit.cphase(angle, qubits[j], qubits[i]);
        }
        circuit.h(qubits[i]);
    }
}

/// Appends the full QFT (with bit-reversal swaps) on the qubit slice.
pub fn append_qft(circuit: &mut Circuit, qubits: &[u32]) {
    append_qft_no_swap(circuit, qubits);
    let m = qubits.len();
    for i in 0..m / 2 {
        circuit.swap(qubits[i], qubits[m - 1 - i]);
    }
}

/// Appends the full inverse QFT (with bit-reversal swaps) on the qubit
/// slice.
pub fn append_iqft(circuit: &mut Circuit, qubits: &[u32]) {
    let m = qubits.len();
    for i in 0..m / 2 {
        circuit.swap(qubits[i], qubits[m - 1 - i]);
    }
    append_iqft_no_swap(circuit, qubits);
}

/// A standalone `n`-qubit QFT circuit named `qft_n`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn qft_circuit(n: u32) -> Circuit {
    let mut c = Circuit::new(n);
    c.set_name(format!("qft_{n}"));
    let qubits: Vec<u32> = (0..n).collect();
    append_qft(&mut c, &qubits);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qft_gate_counts() {
        // n H gates + n(n-1)/2 controlled phases + floor(n/2) swaps (3 CX each).
        let c = qft_circuit(5);
        assert_eq!(c.elementary_count(), 5 + 10 + 2 * 3);
    }

    #[test]
    fn qft_followed_by_iqft_has_mirrored_structure() {
        let mut c = Circuit::new(4);
        let qubits: Vec<u32> = (0..4).collect();
        append_qft_no_swap(&mut c, &qubits);
        let forward_len = c.ops().len();
        append_iqft_no_swap(&mut c, &qubits);
        assert_eq!(c.ops().len(), 2 * forward_len);
    }
}

//! Beauregard's 2n+3-qubit circuit for Shor's algorithm (the paper's
//! reference \[27\]) — the Table II benchmark generator.
//!
//! Register layout (qubit 0 topmost, n = bit length of N):
//!
//! | qubits        | role                                                    |
//! |---------------|---------------------------------------------------------|
//! | `0`           | semiclassical control qubit, measured and reset 2n times |
//! | `1 ..= n`     | `x` register (running product), MSB first               |
//! | `n+1 ..= 2n+1`| `b` register (n+1-bit adder target), MSB first          |
//! | `2n+2`        | comparison flag ancilla                                  |
//!
//! The circuit is the semiclassical (one-control-qubit) variant of the
//! paper's Fig. 7: 2n rounds of `H · C-U_{a^{2^k}} · (phase corrections) ·
//! H · measure · reset`, which is exactly how the 2n+3 qubit count is
//! achieved (paper footnote 7). Measured bits m_0..m_{2n-1} form the phase
//! estimate `x = Σ m_i 2^i`; classical post-processing
//! ([`crate::numtheory::factor_from_phase`]) recovers the factors.

use std::f64::consts::PI;

use ddsim_circuit::{Circuit, StandardGate};
use ddsim_dd::Control;

use crate::numtheory::{bit_length, gcd, inverse_mod, pow_mod};
use crate::qft::{append_iqft_no_swap, append_qft_no_swap};

/// A Shor order-finding instance: the number to factor and the co-prime
/// base, as in the paper's `shor_N_a_qubits` benchmark names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShorInstance {
    /// The composite to factor.
    pub modulus: u64,
    /// The base whose multiplicative order is sought.
    pub base: u64,
}

impl ShorInstance {
    /// Validates and creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if `modulus < 3`, `base` is not in `2..modulus`, or
    /// `gcd(base, modulus) != 1` (a shared factor makes the quantum part
    /// pointless — `gcd` already factors N).
    pub fn new(modulus: u64, base: u64) -> Self {
        assert!(modulus >= 3, "modulus too small");
        assert!(base >= 2 && base < modulus, "base out of range");
        assert_eq!(
            gcd(base, modulus),
            1,
            "base shares a factor with the modulus"
        );
        ShorInstance { modulus, base }
    }

    /// Bit length `n` of the modulus.
    pub fn n_bits(&self) -> u32 {
        bit_length(self.modulus)
    }

    /// Total qubits of the Beauregard circuit (`2n + 3`).
    pub fn total_qubits(&self) -> u32 {
        2 * self.n_bits() + 3
    }

    /// Number of measurement rounds / phase bits (`2n`).
    pub fn phase_bits(&self) -> u32 {
        2 * self.n_bits()
    }

    /// The paper's benchmark name, `shor_N_a_qubits`.
    pub fn name(&self) -> String {
        format!(
            "shor_{}_{}_{}",
            self.modulus,
            self.base,
            self.total_qubits()
        )
    }
}

/// Qubit-index bookkeeping for the Beauregard layout.
#[derive(Clone, Debug)]
struct Layout {
    n: u32,
    control: u32,
    x_msb_first: Vec<u32>,
    b_msb_first: Vec<u32>,
    flag: u32,
}

impl Layout {
    fn new(n: u32) -> Self {
        Layout {
            n,
            control: 0,
            x_msb_first: (1..=n).collect(),
            b_msb_first: (n + 1..=2 * n + 1).collect(),
            flag: 2 * n + 2,
        }
    }

    /// Qubit holding bit `k` (LSB = 0) of the x register.
    fn x_bit(&self, k: u32) -> u32 {
        self.x_msb_first[(self.n - 1 - k) as usize]
    }

    /// Qubit holding bit `k` (LSB = 0) of the (n+1)-bit b register.
    fn b_bit(&self, k: u32) -> u32 {
        self.b_msb_first[(self.n - k) as usize]
    }

    /// The b register's most significant (overflow) qubit.
    fn b_msb(&self) -> u32 {
        self.b_msb_first[0]
    }
}

/// Appends the Draper φ-adder of the classical constant `a` (mod `2^m`) to
/// a Fourier-space register listed MSB first, guarded by `controls`.
///
/// In Fourier space, qubit `j` (MSB first among `m`) carries the phase
/// `e^{2πi b / 2^{m-j}}`; adding `a` multiplies it by `e^{2πi a / 2^{m-j}}`
/// — one (controlled) phase gate per qubit.
fn append_phi_add(
    circuit: &mut Circuit,
    register_msb_first: &[u32],
    a: u64,
    subtract: bool,
    controls: &[Control],
) {
    let m = register_msb_first.len() as u32;
    for (j, &qubit) in register_msb_first.iter().enumerate() {
        let denom_bits = m - j as u32;
        let reduced = if denom_bits >= 64 {
            a
        } else {
            a % (1u64 << denom_bits)
        };
        if reduced == 0 {
            continue;
        }
        let mut angle = 2.0 * PI * (reduced as f64) / (1u64 << denom_bits) as f64;
        if subtract {
            angle = -angle;
        }
        if controls.is_empty() {
            circuit.phase(angle, qubit);
        } else {
            circuit.controlled_gate(StandardGate::Phase(angle), controls.to_vec(), qubit);
        }
    }
}

/// Appends Beauregard's doubly controlled modular adder
/// `|b⟩ → |b + a mod N⟩` on the Fourier-space b register.
///
/// Requires `a < N`, `b < N` on entry; the flag ancilla starts and ends in
/// |0⟩.
fn append_phi_add_mod(
    circuit: &mut Circuit,
    layout: &Layout,
    a: u64,
    modulus: u64,
    controls: &[Control],
) {
    let b = &layout.b_msb_first;
    let flag = layout.flag;
    debug_assert!(a < modulus);

    append_phi_add(circuit, b, a, false, controls);
    append_phi_add(circuit, b, modulus, true, &[]);
    append_iqft_no_swap(circuit, b);
    // b - a - N < 0 ⟺ MSB set after two's-complement wrap: record in flag.
    circuit.cx(layout.b_msb(), flag);
    append_qft_no_swap(circuit, b);
    append_phi_add(circuit, b, modulus, false, &[Control::pos(flag)]);
    // Uncompute the flag: after subtracting a again, the MSB is clear
    // exactly when the first comparison had set the flag.
    append_phi_add(circuit, b, a, true, controls);
    append_iqft_no_swap(circuit, b);
    circuit.x(layout.b_msb());
    circuit.cx(layout.b_msb(), flag);
    circuit.x(layout.b_msb());
    append_qft_no_swap(circuit, b);
    append_phi_add(circuit, b, a, false, controls);
}

/// Appends the controlled modular product accumulator
/// `|x⟩|b⟩ → |x⟩|b + a·x mod N⟩` (control: the top qubit).
fn append_cmult(circuit: &mut Circuit, layout: &Layout, a: u64, modulus: u64) {
    append_qft_no_swap(circuit, &layout.b_msb_first);
    for k in 0..layout.n {
        let addend = pow_mod(2, u64::from(k), modulus);
        let addend = crate::numtheory::mul_mod(addend, a, modulus);
        append_phi_add_mod(
            circuit,
            layout,
            addend,
            modulus,
            &[Control::pos(layout.control), Control::pos(layout.x_bit(k))],
        );
    }
    append_iqft_no_swap(circuit, &layout.b_msb_first);
}

/// The controlled modular multiplier `C-U_a : |x⟩ → |a·x mod N⟩` as a
/// standalone circuit fragment over the full 2n+3 layout, controlled by
/// qubit 0. Exposed for tests and for building custom schedules.
///
/// # Panics
///
/// Panics if `a` is not invertible mod `N`.
pub fn controlled_modular_multiplier(inst: ShorInstance, a: u64) -> Circuit {
    let n = inst.n_bits();
    let layout = Layout::new(n);
    let a = a % inst.modulus;
    let a_inv = inverse_mod(a, inst.modulus).expect("multiplier must be invertible mod N");
    let mut c = Circuit::new(inst.total_qubits());

    // |x⟩|0⟩ → |x⟩|a·x mod N⟩
    append_cmult(&mut c, &layout, a, inst.modulus);
    // Controlled swap x ↔ low n bits of b.
    for k in 0..n {
        c.cswap(layout.control, layout.x_bit(k), layout.b_bit(k));
    }
    // |a·x⟩|x⟩ → |a·x⟩|x - a⁻¹·(a·x)⟩ = |a·x⟩|0⟩, via the inverse of CMULT(a⁻¹).
    let mut uncompute = Circuit::new(inst.total_qubits());
    append_cmult(&mut uncompute, &layout, a_inv, inst.modulus);
    let inverse = uncompute
        .inverse()
        .expect("cmult fragment is purely unitary");
    c.append(&inverse);
    c
}

/// The full semiclassical Beauregard circuit for an instance: 2n
/// measure-and-reset rounds over 2n+3 qubits, named `shor_N_a_qubits`.
pub fn shor_circuit(inst: ShorInstance) -> Circuit {
    let n = inst.n_bits();
    let layout = Layout::new(n);
    let rounds = inst.phase_bits();
    let mut c = Circuit::with_cbits(inst.total_qubits(), rounds as usize);
    c.set_name(inst.name());

    // x register starts at |1⟩ (bit 0 set).
    c.x(layout.x_bit(0));

    for i in 0..rounds {
        let exponent = 1u64 << (rounds - 1 - i);
        let multiplier = pow_mod(inst.base, exponent, inst.modulus);
        c.h(layout.control);
        let cua = controlled_modular_multiplier(inst, multiplier);
        c.append(&cua);
        // Semiclassical inverse-QFT phase corrections from earlier bits.
        for j in 0..i {
            let angle = -PI / f64::from(1u32 << (i - j));
            c.classical_gate(StandardGate::Phase(angle), layout.control, j as usize, true);
        }
        c.h(layout.control);
        c.measure(layout.control, i as usize);
        // Reset the control for the next round.
        c.classical_gate(StandardGate::X, layout.control, i as usize, true);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsim_circuit::{lower_swap, Operation};
    use ddsim_complex::Complex;
    use ddsim_dd::reference::DenseVector;

    /// Applies a unitary circuit fragment to a dense state (tests only).
    fn apply_dense(circuit: &Circuit, state: &mut DenseVector) {
        for op in circuit.flattened().ops() {
            match op {
                Operation::Gate(g) => {
                    let controls: Vec<u32> = g
                        .controls
                        .iter()
                        .map(|ctl| {
                            assert_eq!(ctl.polarity, ddsim_dd::ControlPolarity::Positive);
                            ctl.qubit
                        })
                        .collect();
                    state.apply_single_qubit(g.gate.matrix(), g.target, &controls);
                }
                Operation::Swap { a, b, controls } => {
                    for g in lower_swap(*a, *b, controls) {
                        let controls: Vec<u32> = g.controls.iter().map(|ctl| ctl.qubit).collect();
                        state.apply_single_qubit(g.gate.matrix(), g.target, &controls);
                    }
                }
                Operation::Barrier => {}
                other => panic!("non-unitary op in fragment: {other:?}"),
            }
        }
    }

    /// Basis index for |control⟩|x⟩|b⟩|flag⟩ in the Beauregard layout.
    fn basis(inst: ShorInstance, control: u64, x: u64, b: u64, flag: u64) -> u64 {
        let n = inst.n_bits();
        let total = inst.total_qubits();
        // Qubit q occupies bit (total-1-q) of the index.
        let mut index = 0u64;
        let mut set = |qubit: u32, value: u64| {
            if value & 1 == 1 {
                index |= 1 << (total - 1 - qubit);
            }
        };
        set(0, control);
        for k in 0..n {
            set(n - k, (x >> k) & 1); // x_bit(k) = qubit n-k
        }
        for k in 0..=n {
            set(2 * n + 1 - k, (b >> k) & 1); // b_bit(k) = qubit 2n+1-k
        }
        set(2 * n + 2, flag);
        index
    }

    #[test]
    fn instance_validation_and_naming() {
        let inst = ShorInstance::new(15, 7);
        assert_eq!(inst.n_bits(), 4);
        assert_eq!(inst.total_qubits(), 11);
        assert_eq!(inst.name(), "shor_15_7_11");
        let big = ShorInstance::new(1007, 602);
        assert_eq!(
            big.total_qubits(),
            23,
            "matches the paper's shor_1007_602_23"
        );
    }

    #[test]
    #[should_panic(expected = "shares a factor")]
    fn rejects_non_coprime_base() {
        let _ = ShorInstance::new(15, 6);
    }

    #[test]
    fn phi_adder_adds_constants() {
        // Register of 4 qubits; check b + a mod 16 for several pairs.
        let m = 4u32;
        for (b0, a) in [(3u64, 5u64), (0, 7), (9, 9), (15, 1)] {
            let mut c = Circuit::new(m);
            let regs: Vec<u32> = (0..m).collect();
            append_qft_no_swap(&mut c, &regs);
            append_phi_add(&mut c, &regs, a, false, &[]);
            append_iqft_no_swap(&mut c, &regs);
            let mut state = DenseVector::basis(m, b0);
            apply_dense(&c, &mut state);
            let want = (b0 + a) % 16;
            let amp = state.amplitudes()[want as usize];
            assert!(
                amp.approx_eq(Complex::ONE, 1e-8) || amp.abs() > 0.999,
                "b={b0}, a={a}: amplitude at {want} is {amp}"
            );
        }
    }

    #[test]
    fn phi_adder_subtracts_with_wraparound() {
        let m = 4u32;
        let mut c = Circuit::new(m);
        let regs: Vec<u32> = (0..m).collect();
        append_qft_no_swap(&mut c, &regs);
        append_phi_add(&mut c, &regs, 5, true, &[]);
        append_iqft_no_swap(&mut c, &regs);
        let mut state = DenseVector::basis(m, 2);
        apply_dense(&c, &mut state);
        // 2 - 5 mod 16 = 13.
        assert!(state.amplitudes()[13].abs() > 0.999);
    }

    #[test]
    fn controlled_multiplier_maps_x_to_ax_mod_n() {
        let inst = ShorInstance::new(15, 7);
        let cua = controlled_modular_multiplier(inst, 7);
        for x in [1u64, 2, 4, 7, 11, 13] {
            let mut state = DenseVector::basis(inst.total_qubits(), basis(inst, 1, x, 0, 0));
            apply_dense(&cua, &mut state);
            let want = basis(inst, 1, (7 * x) % 15, 0, 0);
            let amp = state.amplitudes()[want as usize];
            assert!(
                amp.abs() > 0.999,
                "x={x}: |{want:b}⟩ amplitude is {amp}, state norm {}",
                state.norm_sqr()
            );
        }
    }

    #[test]
    fn multiplier_is_identity_when_control_is_zero() {
        let inst = ShorInstance::new(15, 7);
        let cua = controlled_modular_multiplier(inst, 7);
        for x in [1u64, 5, 8] {
            let mut state = DenseVector::basis(inst.total_qubits(), basis(inst, 0, x, 0, 0));
            apply_dense(&cua, &mut state);
            let want = basis(inst, 0, x, 0, 0);
            assert!(
                state.amplitudes()[want as usize].abs() > 0.999,
                "control=0 must leave |x={x}⟩ unchanged"
            );
        }
    }

    #[test]
    fn full_circuit_structure() {
        let inst = ShorInstance::new(15, 7);
        let c = shor_circuit(inst);
        assert_eq!(c.qubits(), 11);
        assert_eq!(c.cbits(), 8);
        let measures = c
            .ops()
            .iter()
            .filter(|op| matches!(op, Operation::Measure { .. }))
            .count();
        assert_eq!(measures, 8, "2n measurement rounds");
        assert!(c.has_nonunitary());
    }
}

//! Exact noisy simulation: the density matrix ρ as a matrix DD, evolved
//! with Kraus channels — ROADMAP item 4(b), grounded in "Decision
//! Diagrams for Quantum Computing" (arXiv 2302.04687).
//!
//! Where the trajectory sampler in [`noise`](crate::noise) *approximates*
//! the noisy evolution by averaging over stochastically perturbed pure
//! states, this module computes it exactly: a gate `U` maps `ρ → UρU†`
//! and a channel with Kraus operators `{Kᵢ}` maps `ρ → Σ Kᵢ ρ Kᵢ†` —
//! both expressed entirely through the existing governed matrix kernels
//! (`mat_mat_mul`, `mat_conj_transpose`, `add_mat`, `mat_scale`), so
//! node/byte budgets, deadlines, and cancellation apply to exact noisy
//! runs exactly as they do to pure-state runs. No new DD kernel was
//! needed.
//!
//! The noise model mirrors [`DepolarizingNoise`] gate-for-gate: after
//! each elementary unitary, every qubit the gate touched passes through
//! the depolarizing channel `ρ → (1-p)ρ + (p/3)(XρX + YρY + ZρZ)`, which
//! is precisely the ensemble average of the trajectory sampler's
//! "uniform random Pauli with probability p" insertion. Trajectory
//! counts therefore converge to this module's diagonal as the trajectory
//! count grows — the cross-check the fuzz oracle and the tests here
//! exploit in both directions.
//!
//! Like the trajectory model (see [`sample_noisy_circuit`]), noise is
//! attached to *gates* only: `Measure` and `Reset` are treated as ideal
//! instruments (their Kraus maps are applied, but no depolarizing step
//! follows them).
//!
//! [`sample_noisy_circuit`]: crate::noise::sample_noisy_circuit

use std::time::Instant;

use ddsim_circuit::{lower_swap, Circuit, GateOp, Operation};
use ddsim_complex::Complex;
use ddsim_dd::{CancelToken, DdManager, FaultKind, MatEdge, Matrix2};

use crate::engine::SimOptions;
use crate::error::{widen_dd_error, SimError};
use crate::noise::DepolarizingNoise;
use crate::stats::RunStats;

/// Exact noisy simulator: ρ as a matrix DD under per-gate depolarizing
/// channels.
///
/// # Examples
///
/// ```
/// use ddsim_circuit::Circuit;
/// use ddsim_core::density::DensitySimulator;
/// use ddsim_core::noise::DepolarizingNoise;
/// use ddsim_core::SimOptions;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let mut sim = DensitySimulator::with_options(
///     2,
///     DepolarizingNoise::new(0.0),
///     SimOptions::default(),
/// );
/// sim.run(&bell)?;
/// assert!((sim.probability_of(0b00) - 0.5).abs() < 1e-10);
/// assert!((sim.trace() - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub struct DensitySimulator {
    dd: DdManager,
    n: u32,
    rho: MatEdge,
    noise: DepolarizingNoise,
    options: SimOptions,
    stats: RunStats,
}

impl DensitySimulator {
    /// A simulator over `n` qubits in ρ = |0…0⟩⟨0…0| with the given noise
    /// model and options.
    ///
    /// Of [`SimOptions`], this path honors `dd_config` (tolerance,
    /// budgets, fault injection), `deadline`, and — through
    /// [`set_cancel_token`](Self::set_cancel_token) — cancellation. The
    /// combining `strategy` is a pure-state concern (ρ evolution is
    /// already matrix-matrix shaped) and `threads`/`reorder` are not yet
    /// wired here.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 24 (ρ spans 2n qubit-levels of
    /// diagram; the dense accessors below stay addressable).
    pub fn with_options(n: u32, noise: DepolarizingNoise, options: SimOptions) -> Self {
        assert!((1..=24).contains(&n), "qubit count out of range");
        let mut dd = DdManager::with_config(options.dd_config);
        let rho = dd.mat_from_sparse(n, &[(0, 0, Complex::ONE)]);
        dd.inc_ref_mat(rho);
        DensitySimulator {
            dd,
            n,
            rho,
            noise,
            options,
            stats: RunStats::default(),
        }
    }

    /// Qubit count.
    pub fn qubits(&self) -> u32 {
        self.n
    }

    /// Installs (or clears) a cooperative cancellation token, checked
    /// between operations and — on governed configurations — inside the
    /// DD recursions.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.dd.set_cancel_token(token);
    }

    /// ⟨i|ρ|i⟩ — the probability of measuring `outcome` on all qubits.
    pub fn probability_of(&self, outcome: u64) -> f64 {
        self.dd.mat_entry(self.rho, outcome, outcome).re
    }

    /// tr ρ. Exactly 1 for any trace-preserving evolution; the fuzz
    /// oracle uses deviation from 1 to catch dropped Kraus terms.
    /// Costs `2ⁿ` diagonal lookups.
    pub fn trace(&self) -> f64 {
        (0..1u64 << self.n)
            .map(|i| self.dd.mat_entry(self.rho, i, i).re)
            .sum()
    }

    /// The full diagonal of ρ (index = measurement outcome). Costs `2ⁿ`
    /// lookups — intended for the small registers the exact path targets.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..1u64 << self.n)
            .map(|i| self.dd.mat_entry(self.rho, i, i).re)
            .collect()
    }

    /// ρ as a dense matrix (tests and cross-checks; `4ⁿ` entries).
    pub fn dense(&self) -> Vec<Vec<Complex>> {
        self.dd.mat_to_dense(self.rho)
    }

    /// Node count of the ρ DD.
    pub fn rho_nodes(&self) -> usize {
        self.dd.mat_node_count(self.rho)
    }

    /// Runs a circuit, evolving ρ through every operation.
    ///
    /// # Errors
    ///
    /// [`SimError::WidthMismatch`] if the circuit's width differs;
    /// [`SimError::Internal`] for [`Operation::Classical`] (an exact
    /// density matrix carries no sampled classical register to condition
    /// on — use the trajectory sampler for measurement feedback);
    /// budget/deadline/cancellation errors as in the pure-state engine.
    pub fn run(&mut self, circuit: &Circuit) -> Result<RunStats, SimError> {
        if circuit.qubits() != self.n {
            return Err(SimError::WidthMismatch {
                expected_qubits: self.n,
                found_qubits: circuit.qubits(),
            });
        }
        let started = Instant::now();
        // Always (re)arm, as the pure-state engine does: a stale deadline
        // from a previous run must not leak into this one.
        self.dd
            .set_deadline(self.options.deadline.map(|d| Instant::now() + d));
        let before = self.dd.stats();
        let result = self.run_ops(circuit.flattened().ops());
        self.stats.absorb_dd_delta(before, self.dd.stats());
        self.stats.wall_time += started.elapsed();
        let nodes = self.rho_nodes();
        self.stats.peak_matrix_nodes = self.stats.peak_matrix_nodes.max(nodes);
        self.stats.final_state_nodes = nodes;
        result?;
        Ok(self.stats.clone())
    }

    fn run_ops(&mut self, ops: &[Operation]) -> Result<(), SimError> {
        for op in ops {
            // Prompt per-op governor check, mirroring the engine: even
            // when every individual DD op is cheap, deadline expiry and
            // cancellation surface at the next op boundary.
            if let Some(token) = self.dd.cancel_token() {
                if token.is_cancelled() {
                    return Err(SimError::Cancelled);
                }
            }
            if let Some(deadline) = self.dd.deadline() {
                if Instant::now() >= deadline {
                    return Err(SimError::DeadlineExceeded);
                }
            }
            match op {
                Operation::Gate(g) => {
                    self.apply_gate(g)?;
                    self.stats.elementary_gates += 1;
                    let touched: Vec<u32> = g
                        .controls
                        .iter()
                        .map(|c| c.qubit)
                        .chain(std::iter::once(g.target))
                        .collect();
                    self.depolarize_all(&touched)?;
                }
                Operation::Swap { a, b, controls } => {
                    for g in lower_swap(*a, *b, controls) {
                        self.apply_gate(&g)?;
                        self.stats.elementary_gates += 1;
                    }
                    // One noise step for the whole swap, matching the
                    // trajectory model's treatment of Swap as a single
                    // elementary op touching controls + both qubits.
                    let touched: Vec<u32> =
                        controls.iter().map(|c| c.qubit).chain([*a, *b]).collect();
                    self.depolarize_all(&touched)?;
                }
                Operation::Measure { qubit, .. } => {
                    // Unread projective measurement = complete dephasing:
                    // ρ → P₀ρP₀ + P₁ρP₁. The classical outcome is not
                    // recorded (ρ is the average over both branches).
                    self.apply_channel(*qubit, &[(Complex::ONE, PROJ0), (Complex::ONE, PROJ1)])?;
                    self.stats.elementary_gates += 1;
                }
                Operation::Reset { qubit } => {
                    // ρ → P₀ρP₀ + (XP₁)ρ(XP₁)†: keep the |0⟩ branch,
                    // flip the |1⟩ branch down.
                    self.apply_channel(*qubit, &[(Complex::ONE, PROJ0), (Complex::ONE, LOWER)])?;
                    self.stats.elementary_gates += 1;
                }
                Operation::Classical { .. } => {
                    return Err(SimError::Internal(
                        "exact density-matrix simulation cannot condition on classical \
                         bits; use the trajectory sampler for measurement-feedback \
                         circuits"
                            .into(),
                    ));
                }
                Operation::Repeat { body, times } => {
                    for _ in 0..*times {
                        self.run_ops(body)?;
                    }
                }
                Operation::Barrier => {}
            }
            let nodes = self.dd.mat_node_count(self.rho);
            self.stats.peak_matrix_nodes = self.stats.peak_matrix_nodes.max(nodes);
            if self.dd.maybe_collect() {
                self.stats.gc_runs += 1;
            }
        }
        Ok(())
    }

    /// ρ ← UρU† for an elementary (possibly controlled) gate.
    fn apply_gate(&mut self, g: &GateOp) -> Result<(), SimError> {
        let u = if g.controls.is_empty() {
            self.dd.mat_single_qubit(self.n, g.target, g.gate.matrix())
        } else {
            self.dd
                .mat_controlled(self.n, &g.controls, g.target, g.gate.matrix())
        };
        let new = self.conjugate(u, self.rho)?;
        self.replace_rho(new);
        Ok(())
    }

    /// Depolarizes each listed qubit in turn (single-qubit channels on
    /// distinct qubits commute, so the order is immaterial).
    fn depolarize_all(&mut self, qubits: &[u32]) -> Result<(), SimError> {
        for &q in qubits {
            self.depolarize(q)?;
        }
        Ok(())
    }

    /// One depolarizing step on `q`: ρ ← (1-p)ρ + (p/3)(XρX + YρY + ZρZ).
    fn depolarize(&mut self, q: u32) -> Result<(), SimError> {
        let p = self.noise.probability;
        if p == 0.0 {
            return Ok(());
        }
        let w = Complex::new((p / 3.0).sqrt(), 0.0);
        let x: Matrix2 = [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]];
        let y: Matrix2 = [
            [Complex::ZERO, Complex::new(0.0, -1.0)],
            [Complex::new(0.0, 1.0), Complex::ZERO],
        ];
        let z: Matrix2 = [
            [Complex::ONE, Complex::ZERO],
            [Complex::ZERO, -Complex::ONE],
        ];
        let keep = Complex::new((1.0 - p).sqrt(), 0.0);
        let id: Matrix2 = [[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::ONE]];
        let mut kraus: Vec<(Complex, Matrix2)> = vec![(keep, id), (w, x), (w, y), (w, z)];
        if self.dd.config().fault == FaultKind::KrausDropsChannel {
            // Injected defect for the fuzz self-check: lose the Z term,
            // making the map non-trace-preserving by p/3 per application.
            kraus.pop();
        }
        self.apply_channel(q, &kraus)
    }

    /// ρ ← Σᵢ (cᵢ Kᵢ) ρ (cᵢ Kᵢ)† for single-qubit Kraus operators given
    /// as (scale, 2×2 matrix) pairs embedded on `q`.
    fn apply_channel(&mut self, q: u32, kraus: &[(Complex, Matrix2)]) -> Result<(), SimError> {
        let rho = self.rho;
        let mut acc = MatEdge::ZERO;
        for &(scale, m) in kraus {
            let embedded = self.dd.mat_single_qubit(self.n, q, m);
            let k = self.dd.mat_scale(embedded, scale);
            let term = match self.conjugate(k, rho) {
                Ok(t) => t,
                Err(e) => {
                    self.dd.dec_ref_mat(acc);
                    return Err(e);
                }
            };
            self.dd.inc_ref_mat(term);
            self.dd.inc_ref_mat(acc);
            let sum = self.dd.add_mat(acc, term);
            self.dd.dec_ref_mat(acc);
            self.dd.dec_ref_mat(term);
            match sum {
                Ok(s) => acc = s,
                Err(e) => return Err(widen_dd_error(e, &self.dd)),
            }
        }
        self.dd.inc_ref_mat(acc);
        self.replace_rho_preref(acc);
        Ok(())
    }

    /// K ρ K† through the governed MxM and conjugate-transpose kernels.
    fn conjugate(&mut self, k: MatEdge, rho: MatEdge) -> Result<MatEdge, SimError> {
        self.dd.inc_ref_mat(k);
        let left = self.dd.mat_mat_mul(k, rho);
        let left = match left {
            Ok(l) => l,
            Err(e) => {
                self.dd.dec_ref_mat(k);
                return Err(widen_dd_error(e, &self.dd));
            }
        };
        self.dd.inc_ref_mat(left);
        let k_dag = self.dd.mat_conj_transpose(k);
        self.dd.dec_ref_mat(k);
        let k_dag = match k_dag {
            Ok(d) => d,
            Err(e) => {
                self.dd.dec_ref_mat(left);
                return Err(widen_dd_error(e, &self.dd));
            }
        };
        self.dd.inc_ref_mat(k_dag);
        let out = self.dd.mat_mat_mul(left, k_dag);
        self.dd.dec_ref_mat(left);
        self.dd.dec_ref_mat(k_dag);
        out.map_err(|e| widen_dd_error(e, &self.dd))
    }

    fn replace_rho(&mut self, new: MatEdge) {
        self.dd.inc_ref_mat(new);
        self.replace_rho_preref(new);
    }

    /// Installs an already-referenced edge as ρ.
    fn replace_rho_preref(&mut self, new: MatEdge) {
        self.dd.dec_ref_mat(self.rho);
        self.rho = new;
    }
}

/// Convenience one-shot: runs `circuit` under `noise` exactly and returns
/// the simulator plus its stats.
///
/// # Errors
///
/// See [`DensitySimulator::run`].
pub fn simulate_density(
    circuit: &Circuit,
    noise: DepolarizingNoise,
    options: SimOptions,
) -> Result<(DensitySimulator, RunStats), SimError> {
    let mut sim = DensitySimulator::with_options(circuit.qubits(), noise, options);
    let stats = sim.run(circuit)?;
    Ok((sim, stats))
}

const PROJ0: Matrix2 = [
    [Complex::ONE, Complex::ZERO],
    [Complex::ZERO, Complex::ZERO],
];
const PROJ1: Matrix2 = [
    [Complex::ZERO, Complex::ZERO],
    [Complex::ZERO, Complex::ONE],
];
/// X·P₁ — maps |1⟩ to |0⟩, annihilates |0⟩ (the reset "flip" branch).
const LOWER: Matrix2 = [
    [Complex::ZERO, Complex::ONE],
    [Complex::ZERO, Complex::ZERO],
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::{run_noisy_ensemble, sample_noisy_circuit};
    use crate::{DdConfig, SimOptions, Simulator};
    use ddsim_dd::reference::DenseVector;

    /// Dense density-matrix reference: evolves ρ as a plain 2ⁿ×2ⁿ array
    /// with the same per-gate depolarizing model, built only on
    /// `DenseVector`-style column operations (independent of the DD
    /// package's matrix kernels).
    struct DenseDensity {
        n: u32,
        rho: Vec<Vec<Complex>>,
    }

    impl DenseDensity {
        fn new(n: u32) -> Self {
            let dim = 1usize << n;
            let mut rho = vec![vec![Complex::ZERO; dim]; dim];
            rho[0][0] = Complex::ONE;
            DenseDensity { n, rho }
        }

        /// ρ ← AρA† for a dense single-qubit (possibly controlled)
        /// operator given as a closure that maps one state column.
        fn conjugate_with(&mut self, apply: impl Fn(&mut DenseVector)) {
            let dim = self.rho.len();
            // Columns of AρA†: apply A to each column of ρ, then apply
            // conj(A) to each row of the result — i.e. apply A to each
            // column of the conjugate-transposed intermediate.
            let mut cols: Vec<Vec<Complex>> = (0..dim)
                .map(|c| {
                    let col: Vec<Complex> = (0..dim).map(|r| self.rho[r][c]).collect();
                    let mut v = DenseVector::from_amplitudes(col);
                    apply(&mut v);
                    v.amplitudes().to_vec()
                })
                .collect();
            // Now rows: (AρA†)ᵀ* = A (ρ†A†)… simpler: B = Aρ is in
            // `cols` (cols[c][r] = B[r][c]). AρA† = B A† = (A B†)†.
            let mut out = vec![vec![Complex::ZERO; dim]; dim];
            for r in 0..dim {
                let row: Vec<Complex> = (0..dim).map(|c| cols[c][r].conj()).collect();
                let mut v = DenseVector::from_amplitudes(row);
                apply(&mut v);
                let a = v.amplitudes();
                for c in 0..dim {
                    out[r][c] = a[c].conj();
                }
            }
            cols.clear();
            self.rho = out;
        }

        fn gate(&mut self, g: &GateOp) {
            let u = g.gate.matrix();
            let controls = g.controls.clone();
            let target = g.target;
            self.conjugate_with(|v| v.apply_controlled(u, target, &controls));
        }

        fn kraus(&mut self, q: u32, terms: &[(Complex, Matrix2)]) {
            let dim = self.rho.len();
            let mut sum = vec![vec![Complex::ZERO; dim]; dim];
            let original = self.rho.clone();
            for &(scale, m) in terms {
                self.rho = original.clone();
                let scaled: Matrix2 = [
                    [m[0][0] * scale, m[0][1] * scale],
                    [m[1][0] * scale, m[1][1] * scale],
                ];
                self.conjugate_with(|v| v.apply_controlled(scaled, q, &[]));
                for (sum_row, rho_row) in sum.iter_mut().zip(&self.rho) {
                    for (s, &v) in sum_row.iter_mut().zip(rho_row) {
                        *s += v;
                    }
                }
            }
            self.rho = sum;
        }

        fn depolarize(&mut self, q: u32, p: f64) {
            if p == 0.0 {
                return;
            }
            let w = Complex::new((p / 3.0).sqrt(), 0.0);
            let keep = Complex::new((1.0 - p).sqrt(), 0.0);
            let x: Matrix2 = [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]];
            let y: Matrix2 = [
                [Complex::ZERO, Complex::new(0.0, -1.0)],
                [Complex::new(0.0, 1.0), Complex::ZERO],
            ];
            let z: Matrix2 = [
                [Complex::ONE, Complex::ZERO],
                [Complex::ZERO, -Complex::ONE],
            ];
            let id: Matrix2 = [[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::ONE]];
            self.kraus(q, &[(keep, id), (w, x), (w, y), (w, z)]);
        }

        /// Runs a circuit with the same op semantics as the DD path.
        fn run(&mut self, circuit: &Circuit, p: f64) {
            for op in circuit.flattened().ops() {
                match op {
                    Operation::Gate(g) => {
                        self.gate(g);
                        for q in g
                            .controls
                            .iter()
                            .map(|c| c.qubit)
                            .chain(std::iter::once(g.target))
                        {
                            self.depolarize(q, p);
                        }
                    }
                    Operation::Swap { a, b, controls } => {
                        for g in lower_swap(*a, *b, controls) {
                            self.gate(&g);
                        }
                        for q in controls.iter().map(|c| c.qubit).chain([*a, *b]) {
                            self.depolarize(q, p);
                        }
                    }
                    Operation::Measure { qubit, .. } => {
                        self.kraus(*qubit, &[(Complex::ONE, PROJ0), (Complex::ONE, PROJ1)]);
                    }
                    Operation::Reset { qubit } => {
                        self.kraus(*qubit, &[(Complex::ONE, PROJ0), (Complex::ONE, LOWER)]);
                    }
                    Operation::Barrier => {}
                    other => panic!("unsupported op in dense reference: {other:?}"),
                }
            }
            let _ = self.n;
        }
    }

    fn max_dev(a: &[Vec<Complex>], b: &[Vec<Complex>]) -> f64 {
        a.iter()
            .zip(b.iter())
            .flat_map(|(ra, rb)| ra.iter().zip(rb.iter()))
            .map(|(&ea, &eb)| (ea - eb).abs())
            .fold(0.0, f64::max)
    }

    fn noisy_test_circuit() -> Circuit {
        let mut c = Circuit::with_cbits(3, 1);
        c.h(0).cx(0, 1).rz(0.7, 1).swap(1, 2).x(2);
        c.measure(2, 0);
        c.reset(2);
        c.h(2).cx(2, 0);
        c
    }

    #[test]
    fn exact_density_matches_dense_reference_to_1e9() {
        for p in [0.0, 0.05, 0.3] {
            let circuit = noisy_test_circuit();
            let (sim, _) =
                simulate_density(&circuit, DepolarizingNoise::new(p), SimOptions::default())
                    .expect("run");
            let mut dense = DenseDensity::new(3);
            dense.run(&circuit, p);
            let dev = max_dev(&sim.dense(), &dense.rho);
            assert!(dev < 1e-9, "p={p}: deviation {dev:.3e}");
            assert!((sim.trace() - 1.0).abs() < 1e-9, "p={p}: trace drifted");
        }
    }

    #[test]
    fn zero_noise_diagonal_matches_pure_state() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).cx(1, 2).t(2).cx(2, 3).h(3);
        let (density, _) = simulate_density(&c, DepolarizingNoise::new(0.0), SimOptions::default())
            .expect("density run");
        let mut pure = Simulator::new(4);
        pure.run(&c).expect("pure run");
        for outcome in 0..16u64 {
            let d = density.probability_of(outcome);
            let v = pure.probability_of(outcome);
            assert!((d - v).abs() < 1e-10, "outcome {outcome}: {d} vs {v}");
        }
    }

    #[test]
    fn measurement_is_complete_dephasing() {
        let mut c = Circuit::with_cbits(1, 1);
        c.h(0);
        c.measure(0, 0);
        let (sim, _) =
            simulate_density(&c, DepolarizingNoise::new(0.0), SimOptions::default()).expect("run");
        let rho = sim.dense();
        assert!((rho[0][0].re - 0.5).abs() < 1e-12);
        assert!((rho[1][1].re - 0.5).abs() < 1e-12);
        assert!(rho[0][1].abs() < 1e-12, "coherence must vanish");
    }

    #[test]
    fn reset_returns_qubit_to_ground() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.reset(1);
        let (sim, _) =
            simulate_density(&c, DepolarizingNoise::new(0.0), SimOptions::default()).expect("run");
        // Qubit 1 is |0⟩: outcomes with bit0 (qubit 1) set have zero mass.
        assert!(sim.probability_of(0b01).abs() < 1e-12);
        assert!(sim.probability_of(0b11).abs() < 1e-12);
        assert!((sim.trace() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_depolarized_qubit_is_maximally_mixed() {
        // p = 1: after the gate the qubit passes through a uniform Pauli
        // channel — (1/3)(X+Y+Z conjugations) of |1⟩⟨1| averages to
        // (2·|0⟩⟨0| + |1⟩⟨1|)/3.
        let mut c = Circuit::new(1);
        c.x(0);
        let (sim, _) =
            simulate_density(&c, DepolarizingNoise::new(1.0), SimOptions::default()).expect("run");
        let rho = sim.dense();
        assert!((rho[0][0].re - 2.0 / 3.0).abs() < 1e-12);
        assert!((rho[1][1].re - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn trajectory_counts_converge_to_exact_marginals() {
        // Pinned-seed statistical cross-check in both directions: the
        // exact diagonal bounds the trajectory estimates within ~5σ.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let noise = DepolarizingNoise::new(0.15);
        let (exact, _) = simulate_density(&c, noise, SimOptions::default()).expect("exact run");
        let trajectories = 4000;
        let ensemble = run_noisy_ensemble(&c, noise, trajectories, 0xD1CE).expect("ensemble");
        for outcome in 0..4u64 {
            let p = exact.probability_of(outcome);
            let estimate = ensemble.probability_of(outcome);
            let sigma = (p * (1.0 - p) / f64::from(trajectories)).sqrt();
            assert!(
                (estimate - p).abs() < 5.0 * sigma + 0.005,
                "outcome {outcome}: exact {p:.4}, trajectories {estimate:.4}, σ {sigma:.4}"
            );
        }
    }

    #[test]
    fn trajectory_model_and_channel_agree_on_average() {
        // The depolarizing channel IS the trajectory average: check that
        // inserting the noise circuit-side (p=1 pins every insertion
        // deterministic per seed) and averaging a few seeds by hand walks
        // toward the channel value. Statistical smoke at modest depth.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(1);
        let noise = DepolarizingNoise::new(0.25);
        let (exact, _) = simulate_density(&c, noise, SimOptions::default()).expect("run");
        let mut acc = [0.0f64; 4];
        let samples: u32 = 3000;
        for s in 0..samples {
            let noisy = sample_noisy_circuit(&c, noise, u64::from(s));
            let mut sim = Simulator::new(2);
            sim.run(&noisy).expect("trajectory");
            for (o, slot) in acc.iter_mut().enumerate() {
                *slot += sim.probability_of(o as u64);
            }
        }
        for (o, slot) in acc.iter().enumerate() {
            let avg = slot / f64::from(samples);
            let p = exact.probability_of(o as u64);
            assert!(
                (avg - p).abs() < 0.03,
                "outcome {o}: channel {p:.4}, trajectory average {avg:.4}"
            );
        }
    }

    #[test]
    fn classical_feedback_rejected() {
        let mut c = Circuit::with_cbits(2, 1);
        c.h(0);
        c.measure(0, 0);
        c.classical_gate(ddsim_circuit::StandardGate::X, 1, 0, true);
        let err = simulate_density(&c, DepolarizingNoise::new(0.0), SimOptions::default())
            .map(|_| ())
            .expect_err("classical control must be rejected");
        assert!(matches!(err, SimError::Internal(_)), "{err:?}");
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut c = Circuit::new(3);
        c.h(0);
        let mut sim =
            DensitySimulator::with_options(2, DepolarizingNoise::new(0.0), SimOptions::default());
        let err = sim.run(&c).expect_err("width mismatch");
        assert!(matches!(err, SimError::WidthMismatch { .. }), "{err:?}");
    }

    #[test]
    fn kraus_drops_channel_fault_breaks_trace() {
        let p = 0.3;
        let mut c = Circuit::new(1);
        c.x(0);
        let options = SimOptions {
            dd_config: DdConfig {
                fault: FaultKind::KrausDropsChannel,
                ..DdConfig::default()
            },
            ..SimOptions::default()
        };
        let (sim, _) = simulate_density(&c, DepolarizingNoise::new(p), options).expect("run");
        // One gate on one qubit = one faulty channel application: the
        // dropped ZρZ term loses (p/3)·tr(ρ) of mass.
        let expected = 1.0 - p / 3.0;
        assert!(
            (sim.trace() - expected).abs() < 1e-9,
            "trace {} (expected {expected})",
            sim.trace()
        );
        // Healthy configuration stays trace-preserving on the same input.
        let (healthy, _) =
            simulate_density(&c, DepolarizingNoise::new(p), SimOptions::default()).expect("run");
        assert!((healthy.trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deadline_stops_a_density_run() {
        let mut c = Circuit::new(6);
        for _ in 0..50 {
            for q in 0..6 {
                c.h(q);
                c.t(q);
            }
            for q in 0..5 {
                c.cx(q, q + 1);
            }
        }
        let options = SimOptions {
            deadline: Some(std::time::Duration::ZERO),
            ..SimOptions::default()
        };
        let err = simulate_density(&c, DepolarizingNoise::new(0.1), options)
            .map(|_| ())
            .expect_err("zero deadline must trip");
        assert_eq!(err, SimError::DeadlineExceeded);
    }

    #[test]
    fn cancel_stops_a_density_run() {
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1);
        let token = CancelToken::new();
        token.cancel();
        let mut sim =
            DensitySimulator::with_options(4, DepolarizingNoise::new(0.0), SimOptions::default());
        sim.set_cancel_token(Some(token));
        let err = sim.run(&c).expect_err("pre-cancelled token must trip");
        assert_eq!(err, SimError::Cancelled);
    }
}

//! *DD-construct* extended to Grover's algorithm (beyond the paper, which
//! applies the idea only to Shor's Boolean oracles — Section IV-B notes the
//! principle is general: "many quantum algorithms include large Boolean
//! parts … choosing and combining those operations in a fashion which suits
//! DD-based simulation can lead to further speed-ups").
//!
//! The Grover iteration is the product of two structurally trivial DDs:
//!
//! * the phase oracle `O = diag(1, …, 1, −1, 1, …)` — a diagonal matrix
//!   with one exception, `n + O(1)` nodes via
//!   [`mat_diagonal`](ddsim_dd::DdManager::mat_diagonal);
//! * the diffusion `D = 2/2ⁿ·J − I` where `J` is the all-ones matrix —
//!   one node per level via [`mat_constant`](ddsim_dd::DdManager::mat_constant).
//!
//! One matrix-matrix multiplication yields the full iteration `G = D·O`;
//! the simulation is then `⌊π/4·√2ⁿ⌋` matrix-vector multiplications from
//! the directly-constructed uniform state. No elementary gates, no oracle
//! ancilla — `n` qubits instead of the circuit's `n + 1`.
//!
//! **Numerical range.** The monolithic diffusion DD carries structurally
//! tiny weights (`2/2ⁿ`); over the `O(√2ⁿ)` iterations the relative
//! weight-unification error accumulates into the rotation angle. The
//! implementation renormalizes every iteration and is validated to
//! ~21 qubits; for larger instances use the paper's *DD-repeating*
//! strategy on the gate-level circuit, whose weights are all `O(1)`.

use std::time::Instant;

use ddsim_algorithms::grover::GroverInstance;
use ddsim_complex::Complex;
use ddsim_dd::DdManager;

use crate::stats::RunStats;

/// Result of a DD-construct Grover run.
#[derive(Clone, Debug)]
pub struct GroverOutcome {
    /// The instance that was run.
    pub instance: GroverInstance,
    /// Probability of measuring the marked element after all iterations.
    pub probability_of_marked: f64,
    /// Qubits used (`n`, versus the circuit's `n + 1`).
    pub qubits: u32,
    /// Run statistics.
    pub stats: RunStats,
}

/// Runs Grover search with directly constructed oracle and diffusion DDs.
///
/// # Examples
///
/// ```
/// use ddsim_algorithms::grover::GroverInstance;
/// use ddsim_core::run_grover_dd_construct;
///
/// let outcome = run_grover_dd_construct(GroverInstance::new(9, 100));
/// assert!(outcome.probability_of_marked > 0.99);
/// assert_eq!(outcome.qubits, 8); // n, versus n+1 for the circuit
/// ```
pub fn run_grover_dd_construct(instance: GroverInstance) -> GroverOutcome {
    let started = Instant::now();
    let n = instance.search_qubits;
    let mut dd = DdManager::new();
    let before = dd.stats();

    // Oracle: −1 at the marked element.
    let oracle = dd.mat_diagonal(n, Complex::ONE, &[(instance.marked, Complex::real(-1.0))]);
    // Diffusion: 2/2ⁿ·J − I.
    let j = dd.mat_constant(n, Complex::real(2.0 / (1u64 << n) as f64));
    let neg_id = {
        let id = dd.mat_identity(n);
        dd.mat_scale(id, Complex::real(-1.0))
    };
    let diffusion = dd.add_mat(j, neg_id).expect("ungoverned manager");
    // The whole Grover iteration in ONE matrix-matrix multiplication.
    // Invariant: `dd` is private to this function and built without budgets,
    // deadline, or cancel token, so governed operations cannot fail.
    let iteration = dd
        .mat_mat_mul(diffusion, oracle)
        .expect("ungoverned manager");
    dd.inc_ref_mat(iteration);

    let mut state = dd.vec_uniform(n);
    dd.inc_ref_vec(state);
    let mut stats = RunStats::default();

    for _ in 0..instance.iterations {
        let next = dd
            .mat_vec_mul(iteration, state)
            .expect("ungoverned manager");
        dd.inc_ref_vec(next);
        dd.dec_ref_vec(state);
        state = next;
        // Renormalize: iterated application of one matrix accumulates
        // weight-snapping drift in the global scale; the state DD is tiny,
        // so the norm computation is essentially free.
        let norm = dd.vec_norm_sqr(state);
        if (norm - 1.0).abs() > 1e-12 {
            let correction = dd.intern(Complex::real(1.0 / norm.sqrt()));
            let mut rescaled = state;
            rescaled.weight = {
                let value = dd.complex_value(state.weight) * dd.complex_value(correction);
                dd.intern(value)
            };
            dd.inc_ref_vec(rescaled);
            dd.dec_ref_vec(state);
            state = rescaled;
        }
        let nodes = dd.vec_node_count(state);
        if nodes > stats.peak_state_nodes {
            stats.peak_state_nodes = nodes;
        }
        dd.maybe_collect();
    }

    let probability_of_marked = dd.vec_amplitude(state, instance.marked).norm_sqr();
    let after = dd.stats();
    stats.absorb_dd_delta(before, after);
    stats.final_state_nodes = dd.vec_node_count(state);
    stats.elementary_gates = 0; // no gate decomposition at all
    stats.wall_time = started.elapsed();

    GroverOutcome {
        instance,
        probability_of_marked,
        qubits: n,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_the_marked_element() {
        for (qubits, marked) in [(7u32, 11u64), (9, 0), (11, 1023)] {
            let outcome = run_grover_dd_construct(GroverInstance::new(qubits, marked));
            assert!(
                outcome.probability_of_marked > 0.98,
                "qubits={qubits} marked={marked}: P = {}",
                outcome.probability_of_marked
            );
        }
    }

    #[test]
    fn uses_one_mxm_total() {
        let outcome = run_grover_dd_construct(GroverInstance::new(11, 77));
        assert_eq!(outcome.stats.mat_mat_mults, 1, "one combined iteration");
        assert_eq!(
            outcome.stats.mat_vec_mults,
            u64::from(outcome.instance.iterations)
        );
    }

    #[test]
    fn state_dds_stay_tiny() {
        // The Grover state is always uniform-plus-spike: O(n) nodes.
        let outcome = run_grover_dd_construct(GroverInstance::new(13, 2000));
        assert!(
            outcome.stats.peak_state_nodes <= 4 * 12,
            "peak {} nodes",
            outcome.stats.peak_state_nodes
        );
    }
}

//! The simulation engine: streams a [`Circuit`] through the DD package
//! under a configurable combining [`Strategy`].

use std::fmt;
use std::time::Instant;

use ddsim_circuit::{lower_swap, Circuit, GateOp, Operation};
use ddsim_complex::Complex;
use ddsim_dd::{DdConfig, DdManager, MatEdge, VecEdge};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stats::{RunStats, StepTrace};
use crate::strategy::Strategy;

/// Error returned when a circuit does not fit the simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimulateCircuitError {
    expected_qubits: u32,
    found_qubits: u32,
}

impl fmt::Display for SimulateCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "circuit has {} qubits but the simulator was built for {}",
            self.found_qubits, self.expected_qubits
        )
    }
}

impl std::error::Error for SimulateCircuitError {}

/// Options controlling a simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// The combining strategy (paper Section IV).
    pub strategy: Strategy,
    /// Seed for measurement sampling (runs are deterministic per seed).
    pub seed: u64,
    /// Record a per-step [`StepTrace`] (costs one DD traversal per applied
    /// multiplication).
    pub collect_trace: bool,
    /// DD-manager configuration (tolerance, GC threshold, table capacities,
    /// cache switch).
    pub dd_config: DdConfig,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            strategy: Strategy::Sequential,
            seed: 0,
            collect_trace: false,
            dd_config: DdConfig::default(),
        }
    }
}

impl SimOptions {
    /// Options with a given strategy and defaults elsewhere.
    pub fn with_strategy(strategy: Strategy) -> Self {
        SimOptions {
            strategy,
            ..SimOptions::default()
        }
    }
}

/// A DD-based quantum-circuit simulator.
///
/// # Examples
///
/// ```
/// use ddsim_circuit::Circuit;
/// use ddsim_core::{SimOptions, Simulator, Strategy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let mut sim = Simulator::with_options(2, SimOptions::with_strategy(Strategy::Sequential));
/// sim.run(&bell)?;
/// assert!((sim.probability_of(0b00) - 0.5).abs() < 1e-10);
/// assert!((sim.probability_of(0b11) - 0.5).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub struct Simulator {
    dd: DdManager,
    n: u32,
    state: VecEdge,
    classical: Vec<bool>,
    rng: StdRng,
    options: SimOptions,
    // Accumulated, not-yet-applied product of combined gate matrices.
    pending: Option<MatEdge>,
    pending_gates: u64,
    // The gate behind `pending` while the group holds exactly one gate, so
    // a single-gate flush can route through the specialized apply kernels.
    pending_single: Option<GateOp>,
    // State DD size as of the last application (drives Strategy::Adaptive).
    cached_state_nodes: usize,
    stats: RunStats,
}

impl Simulator {
    /// A simulator over `n` qubits in |0…0⟩ with default options.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 63.
    pub fn new(n: u32) -> Self {
        Self::with_options(n, SimOptions::default())
    }

    /// A simulator with explicit options.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 63.
    pub fn with_options(n: u32, options: SimOptions) -> Self {
        let mut dd = DdManager::with_config(options.dd_config);
        let state = dd.vec_zero_state(n);
        dd.inc_ref_vec(state);
        Simulator {
            dd,
            n,
            state,
            classical: Vec::new(),
            rng: StdRng::seed_from_u64(options.seed),
            options,
            pending: None,
            pending_gates: 0,
            pending_single: None,
            cached_state_nodes: 1,
            stats: RunStats::default(),
        }
    }

    /// Number of qubits.
    pub fn qubits(&self) -> u32 {
        self.n
    }

    /// The classical bits written by measurements so far.
    pub fn classical_bits(&self) -> &[bool] {
        &self.classical
    }

    /// The classical register interpreted as an integer,
    /// `Σ bit_i · 2^i`.
    pub fn classical_value(&self) -> u64 {
        self.classical
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| 1u64 << i)
            .sum()
    }

    /// Immutable access to the DD manager (node counts, exports, …).
    pub fn dd(&self) -> &DdManager {
        &self.dd
    }

    /// The current state-vector edge.
    pub fn state(&self) -> VecEdge {
        self.state
    }

    /// The amplitude of a basis state.
    pub fn amplitude(&self, index: u64) -> Complex {
        self.dd.vec_amplitude(self.state, index)
    }

    /// The probability of observing a full basis state.
    pub fn probability_of(&self, index: u64) -> f64 {
        self.amplitude(index).norm_sqr()
    }

    /// The probability of qubit `q` measuring 1.
    pub fn prob_one(&self, q: u32) -> f64 {
        self.dd.prob_one(self.state, q)
    }

    /// Node count of the current state DD.
    pub fn state_nodes(&self) -> usize {
        self.dd.vec_node_count(self.state)
    }

    /// Samples a full measurement (without collapsing).
    pub fn sample(&mut self) -> u64 {
        let rng = &mut self.rng;
        let mut draw = || rng.gen::<f64>();
        self.dd.sample(self.state, &mut draw)
    }

    /// Samples `shots` full measurements and returns outcome counts —
    /// the typical read-out a hardware backend would give.
    pub fn sample_counts(&mut self, shots: u32) -> std::collections::HashMap<u64, u32> {
        let mut counts = std::collections::HashMap::new();
        for _ in 0..shots {
            *counts.entry(self.sample()).or_insert(0) += 1;
        }
        counts
    }

    /// Runs a circuit to completion under the configured strategy,
    /// returning the run statistics.
    ///
    /// # Errors
    ///
    /// Returns [`SimulateCircuitError`] if the circuit's qubit count does
    /// not match the simulator's.
    pub fn run(&mut self, circuit: &Circuit) -> Result<RunStats, SimulateCircuitError> {
        if circuit.qubits() != self.n {
            return Err(SimulateCircuitError {
                expected_qubits: self.n,
                found_qubits: circuit.qubits(),
            });
        }
        if self.classical.len() < circuit.cbits() {
            self.classical.resize(circuit.cbits(), false);
        }
        let started = Instant::now();
        self.stats = RunStats::default();
        self.process_ops(circuit.ops());
        self.flush();
        self.stats.wall_time = started.elapsed();
        self.stats.final_state_nodes = self.dd.vec_node_count(self.state);
        if self.stats.peak_state_nodes < self.stats.final_state_nodes {
            self.stats.peak_state_nodes = self.stats.final_state_nodes;
        }
        Ok(self.stats.clone())
    }

    // ------------------------------------------------------------------
    // Operation dispatch
    // ------------------------------------------------------------------

    fn process_ops(&mut self, ops: &[Operation]) {
        for op in ops {
            match op {
                Operation::Gate(g) => self.feed_gate(g),
                Operation::Swap { a, b, controls } => {
                    for g in lower_swap(*a, *b, controls) {
                        self.feed_gate(&g);
                    }
                }
                Operation::Barrier => self.flush(),
                Operation::Measure { qubit, cbit } => {
                    self.flush();
                    let outcome = self.measure(*qubit);
                    self.classical[*cbit] = outcome;
                }
                Operation::Reset { qubit } => {
                    self.flush();
                    let outcome = self.measure(*qubit);
                    if outcome {
                        let g = GateOp::new(ddsim_circuit::StandardGate::X, *qubit);
                        self.apply_gate_now(&g);
                    }
                }
                Operation::Classical { gate, cbit, value } => {
                    // The condition is already known classically, so the
                    // gate either joins the stream or vanishes.
                    if self.classical[*cbit] == *value {
                        self.feed_gate(gate);
                    }
                }
                Operation::Repeat { body, times } => self.process_repeat(body, *times),
            }
        }
    }

    fn process_repeat(&mut self, body: &[Operation], times: u32) {
        let reuse = matches!(self.options.strategy, Strategy::DdRepeating { .. });
        if reuse {
            if let Some(block) = self.combine_unitary_block(body) {
                // DD-repeating: one combined matrix, re-applied for every
                // iteration with zero further matrix-matrix work. The block
                // arrives holding one reference, released below.
                self.flush();
                let block_gates: u64 = body.iter().map(|op| op.elementary_count()).sum();
                for _ in 0..times {
                    self.stats.elementary_gates += block_gates;
                    self.apply_now(block, block_gates);
                }
                self.dd.dec_ref_mat(block);
                return;
            }
        }
        // Fallback: expand the block.
        for _ in 0..times {
            self.process_ops(body);
        }
    }

    /// Multiplies all gates of a purely unitary block into one matrix DD.
    /// Returns `None` if the block contains non-unitary operations; on
    /// success the returned edge holds one reference the caller must
    /// release with `dec_ref_mat`.
    fn combine_unitary_block(&mut self, ops: &[Operation]) -> Option<MatEdge> {
        let before = self.dd.stats();
        let mut product = self.dd.mat_identity(self.n);
        self.dd.inc_ref_mat(product);
        let fold = |sim: &mut Self, product: &mut MatEdge, m: MatEdge| {
            let next = sim.dd.mat_mat_mul(m, *product);
            sim.dd.inc_ref_mat(next);
            sim.dd.dec_ref_mat(*product);
            *product = next;
        };
        for op in ops {
            match op {
                Operation::Gate(g) => {
                    let m = self.gate_matrix(g);
                    fold(self, &mut product, m);
                }
                Operation::Swap { a, b, controls } => {
                    for g in lower_swap(*a, *b, controls) {
                        let m = self.gate_matrix(&g);
                        fold(self, &mut product, m);
                    }
                }
                Operation::Barrier => {}
                Operation::Repeat { body, times } => {
                    let inner = self.combine_unitary_block(body)?;
                    self.dd.inc_ref_mat(inner);
                    for _ in 0..*times {
                        fold(self, &mut product, inner);
                    }
                    self.dd.dec_ref_mat(inner);
                }
                Operation::Measure { .. }
                | Operation::Reset { .. }
                | Operation::Classical { .. } => {
                    self.dd.dec_ref_mat(product);
                    return None;
                }
            }
        }
        let after = self.dd.stats();
        self.stats.absorb_dd_delta(before, after);
        let nodes = self.dd.mat_node_count(product);
        if nodes > self.stats.peak_matrix_nodes {
            self.stats.peak_matrix_nodes = nodes;
        }
        Some(product)
    }

    // ------------------------------------------------------------------
    // Combining core
    // ------------------------------------------------------------------

    fn gate_matrix(&mut self, g: &GateOp) -> MatEdge {
        let before = self.dd.stats();
        let m = self
            .dd
            .mat_controlled(self.n, &g.controls, g.target, g.gate.matrix());
        let after = self.dd.stats();
        // Gate construction may perform one small matrix addition; its
        // recursions are bookkeeping, not simulation cost, but the counters
        // must stay consistent.
        self.stats.absorb_dd_delta(before, after);
        m
    }

    /// Whether gate application may bypass matrix construction and go
    /// through the specialized apply kernels. Tracing needs the gate
    /// matrix DD for its per-step node counts, so it forces the generic
    /// path.
    fn use_specialized(&self) -> bool {
        self.options.dd_config.identity_skip && !self.options.collect_trace
    }

    /// Feeds one elementary gate into the strategy.
    fn feed_gate(&mut self, g: &GateOp) {
        self.stats.elementary_gates += 1;
        match self.options.strategy {
            Strategy::Sequential => {
                self.apply_gate_now(g);
            }
            Strategy::KOperations { k } | Strategy::DdRepeating { k } if k <= 1 => {
                self.apply_gate_now(g);
            }
            Strategy::KOperations { k } | Strategy::DdRepeating { k } => {
                self.accumulate_gate(g);
                if self.pending_gates >= k as u64 {
                    self.flush();
                }
            }
            Strategy::MaxSize { s_max } => {
                self.accumulate_gate(g);
                let nodes = self.pending.map(|p| self.dd.mat_node_count(p)).unwrap_or(0);
                if nodes > self.stats.peak_matrix_nodes {
                    self.stats.peak_matrix_nodes = nodes;
                }
                if nodes > s_max {
                    self.flush();
                }
            }
            Strategy::Adaptive { ratio_millis, cap } => {
                self.accumulate_gate(g);
                let nodes = self.pending.map(|p| self.dd.mat_node_count(p)).unwrap_or(0);
                if nodes > self.stats.peak_matrix_nodes {
                    self.stats.peak_matrix_nodes = nodes;
                }
                // Section III's condition: combining pays while the product
                // DD stays small relative to the state DD it would
                // otherwise be multiplied into repeatedly.
                let budget =
                    (self.cached_state_nodes as u64).saturating_mul(u64::from(ratio_millis)) / 1000;
                if nodes as u64 > budget.max(4) || nodes > cap {
                    self.flush();
                }
            }
        }
    }

    /// Builds the gate's matrix DD and folds it into the pending product,
    /// remembering the gate itself while the group stays at one gate.
    fn accumulate_gate(&mut self, g: &GateOp) {
        self.pending_single = if self.pending.is_none() {
            Some(g.clone())
        } else {
            None
        };
        let m = self.gate_matrix(g);
        self.accumulate(m);
    }

    fn accumulate(&mut self, m: MatEdge) {
        let before = self.dd.stats();
        let next = match self.pending {
            None => m,
            Some(p) => {
                let product = self.dd.mat_mat_mul(m, p);
                self.dd.dec_ref_mat(p);
                product
            }
        };
        self.dd.inc_ref_mat(next);
        self.pending = Some(next);
        self.pending_gates += 1;
        let after = self.dd.stats();
        self.stats.absorb_dd_delta(before, after);
    }

    /// Applies any accumulated product to the state.
    fn flush(&mut self) {
        let single = self.pending_single.take();
        if let Some(p) = self.pending.take() {
            let gates = self.pending_gates;
            self.pending_gates = 0;
            if gates == 1 && self.use_specialized() {
                if let Some(g) = single {
                    // A one-gate group gains nothing from the matrix DD:
                    // drop it and descend the state directly.
                    self.dd.dec_ref_mat(p);
                    self.apply_gate_now(&g);
                    return;
                }
            }
            if self.options.collect_trace
                || matches!(self.options.strategy, Strategy::MaxSize { .. })
            {
                let nodes = self.dd.mat_node_count(p);
                if nodes > self.stats.peak_matrix_nodes {
                    self.stats.peak_matrix_nodes = nodes;
                }
            }
            self.apply_now(p, gates);
            self.dd.dec_ref_mat(p);
        }
    }

    /// Applies one elementary gate to the state, preferring the specialized
    /// kernels (which never build a matrix DD and never touch levels above
    /// the gate) when [`Self::use_specialized`] allows it.
    fn apply_gate_now(&mut self, g: &GateOp) {
        if !self.use_specialized() {
            let m = self.gate_matrix(g);
            self.apply_now(m, 1);
            return;
        }
        let before = self.dd.stats();
        let u = g.gate.matrix();
        let next = if g.controls.is_empty() {
            self.dd.apply_single_qubit(g.target, u, self.state)
        } else {
            self.dd
                .apply_controlled(&g.controls, g.target, u, self.state)
        };
        self.dd.inc_ref_vec(next);
        self.dd.dec_ref_vec(self.state);
        self.state = next;
        let after = self.dd.stats();
        self.stats.absorb_dd_delta(before, after);
        if matches!(self.options.strategy, Strategy::Adaptive { .. }) {
            self.cached_state_nodes = self.dd.vec_node_count(self.state);
        }
        self.collect_if_needed();
    }

    /// One matrix-vector application, with bookkeeping.
    fn apply_now(&mut self, m: MatEdge, combined_gates: u64) {
        let before = self.dd.stats();
        let next = self.dd.mat_vec_mul(m, self.state);
        self.dd.inc_ref_vec(next);
        self.dd.dec_ref_vec(self.state);
        self.state = next;
        let after = self.dd.stats();
        self.stats.absorb_dd_delta(before, after);
        if matches!(self.options.strategy, Strategy::Adaptive { .. }) {
            self.cached_state_nodes = self.dd.vec_node_count(self.state);
        }
        if self.options.collect_trace {
            let matrix_nodes = self.dd.mat_node_count(m);
            let state_nodes = self.dd.vec_node_count(self.state);
            if state_nodes > self.stats.peak_state_nodes {
                self.stats.peak_state_nodes = state_nodes;
            }
            if matrix_nodes > self.stats.peak_matrix_nodes {
                self.stats.peak_matrix_nodes = matrix_nodes;
            }
            self.stats.trace.push(StepTrace {
                gate_index: self.stats.elementary_gates,
                combined_gates,
                matrix_nodes,
                state_nodes,
            });
        }
        self.collect_if_needed();
    }

    fn measure(&mut self, qubit: u32) -> bool {
        let draw = self.rng.gen::<f64>();
        let (outcome, collapsed) = self.dd.measure_qubit(self.state, qubit, draw);
        self.dd.inc_ref_vec(collapsed);
        self.dd.dec_ref_vec(self.state);
        self.state = collapsed;
        self.collect_if_needed();
        outcome
    }

    fn collect_if_needed(&mut self) {
        // `pending` and `state` hold references, so collection is safe here.
        // The collection gets its own stats window: it runs outside the
        // multiply windows, and without this its gc_runs / unique-table
        // rebuild counts would never reach RunStats.
        let before = self.dd.stats();
        if self.dd.maybe_collect() {
            let after = self.dd.stats();
            self.stats.absorb_dd_delta(before, after);
        }
    }
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("qubits", &self.n)
            .field("strategy", &self.options.strategy)
            .field("state_nodes", &self.dd.vec_node_count(self.state))
            .field("classical", &self.classical)
            .finish()
    }
}

/// Convenience one-shot simulation.
///
/// # Errors
///
/// Returns [`SimulateCircuitError`] if the circuit width mismatches.
///
/// # Examples
///
/// ```
/// use ddsim_circuit::Circuit;
/// use ddsim_core::{simulate, SimOptions, Strategy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ghz = Circuit::new(3);
/// ghz.h(0).cx(0, 1).cx(1, 2);
/// let (sim, stats) = simulate(&ghz, SimOptions::with_strategy(Strategy::KOperations { k: 3 }))?;
/// assert!((sim.probability_of(0b000) - 0.5).abs() < 1e-10);
/// assert!(stats.mat_vec_mults < 3, "combining must reduce MxV count");
/// # Ok(())
/// # }
/// ```
pub fn simulate(
    circuit: &Circuit,
    options: SimOptions,
) -> Result<(Simulator, RunStats), SimulateCircuitError> {
    let mut sim = Simulator::with_options(circuit.qubits(), options);
    let stats = sim.run(circuit)?;
    Ok((sim, stats))
}

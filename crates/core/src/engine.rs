//! The simulation engine: streams a [`Circuit`] through the DD package
//! under a configurable combining [`Strategy`].
//!
//! # Resource governance
//!
//! Runs execute under the budgets configured in
//! [`DdConfig`](ddsim_dd::DdConfig) (`max_live_nodes`, `max_table_bytes`),
//! the wall-clock [`SimOptions::deadline`], and an optional cooperative
//! [`CancelToken`]. When a *budget* trips mid-operation the engine walks a
//! degradation ladder before giving up:
//!
//! 1. **Emergency GC** — collect garbage and retry the operation (sound
//!    because DD operations are deterministic and any compute-table entry
//!    written by the aborted attempt is a complete, valid result);
//! 2. **Cache flush** — drop all compute-table entries, collect again (the
//!    GC rebuild shrinks the unique tables toward their floor), retry;
//! 3. **Strategy downgrade** — abandon the accumulated gate product and
//!    replay its recorded gates one at a time through the specialized
//!    apply kernels, then continue the rest of the run sequentially
//!    (matrix products are the memory-hungry part of combining).
//!
//! Each rung taken is counted in [`RunStats`]. Only when rung 3 still
//! cannot fit the state itself does the run end, with a typed
//! [`SimError::BudgetExceeded`] — never a panic, never unbounded memory.
//! Deadline expiry and cancellation skip the ladder and unwind promptly.
//!
//! # Checkpoint / resume
//!
//! [`Simulator::run_from`] can write a versioned binary
//! [`Snapshot`](ddsim_dd::Snapshot) every *N* ops of the flattened
//! instruction stream and [`Simulator::resume_from`] rebuilds a simulator
//! from one, bit-for-bit: the full complex table, the state DD, the
//! classical register, and the RNG stream position all round-trip exactly.
//! A checkpoint acts as a barrier (the pending product is flushed first).

use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ddsim_circuit::{lower_swap, Circuit, GateOp, Operation};
use ddsim_complex::Complex;
use ddsim_dd::snapshot::fnv1a;
use ddsim_dd::{
    CancelToken, DdConfig, DdError, DdManager, FxHashMap, MatEdge, Par, Snapshot, ThreadPool,
    VecEdge,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{widen_dd_error, SimError};
use crate::stats::{RunStats, StepTrace};
use crate::strategy::Strategy;

/// Dynamic variable-reordering policy for a run.
///
/// Reordering exchanges the DD's qubit↔level assignment via adjacent-level
/// swaps ([`DdManager::swap_levels`]) so that strongly correlated qubits
/// sit on neighboring levels, which can shrink the state DD exponentially
/// on order-sensitive circuits. All public accessors stay qubit-indexed —
/// a reorder changes the diagram, never the observable amplitudes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReorderMode {
    /// Keep the circuit's variable order for the whole run.
    #[default]
    None,
    /// Sift the state (Rudell-style) whenever it has grown past twice its
    /// size at the previous sift, and once more before the run seals, so
    /// every successful run reorders at least once.
    Sifting,
}

impl ReorderMode {
    /// Stable CLI label.
    pub fn label(self) -> &'static str {
        match self {
            ReorderMode::None => "none",
            ReorderMode::Sifting => "sifting",
        }
    }

    /// Parses a CLI label back into a mode.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(ReorderMode::None),
            "sifting" => Some(ReorderMode::Sifting),
            _ => None,
        }
    }
}

/// Options controlling a simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimOptions {
    /// The combining strategy (paper Section IV).
    pub strategy: Strategy,
    /// Seed for measurement sampling (runs are deterministic per seed).
    pub seed: u64,
    /// Record a per-step [`StepTrace`] (costs one DD traversal per applied
    /// multiplication).
    pub collect_trace: bool,
    /// DD-manager configuration (tolerance, GC threshold, table capacities,
    /// cache switch, resource budgets).
    pub dd_config: DdConfig,
    /// Wall-clock budget for one `run`/`run_from` call, measured from its
    /// start. `None` disables the deadline. On expiry the run unwinds with
    /// [`SimError::DeadlineExceeded`]; a resumed run gets a fresh window.
    pub deadline: Option<Duration>,
    /// Worker threads for the DD kernels and shot sampling. `1` (the
    /// default) runs strictly sequentially — bitwise identical to the
    /// pre-threading engine. `0` uses all available cores. At `≥ 2` the
    /// simulator owns a work-stealing pool: large multiplications fork
    /// their quadrant products and [`Simulator::sample_counts`] spreads
    /// shots across lanes (threaded amplitudes agree with sequential
    /// within the weight-unification tolerance; see DESIGN.md §12).
    pub threads: u32,
    /// Dynamic variable-reordering policy (see [`ReorderMode`]).
    /// Independent of this setting, the degradation ladder sifts once
    /// before falling to the strategy downgrade when a state application
    /// exhausts rungs 1–2.
    pub reorder: ReorderMode,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            strategy: Strategy::Sequential,
            seed: 0,
            collect_trace: false,
            dd_config: DdConfig::default(),
            deadline: None,
            threads: 1,
            reorder: ReorderMode::None,
        }
    }
}

/// Resolves a [`SimOptions::threads`] value to a concrete lane count
/// (`0` means all available cores).
pub(crate) fn effective_threads(threads: u32) -> usize {
    match threads {
        0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
        n => n as usize,
    }
}

/// Builds the shared pool for a `threads` setting, or `None` when the
/// setting resolves to sequential execution.
pub(crate) fn build_pool(threads: u32) -> Option<Arc<ThreadPool>> {
    match effective_threads(threads) {
        0 | 1 => None,
        p => Some(Arc::new(ThreadPool::new(p))),
    }
}

impl SimOptions {
    /// Options with a given strategy and defaults elsewhere.
    pub fn with_strategy(strategy: Strategy) -> Self {
        SimOptions {
            strategy,
            ..SimOptions::default()
        }
    }
}

/// Periodic checkpointing plan for [`Simulator::run_from`].
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Write a snapshot after every this many executed ops of the
    /// flattened stream (0 disables periodic checkpoints).
    pub every_ops: u64,
    /// Snapshot destination; overwritten atomically at each checkpoint.
    pub path: std::path::PathBuf,
}

/// Stable fingerprint of a circuit's observable behavior (qubits, classical
/// bits, flattened op stream), used to pair snapshots with their circuit.
pub fn circuit_fingerprint(circuit: &Circuit) -> u64 {
    let flat = circuit.flattened();
    let text = format!("{}|{}|{:?}", flat.qubits(), flat.cbits(), flat.ops());
    fnv1a(text.as_bytes())
}

/// A DD-based quantum-circuit simulator.
///
/// # Examples
///
/// ```
/// use ddsim_circuit::Circuit;
/// use ddsim_core::{SimOptions, Simulator, Strategy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let mut sim = Simulator::with_options(2, SimOptions::with_strategy(Strategy::Sequential));
/// sim.run(&bell)?;
/// assert!((sim.probability_of(0b00) - 0.5).abs() < 1e-10);
/// assert!((sim.probability_of(0b11) - 0.5).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub struct Simulator {
    dd: DdManager,
    n: u32,
    state: VecEdge,
    classical: Vec<bool>,
    rng: StdRng,
    options: SimOptions,
    // Accumulated, not-yet-applied product of combined gate matrices.
    pending: Option<MatEdge>,
    pending_gates: u64,
    // The gate behind `pending` while the group holds exactly one gate, so
    // a single-gate flush can route through the specialized apply kernels.
    pending_single: Option<GateOp>,
    // Every gate folded into `pending`, in application order — the replay
    // script for ladder rung 3 (drop the product, apply gates one by one).
    pending_ops: Vec<GateOp>,
    // State DD size as of the last application (drives Strategy::Adaptive).
    cached_state_nodes: usize,
    // Reference state size for the reorder growth trigger: node count as of
    // the last sift (or the last checkpoint barrier, which resets it the
    // same way on the writer and on resume, keeping the two bitwise in
    // lockstep).
    sift_baseline: usize,
    // Non-zero while a cached repeating-block matrix may be re-applied;
    // reordering is blocked for its duration (the block is a level-space
    // diagram built under the order current at construction).
    reorder_holds: u32,
    // Ladder rung 3 latches this; the rest of the run is sequential.
    degraded: bool,
    // Ops of the flattened stream executed so far (checkpoint cursor).
    ops_executed: u64,
    // Fingerprint of the circuit the current/last run executed.
    active_circuit_hash: u64,
    stats: RunStats,
    // The work-stealing pool behind `SimOptions::threads ≥ 2`; shared with
    // the DD manager (fork-join kernels) and the shot-sampling loop.
    pool: Option<Arc<ThreadPool>>,
    // Cooperative suspend request, observed at op boundaries in `run_from`
    // (checkpoint-then-park, see `set_suspend_token`). Kept separate from
    // the manager's cancel token: cancellation unwinds mid-multiply and is
    // terminal, suspension must stop at a resumable barrier.
    suspend: Option<CancelToken>,
}

impl Simulator {
    /// A simulator over `n` qubits in |0…0⟩ with default options.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 63.
    pub fn new(n: u32) -> Self {
        Self::with_options(n, SimOptions::default())
    }

    /// A simulator with explicit options.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 63.
    pub fn with_options(n: u32, options: SimOptions) -> Self {
        let mut dd = DdManager::with_config(options.dd_config);
        let pool = build_pool(options.threads);
        if let Some(pool) = &pool {
            dd.set_par(Par::Threaded(Arc::clone(pool)));
        }
        let state = dd.vec_zero_state(n);
        dd.inc_ref_vec(state);
        Simulator {
            dd,
            n,
            state,
            classical: Vec::new(),
            rng: StdRng::seed_from_u64(options.seed),
            options,
            pending: None,
            pending_gates: 0,
            pending_single: None,
            pending_ops: Vec::new(),
            cached_state_nodes: 1,
            sift_baseline: 1,
            reorder_holds: 0,
            degraded: false,
            ops_executed: 0,
            active_circuit_hash: 0,
            stats: RunStats::default(),
            pool,
            suspend: None,
        }
    }

    /// Number of qubits.
    pub fn qubits(&self) -> u32 {
        self.n
    }

    /// The classical bits written by measurements so far.
    pub fn classical_bits(&self) -> &[bool] {
        &self.classical
    }

    /// The classical register interpreted as an integer,
    /// `Σ bit_i · 2^i`.
    pub fn classical_value(&self) -> u64 {
        self.classical
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| 1u64 << i)
            .sum()
    }

    /// Immutable access to the DD manager (node counts, exports, …).
    pub fn dd(&self) -> &DdManager {
        &self.dd
    }

    /// The current state-vector edge.
    pub fn state(&self) -> VecEdge {
        self.state
    }

    /// The amplitude of a basis state.
    pub fn amplitude(&self, index: u64) -> Complex {
        self.dd.vec_amplitude(self.state, index)
    }

    /// The probability of observing a full basis state.
    pub fn probability_of(&self, index: u64) -> f64 {
        self.amplitude(index).norm_sqr()
    }

    /// The probability of qubit `q` measuring 1.
    pub fn prob_one(&self, q: u32) -> f64 {
        self.dd.prob_one(self.state, q)
    }

    /// Node count of the current state DD.
    pub fn state_nodes(&self) -> usize {
        self.dd.vec_node_count(self.state)
    }

    /// Ops of the flattened instruction stream executed by the current or
    /// most recent [`run_from`](Self::run_from) call (the checkpoint
    /// cursor).
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// Registers (or clears) a cooperative cancellation token. In-flight
    /// DD work unwinds with [`SimError::Cancelled`] shortly after the
    /// token latches; the per-op loop observes it immediately.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.dd.set_cancel_token(token);
    }

    /// Registers (or clears) a cooperative *suspend* token, observed by
    /// [`run_from`](Self::run_from) at every op boundary. When the token
    /// latches, the engine writes a checkpoint (if a
    /// [`CheckpointConfig`] was supplied to `run_from`) and returns
    /// [`SimError::Suspended`]; the checkpoint resumes bitwise-identically
    /// via [`resume_from`](Self::resume_from). Suspension latency is one
    /// op: a latch mid-multiply takes effect before the *next* op starts.
    ///
    /// This is the eviction mechanism for a multi-tenant server shedding
    /// memory pressure — unlike cancellation, no work is lost.
    pub fn set_suspend_token(&mut self, token: Option<CancelToken>) {
        self.suspend = token;
    }

    /// Samples a full measurement (without collapsing).
    pub fn sample(&mut self) -> u64 {
        let rng = &mut self.rng;
        let mut draw = || rng.gen::<f64>();
        self.dd.sample(self.state, &mut draw)
    }

    /// Samples `shots` full measurements and returns outcome counts —
    /// the typical read-out a hardware backend would give.
    ///
    /// At `threads ≤ 1` the shots draw from the simulator's RNG stream one
    /// by one, exactly as before threading existed. With a pool, each shot
    /// gets a deterministic substream derived from one draw of the main
    /// stream, and the shots run across the pool's lanes; the resulting
    /// histogram depends only on the seed (counts merge commutatively),
    /// never on worker scheduling.
    pub fn sample_counts(&mut self, shots: u32) -> FxHashMap<u64, u32> {
        if shots >= 2 {
            if let Some(pool) = self.pool.clone() {
                return self.sample_counts_par(shots, &pool);
            }
        }
        let mut counts = FxHashMap::default();
        for _ in 0..shots {
            *counts.entry(self.sample()).or_insert(0) += 1;
        }
        counts
    }

    fn sample_counts_par(&mut self, shots: u32, pool: &Arc<ThreadPool>) -> FxHashMap<u64, u32> {
        // One draw advances the main stream; each shot derives its own
        // substream from it (Weyl-sequence increment, the SplitMix64
        // constant), so outcomes are a pure function of (seed, shot index).
        let base = self.rng.gen::<u64>();
        let lanes = pool.parallelism().min(shots as usize).max(1);
        let slots: Vec<Mutex<FxHashMap<u64, u32>>> = (0..lanes)
            .map(|_| Mutex::new(FxHashMap::default()))
            .collect();
        let dd = &self.dd;
        let state = self.state;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..lanes)
            .map(|lane| {
                let slots = &slots;
                Box::new(move || {
                    let mut local: FxHashMap<u64, u32> = FxHashMap::default();
                    let mut shot = lane as u32;
                    while shot < shots {
                        let mut rng = StdRng::seed_from_u64(
                            base.wrapping_add(u64::from(shot).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                        );
                        let mut draw = || rng.gen::<f64>();
                        *local.entry(dd.sample(state, &mut draw)).or_insert(0) += 1;
                        shot += lanes as u32;
                    }
                    *slots[lane].lock().expect("sample lane poisoned") = local;
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_batch(tasks);
        let mut counts = FxHashMap::default();
        for slot in slots {
            for (outcome, c) in slot.into_inner().expect("sample lane poisoned") {
                *counts.entry(outcome).or_insert(0) += c;
            }
        }
        counts
    }

    /// Runs a circuit to completion under the configured strategy,
    /// returning the run statistics.
    ///
    /// # Errors
    ///
    /// [`SimError::WidthMismatch`] if the circuit's qubit count differs
    /// from the simulator's; [`SimError::BudgetExceeded`] /
    /// [`SimError::DeadlineExceeded`] / [`SimError::Cancelled`] if the
    /// resource governor ends the run. After any error the simulator is
    /// consistent: the pre-error state survives, pending work is released,
    /// and the run may be retried under relaxed limits.
    pub fn run(&mut self, circuit: &Circuit) -> Result<RunStats, SimError> {
        self.prepare(circuit)?;
        let started = Instant::now();
        let result = self.process_ops(circuit.ops()).and_then(|()| self.flush());
        self.seal(result, started)
    }

    /// Runs `circuit` starting at op `start_op` of its *flattened*
    /// instruction stream, optionally writing periodic checkpoints.
    ///
    /// Repeats are expanded up front so the instruction pointer is stable
    /// across runs (this disables the DD-repeating block reuse; use
    /// [`run`](Self::run) when checkpointing is not needed). `start_op`
    /// is non-zero only for resumed runs — see
    /// [`resume_from`](Self::resume_from).
    ///
    /// # Errors
    ///
    /// Everything [`run`](Self::run) returns, plus
    /// [`SimError::Snapshot`] when a checkpoint cannot be written or
    /// `start_op` lies beyond the circuit, plus [`SimError::Suspended`]
    /// when a registered suspend token
    /// ([`set_suspend_token`](Self::set_suspend_token)) latches — after
    /// writing a final checkpoint if checkpointing is configured.
    pub fn run_from(
        &mut self,
        circuit: &Circuit,
        start_op: u64,
        checkpoint: Option<&CheckpointConfig>,
    ) -> Result<RunStats, SimError> {
        self.prepare(circuit)?;
        let flat = circuit.flattened();
        let total = flat.ops().len() as u64;
        if start_op > total {
            return Err(SimError::Snapshot(format!(
                "resume index {start_op} lies beyond the circuit ({total} ops)"
            )));
        }
        let started = Instant::now();
        self.ops_executed = start_op;
        let result = (|| {
            for (i, op) in flat.ops().iter().enumerate().skip(start_op as usize) {
                // Cooperative suspension: park at this op boundary, after
                // persisting a resume point when checkpointing is on. The
                // cursor (`ops_executed`) already names op `i` as next, so
                // the checkpoint resumes exactly here.
                if self.suspend.as_ref().is_some_and(|t| t.is_cancelled()) {
                    if let Some(cfg) = checkpoint {
                        self.checkpoint(&cfg.path)?;
                    }
                    return Err(SimError::Suspended);
                }
                // Prompt per-op governor check: deadline and cancellation
                // are observed here even if every DD op is cache-served.
                self.dd
                    .check_interrupts()
                    .map_err(|e| widen_dd_error(e, &self.dd))?;
                self.process_ops(std::slice::from_ref(op))?;
                self.ops_executed = i as u64 + 1;
                if let Some(cfg) = checkpoint {
                    let done = self.ops_executed - start_op;
                    if cfg.every_ops > 0
                        && done.is_multiple_of(cfg.every_ops)
                        && self.ops_executed < total
                    {
                        self.checkpoint(&cfg.path)?;
                    }
                }
            }
            self.flush()
        })();
        self.seal(result, started)
    }

    /// Flushes pending work and writes a resumable snapshot to `path`
    /// (atomically: temp file + rename).
    ///
    /// Checkpointing is a barrier: any accumulated gate product is applied
    /// first, so the snapshot captures a definite state between ops. The
    /// simulator then reloads itself from the snapshot it just wrote, so
    /// its own continuation starts from exactly the manager state a future
    /// [`resume_from`](Self::resume_from) will rebuild — compacted unique
    /// tables, replayed value table, cold caches. This is what makes an
    /// interrupted-and-resumed run *bitwise* identical to the
    /// uninterrupted one: without the reload, the writer's warm caches can
    /// intern round-off representatives in a different order than a cold
    /// resumer and drift amplitudes by a few ulps.
    ///
    /// # Errors
    ///
    /// [`SimError::Snapshot`] on I/O failure; governor errors if the flush
    /// itself trips a limit.
    pub fn checkpoint(&mut self, path: &Path) -> Result<(), SimError> {
        self.flush()?;
        let snap = Snapshot::capture(
            &self.dd,
            self.state,
            self.n,
            self.ops_executed,
            self.active_circuit_hash,
            self.rng.state(),
            self.classical.clone(),
        )?;
        snap.save(path)?;
        // Reload in place (see above). The governor's deadline and cancel
        // token live on the manager and must carry over unchanged, as must
        // the execution policy (the restored manager defaults to `Seq`).
        let deadline = self.dd.deadline();
        let cancel = self.dd.cancel_token();
        let (dd, state) = snap.restore(self.options.dd_config)?;
        self.dd = dd;
        self.state = state;
        self.dd.set_deadline(deadline);
        self.dd.set_cancel_token(cancel);
        if let Some(pool) = &self.pool {
            self.dd.set_par(Par::Threaded(Arc::clone(pool)));
        }
        self.cached_state_nodes = self.dd.vec_node_count(self.state);
        self.sift_baseline = self.cached_state_nodes.max(1);
        self.stats.checkpoints_written += 1;
        Ok(())
    }

    /// Rebuilds a simulator from a snapshot written by
    /// [`checkpoint`](Self::checkpoint), positioned to continue `circuit`.
    ///
    /// Returns the simulator and the op index to pass to
    /// [`run_from`](Self::run_from). The restored run is bit-identical to
    /// an uninterrupted one (modulo the flush barrier the checkpoint
    /// inserted): amplitudes, classical bits, and the measurement RNG
    /// stream all round-trip exactly. The snapshot's tolerance overrides
    /// `options.dd_config.tolerance`; budgets and strategy come from
    /// `options`.
    ///
    /// # Errors
    ///
    /// [`SimError::Snapshot`] if the file is unreadable, corrupt, of an
    /// unsupported version, or was taken from a different circuit;
    /// [`SimError::WidthMismatch`] if the snapshot's width differs from
    /// the circuit's.
    pub fn resume_from(
        path: &Path,
        circuit: &Circuit,
        options: SimOptions,
    ) -> Result<(Simulator, u64), SimError> {
        let snap = Snapshot::load(path)?;
        if snap.qubits != circuit.qubits() {
            return Err(SimError::WidthMismatch {
                expected_qubits: snap.qubits,
                found_qubits: circuit.qubits(),
            });
        }
        let hash = circuit_fingerprint(circuit);
        if snap.circuit_hash != hash {
            return Err(SimError::Snapshot(format!(
                "snapshot was taken from a different circuit \
                 (hash {:#018x}, offered {hash:#018x})",
                snap.circuit_hash
            )));
        }
        let (mut dd, state) = snap.restore(options.dd_config)?;
        let pool = build_pool(options.threads);
        if let Some(pool) = &pool {
            dd.set_par(Par::Threaded(Arc::clone(pool)));
        }
        let cached_state_nodes = dd.vec_node_count(state);
        let sim = Simulator {
            dd,
            n: snap.qubits,
            state,
            classical: snap.classical_bits.clone(),
            rng: StdRng::from_state(snap.rng_state),
            options,
            pending: None,
            pending_gates: 0,
            pending_single: None,
            pending_ops: Vec::new(),
            cached_state_nodes,
            sift_baseline: cached_state_nodes.max(1),
            reorder_holds: 0,
            degraded: false,
            ops_executed: snap.next_op,
            active_circuit_hash: snap.circuit_hash,
            stats: RunStats::default(),
            pool,
            suspend: None,
        };
        Ok((sim, snap.next_op))
    }

    // ------------------------------------------------------------------
    // Run lifecycle
    // ------------------------------------------------------------------

    fn prepare(&mut self, circuit: &Circuit) -> Result<(), SimError> {
        if circuit.qubits() != self.n {
            return Err(SimError::WidthMismatch {
                expected_qubits: self.n,
                found_qubits: circuit.qubits(),
            });
        }
        if self.classical.len() < circuit.cbits() {
            self.classical.resize(circuit.cbits(), false);
        }
        self.active_circuit_hash = circuit_fingerprint(circuit);
        self.degraded = false;
        self.stats = RunStats::default();
        // Always (re)arm: a stale deadline from a previous run must not
        // leak into this one.
        self.dd
            .set_deadline(self.options.deadline.map(|d| Instant::now() + d));
        Ok(())
    }

    /// Closes the stats window and, on error, releases pending work so the
    /// manager stays consistent and garbage-collectable.
    fn seal(
        &mut self,
        result: Result<(), SimError>,
        started: Instant,
    ) -> Result<RunStats, SimError> {
        if result.is_err() {
            self.abandon_pending();
        } else if self.options.reorder == ReorderMode::Sifting
            && self.stats.reorders == 0
            && self.can_sift()
        {
            // Every successful sifting-mode run reorders at least once, so
            // the policy's effect (and any fault injected into the swap) is
            // observable even on runs that never tripped the growth
            // trigger.
            self.sift_now(false);
        }
        self.stats.wall_time = started.elapsed();
        self.stats.final_state_nodes = self.dd.vec_node_count(self.state);
        if self.stats.peak_state_nodes < self.stats.final_state_nodes {
            self.stats.peak_state_nodes = self.stats.final_state_nodes;
        }
        self.stats.degraded = self.degraded;
        result.map(|()| self.stats.clone())
    }

    /// Drops the accumulated product and its replay script (error unwind).
    fn abandon_pending(&mut self) {
        if let Some(p) = self.pending.take() {
            self.dd.dec_ref_mat(p);
        }
        self.pending_gates = 0;
        self.pending_single = None;
        self.pending_ops.clear();
    }

    // ------------------------------------------------------------------
    // Dynamic variable reordering
    // ------------------------------------------------------------------

    /// State-size floor below which the growth trigger never fires —
    /// sifting a trivially small diagram cannot pay for itself.
    const SIFT_FLOOR_NODES: usize = 32;

    /// Whether the state may be reordered right now. A pending gate
    /// product (or a cached repeating block — released before its
    /// sequential fallback) is a level-space diagram built under the
    /// *current* order; reordering underneath it would silently retarget
    /// its gates, so sifting waits for the product to be applied.
    fn can_sift(&self) -> bool {
        self.n >= 2 && self.pending.is_none() && self.reorder_holds == 0
    }

    /// One sifting pass over the state (the simulator's pin transfers to
    /// the sifted edge). Runs outside the governed recursion: the pass is
    /// node-bounded by construction (never grows the state) and must stay
    /// available exactly when budgets are exhausted.
    fn sift_now(&mut self, ladder: bool) {
        debug_assert!(self.can_sift());
        let budget = 4 * (self.n as usize) * (self.n as usize);
        let (next, rs) = self.dd.sift_state(self.state, budget);
        self.state = next;
        self.sift_baseline = rs.nodes_after.max(1);
        if matches!(self.options.strategy, Strategy::Adaptive { .. }) {
            self.cached_state_nodes = rs.nodes_after;
        }
        if ladder {
            self.stats.ladder_reorders += 1;
        } else {
            self.stats.reorders += 1;
        }
        // The displaced old-order nodes are garbage now.
        self.collect_if_needed();
    }

    /// Growth trigger for the explicit [`ReorderMode::Sifting`] policy:
    /// sift once the state has doubled since the last sift (or past the
    /// floor).
    fn maybe_sift_for_growth(&mut self) {
        if self.options.reorder != ReorderMode::Sifting || !self.can_sift() {
            return;
        }
        let nodes = self.dd.vec_node_count(self.state);
        if nodes > 2 * self.sift_baseline.max(Self::SIFT_FLOOR_NODES) {
            self.sift_now(false);
        }
    }

    // ------------------------------------------------------------------
    // Degradation ladder
    // ------------------------------------------------------------------

    /// Runs `op` under ladder rungs 1–2: on a budget error, emergency-GC
    /// and retry; still over, flush the compute caches (the following GC
    /// rebuild also shrinks the unique tables), and retry once more.
    ///
    /// Retrying is sound because DD operations are deterministic and every
    /// compute-table entry written by an aborted attempt is a complete,
    /// valid result. The caller must keep `op`'s DD operands ref-pinned —
    /// the emergency collections would otherwise reclaim them.
    ///
    /// Deadline and cancellation errors are not resource pressure and pass
    /// straight through.
    fn recover<T>(
        &mut self,
        mut op: impl FnMut(&mut Self) -> Result<T, DdError>,
    ) -> Result<T, SimError> {
        match op(self) {
            Ok(v) => return Ok(v),
            Err(e @ (DdError::DeadlineExceeded | DdError::Cancelled)) => {
                return Err(widen_dd_error(e, &self.dd))
            }
            Err(DdError::BudgetExceeded) => {}
        }
        self.stats.ladder_gc_rescues += 1;
        self.dd.collect_garbage();
        match op(self) {
            Ok(v) => return Ok(v),
            Err(e @ (DdError::DeadlineExceeded | DdError::Cancelled)) => {
                return Err(widen_dd_error(e, &self.dd))
            }
            Err(DdError::BudgetExceeded) => {}
        }
        self.stats.ladder_cache_flushes += 1;
        self.dd.clear_caches();
        self.dd.collect_garbage();
        match op(self) {
            Ok(v) => Ok(v),
            Err(e) => Err(widen_dd_error(e, &self.dd)),
        }
    }

    /// Ladder rung 3: abandon the accumulated product and replay its gates
    /// one at a time through the (cheap) specialized kernels; the rest of
    /// the run stays sequential.
    fn degrade_and_replay(&mut self) -> Result<(), SimError> {
        self.stats.ladder_strategy_downgrades += 1;
        self.degraded = true;
        if let Some(p) = self.pending.take() {
            self.dd.dec_ref_mat(p);
        }
        self.pending_gates = 0;
        self.pending_single = None;
        let script = std::mem::take(&mut self.pending_ops);
        for g in &script {
            self.apply_gate_now(g)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Operation dispatch
    // ------------------------------------------------------------------

    fn process_ops(&mut self, ops: &[Operation]) -> Result<(), SimError> {
        for op in ops {
            match op {
                Operation::Gate(g) => self.feed_gate(g)?,
                Operation::Swap { a, b, controls } => {
                    for g in lower_swap(*a, *b, controls) {
                        self.feed_gate(&g)?;
                    }
                }
                Operation::Barrier => self.flush()?,
                Operation::Measure { qubit, cbit } => {
                    self.flush()?;
                    let outcome = self.measure(*qubit);
                    self.classical[*cbit] = outcome;
                }
                Operation::Reset { qubit } => {
                    self.flush()?;
                    let outcome = self.measure(*qubit);
                    if outcome {
                        let g = GateOp::new(ddsim_circuit::StandardGate::X, *qubit);
                        self.apply_gate_now(&g)?;
                    }
                }
                Operation::Classical { gate, cbit, value } => {
                    // The condition is already known classically, so the
                    // gate either joins the stream or vanishes.
                    if self.classical[*cbit] == *value {
                        self.feed_gate(gate)?;
                    }
                }
                Operation::Repeat { body, times } => self.process_repeat(body, *times)?,
            }
        }
        Ok(())
    }

    fn process_repeat(&mut self, body: &[Operation], times: u32) -> Result<(), SimError> {
        let reuse = matches!(self.effective_strategy(), Strategy::DdRepeating { .. });
        if reuse {
            if let Some(block) = self.combine_unitary_block(body)? {
                // Reordering is blocked while the block may be re-applied —
                // a sift underneath it would silently retarget its gates.
                self.reorder_holds += 1;
                let r = self.run_repeating_block(block, body, times);
                self.reorder_holds -= 1;
                return r;
            }
        }
        // Fallback: expand the block.
        for _ in 0..times {
            self.process_ops(body)?;
        }
        Ok(())
    }

    /// DD-repeating core: one combined matrix, re-applied for every
    /// iteration with zero further matrix-matrix work. The block arrives
    /// holding one reference, released before return on every path.
    fn run_repeating_block(
        &mut self,
        block: MatEdge,
        body: &[Operation],
        times: u32,
    ) -> Result<(), SimError> {
        if let Err(e) = self.flush() {
            self.dd.dec_ref_mat(block);
            return Err(e);
        }
        let block_gates: u64 = body.iter().map(|op| op.elementary_count()).sum();
        for done in 0..times {
            self.stats.elementary_gates += block_gates;
            match self.apply_now(block, block_gates) {
                Ok(()) => {}
                Err(SimError::BudgetExceeded { .. }) => {
                    // Rung 3 for the repeating path: drop the block,
                    // finish this and the remaining iterations gate
                    // by gate (they re-count their own gates).
                    self.stats.elementary_gates -= block_gates;
                    self.stats.ladder_strategy_downgrades += 1;
                    self.degraded = true;
                    self.dd.dec_ref_mat(block);
                    for _ in done..times {
                        self.process_ops(body)?;
                    }
                    return Ok(());
                }
                Err(e) => {
                    self.dd.dec_ref_mat(block);
                    return Err(e);
                }
            }
        }
        self.dd.dec_ref_mat(block);
        Ok(())
    }

    /// Multiplies all gates of a purely unitary block into one matrix DD.
    /// Returns `None` if the block contains non-unitary operations, or if
    /// building the product exhausted ladder rungs 1–2 (the caller then
    /// expands the block sequentially — rung 3 for this path); on success
    /// the returned edge holds one reference the caller must release with
    /// `dec_ref_mat`.
    fn combine_unitary_block(&mut self, ops: &[Operation]) -> Result<Option<MatEdge>, SimError> {
        let before = self.dd.stats();
        let mut product = self.dd.mat_identity(self.n);
        self.dd.inc_ref_mat(product);
        let fold = |sim: &mut Self, product: &mut MatEdge, m: MatEdge| -> Result<(), SimError> {
            // Pin the fresh operand across possible emergency collections.
            sim.dd.inc_ref_mat(m);
            let prev = *product;
            let next = sim.recover(|sim| sim.dd.mat_mat_mul(m, prev));
            sim.dd.dec_ref_mat(m);
            let next = next?;
            sim.dd.inc_ref_mat(next);
            sim.dd.dec_ref_mat(prev);
            *product = next;
            Ok(())
        };
        let mut build = || -> Result<Option<()>, SimError> {
            for op in ops {
                match op {
                    Operation::Gate(g) => {
                        let m = self.gate_matrix(g);
                        fold(self, &mut product, m)?;
                    }
                    Operation::Swap { a, b, controls } => {
                        for g in lower_swap(*a, *b, controls) {
                            let m = self.gate_matrix(&g);
                            fold(self, &mut product, m)?;
                        }
                    }
                    Operation::Barrier => {}
                    Operation::Repeat { body, times } => {
                        let Some(inner) = self.combine_unitary_block(body)? else {
                            return Ok(None);
                        };
                        self.dd.inc_ref_mat(inner);
                        let mut iterate = || -> Result<(), SimError> {
                            for _ in 0..*times {
                                fold(self, &mut product, inner)?;
                            }
                            Ok(())
                        };
                        let r = iterate();
                        self.dd.dec_ref_mat(inner);
                        r?;
                    }
                    Operation::Measure { .. }
                    | Operation::Reset { .. }
                    | Operation::Classical { .. } => return Ok(None),
                }
            }
            Ok(Some(()))
        };
        let outcome = build();
        let after = self.dd.stats();
        self.stats.absorb_dd_delta(before, after);
        match outcome {
            Ok(Some(())) => {
                let nodes = self.dd.mat_node_count(product);
                if nodes > self.stats.peak_matrix_nodes {
                    self.stats.peak_matrix_nodes = nodes;
                }
                Ok(Some(product))
            }
            Ok(None) => {
                self.dd.dec_ref_mat(product);
                Ok(None)
            }
            Err(SimError::BudgetExceeded { .. }) => {
                // The product itself does not fit: fall back to sequential
                // expansion of the block.
                self.dd.dec_ref_mat(product);
                Ok(None)
            }
            Err(e) => {
                self.dd.dec_ref_mat(product);
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // Combining core
    // ------------------------------------------------------------------

    fn gate_matrix(&mut self, g: &GateOp) -> MatEdge {
        let before = self.dd.stats();
        let m = self
            .dd
            .mat_controlled(self.n, &g.controls, g.target, g.gate.matrix());
        let after = self.dd.stats();
        // Gate construction may perform one small matrix addition; its
        // recursions are bookkeeping, not simulation cost, but the counters
        // must stay consistent.
        self.stats.absorb_dd_delta(before, after);
        m
    }

    /// Whether gate application may bypass matrix construction and go
    /// through the specialized apply kernels. Tracing needs the gate
    /// matrix DD for its per-step node counts, so it forces the generic
    /// path.
    fn use_specialized(&self) -> bool {
        self.options.dd_config.identity_skip && !self.options.collect_trace
    }

    /// The configured strategy, unless ladder rung 3 downgraded the run.
    fn effective_strategy(&self) -> Strategy {
        if self.degraded {
            Strategy::Sequential
        } else {
            self.options.strategy
        }
    }

    /// Feeds one elementary gate into the strategy.
    fn feed_gate(&mut self, g: &GateOp) -> Result<(), SimError> {
        self.stats.elementary_gates += 1;
        match self.effective_strategy() {
            Strategy::Sequential => self.apply_gate_now(g),
            Strategy::KOperations { k } | Strategy::DdRepeating { k } if k <= 1 => {
                self.apply_gate_now(g)
            }
            Strategy::KOperations { k } | Strategy::DdRepeating { k } => {
                self.accumulate_gate(g)?;
                if self.pending_gates >= k as u64 {
                    self.flush()?;
                }
                Ok(())
            }
            Strategy::MaxSize { s_max } => {
                self.accumulate_gate(g)?;
                let nodes = self.pending.map(|p| self.dd.mat_node_count(p)).unwrap_or(0);
                if nodes > self.stats.peak_matrix_nodes {
                    self.stats.peak_matrix_nodes = nodes;
                }
                if nodes > s_max {
                    self.flush()?;
                }
                Ok(())
            }
            Strategy::Adaptive { ratio_millis, cap } => {
                self.accumulate_gate(g)?;
                let nodes = self.pending.map(|p| self.dd.mat_node_count(p)).unwrap_or(0);
                if nodes > self.stats.peak_matrix_nodes {
                    self.stats.peak_matrix_nodes = nodes;
                }
                // Section III's condition: combining pays while the product
                // DD stays small relative to the state DD it would
                // otherwise be multiplied into repeatedly.
                let budget =
                    (self.cached_state_nodes as u64).saturating_mul(u64::from(ratio_millis)) / 1000;
                if nodes as u64 > budget.max(4) || nodes > cap {
                    self.flush()?;
                }
                Ok(())
            }
        }
    }

    /// Builds the gate's matrix DD and folds it into the pending product,
    /// remembering the gate itself while the group stays at one gate. On
    /// budget exhaustion (rungs 1–2 spent) takes rung 3: the recorded
    /// group — including this gate — replays sequentially.
    fn accumulate_gate(&mut self, g: &GateOp) -> Result<(), SimError> {
        self.pending_single = if self.pending.is_none() {
            Some(g.clone())
        } else {
            None
        };
        self.pending_ops.push(g.clone());
        let m = self.gate_matrix(g);
        match self.accumulate(m) {
            Ok(()) => Ok(()),
            Err(SimError::BudgetExceeded { .. }) => self.degrade_and_replay(),
            Err(e) => Err(e),
        }
    }

    fn accumulate(&mut self, m: MatEdge) -> Result<(), SimError> {
        let before = self.dd.stats();
        let folded = match self.pending {
            None => Ok(m),
            Some(p) => {
                // Pin the fresh gate matrix: the ladder's emergency GC runs
                // between retries and must not reclaim an operand.
                self.dd.inc_ref_mat(m);
                let r = self.recover(|sim| sim.dd.mat_mat_mul(m, p));
                self.dd.dec_ref_mat(m);
                r
            }
        };
        let after = self.dd.stats();
        self.stats.absorb_dd_delta(before, after);
        let next = folded?;
        if let Some(p) = self.pending.take() {
            self.dd.dec_ref_mat(p);
        }
        self.dd.inc_ref_mat(next);
        self.pending = Some(next);
        self.pending_gates += 1;
        Ok(())
    }

    /// Applies any accumulated product to the state; on budget exhaustion
    /// takes ladder rung 3 (sequential replay of the recorded gates).
    fn flush(&mut self) -> Result<(), SimError> {
        let single = self.pending_single.take();
        let Some(p) = self.pending.take() else {
            self.pending_ops.clear();
            return Ok(());
        };
        let gates = self.pending_gates;
        self.pending_gates = 0;
        if gates == 1 && self.use_specialized() {
            if let Some(g) = single {
                // A one-gate group gains nothing from the matrix DD:
                // drop it and descend the state directly.
                self.dd.dec_ref_mat(p);
                self.pending_ops.clear();
                return self.apply_gate_now(&g);
            }
        }
        if self.options.collect_trace || matches!(self.options.strategy, Strategy::MaxSize { .. }) {
            let nodes = self.dd.mat_node_count(p);
            if nodes > self.stats.peak_matrix_nodes {
                self.stats.peak_matrix_nodes = nodes;
            }
        }
        match self.apply_now(p, gates) {
            Ok(()) => {
                self.dd.dec_ref_mat(p);
                self.pending_ops.clear();
                self.maybe_sift_for_growth();
                Ok(())
            }
            Err(SimError::BudgetExceeded { .. }) => {
                // Rung 3: the product · state multiplication does not fit;
                // replay the recorded gates one at a time instead.
                self.dd.dec_ref_mat(p);
                self.degrade_and_replay()
            }
            Err(e) => {
                self.dd.dec_ref_mat(p);
                self.pending_ops.clear();
                Err(e)
            }
        }
    }

    /// Applies one elementary gate to the state, preferring the specialized
    /// kernels (which never build a matrix DD and never touch levels above
    /// the gate) when [`Self::use_specialized`] allows it. Runs under
    /// ladder rungs 1–2.
    fn apply_gate_now(&mut self, g: &GateOp) -> Result<(), SimError> {
        if !self.use_specialized() {
            let m = self.gate_matrix(g);
            self.dd.inc_ref_mat(m);
            let r = self.apply_now(m, 1);
            self.dd.dec_ref_mat(m);
            if r.is_ok() {
                self.maybe_sift_for_growth();
            }
            return r;
        }
        let u = g.gate.matrix();
        // `state` is ref-pinned by the simulator, so the ladder may collect
        // between retries. The closure re-reads `sim.state` and re-derives
        // the gate's levels from the live variable order on every attempt,
        // which is what makes the sift rung below sound.
        let apply = |sim: &mut Self| {
            if g.controls.is_empty() {
                sim.dd.apply_single_qubit(g.target, u, sim.state)
            } else {
                sim.dd.apply_controlled(&g.controls, g.target, u, sim.state)
            }
        };
        let before = self.dd.stats();
        let next = self.recover(apply);
        let after = self.dd.stats();
        self.stats.absorb_dd_delta(before, after);
        let next = match next {
            Err(SimError::BudgetExceeded { .. }) if self.can_sift() => {
                // Ladder sift rung: rungs 1–2 could not fit the
                // application, so shrink the *state* by reordering and give
                // the full ladder one more try before the caller falls to
                // the strategy downgrade. Sequential replay (rung 3)
                // reaches this rung per replayed gate, so combining runs
                // benefit too.
                self.sift_now(true);
                let before = self.dd.stats();
                let retried = self.recover(apply);
                let after = self.dd.stats();
                self.stats.absorb_dd_delta(before, after);
                retried
            }
            other => other,
        };
        let next = next?;
        self.dd.inc_ref_vec(next);
        self.dd.dec_ref_vec(self.state);
        self.state = next;
        if matches!(self.options.strategy, Strategy::Adaptive { .. }) {
            self.cached_state_nodes = self.dd.vec_node_count(self.state);
        }
        self.collect_if_needed();
        self.maybe_sift_for_growth();
        Ok(())
    }

    /// One matrix-vector application, with bookkeeping. The caller keeps
    /// `m` ref-pinned (the ladder may collect between retries). Runs under
    /// ladder rungs 1–2; rung 3 is the caller's.
    fn apply_now(&mut self, m: MatEdge, combined_gates: u64) -> Result<(), SimError> {
        let before = self.dd.stats();
        let next = self.recover(|sim| sim.dd.mat_vec_mul(m, sim.state));
        let after = self.dd.stats();
        self.stats.absorb_dd_delta(before, after);
        let next = next?;
        self.dd.inc_ref_vec(next);
        self.dd.dec_ref_vec(self.state);
        self.state = next;
        if matches!(self.options.strategy, Strategy::Adaptive { .. }) {
            self.cached_state_nodes = self.dd.vec_node_count(self.state);
        }
        if self.options.collect_trace {
            let matrix_nodes = self.dd.mat_node_count(m);
            let state_nodes = self.dd.vec_node_count(self.state);
            if state_nodes > self.stats.peak_state_nodes {
                self.stats.peak_state_nodes = state_nodes;
            }
            if matrix_nodes > self.stats.peak_matrix_nodes {
                self.stats.peak_matrix_nodes = matrix_nodes;
            }
            self.stats.trace.push(StepTrace {
                gate_index: self.stats.elementary_gates,
                combined_gates,
                matrix_nodes,
                state_nodes,
            });
        }
        self.collect_if_needed();
        Ok(())
    }

    fn measure(&mut self, qubit: u32) -> bool {
        let draw = self.rng.gen::<f64>();
        let (outcome, collapsed) = self.dd.measure_qubit(self.state, qubit, draw);
        self.dd.inc_ref_vec(collapsed);
        self.dd.dec_ref_vec(self.state);
        self.state = collapsed;
        if matches!(self.options.strategy, Strategy::Adaptive { .. }) {
            // Keep the adaptive ratio's reference point in sync with every
            // state change — a checkpoint/resume must observe the same
            // value an uninterrupted run would.
            self.cached_state_nodes = self.dd.vec_node_count(self.state);
        }
        self.collect_if_needed();
        outcome
    }

    fn collect_if_needed(&mut self) {
        // `pending` and `state` hold references, so collection is safe here.
        // The collection gets its own stats window: it runs outside the
        // multiply windows, and without this its gc_runs / unique-table
        // rebuild counts would never reach RunStats.
        let before = self.dd.stats();
        if self.dd.maybe_collect() {
            let after = self.dd.stats();
            self.stats.absorb_dd_delta(before, after);
        }
    }
}

impl fmt::Debug for Simulator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("qubits", &self.n)
            .field("strategy", &self.options.strategy)
            .field("state_nodes", &self.dd.vec_node_count(self.state))
            .field("classical", &self.classical)
            .finish()
    }
}

/// Convenience one-shot simulation.
///
/// # Errors
///
/// See [`Simulator::run`].
///
/// # Examples
///
/// ```
/// use ddsim_circuit::Circuit;
/// use ddsim_core::{simulate, SimOptions, Strategy};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ghz = Circuit::new(3);
/// ghz.h(0).cx(0, 1).cx(1, 2);
/// let (sim, stats) = simulate(&ghz, SimOptions::with_strategy(Strategy::KOperations { k: 3 }))?;
/// assert!((sim.probability_of(0b000) - 0.5).abs() < 1e-10);
/// assert!(stats.mat_vec_mults < 3, "combining must reduce MxV count");
/// # Ok(())
/// # }
/// ```
pub fn simulate(circuit: &Circuit, options: SimOptions) -> Result<(Simulator, RunStats), SimError> {
    let mut sim = Simulator::with_options(circuit.qubits(), options);
    let stats = sim.run(circuit)?;
    Ok((sim, stats))
}

//! Stochastic Pauli-noise simulation via quantum trajectories — an
//! extension beyond the paper, mirroring what production DD simulators
//! offer: after every elementary gate, each touched qubit suffers a
//! depolarizing error with a configurable probability; averaging over many
//! seeded trajectories approximates the noisy density-matrix evolution
//! while each individual trajectory stays a pure state (and thus a plain
//! vector DD).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use ddsim_circuit::{Circuit, Operation, StandardGate};
use ddsim_dd::{CancelToken, FxHashMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{SimOptions, Simulator};
use crate::error::SimError;

/// A depolarizing-noise model: with probability `probability` after each
/// elementary gate, each qubit the gate touched suffers a uniformly random
/// Pauli error (X, Y, or Z).
///
/// Noise attaches to *unitary* operations only ([`Operation::Gate`] and
/// [`Operation::Swap`], the latter treated as one elementary op touching
/// controls plus both swapped qubits). `Measure` and `Reset` are ideal
/// instruments in this model — no error is inserted after them, even at
/// probability 1.0 — matching the exact density-matrix path
/// ([`DensitySimulator`](crate::density::DensitySimulator)), which applies
/// their Kraus maps without a depolarizing step. Model readout error by
/// appending explicit gates before measurement if needed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DepolarizingNoise {
    /// Per-gate, per-touched-qubit error probability.
    pub probability: f64,
}

impl DepolarizingNoise {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]`.
    pub fn new(probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "error probability must lie in [0, 1]"
        );
        DepolarizingNoise { probability }
    }
}

/// Aggregated result of a trajectory ensemble.
#[derive(Clone, Debug)]
pub struct NoisyEnsemble {
    /// Trajectories run.
    pub trajectories: u32,
    /// Counts of sampled outcomes across all trajectories (one sample per
    /// trajectory).
    pub counts: FxHashMap<u64, u32>,
}

impl NoisyEnsemble {
    /// Empirical probability of an outcome.
    pub fn probability_of(&self, outcome: u64) -> f64 {
        f64::from(*self.counts.get(&outcome).unwrap_or(&0)) / f64::from(self.trajectories)
    }
}

/// Inserts random Pauli errors into a copy of the circuit according to the
/// noise model (one trajectory). Exposed so callers can inspect or re-run
/// an interesting trajectory.
pub fn sample_noisy_circuit(circuit: &Circuit, noise: DepolarizingNoise, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut noisy = Circuit::with_cbits(circuit.qubits(), circuit.cbits());
    noisy.set_name(format!("{}_noisy_{seed}", circuit.name()));
    insert_noise(circuit.flattened().ops(), noise, &mut rng, &mut noisy);
    noisy
}

fn insert_noise(ops: &[Operation], noise: DepolarizingNoise, rng: &mut StdRng, out: &mut Circuit) {
    for op in ops {
        out.push(op.clone());
        let touched: Vec<u32> = match op {
            Operation::Gate(g) => g
                .controls
                .iter()
                .map(|c| c.qubit)
                .chain(std::iter::once(g.target))
                .collect(),
            Operation::Swap { a, b, controls } => {
                controls.iter().map(|c| c.qubit).chain([*a, *b]).collect()
            }
            // Measure/Reset are ideal instruments (see the model rustdoc);
            // classical ops and barriers touch no quantum state.
            Operation::Measure { .. }
            | Operation::Reset { .. }
            | Operation::Classical { .. }
            | Operation::Repeat { .. }
            | Operation::Barrier => Vec::new(),
        };
        for q in touched {
            if rng.gen::<f64>() < noise.probability {
                let pauli = match rng.gen_range(0..3) {
                    0 => StandardGate::X,
                    1 => StandardGate::Y,
                    _ => StandardGate::Z,
                };
                out.gate(pauli, q);
            }
        }
    }
}

/// Runs `trajectories` noisy trajectories of a circuit, sampling one full
/// measurement from each, and aggregates the outcome counts.
///
/// # Errors
///
/// Returns [`SimError`] if a trajectory run fails — a width mismatch cannot
/// happen for circuits built by this crate's generators, but resource
/// budgets configured in the default [`SimOptions`] still apply.
pub fn run_noisy_ensemble(
    circuit: &Circuit,
    noise: DepolarizingNoise,
    trajectories: u32,
    seed: u64,
) -> Result<NoisyEnsemble, SimError> {
    let template = SimOptions {
        seed,
        ..SimOptions::default()
    };
    run_noisy_ensemble_with(circuit, noise, trajectories, &template, None)
}

/// [`run_noisy_ensemble`] with the trajectory loop spread across a
/// work-stealing pool of `threads` lanes (`0` = all cores, `≤ 1` = the
/// sequential loop).
///
/// # Errors
///
/// As [`run_noisy_ensemble_with`].
pub fn run_noisy_ensemble_threaded(
    circuit: &Circuit,
    noise: DepolarizingNoise,
    trajectories: u32,
    seed: u64,
    threads: u32,
) -> Result<NoisyEnsemble, SimError> {
    let template = SimOptions {
        seed,
        threads,
        ..SimOptions::default()
    };
    run_noisy_ensemble_with(circuit, noise, trajectories, &template, None)
}

/// The fully governed ensemble runner: every per-trajectory simulator is
/// built from `template` — strategy, DD configuration (budgets, tolerance,
/// fault injection), reorder mode — with only the seed overridden to
/// `template.seed + t`. `template.threads` parallelizes the *trajectory*
/// loop on a work-stealing pool (`0` = all cores, `≤ 1` = sequential);
/// each inner simulator runs single-threaded, since the trajectory level
/// is where the parallelism pays. Every trajectory's circuit, run, and
/// sample derive from its seed alone, so the aggregated counts are
/// identical at every thread count — parallelism changes wall-clock time,
/// never the result.
///
/// `template.deadline` bounds the *whole ensemble*: the budget is
/// converted to an absolute instant up front and each trajectory gets
/// only the remaining window, so a deadline actually stops the ensemble
/// rather than re-arming per trajectory. A `cancel` token is observed
/// before each trajectory and inside the DD recursions of the running
/// ones.
///
/// # Errors
///
/// Returns the failing trajectory's [`SimError`]. When several lanes fail
/// concurrently, the error with the lowest trajectory index among those
/// attempted is reported (the sequential loop's choice); remaining lanes
/// stop at their next trajectory boundary.
pub fn run_noisy_ensemble_with(
    circuit: &Circuit,
    noise: DepolarizingNoise,
    trajectories: u32,
    template: &SimOptions,
    cancel: Option<&CancelToken>,
) -> Result<NoisyEnsemble, SimError> {
    let ensemble_deadline = template.deadline.map(|d| Instant::now() + d);
    let one_trajectory = |t: u32| -> Result<u64, SimError> {
        if let Some(token) = cancel {
            if token.is_cancelled() {
                return Err(SimError::Cancelled);
            }
        }
        let remaining = match ensemble_deadline {
            Some(at) => {
                let now = Instant::now();
                if now >= at {
                    return Err(SimError::DeadlineExceeded);
                }
                Some(at - now)
            }
            None => None,
        };
        let trajectory_seed = template.seed.wrapping_add(u64::from(t));
        let noisy = sample_noisy_circuit(circuit, noise, trajectory_seed);
        let mut sim = Simulator::with_options(
            circuit.qubits(),
            SimOptions {
                seed: trajectory_seed,
                deadline: remaining,
                threads: 1,
                ..*template
            },
        );
        sim.set_cancel_token(cancel.cloned());
        sim.run(&noisy)?;
        Ok(sim.sample())
    };
    let pool = if trajectories >= 2 {
        crate::engine::build_pool(template.threads)
    } else {
        None
    };
    let mut counts = FxHashMap::default();
    match pool {
        None => {
            for t in 0..trajectories {
                *counts.entry(one_trajectory(t)?).or_insert(0) += 1;
            }
        }
        Some(pool) => {
            // Lane-sharded harvest (the `sample_counts_par` layout): one
            // histogram slot per lane instead of one mutex per trajectory.
            // Lanes own disjoint slots, so plain indexed writes through
            // `iter_mut` suffice — no locking anywhere.
            // A lane's histogram plus its first failure, if any.
            type LaneSlot = (FxHashMap<u64, u32>, Option<(u32, SimError)>);
            let lanes = pool.parallelism().min(trajectories as usize).max(1);
            let mut slots: Vec<LaneSlot> =
                (0..lanes).map(|_| (FxHashMap::default(), None)).collect();
            let stop = AtomicBool::new(false);
            {
                let stop = &stop;
                let one_trajectory = &one_trajectory;
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                    .iter_mut()
                    .enumerate()
                    .map(|(lane, slot)| {
                        Box::new(move || {
                            let mut t = lane as u32;
                            while t < trajectories && !stop.load(Ordering::Relaxed) {
                                match one_trajectory(t) {
                                    Ok(outcome) => {
                                        *slot.0.entry(outcome).or_insert(0) += 1;
                                    }
                                    Err(e) => {
                                        slot.1 = Some((t, e));
                                        stop.store(true, Ordering::Relaxed);
                                        break;
                                    }
                                }
                                t += lanes as u32;
                            }
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                pool.run_batch(tasks);
            }
            let mut first_error: Option<(u32, SimError)> = None;
            for (lane_counts, lane_error) in slots {
                if let Some((t, e)) = lane_error {
                    if first_error.as_ref().is_none_or(|(bt, _)| t < *bt) {
                        first_error = Some((t, e));
                    }
                }
                for (outcome, c) in lane_counts {
                    *counts.entry(outcome).or_insert(0) += c;
                }
            }
            if let Some((_, e)) = first_error {
                return Err(e);
            }
        }
    }
    Ok(NoisyEnsemble {
        trajectories,
        counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_is_the_ideal_circuit() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let noisy = sample_noisy_circuit(&c, DepolarizingNoise::new(0.0), 1);
        assert_eq!(noisy.elementary_count(), c.elementary_count());
    }

    #[test]
    fn full_noise_inserts_errors_everywhere() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let noisy = sample_noisy_circuit(&c, DepolarizingNoise::new(1.0), 1);
        // h touches 1 qubit, cx touches 2: 3 inserted Paulis.
        assert_eq!(noisy.elementary_count(), c.elementary_count() + 3);
    }

    #[test]
    fn trajectories_are_deterministic_per_seed() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let noise = DepolarizingNoise::new(0.3);
        assert_eq!(
            sample_noisy_circuit(&c, noise, 42),
            sample_noisy_circuit(&c, noise, 42)
        );
        assert_ne!(
            sample_noisy_circuit(&c, noise, 42),
            sample_noisy_circuit(&c, noise, 43)
        );
    }

    #[test]
    fn noiseless_ensemble_reproduces_bell_statistics() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let ensemble = run_noisy_ensemble(&c, DepolarizingNoise::new(0.0), 200, 7).expect("run");
        let p00 = ensemble.probability_of(0b00);
        let p11 = ensemble.probability_of(0b11);
        assert!((p00 + p11 - 1.0).abs() < 1e-9, "only correlated outcomes");
        assert!((p00 - 0.5).abs() < 0.15, "p00 = {p00}");
    }

    #[test]
    fn noise_degrades_ghz_correlations() {
        let mut c = Circuit::new(4);
        c.h(0);
        for q in 1..4 {
            c.cx(q - 1, q);
        }
        let ideal = run_noisy_ensemble(&c, DepolarizingNoise::new(0.0), 150, 1).expect("run");
        let noisy = run_noisy_ensemble(&c, DepolarizingNoise::new(0.2), 150, 1).expect("run");
        let correlated = |e: &NoisyEnsemble| e.probability_of(0) + e.probability_of(0b1111);
        assert!((correlated(&ideal) - 1.0).abs() < 1e-9);
        assert!(
            correlated(&noisy) < 0.9,
            "20% depolarizing noise must visibly break GHZ correlations, got {}",
            correlated(&noisy)
        );
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn invalid_probability_rejected() {
        let _ = DepolarizingNoise::new(1.5);
    }

    #[test]
    fn measure_and_reset_are_noiseless_even_at_p_one() {
        // The documented model exclusion: ideal instruments. At p = 1.0
        // every gate-touched qubit gains a Pauli, but measure/reset do not.
        let mut c = Circuit::with_cbits(2, 1);
        c.h(0); // 1 touched qubit → 1 inserted Pauli
        c.measure(0, 0); // 0 inserted
        c.reset(1); // 0 inserted
        c.cx(0, 1); // 2 touched qubits → 2 inserted
        let noisy = sample_noisy_circuit(&c, DepolarizingNoise::new(1.0), 9);
        assert_eq!(noisy.elementary_count(), c.elementary_count() + 3);
    }

    #[test]
    fn ensemble_deadline_stops_runs_at_every_thread_count() {
        let mut c = Circuit::new(3);
        for _ in 0..30 {
            c.h(0).cx(0, 1).cx(1, 2).t(2);
        }
        for threads in [1u32, 3] {
            let template = SimOptions {
                deadline: Some(std::time::Duration::ZERO),
                threads,
                ..SimOptions::default()
            };
            let err = run_noisy_ensemble_with(&c, DepolarizingNoise::new(0.1), 64, &template, None)
                .map(|_| ())
                .expect_err("zero ensemble deadline must trip");
            assert_eq!(err, SimError::DeadlineExceeded, "threads={threads}");
        }
    }

    #[test]
    fn ensemble_cancel_stops_runs_at_every_thread_count() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        for threads in [1u32, 3] {
            let token = CancelToken::new();
            token.cancel();
            let template = SimOptions {
                threads,
                ..SimOptions::default()
            };
            let err = run_noisy_ensemble_with(
                &c,
                DepolarizingNoise::new(0.0),
                64,
                &template,
                Some(&token),
            )
            .map(|_| ())
            .expect_err("pre-cancelled ensemble must trip");
            assert_eq!(err, SimError::Cancelled, "threads={threads}");
        }
    }

    #[test]
    fn ensemble_respects_template_budgets() {
        // The bug this PR fixes: the threaded runner used to rebuild
        // SimOptions::default() per trajectory, silently dropping every
        // caller-configured budget. A 1-node budget must now fail the
        // ensemble at every thread count.
        // Deep enough that the amortized governor performs full checks and
        // the entangled state cannot fit in the budget at any ladder rung.
        let mut c = Circuit::new(10);
        for layer in 0..12 {
            for q in 0..10 {
                c.h(q);
                c.t(q);
            }
            for q in 0..9 {
                c.cx(q, (q + 1 + layer) % 10);
            }
        }
        for threads in [1u32, 3] {
            let template = SimOptions {
                dd_config: ddsim_dd::DdConfig {
                    max_live_nodes: Some(4),
                    ..ddsim_dd::DdConfig::default()
                },
                threads,
                ..SimOptions::default()
            };
            let err = run_noisy_ensemble_with(&c, DepolarizingNoise::new(0.0), 8, &template, None)
                .map(|_| ())
                .expect_err("4-node budget must trip");
            assert!(
                matches!(err, SimError::BudgetExceeded { .. }),
                "threads={threads}: {err:?}"
            );
        }
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        // Satellite coverage: ensemble counts are bitwise-identical
        // across thread counts, at p = 0 and under real noise alike
        // (every trajectory derives from `seed + t` only).
        #[test]
        fn ensemble_counts_identical_across_thread_counts(
            seed in 0u64..u64::MAX,
            p in prop_oneof![Just(0.0), Just(0.25)],
        ) {
            let mut c = Circuit::new(3);
            c.h(0).cx(0, 1).cx(1, 2).t(1);
            let noise = DepolarizingNoise::new(p);
            let single =
                run_noisy_ensemble_threaded(&c, noise, 24, seed, 1).expect("threads=1");
            let triple =
                run_noisy_ensemble_threaded(&c, noise, 24, seed, 3).expect("threads=3");
            prop_assert_eq!(&single.counts, &triple.counts);
        }
    }
}

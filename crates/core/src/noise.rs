//! Stochastic Pauli-noise simulation via quantum trajectories — an
//! extension beyond the paper, mirroring what production DD simulators
//! offer: after every elementary gate, each touched qubit suffers a
//! depolarizing error with a configurable probability; averaging over many
//! seeded trajectories approximates the noisy density-matrix evolution
//! while each individual trajectory stays a pure state (and thus a plain
//! vector DD).

use std::sync::Mutex;

use ddsim_circuit::{Circuit, Operation, StandardGate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{SimOptions, Simulator};
use crate::error::SimError;

/// A depolarizing-noise model: with probability `probability` after each
/// elementary gate, each qubit the gate touched suffers a uniformly random
/// Pauli error (X, Y, or Z).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DepolarizingNoise {
    /// Per-gate, per-touched-qubit error probability.
    pub probability: f64,
}

impl DepolarizingNoise {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]`.
    pub fn new(probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "error probability must lie in [0, 1]"
        );
        DepolarizingNoise { probability }
    }
}

/// Aggregated result of a trajectory ensemble.
#[derive(Clone, Debug)]
pub struct NoisyEnsemble {
    /// Trajectories run.
    pub trajectories: u32,
    /// Counts of sampled outcomes across all trajectories (one sample per
    /// trajectory).
    pub counts: std::collections::HashMap<u64, u32>,
}

impl NoisyEnsemble {
    /// Empirical probability of an outcome.
    pub fn probability_of(&self, outcome: u64) -> f64 {
        f64::from(*self.counts.get(&outcome).unwrap_or(&0)) / f64::from(self.trajectories)
    }
}

/// Inserts random Pauli errors into a copy of the circuit according to the
/// noise model (one trajectory). Exposed so callers can inspect or re-run
/// an interesting trajectory.
pub fn sample_noisy_circuit(circuit: &Circuit, noise: DepolarizingNoise, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut noisy = Circuit::with_cbits(circuit.qubits(), circuit.cbits());
    noisy.set_name(format!("{}_noisy_{seed}", circuit.name()));
    insert_noise(circuit.flattened().ops(), noise, &mut rng, &mut noisy);
    noisy
}

fn insert_noise(ops: &[Operation], noise: DepolarizingNoise, rng: &mut StdRng, out: &mut Circuit) {
    for op in ops {
        out.push(op.clone());
        let touched: Vec<u32> = match op {
            Operation::Gate(g) => g
                .controls
                .iter()
                .map(|c| c.qubit)
                .chain(std::iter::once(g.target))
                .collect(),
            Operation::Swap { a, b, controls } => {
                controls.iter().map(|c| c.qubit).chain([*a, *b]).collect()
            }
            _ => Vec::new(),
        };
        for q in touched {
            if rng.gen::<f64>() < noise.probability {
                let pauli = match rng.gen_range(0..3) {
                    0 => StandardGate::X,
                    1 => StandardGate::Y,
                    _ => StandardGate::Z,
                };
                out.gate(pauli, q);
            }
        }
    }
}

/// Runs `trajectories` noisy trajectories of a circuit, sampling one full
/// measurement from each, and aggregates the outcome counts.
///
/// # Errors
///
/// Returns [`SimError`] if a trajectory run fails — a width mismatch cannot
/// happen for circuits built by this crate's generators, but resource
/// budgets configured in the default [`SimOptions`] still apply.
pub fn run_noisy_ensemble(
    circuit: &Circuit,
    noise: DepolarizingNoise,
    trajectories: u32,
    seed: u64,
) -> Result<NoisyEnsemble, SimError> {
    run_noisy_ensemble_threaded(circuit, noise, trajectories, seed, 1)
}

/// [`run_noisy_ensemble`] with the trajectory loop spread across a
/// work-stealing pool of `threads` lanes (`0` = all cores, `≤ 1` = the
/// sequential loop). Every trajectory's circuit, run, and sample derive
/// from `seed + t` alone, so the aggregated counts are identical at every
/// thread count — parallelism changes wall-clock time, never the result.
///
/// # Errors
///
/// Returns the first failing trajectory's [`SimError`] (lowest `t`),
/// matching what the sequential loop would report.
pub fn run_noisy_ensemble_threaded(
    circuit: &Circuit,
    noise: DepolarizingNoise,
    trajectories: u32,
    seed: u64,
    threads: u32,
) -> Result<NoisyEnsemble, SimError> {
    let one_trajectory = |t: u32| -> Result<u64, SimError> {
        let trajectory_seed = seed.wrapping_add(u64::from(t));
        let noisy = sample_noisy_circuit(circuit, noise, trajectory_seed);
        let mut sim = Simulator::with_options(
            circuit.qubits(),
            SimOptions {
                seed: trajectory_seed,
                ..SimOptions::default()
            },
        );
        sim.run(&noisy)?;
        Ok(sim.sample())
    };
    let pool = if trajectories >= 2 {
        crate::engine::build_pool(threads)
    } else {
        None
    };
    let mut counts = std::collections::HashMap::new();
    match pool {
        None => {
            for t in 0..trajectories {
                *counts.entry(one_trajectory(t)?).or_insert(0) += 1;
            }
        }
        Some(pool) => {
            let outcomes: Vec<Mutex<Option<Result<u64, SimError>>>> =
                (0..trajectories).map(|_| Mutex::new(None)).collect();
            {
                let outcomes = &outcomes;
                let one_trajectory = &one_trajectory;
                pool.par_for_each_index(trajectories as usize, move |t| {
                    *outcomes[t].lock().expect("trajectory slot poisoned") =
                        Some(one_trajectory(t as u32));
                });
            }
            // Trajectory order, so the reported error matches the
            // sequential loop's (counts themselves merge commutatively).
            for slot in outcomes {
                let outcome = slot
                    .into_inner()
                    .expect("trajectory slot poisoned")
                    .expect("trajectory did not run")?;
                *counts.entry(outcome).or_insert(0) += 1;
            }
        }
    }
    Ok(NoisyEnsemble {
        trajectories,
        counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_noise_is_the_ideal_circuit() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let noisy = sample_noisy_circuit(&c, DepolarizingNoise::new(0.0), 1);
        assert_eq!(noisy.elementary_count(), c.elementary_count());
    }

    #[test]
    fn full_noise_inserts_errors_everywhere() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let noisy = sample_noisy_circuit(&c, DepolarizingNoise::new(1.0), 1);
        // h touches 1 qubit, cx touches 2: 3 inserted Paulis.
        assert_eq!(noisy.elementary_count(), c.elementary_count() + 3);
    }

    #[test]
    fn trajectories_are_deterministic_per_seed() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let noise = DepolarizingNoise::new(0.3);
        assert_eq!(
            sample_noisy_circuit(&c, noise, 42),
            sample_noisy_circuit(&c, noise, 42)
        );
        assert_ne!(
            sample_noisy_circuit(&c, noise, 42),
            sample_noisy_circuit(&c, noise, 43)
        );
    }

    #[test]
    fn noiseless_ensemble_reproduces_bell_statistics() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let ensemble = run_noisy_ensemble(&c, DepolarizingNoise::new(0.0), 200, 7).expect("run");
        let p00 = ensemble.probability_of(0b00);
        let p11 = ensemble.probability_of(0b11);
        assert!((p00 + p11 - 1.0).abs() < 1e-9, "only correlated outcomes");
        assert!((p00 - 0.5).abs() < 0.15, "p00 = {p00}");
    }

    #[test]
    fn noise_degrades_ghz_correlations() {
        let mut c = Circuit::new(4);
        c.h(0);
        for q in 1..4 {
            c.cx(q - 1, q);
        }
        let ideal = run_noisy_ensemble(&c, DepolarizingNoise::new(0.0), 150, 1).expect("run");
        let noisy = run_noisy_ensemble(&c, DepolarizingNoise::new(0.2), 150, 1).expect("run");
        let correlated = |e: &NoisyEnsemble| e.probability_of(0) + e.probability_of(0b1111);
        assert!((correlated(&ideal) - 1.0).abs() < 1e-9);
        assert!(
            correlated(&noisy) < 0.9,
            "20% depolarizing noise must visibly break GHZ correlations, got {}",
            correlated(&noisy)
        );
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn invalid_probability_rejected() {
        let _ = DepolarizingNoise::new(1.5);
    }
}

//! The paper's *DD-construct* strategy for Shor's algorithm (Section IV-B,
//! Table II).
//!
//! Instead of decomposing the modular-exponentiation oracle into elementary
//! gates over 2n+3 qubits (the Beauregard circuit simulated by the general
//! engine), the controlled modular multiplication `C-U_a : |x⟩ → |a·x mod N⟩`
//! is constructed *directly* as a permutation-matrix DD. This removes every
//! working qubit — only `n + 1` qubits remain (one semiclassical control
//! plus the n-qubit register) — and reduces each of the 2n order-finding
//! rounds to a handful of multiplications.

use std::collections::HashMap;
use std::f64::consts::PI;
use std::time::Instant;

use ddsim_algorithms::numtheory::{factor_from_phase, mul_mod, pow_mod};
use ddsim_algorithms::shor::ShorInstance;
use ddsim_complex::Complex;
use ddsim_dd::{DdManager, MatEdge, Matrix2, VecEdge};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stats::RunStats;

/// Result of one DD-construct order-finding run.
#[derive(Clone, Debug)]
pub struct ShorOutcome {
    /// The instance that was run.
    pub instance: ShorInstance,
    /// The measured phase numerator `x` (phase ≈ `x / 2^{2n}`).
    pub measured_phase: u64,
    /// Bits of the phase, round by round (`m_0` = least significant).
    pub phase_bits: Vec<bool>,
    /// A nontrivial factor recovered by continued fractions, if the run's
    /// measurement admitted one.
    pub factor: Option<u64>,
    /// Qubits used (`n + 1`, versus the circuit's `2n + 3`).
    pub qubits: u32,
    /// Run statistics.
    pub stats: RunStats,
}

fn h_matrix() -> Matrix2 {
    let s = Complex::SQRT2_INV;
    [[s, s], [s, -s]]
}

fn x_matrix() -> Matrix2 {
    [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]
}

/// The semiclassical, direct-DD order-finding simulator.
pub struct ShorDdConstruct {
    instance: ShorInstance,
    dd: DdManager,
    rng: StdRng,
    /// Cached controlled-multiplication DDs per multiplier.
    multiplier_cache: HashMap<u64, MatEdge>,
}

impl ShorDdConstruct {
    /// Creates a simulator for an instance with a measurement seed.
    pub fn new(instance: ShorInstance, seed: u64) -> Self {
        ShorDdConstruct {
            instance,
            dd: DdManager::new(),
            rng: StdRng::seed_from_u64(seed),
            multiplier_cache: HashMap::new(),
        }
    }

    /// Total qubits: one control plus the n-bit register.
    pub fn qubits(&self) -> u32 {
        self.instance.n_bits() + 1
    }

    /// Builds (or fetches) the controlled modular-multiplication DD for a
    /// multiplier: the permutation on `control ⊗ register` that maps
    /// `|1⟩|x⟩ → |1⟩|a·x mod N⟩` (identity for `x ≥ N` and for control 0).
    fn controlled_mult(&mut self, multiplier: u64) -> MatEdge {
        if let Some(&m) = self.multiplier_cache.get(&multiplier) {
            return m;
        }
        let n = self.instance.n_bits();
        let modulus = self.instance.modulus;
        let total = n + 1;
        let register_mask = (1u64 << n) - 1;
        let control_bit = 1u64 << n; // qubit 0 is the top bit of the index
        let m = self.dd.mat_permutation(total, |index| {
            if index & control_bit == 0 {
                return index;
            }
            let x = index & register_mask;
            if x >= modulus {
                return index;
            }
            control_bit | mul_mod(multiplier, x, modulus)
        });
        self.dd.inc_ref_mat(m);
        self.multiplier_cache.insert(multiplier, m);
        m
    }

    /// Runs the full 2n-round semiclassical order finding and classical
    /// post-processing.
    pub fn run(&mut self) -> ShorOutcome {
        let started = Instant::now();
        let n = self.instance.n_bits();
        let total = n + 1;
        let rounds = self.instance.phase_bits();
        let mut stats = RunStats::default();

        let dd_before = self.dd.stats();

        // |0⟩_control |1⟩_register — register LSB is the bottom qubit.
        let mut state = self.dd.vec_basis(total, 1);
        self.dd.inc_ref_vec(state);

        let h_gate = self.dd.mat_single_qubit(total, 0, h_matrix());
        self.dd.inc_ref_mat(h_gate);
        let x_gate = self.dd.mat_single_qubit(total, 0, x_matrix());
        self.dd.inc_ref_mat(x_gate);

        let apply = |dd: &mut DdManager, state: &mut VecEdge, m: MatEdge| {
            // Invariant: the DD-construct driver owns its manager and never
            // configures budgets, a deadline, or a cancel token, so governed
            // operations cannot fail.
            let next = dd.mat_vec_mul(m, *state).expect("ungoverned manager");
            dd.inc_ref_vec(next);
            dd.dec_ref_vec(*state);
            *state = next;
        };

        let mut bits: Vec<bool> = Vec::with_capacity(rounds as usize);
        for i in 0..rounds {
            let exponent = 1u64 << (rounds - 1 - i);
            let multiplier = pow_mod(self.instance.base, exponent, self.instance.modulus);
            let cmul = self.controlled_mult(multiplier);

            apply(&mut self.dd, &mut state, h_gate);
            apply(&mut self.dd, &mut state, cmul);

            // Semiclassical inverse-QFT correction: one phase gate whose
            // angle folds in every previously measured bit.
            let mut angle = 0.0f64;
            for (j, &bit) in bits.iter().enumerate() {
                if bit {
                    angle -= PI / f64::from(1u32 << (i as usize - j));
                }
            }
            if angle != 0.0 {
                let phase_gate = self.dd.mat_single_qubit(
                    total,
                    0,
                    [
                        [Complex::ONE, Complex::ZERO],
                        [Complex::ZERO, Complex::cis(angle)],
                    ],
                );
                apply(&mut self.dd, &mut state, phase_gate);
            }
            apply(&mut self.dd, &mut state, h_gate);

            let draw = self.rng.gen::<f64>();
            let (outcome, collapsed) = self.dd.measure_qubit(state, 0, draw);
            self.dd.inc_ref_vec(collapsed);
            self.dd.dec_ref_vec(state);
            state = collapsed;
            if outcome {
                apply(&mut self.dd, &mut state, x_gate);
            }
            bits.push(outcome);

            let nodes = self.dd.vec_node_count(state);
            if nodes > stats.peak_state_nodes {
                stats.peak_state_nodes = nodes;
            }
            self.dd.maybe_collect();
        }

        let measured_phase: u64 = bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| 1u64 << i)
            .sum();
        let factor = factor_from_phase(
            self.instance.modulus,
            self.instance.base,
            measured_phase,
            rounds,
        );

        let dd_after = self.dd.stats();
        stats.absorb_dd_delta(dd_before, dd_after);
        stats.elementary_gates = u64::from(rounds) * 4;
        stats.final_state_nodes = self.dd.vec_node_count(state);
        stats.wall_time = started.elapsed();
        self.dd.dec_ref_vec(state);

        ShorOutcome {
            instance: self.instance,
            measured_phase,
            phase_bits: bits,
            factor,
            qubits: total,
            stats,
        }
    }
}

/// One-shot DD-construct run.
///
/// # Examples
///
/// ```
/// use ddsim_algorithms::shor::ShorInstance;
/// use ddsim_core::run_shor_dd_construct;
///
/// let outcome = run_shor_dd_construct(ShorInstance::new(15, 7), 1);
/// assert_eq!(outcome.qubits, 5); // n+1, versus 11 for the full circuit
/// ```
pub fn run_shor_dd_construct(instance: ShorInstance, seed: u64) -> ShorOutcome {
    ShorDdConstruct::new(instance, seed).run()
}

/// Runs DD-construct order finding repeatedly (fresh measurement seeds)
/// until a factor is found or `max_attempts` is exhausted.
pub fn factor_with_dd_construct(
    instance: ShorInstance,
    seed: u64,
    max_attempts: u32,
) -> (Option<u64>, Vec<ShorOutcome>) {
    let mut outcomes = Vec::new();
    for attempt in 0..max_attempts {
        let outcome = run_shor_dd_construct(instance, seed.wrapping_add(u64::from(attempt)));
        let factor = outcome.factor;
        outcomes.push(outcome);
        if factor.is_some() {
            return (factor, outcomes);
        }
    }
    (None, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_fifteen() {
        let inst = ShorInstance::new(15, 7);
        let (factor, outcomes) = factor_with_dd_construct(inst, 3, 10);
        let f = factor.expect("15 factors within a few attempts");
        assert!(f == 3 || f == 5);
        assert!(!outcomes.is_empty());
        assert_eq!(outcomes[0].qubits, 5);
        assert_eq!(outcomes[0].phase_bits.len(), 8);
    }

    #[test]
    fn factors_twentyone() {
        let inst = ShorInstance::new(21, 2);
        let (factor, _) = factor_with_dd_construct(inst, 1, 20);
        let f = factor.expect("21 factors");
        assert!(f == 3 || f == 7);
    }

    #[test]
    fn phase_concentrates_on_multiples_of_order() {
        // For N=15, a=7 the order is 4: ideal phases are k/4, so measured
        // x/2^8 should be near multiples of 64.
        let inst = ShorInstance::new(15, 7);
        let mut near = 0;
        for seed in 0..20 {
            let outcome = run_shor_dd_construct(inst, seed);
            let x = outcome.measured_phase;
            let distance = (0..=4u64)
                .map(|k| (x as i64 - (k * 64) as i64).unsigned_abs())
                .min()
                .expect("range is non-empty");
            if distance <= 2 {
                near += 1;
            }
        }
        assert!(near >= 18, "only {near}/20 runs near ideal phases");
    }

    #[test]
    fn multiplier_cache_is_reused() {
        let inst = ShorInstance::new(15, 7);
        let mut sim = ShorDdConstruct::new(inst, 0);
        let _ = sim.run();
        // Multipliers 7^(2^k) mod 15 cycle through {7, 4, 1}: the cache
        // must stay small even over 8 rounds.
        assert!(sim.multiplier_cache.len() <= 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let inst = ShorInstance::new(15, 2);
        let a = run_shor_dd_construct(inst, 42);
        let b = run_shor_dd_construct(inst, 42);
        assert_eq!(a.measured_phase, b.measured_phase);
        assert_eq!(a.factor, b.factor);
    }
}

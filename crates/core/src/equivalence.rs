//! DD-based circuit equivalence checking.
//!
//! Building the full unitary of a circuit as a matrix DD (exactly what the
//! paper's Eq. 2 extreme does) turns equivalence checking into a pointer
//! comparison: canonical DDs represent equal-up-to-scalar matrices by the
//! *same node*, so two circuits are equivalent up to global phase iff their
//! unitaries' root nodes coincide and the weight ratio has modulus one.
//! This is the classic QMDD verification application, and doubles as an
//! independent oracle for the engine's strategy correctness.

use ddsim_circuit::{lower_swap, Circuit, Operation};
use ddsim_complex::Complex;
use ddsim_dd::{DdError, DdManager, MatEdge};

/// Outcome of an equivalence check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Equivalence {
    /// The unitaries are identical.
    Equal,
    /// The unitaries differ only by the given global phase factor
    /// (modulus 1).
    EqualUpToGlobalPhase(Complex),
    /// The unitaries differ.
    Different,
}

impl Equivalence {
    /// Whether the circuits implement the same physical operation
    /// (equal, possibly up to global phase).
    pub fn is_equivalent(self) -> bool {
        !matches!(self, Equivalence::Different)
    }
}

/// Error for equivalence checks on unsupported inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckEquivalenceError {
    /// The circuits act on different numbers of qubits.
    WidthMismatch,
    /// A circuit contains measurements / resets / classical control and has
    /// no single unitary.
    NonUnitary,
    /// The circuits were compared and found *not* equivalent. Returned only
    /// by [`require_equivalence`], which turns a [`Equivalence::Different`]
    /// verdict into a typed error for callers that treat inequivalence as
    /// failure.
    NotEquivalent,
    /// The DD engine's resource governor (budget, deadline, or cancellation)
    /// ended the check before a verdict was reached.
    Dd(DdError),
}

impl std::fmt::Display for CheckEquivalenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckEquivalenceError::WidthMismatch => {
                f.write_str("circuits act on different numbers of qubits")
            }
            CheckEquivalenceError::NonUnitary => {
                f.write_str("circuit contains non-unitary operations")
            }
            CheckEquivalenceError::NotEquivalent => {
                f.write_str("circuits are not equivalent (not even up to global phase)")
            }
            CheckEquivalenceError::Dd(e) => write!(f, "equivalence check interrupted: {e}"),
        }
    }
}

impl std::error::Error for CheckEquivalenceError {}

impl From<DdError> for CheckEquivalenceError {
    fn from(e: DdError) -> Self {
        CheckEquivalenceError::Dd(e)
    }
}

/// Builds the full unitary of a purely unitary circuit as a matrix DD
/// (the paper's Eq. 2 taken to the limit).
///
/// # Errors
///
/// Returns [`CheckEquivalenceError::NonUnitary`] if the circuit contains
/// measurements, resets, or classically controlled gates.
pub fn circuit_unitary(
    dd: &mut DdManager,
    circuit: &Circuit,
) -> Result<MatEdge, CheckEquivalenceError> {
    fold_ops(dd, circuit.qubits(), circuit.ops())
}

fn fold_ops(
    dd: &mut DdManager,
    n: u32,
    ops: &[Operation],
) -> Result<MatEdge, CheckEquivalenceError> {
    let mut product = dd.mat_identity(n);
    dd.inc_ref_mat(product);
    match fold_ops_into(dd, n, ops, &mut product) {
        // Caller owns the final reference.
        Ok(()) => Ok(product),
        Err(e) => {
            dd.dec_ref_mat(product);
            Err(e)
        }
    }
}

fn fold_ops_into(
    dd: &mut DdManager,
    n: u32,
    ops: &[Operation],
    product: &mut MatEdge,
) -> Result<(), CheckEquivalenceError> {
    let fold = |dd: &mut DdManager,
                product: &mut MatEdge,
                m: MatEdge|
     -> Result<(), CheckEquivalenceError> {
        let next = dd.mat_mat_mul(m, *product)?;
        dd.inc_ref_mat(next);
        dd.dec_ref_mat(*product);
        *product = next;
        Ok(())
    };
    for op in ops {
        match op {
            Operation::Gate(g) => {
                let m = dd.mat_controlled(n, &g.controls, g.target, g.gate.matrix());
                fold(dd, product, m)?;
            }
            Operation::Swap { a, b, controls } => {
                for g in lower_swap(*a, *b, controls) {
                    let m = dd.mat_controlled(n, &g.controls, g.target, g.gate.matrix());
                    fold(dd, product, m)?;
                }
            }
            Operation::Barrier => {}
            Operation::Repeat { body, times } => {
                let inner = fold_ops(dd, n, body)?;
                let mut iterate = || -> Result<(), CheckEquivalenceError> {
                    for _ in 0..*times {
                        fold(dd, product, inner)?;
                    }
                    Ok(())
                };
                let r = iterate();
                dd.dec_ref_mat(inner);
                r?;
            }
            Operation::Measure { .. } | Operation::Reset { .. } | Operation::Classical { .. } => {
                return Err(CheckEquivalenceError::NonUnitary);
            }
        }
    }
    Ok(())
}

/// Compares two matrix DDs for equality up to a global phase.
///
/// With canonical DDs this is O(1): same node required; the weight ratio
/// decides between exact equality, phase equivalence, and difference.
pub fn mat_equivalence(dd: &mut DdManager, a: MatEdge, b: MatEdge) -> Equivalence {
    if a == b {
        return Equivalence::Equal;
    }
    if a.node != b.node {
        return Equivalence::Different;
    }
    let wa = dd.complex_value(a.weight);
    let wb = dd.complex_value(b.weight);
    if wb.is_zero() {
        return Equivalence::Different;
    }
    let ratio = wa / wb;
    let tol = dd.config().tolerance;
    if (ratio.abs() - 1.0).abs() <= 100.0 * tol {
        if ratio.approx_eq(Complex::ONE, 100.0 * tol) {
            Equivalence::Equal
        } else {
            Equivalence::EqualUpToGlobalPhase(ratio)
        }
    } else {
        Equivalence::Different
    }
}

/// Checks whether two circuits implement the same unitary (up to global
/// phase).
///
/// # Errors
///
/// Returns an error if the circuits have different widths or contain
/// non-unitary operations.
///
/// # Examples
///
/// ```
/// use ddsim_circuit::Circuit;
/// use ddsim_core::equivalence::check_equivalence;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A swap and its three-CX decomposition.
/// let mut direct = Circuit::new(2);
/// direct.swap(0, 1);
/// let mut decomposed = Circuit::new(2);
/// decomposed.cx(0, 1).cx(1, 0).cx(0, 1);
/// assert!(check_equivalence(&direct, &decomposed)?.is_equivalent());
/// # Ok(())
/// # }
/// ```
pub fn check_equivalence(a: &Circuit, b: &Circuit) -> Result<Equivalence, CheckEquivalenceError> {
    if a.qubits() != b.qubits() {
        return Err(CheckEquivalenceError::WidthMismatch);
    }
    let mut dd = DdManager::new();
    let ua = circuit_unitary(&mut dd, a)?;
    let ub = circuit_unitary(&mut dd, b)?;
    let result = mat_equivalence(&mut dd, ua, ub);
    dd.dec_ref_mat(ua);
    dd.dec_ref_mat(ub);
    Ok(result)
}

/// Like [`check_equivalence`], but treats inequivalence itself as a typed
/// error: callers that *require* the circuits to match (verification
/// pipelines, transpiler assertions) get
/// [`CheckEquivalenceError::NotEquivalent`] instead of having to inspect —
/// or panic on — a [`Equivalence::Different`] verdict.
///
/// # Errors
///
/// Everything [`check_equivalence`] returns, plus
/// [`CheckEquivalenceError::NotEquivalent`] when the circuits differ.
pub fn require_equivalence(a: &Circuit, b: &Circuit) -> Result<Equivalence, CheckEquivalenceError> {
    let verdict = check_equivalence(a, b)?;
    if verdict.is_equivalent() {
        Ok(verdict)
    } else {
        Err(CheckEquivalenceError::NotEquivalent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsim_circuit::StandardGate;

    #[test]
    fn identical_circuits_are_equal() {
        let mut a = Circuit::new(3);
        a.h(0).cx(0, 1).t(2);
        assert_eq!(check_equivalence(&a, &a), Ok(Equivalence::Equal));
    }

    #[test]
    fn hxh_equals_z() {
        let mut a = Circuit::new(1);
        a.h(0).x(0).h(0);
        let mut b = Circuit::new(1);
        b.z(0);
        assert_eq!(check_equivalence(&a, &b), Ok(Equivalence::Equal));
    }

    #[test]
    fn cz_is_symmetric() {
        let mut a = Circuit::new(2);
        a.cz(0, 1);
        let mut b = Circuit::new(2);
        b.cz(1, 0);
        assert_eq!(check_equivalence(&a, &b), Ok(Equivalence::Equal));
    }

    #[test]
    fn swap_decomposition_checks_out() {
        let mut a = Circuit::new(2);
        a.swap(0, 1);
        let mut b = Circuit::new(2);
        b.cx(0, 1).cx(1, 0).cx(0, 1);
        assert_eq!(check_equivalence(&a, &b), Ok(Equivalence::Equal));
    }

    #[test]
    fn rz_vs_phase_differ_by_global_phase() -> Result<(), CheckEquivalenceError> {
        let theta = 0.731;
        let mut a = Circuit::new(1);
        a.rz(theta, 0);
        let mut b = Circuit::new(1);
        b.phase(theta, 0);
        // A failed phase equivalence now surfaces as the typed
        // `NotEquivalent` error rather than a panic.
        let result = require_equivalence(&a, &b)?;
        let Equivalence::EqualUpToGlobalPhase(phase) = result else {
            // Exact equality would mean the global phase got lost somewhere.
            return Err(CheckEquivalenceError::NotEquivalent);
        };
        assert!((phase.abs() - 1.0).abs() < 1e-9);
        assert!((phase.arg() + theta / 2.0).abs() < 1e-9);
        assert!(result.is_equivalent());
        Ok(())
    }

    #[test]
    fn require_equivalence_types_the_non_equivalent_path() {
        let mut a = Circuit::new(2);
        a.cx(0, 1);
        let mut b = Circuit::new(2);
        b.cx(1, 0);
        assert_eq!(
            require_equivalence(&a, &b),
            Err(CheckEquivalenceError::NotEquivalent)
        );
        // The equivalent path still returns the verdict.
        assert_eq!(require_equivalence(&a, &a), Ok(Equivalence::Equal));
    }

    #[test]
    fn different_circuits_differ() {
        let mut a = Circuit::new(2);
        a.cx(0, 1);
        let mut b = Circuit::new(2);
        b.cx(1, 0);
        assert_eq!(check_equivalence(&a, &b), Ok(Equivalence::Different));
    }

    #[test]
    fn inverse_composition_is_identity() {
        let mut a = Circuit::new(3);
        a.h(0).cx(0, 1).t(1).ccx(0, 1, 2).s(2);
        let inv = a.inverse().expect("unitary");
        let mut composed = Circuit::new(3);
        composed.append(&a).append(&inv);
        let identity = Circuit::new(3);
        assert_eq!(
            check_equivalence(&composed, &identity),
            Ok(Equivalence::Equal)
        );
    }

    #[test]
    fn repeat_blocks_are_unrolled() {
        let mut body = Circuit::new(1);
        body.gate(StandardGate::T, 0);
        let mut repeated = Circuit::new(1);
        repeated.repeat(&body, 2);
        let mut direct = Circuit::new(1);
        direct.s(0);
        assert_eq!(
            check_equivalence(&repeated, &direct),
            Ok(Equivalence::Equal)
        );
    }

    #[test]
    fn width_mismatch_is_an_error() {
        let a = Circuit::new(2);
        let b = Circuit::new(3);
        assert_eq!(
            check_equivalence(&a, &b),
            Err(CheckEquivalenceError::WidthMismatch)
        );
    }

    #[test]
    fn measurement_is_an_error() {
        let mut a = Circuit::with_cbits(1, 1);
        a.measure(0, 0);
        let b = Circuit::with_cbits(1, 1);
        assert_eq!(
            check_equivalence(&a, &b),
            Err(CheckEquivalenceError::NonUnitary)
        );
    }
}

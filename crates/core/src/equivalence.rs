//! DD-based circuit equivalence checking.
//!
//! Building the full unitary of a circuit as a matrix DD (exactly what the
//! paper's Eq. 2 extreme does) turns equivalence checking into a pointer
//! comparison: canonical DDs represent equal-up-to-scalar matrices by the
//! *same node*, so two circuits are equivalent up to global phase iff their
//! unitaries' root nodes coincide and the weight ratio has modulus one.
//! This is the classic QMDD verification application, and doubles as an
//! independent oracle for the engine's strategy correctness.

use ddsim_circuit::{lower_swap, Circuit, Operation};
use ddsim_complex::Complex;
use ddsim_dd::{DdManager, MatEdge};

/// Outcome of an equivalence check.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Equivalence {
    /// The unitaries are identical.
    Equal,
    /// The unitaries differ only by the given global phase factor
    /// (modulus 1).
    EqualUpToGlobalPhase(Complex),
    /// The unitaries differ.
    Different,
}

impl Equivalence {
    /// Whether the circuits implement the same physical operation
    /// (equal, possibly up to global phase).
    pub fn is_equivalent(self) -> bool {
        !matches!(self, Equivalence::Different)
    }
}

/// Error for equivalence checks on unsupported inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckEquivalenceError {
    /// The circuits act on different numbers of qubits.
    WidthMismatch,
    /// A circuit contains measurements / resets / classical control and has
    /// no single unitary.
    NonUnitary,
}

impl std::fmt::Display for CheckEquivalenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckEquivalenceError::WidthMismatch => {
                f.write_str("circuits act on different numbers of qubits")
            }
            CheckEquivalenceError::NonUnitary => {
                f.write_str("circuit contains non-unitary operations")
            }
        }
    }
}

impl std::error::Error for CheckEquivalenceError {}

/// Builds the full unitary of a purely unitary circuit as a matrix DD
/// (the paper's Eq. 2 taken to the limit).
///
/// # Errors
///
/// Returns [`CheckEquivalenceError::NonUnitary`] if the circuit contains
/// measurements, resets, or classically controlled gates.
pub fn circuit_unitary(
    dd: &mut DdManager,
    circuit: &Circuit,
) -> Result<MatEdge, CheckEquivalenceError> {
    fold_ops(dd, circuit.qubits(), circuit.ops())
}

fn fold_ops(
    dd: &mut DdManager,
    n: u32,
    ops: &[Operation],
) -> Result<MatEdge, CheckEquivalenceError> {
    let mut product = dd.mat_identity(n);
    dd.inc_ref_mat(product);
    let fold = |dd: &mut DdManager, product: &mut MatEdge, m: MatEdge| {
        let next = dd.mat_mat_mul(m, *product);
        dd.inc_ref_mat(next);
        dd.dec_ref_mat(*product);
        *product = next;
    };
    for op in ops {
        match op {
            Operation::Gate(g) => {
                let m = dd.mat_controlled(n, &g.controls, g.target, g.gate.matrix());
                fold(dd, &mut product, m);
            }
            Operation::Swap { a, b, controls } => {
                for g in lower_swap(*a, *b, controls) {
                    let m = dd.mat_controlled(n, &g.controls, g.target, g.gate.matrix());
                    fold(dd, &mut product, m);
                }
            }
            Operation::Barrier => {}
            Operation::Repeat { body, times } => {
                let inner = fold_ops(dd, n, body)?;
                for _ in 0..*times {
                    fold(dd, &mut product, inner);
                }
                dd.dec_ref_mat(inner);
            }
            Operation::Measure { .. } | Operation::Reset { .. } | Operation::Classical { .. } => {
                dd.dec_ref_mat(product);
                return Err(CheckEquivalenceError::NonUnitary);
            }
        }
    }
    // Caller owns the final reference.
    Ok(product)
}

/// Compares two matrix DDs for equality up to a global phase.
///
/// With canonical DDs this is O(1): same node required; the weight ratio
/// decides between exact equality, phase equivalence, and difference.
pub fn mat_equivalence(dd: &mut DdManager, a: MatEdge, b: MatEdge) -> Equivalence {
    if a == b {
        return Equivalence::Equal;
    }
    if a.node != b.node {
        return Equivalence::Different;
    }
    let wa = dd.complex_value(a.weight);
    let wb = dd.complex_value(b.weight);
    if wb.is_zero() {
        return Equivalence::Different;
    }
    let ratio = wa / wb;
    let tol = dd.config().tolerance;
    if (ratio.abs() - 1.0).abs() <= 100.0 * tol {
        if ratio.approx_eq(Complex::ONE, 100.0 * tol) {
            Equivalence::Equal
        } else {
            Equivalence::EqualUpToGlobalPhase(ratio)
        }
    } else {
        Equivalence::Different
    }
}

/// Checks whether two circuits implement the same unitary (up to global
/// phase).
///
/// # Errors
///
/// Returns an error if the circuits have different widths or contain
/// non-unitary operations.
///
/// # Examples
///
/// ```
/// use ddsim_circuit::Circuit;
/// use ddsim_core::equivalence::check_equivalence;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // A swap and its three-CX decomposition.
/// let mut direct = Circuit::new(2);
/// direct.swap(0, 1);
/// let mut decomposed = Circuit::new(2);
/// decomposed.cx(0, 1).cx(1, 0).cx(0, 1);
/// assert!(check_equivalence(&direct, &decomposed)?.is_equivalent());
/// # Ok(())
/// # }
/// ```
pub fn check_equivalence(a: &Circuit, b: &Circuit) -> Result<Equivalence, CheckEquivalenceError> {
    if a.qubits() != b.qubits() {
        return Err(CheckEquivalenceError::WidthMismatch);
    }
    let mut dd = DdManager::new();
    let ua = circuit_unitary(&mut dd, a)?;
    let ub = circuit_unitary(&mut dd, b)?;
    let result = mat_equivalence(&mut dd, ua, ub);
    dd.dec_ref_mat(ua);
    dd.dec_ref_mat(ub);
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsim_circuit::StandardGate;

    #[test]
    fn identical_circuits_are_equal() {
        let mut a = Circuit::new(3);
        a.h(0).cx(0, 1).t(2);
        assert_eq!(check_equivalence(&a, &a), Ok(Equivalence::Equal));
    }

    #[test]
    fn hxh_equals_z() {
        let mut a = Circuit::new(1);
        a.h(0).x(0).h(0);
        let mut b = Circuit::new(1);
        b.z(0);
        assert_eq!(check_equivalence(&a, &b), Ok(Equivalence::Equal));
    }

    #[test]
    fn cz_is_symmetric() {
        let mut a = Circuit::new(2);
        a.cz(0, 1);
        let mut b = Circuit::new(2);
        b.cz(1, 0);
        assert_eq!(check_equivalence(&a, &b), Ok(Equivalence::Equal));
    }

    #[test]
    fn swap_decomposition_checks_out() {
        let mut a = Circuit::new(2);
        a.swap(0, 1);
        let mut b = Circuit::new(2);
        b.cx(0, 1).cx(1, 0).cx(0, 1);
        assert_eq!(check_equivalence(&a, &b), Ok(Equivalence::Equal));
    }

    #[test]
    fn rz_vs_phase_differ_by_global_phase() {
        let theta = 0.731;
        let mut a = Circuit::new(1);
        a.rz(theta, 0);
        let mut b = Circuit::new(1);
        b.phase(theta, 0);
        let result = check_equivalence(&a, &b).expect("both unitary");
        match result {
            Equivalence::EqualUpToGlobalPhase(phase) => {
                assert!((phase.abs() - 1.0).abs() < 1e-9);
                assert!((phase.arg() + theta / 2.0).abs() < 1e-9);
            }
            other => panic!("expected phase equivalence, got {other:?}"),
        }
        assert!(result.is_equivalent());
    }

    #[test]
    fn different_circuits_differ() {
        let mut a = Circuit::new(2);
        a.cx(0, 1);
        let mut b = Circuit::new(2);
        b.cx(1, 0);
        assert_eq!(check_equivalence(&a, &b), Ok(Equivalence::Different));
    }

    #[test]
    fn inverse_composition_is_identity() {
        let mut a = Circuit::new(3);
        a.h(0).cx(0, 1).t(1).ccx(0, 1, 2).s(2);
        let inv = a.inverse().expect("unitary");
        let mut composed = Circuit::new(3);
        composed.append(&a).append(&inv);
        let identity = Circuit::new(3);
        assert_eq!(
            check_equivalence(&composed, &identity),
            Ok(Equivalence::Equal)
        );
    }

    #[test]
    fn repeat_blocks_are_unrolled() {
        let mut body = Circuit::new(1);
        body.gate(StandardGate::T, 0);
        let mut repeated = Circuit::new(1);
        repeated.repeat(&body, 2);
        let mut direct = Circuit::new(1);
        direct.s(0);
        assert_eq!(
            check_equivalence(&repeated, &direct),
            Ok(Equivalence::Equal)
        );
    }

    #[test]
    fn width_mismatch_is_an_error() {
        let a = Circuit::new(2);
        let b = Circuit::new(3);
        assert_eq!(
            check_equivalence(&a, &b),
            Err(CheckEquivalenceError::WidthMismatch)
        );
    }

    #[test]
    fn measurement_is_an_error() {
        let mut a = Circuit::with_cbits(1, 1);
        a.measure(0, 0);
        let b = Circuit::with_cbits(1, 1);
        assert_eq!(
            check_equivalence(&a, &b),
            Err(CheckEquivalenceError::NonUnitary)
        );
    }
}

//! The paper's contribution: DD-based quantum-circuit simulation with
//! operation-combining strategies.
//!
//! The [`Simulator`] streams a [`Circuit`](ddsim_circuit::Circuit) through
//! the decision-diagram package under one of the paper's Section IV
//! strategies:
//!
//! * [`Strategy::Sequential`] — one matrix-vector multiplication per gate
//!   (Eq. 1, the state-of-the-art baseline).
//! * [`Strategy::KOperations`] — combine `k` gates via matrix-matrix
//!   multiplication before each application (Fig. 8).
//! * [`Strategy::MaxSize`] — combine until the product DD reaches `s_max`
//!   nodes (Fig. 9).
//! * [`Strategy::DdRepeating`] — combine repeated blocks once and re-apply
//!   the cached matrix (Table I).
//!
//! The *DD-construct* strategy (Table II) lives in [`shor_construct`]: it
//! bypasses gate decomposition entirely, building the modular-multiplication
//! oracle directly as a permutation DD over `n + 1` qubits.
//!
//! # Examples
//!
//! ```
//! use ddsim_algorithms::grover::{grover_circuit, GroverInstance};
//! use ddsim_core::{simulate, SimOptions, Strategy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let inst = GroverInstance::new(5, 0b1011);
//! let circuit = grover_circuit(inst);
//! let (sim, stats) = simulate(&circuit, SimOptions::with_strategy(Strategy::DdRepeating { k: 4 }))?;
//! // The marked element dominates the distribution (ancilla is in |−⟩,
//! // contributing a uniform bottom bit).
//! let p = sim.probability_of(0b1011 << 1) + sim.probability_of((0b1011 << 1) | 1);
//! assert!(p > 0.9, "marked element probability {p}");
//! assert!(stats.mat_mat_mults > 0);
//! # Ok(())
//! # }
//! ```

pub mod density;
mod engine;
pub mod equivalence;
mod error;
pub mod grover_construct;
pub mod noise;
pub mod shor_construct;
mod stats;
mod strategy;

pub use ddsim_dd::{
    CacheStats, CancelToken, DdConfig, FaultKind, FxHashMap, Par, ReorderStats, Resource, Snapshot,
    SnapshotError, TableStats, ThreadPool, UniqueTableStats, VarOrder,
};
pub use engine::{
    circuit_fingerprint, simulate, CheckpointConfig, ReorderMode, SimOptions, Simulator,
};
pub use error::SimError;
#[allow(deprecated)]
pub use error::SimulateCircuitError;
pub use grover_construct::{run_grover_dd_construct, GroverOutcome};
pub use shor_construct::{
    factor_with_dd_construct, run_shor_dd_construct, ShorDdConstruct, ShorOutcome,
};
pub use stats::{RunStats, StepTrace};
pub use strategy::{ParseStrategyError, Strategy};

//! The simulator-level error taxonomy.
//!
//! Every public fallible path of the engine returns [`SimError`]. Resource
//! failures originate in the DD package as [`DdError`] and are widened here;
//! the engine runs its degradation ladder (emergency GC → cache flush →
//! strategy downgrade, see `Simulator`) before letting a budget error
//! escape, so a [`SimError::BudgetExceeded`] means the ladder was exhausted.

use ddsim_dd::{DdError, Resource};

/// An error from a simulation run.
///
/// The simulator is left consistent after any error: the state DD, the
/// classical register, and the DD manager remain valid, garbage-collectable,
/// and (for budget errors) usable for a retry under a relaxed budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A resource budget was exceeded and the degradation ladder could not
    /// bring consumption back under it.
    BudgetExceeded {
        /// Which budget tripped.
        resource: Resource,
        /// The configured limit.
        limit: u64,
        /// Observed consumption at the failing check.
        observed: u64,
    },
    /// The wall-clock deadline ([`SimOptions::deadline`](crate::SimOptions))
    /// passed mid-run.
    DeadlineExceeded,
    /// The run was cancelled through its
    /// [`CancelToken`](ddsim_dd::CancelToken).
    Cancelled,
    /// The circuit's qubit count does not match the simulator's.
    WidthMismatch {
        /// Qubits the simulator was built for.
        expected_qubits: u32,
        /// Qubits the circuit acts on.
        found_qubits: u32,
    },
    /// The run was suspended through its suspend token
    /// ([`Simulator::set_suspend_token`](crate::Simulator::set_suspend_token)):
    /// the engine stopped at an op boundary — after writing a checkpoint if
    /// one was configured — so the job can be resumed later. Unlike
    /// [`Cancelled`](Self::Cancelled) this is not a terminal outcome; a
    /// server evicting a job under memory pressure uses it to park work.
    Suspended,
    /// Reading, writing, validating, or resuming a checkpoint failed. The
    /// message carries the underlying [`SnapshotError`]
    /// (ddsim_dd::SnapshotError) rendering.
    Snapshot(String),
    /// An internal invariant was violated — a bug in the engine, not a
    /// recoverable condition of the input. The message is diagnostic.
    Internal(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BudgetExceeded {
                resource,
                limit,
                observed,
            } => write!(
                f,
                "resource budget exhausted after degradation: {resource} at {observed} \
                 over limit {limit}"
            ),
            SimError::DeadlineExceeded => f.write_str("wall-clock deadline exceeded"),
            SimError::Cancelled => f.write_str("simulation cancelled"),
            SimError::Suspended => {
                f.write_str("simulation suspended at an op boundary (resumable)")
            }
            SimError::WidthMismatch {
                expected_qubits,
                found_qubits,
            } => write!(
                f,
                "circuit has {found_qubits} qubits but the simulator was built for \
                 {expected_qubits}"
            ),
            SimError::Snapshot(msg) => write!(f, "checkpoint error: {msg}"),
            SimError::Internal(msg) => write!(f, "internal simulator error: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Widens a [`DdError`] using the breach details the manager recorded.
///
/// There is deliberately *no* `From<DdError> for SimError`: the budget
/// variant's limit/observed live on the [`ddsim_dd::DdManager`] (keeping
/// the hot-path error one byte), so a context-free conversion would have
/// to invent them. Every widening goes through here with the manager in
/// hand.
pub(crate) fn widen_dd_error(e: DdError, dd: &ddsim_dd::DdManager) -> SimError {
    match e {
        DdError::BudgetExceeded => {
            let b = dd.last_breach().unwrap_or(ddsim_dd::BudgetBreach {
                resource: Resource::LiveNodes,
                limit: 0,
                observed: 0,
            });
            SimError::BudgetExceeded {
                resource: b.resource,
                limit: b.limit,
                observed: b.observed,
            }
        }
        DdError::DeadlineExceeded => SimError::DeadlineExceeded,
        DdError::Cancelled => SimError::Cancelled,
    }
}

impl From<ddsim_dd::SnapshotError> for SimError {
    fn from(e: ddsim_dd::SnapshotError) -> Self {
        SimError::Snapshot(e.to_string())
    }
}

/// Former name of [`SimError`], kept so existing code and doctests compile.
#[deprecated(note = "renamed to SimError; the width failure is now \
                     SimError::WidthMismatch")]
pub type SimulateCircuitError = SimError;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dd_errors_widen_losslessly() {
        let dd = ddsim_dd::DdManager::new();
        assert_eq!(widen_dd_error(DdError::Cancelled, &dd), SimError::Cancelled);
        assert_eq!(
            widen_dd_error(DdError::DeadlineExceeded, &dd),
            SimError::DeadlineExceeded
        );
    }

    #[test]
    fn display_is_informative() {
        let e = SimError::WidthMismatch {
            expected_qubits: 3,
            found_qubits: 5,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('5'), "{s}");
    }
}

//! Per-run statistics and the Example-3-style step trace.

use std::time::Duration;

use ddsim_dd::{CacheStats, DdStats};

/// DD sizes observed around one applied multiplication — the data behind
/// the paper's Fig. 5 comparison of intermediate representations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepTrace {
    /// Index of the elementary gate that *ended* this step (for combined
    /// steps, the last gate folded into the applied matrix).
    pub gate_index: u64,
    /// Gates folded into the applied matrix (1 for sequential steps).
    pub combined_gates: u64,
    /// Node count of the applied matrix DD.
    pub matrix_nodes: usize,
    /// Node count of the state-vector DD *after* the application.
    pub state_nodes: usize,
}

/// Aggregate statistics of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Wall-clock duration of the run.
    pub wall_time: Duration,
    /// Elementary gates processed (after flattening and swap lowering).
    pub elementary_gates: u64,
    /// Matrix-vector multiplications performed.
    pub mat_vec_mults: u64,
    /// Matrix-matrix multiplications performed.
    pub mat_mat_mults: u64,
    /// Multiplications answered by an identity short-circuit (no recursion).
    pub identity_skips: u64,
    /// Matrix-vector multiplications served by the specialized gate-apply
    /// kernels (counted inside `mat_vec_mults` as well).
    pub specialized_applies: u64,
    /// Recursive multiply steps (machine-independent cost proxy).
    pub mult_recursions: u64,
    /// Recursive add steps.
    pub add_recursions: u64,
    /// Largest state-vector DD observed (nodes).
    pub peak_state_nodes: usize,
    /// Largest accumulated-product matrix DD observed (nodes).
    pub peak_matrix_nodes: usize,
    /// Node count of the final state DD.
    pub final_state_nodes: usize,
    /// Garbage collections run.
    pub gc_runs: u64,
    /// Degradation-ladder rung 1: emergency collections that rescued an
    /// operation after a budget trip.
    pub ladder_gc_rescues: u64,
    /// Degradation-ladder rung 2: compute-cache flushes (plus a second
    /// collection) taken when rung 1 was not enough.
    pub ladder_cache_flushes: u64,
    /// Degradation-ladder rung 3: combining abandoned in favor of
    /// sequential replay through the specialized kernels.
    pub ladder_strategy_downgrades: u64,
    /// Sifting reorders taken by the explicit [`ReorderMode::Sifting`]
    /// policy (growth trigger plus the end-of-run pass).
    ///
    /// [`ReorderMode::Sifting`]: crate::ReorderMode::Sifting
    pub reorders: u64,
    /// Degradation-ladder reorders: sifting passes taken after rungs 1–2
    /// failed, to shrink the state before falling to the strategy
    /// downgrade.
    pub ladder_reorders: u64,
    /// Whether rung 3 latched (the rest of the run executed sequentially).
    pub degraded: bool,
    /// Checkpoints written during the run.
    pub checkpoints_written: u64,
    /// Per-table cache counters (compute and unique tables).
    pub cache: CacheStats,
    /// Optional per-step trace (populated when requested).
    pub trace: Vec<StepTrace>,
}

impl RunStats {
    /// Folds a [`DdStats`] delta (after − before) into this run's counters.
    pub(crate) fn absorb_dd_delta(&mut self, before: DdStats, after: DdStats) {
        self.mat_vec_mults += after.mat_vec_mults - before.mat_vec_mults;
        self.mat_mat_mults += after.mat_mat_mults - before.mat_mat_mults;
        self.identity_skips += after.identity_skips - before.identity_skips;
        self.specialized_applies += after.specialized_applies - before.specialized_applies;
        self.mult_recursions += after.mult_recursions - before.mult_recursions;
        self.add_recursions += after.add_recursions - before.add_recursions;
        self.gc_runs += after.gc_runs - before.gc_runs;
        self.cache.accumulate(&after.cache.delta(&before.cache));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_delta_accumulates() {
        let mut stats = RunStats::default();
        let before = DdStats {
            mat_vec_mults: 2,
            mat_mat_mults: 1,
            mult_recursions: 10,
            add_recursions: 5,
            compute_hits: 0,
            compute_lookups: 0,
            gc_runs: 0,
            ..DdStats::default()
        };
        let mut cache = CacheStats::default();
        cache.mat_vec.lookups = 9;
        cache.mat_vec.hits = 3;
        let after = DdStats {
            mat_vec_mults: 5,
            mat_mat_mults: 4,
            mult_recursions: 30,
            add_recursions: 11,
            compute_hits: 3,
            compute_lookups: 9,
            identity_skips: 4,
            specialized_applies: 2,
            gc_runs: 1,
            cache,
        };
        stats.absorb_dd_delta(before, after);
        stats.absorb_dd_delta(before, after);
        assert_eq!(stats.mat_vec_mults, 6);
        assert_eq!(stats.mat_mat_mults, 6);
        assert_eq!(stats.identity_skips, 8);
        assert_eq!(stats.specialized_applies, 4);
        assert_eq!(stats.mult_recursions, 40);
        assert_eq!(stats.add_recursions, 12);
        assert_eq!(stats.gc_runs, 2);
        assert_eq!(stats.cache.mat_vec.lookups, 18);
        assert_eq!(stats.cache.mat_vec.hits, 6);
    }
}

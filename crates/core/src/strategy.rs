//! The paper's operation-combining strategies (Section IV).

use std::fmt;

/// How the simulator schedules matrix-matrix combination versus
/// matrix-vector application (the paper's Section IV-A/B strategies).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// One matrix-vector multiplication per elementary gate — Eq. 1, the
    /// state-of-the-art baseline (`t_sota` in Tables I/II).
    #[default]
    Sequential,
    /// Combine `k` consecutive gates into one matrix before applying it
    /// (the paper's *k-operations*, Fig. 8). `k = 1` degenerates to
    /// [`Sequential`](Strategy::Sequential).
    KOperations {
        /// Gates per combined matrix.
        k: usize,
    },
    /// Combine gates until the product DD exceeds `s_max` nodes, then apply
    /// (the paper's *max-size*, Fig. 9).
    MaxSize {
        /// Node-count bound on the accumulated product.
        s_max: usize,
    },
    /// Combine each [`Repeat`](ddsim_circuit::Operation::Repeat) block into
    /// a single matrix *once* and re-apply the cached matrix every
    /// iteration (the paper's *DD-repeating*, Table I). Gates outside
    /// repeat blocks fall back to [`KOperations`](Strategy::KOperations)
    /// with the given `k`.
    DdRepeating {
        /// Fallback combination width outside repeat blocks.
        k: usize,
    },
    /// An extension beyond the paper: keep folding gates while the
    /// accumulated product stays small *relative to the current state DD*
    /// (the condition under which Section III argues MxM wins), bounded by
    /// an absolute node cap. Parameter-free in spirit — the defaults
    /// `ratio = 1.0`, `cap = 4096` work across the benchmark families.
    Adaptive {
        /// Flush once `product_nodes > ratio × state_nodes` (per-mille to
        /// keep the type `Eq`/`Hash`-friendly: 1000 = 1.0).
        ratio_millis: u32,
        /// Absolute node cap on the accumulated product.
        cap: usize,
    },
}

impl Strategy {
    /// The adaptive extension with its default parameters.
    pub fn adaptive() -> Strategy {
        Strategy::Adaptive {
            ratio_millis: 1000,
            cap: 4096,
        }
    }
}

impl Strategy {
    /// Short label used in benchmark output.
    pub fn label(self) -> String {
        match self {
            Strategy::Sequential => "sequential".to_string(),
            Strategy::KOperations { k } => format!("k-operations(k={k})"),
            Strategy::MaxSize { s_max } => format!("max-size(s_max={s_max})"),
            Strategy::DdRepeating { k } => format!("dd-repeating(k={k})"),
            Strategy::Adaptive { ratio_millis, cap } => {
                format!(
                    "adaptive(ratio={:.2},cap={cap})",
                    ratio_millis as f64 / 1000.0
                )
            }
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Error from [`Strategy::from_str`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseStrategyError(pub String);

impl fmt::Display for ParseStrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseStrategyError {}

impl std::str::FromStr for Strategy {
    type Err = ParseStrategyError;

    /// Parses the compact CLI/server spelling: `sequential`, `kops:K`,
    /// `maxsize:S`, `ddrepeating:K`, or `adaptive`.
    fn from_str(spec: &str) -> Result<Strategy, ParseStrategyError> {
        let parts: Vec<&str> = spec.split(':').collect();
        match parts.as_slice() {
            ["sequential"] => Ok(Strategy::Sequential),
            ["kops", k] => k
                .parse()
                .map(|k| Strategy::KOperations { k })
                .map_err(|_| ParseStrategyError("bad k for kops".into())),
            ["maxsize", s] => s
                .parse()
                .map(|s_max| Strategy::MaxSize { s_max })
                .map_err(|_| ParseStrategyError("bad s_max for maxsize".into())),
            ["ddrepeating", k] => k
                .parse()
                .map(|k| Strategy::DdRepeating { k })
                .map_err(|_| ParseStrategyError("bad k for ddrepeating".into())),
            ["adaptive"] => Ok(Strategy::adaptive()),
            _ => Err(ParseStrategyError(format!("unknown strategy `{spec}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct_and_parameterized() {
        assert_eq!(Strategy::Sequential.label(), "sequential");
        assert_eq!(Strategy::KOperations { k: 4 }.label(), "k-operations(k=4)");
        assert_eq!(
            Strategy::MaxSize { s_max: 64 }.label(),
            "max-size(s_max=64)"
        );
        assert_eq!(Strategy::DdRepeating { k: 2 }.label(), "dd-repeating(k=2)");
    }

    #[test]
    fn default_is_the_sota_baseline() {
        assert_eq!(Strategy::default(), Strategy::Sequential);
    }
}

//! Engine correctness: every strategy must produce the same final state,
//! and the strategies' multiplication accounting must match the paper's
//! description.

use ddsim_algorithms::grover::{grover_circuit, grover_iteration, GroverInstance};
use ddsim_algorithms::qft::qft_circuit;
use ddsim_algorithms::simple::{bernstein_vazirani_circuit, ghz_circuit, phase_estimation_circuit};
use ddsim_algorithms::supremacy::{supremacy_circuit, SupremacyInstance};
use ddsim_circuit::Circuit;
use ddsim_core::{simulate, SimOptions, Simulator, Strategy};

fn all_strategies() -> Vec<Strategy> {
    vec![
        Strategy::Sequential,
        Strategy::KOperations { k: 2 },
        Strategy::KOperations { k: 4 },
        Strategy::KOperations { k: 16 },
        Strategy::MaxSize { s_max: 32 },
        Strategy::MaxSize { s_max: 256 },
        Strategy::DdRepeating { k: 4 },
        Strategy::adaptive(),
    ]
}

/// All strategies agree with the sequential baseline on final amplitudes.
fn assert_strategies_agree(circuit: &Circuit, probe_indices: &[u64]) {
    let (reference, _) = simulate(circuit, SimOptions::default()).expect("reference run");
    for strategy in all_strategies() {
        let (sim, _) = simulate(circuit, SimOptions::with_strategy(strategy))
            .unwrap_or_else(|e| panic!("{strategy} failed: {e}"));
        for &idx in probe_indices {
            let want = reference.amplitude(idx);
            let got = sim.amplitude(idx);
            assert!(
                got.approx_eq(want, 1e-8),
                "{strategy}: amplitude {idx} is {got}, expected {want}"
            );
        }
    }
}

#[test]
fn bell_state_under_all_strategies() {
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1);
    assert_strategies_agree(&c, &[0, 1, 2, 3]);
}

#[test]
fn ghz_under_all_strategies() {
    let c = ghz_circuit(6);
    assert_strategies_agree(&c, &[0, 63, 1, 32]);
}

#[test]
fn qft_under_all_strategies() {
    let c = qft_circuit(5);
    assert_strategies_agree(&c, &(0..32).collect::<Vec<u64>>());
}

#[test]
fn supremacy_under_all_strategies() {
    let c = supremacy_circuit(SupremacyInstance::new(2, 3, 10, 9));
    assert_strategies_agree(&c, &(0..64).collect::<Vec<u64>>());
}

#[test]
fn grover_finds_marked_element_under_every_strategy() {
    let inst = GroverInstance::new(6, 0b10110);
    let circuit = grover_circuit(inst);
    for strategy in all_strategies() {
        let (sim, _) = simulate(&circuit, SimOptions::with_strategy(strategy)).expect("run");
        // Marked element over the search register; the |−⟩ ancilla makes
        // the bottom bit uniform.
        let p = sim.probability_of(0b10110 << 1) + sim.probability_of((0b10110 << 1) | 1);
        assert!(p > 0.9, "{strategy}: marked probability {p}");
    }
}

#[test]
fn bernstein_vazirani_reads_secret() {
    let secret = 0b101101u64;
    let circuit = bernstein_vazirani_circuit(6, secret);
    let (sim, _) = simulate(&circuit, SimOptions::default()).expect("run");
    // Input register holds the secret; ancilla (bottom qubit) is in |−⟩.
    let p = sim.probability_of(secret << 1) + sim.probability_of((secret << 1) | 1);
    assert!(p > 0.999, "secret probability {p}");
}

#[test]
fn phase_estimation_recovers_phase() {
    // φ = 5/16 is exactly representable with 4 counting qubits.
    let circuit = phase_estimation_circuit(4, 5.0 / 16.0);
    let (sim, _) = simulate(&circuit, SimOptions::default()).expect("run");
    // Counting register (qubits 0..4) should read 5; eigenstate qubit is |1⟩.
    let p = sim.probability_of((5 << 1) | 1);
    assert!(p > 0.99, "phase-estimate probability {p}");
}

#[test]
fn sequential_uses_one_mxv_per_gate_and_no_mxm() {
    let c = ghz_circuit(5);
    let (_, stats) = simulate(&c, SimOptions::default()).expect("run");
    assert_eq!(stats.mat_vec_mults, 5);
    assert_eq!(stats.mat_mat_mults, 0);
    assert_eq!(stats.elementary_gates, 5);
}

#[test]
fn k_operations_trades_mxv_for_mxm() {
    let c = qft_circuit(6);
    let gates = c.elementary_count();
    let (_, seq) = simulate(&c, SimOptions::default()).expect("run");
    assert_eq!(seq.mat_vec_mults, gates);

    let (_, combined) = simulate(
        &c,
        SimOptions::with_strategy(Strategy::KOperations { k: 8 }),
    )
    .expect("run");
    // ⌈gates / 8⌉ applications; k−1 combinations per full group.
    assert_eq!(combined.mat_vec_mults, gates.div_ceil(8));
    assert!(combined.mat_mat_mults >= gates - combined.mat_vec_mults);
    assert!(combined.mat_vec_mults < seq.mat_vec_mults);
}

#[test]
fn max_size_bounds_matrix_growth() {
    let c = supremacy_circuit(SupremacyInstance::new(2, 3, 12, 3));
    let bound = 40usize;
    let (_, stats) = simulate(
        &c,
        SimOptions {
            strategy: Strategy::MaxSize { s_max: bound },
            collect_trace: true,
            ..SimOptions::default()
        },
    )
    .expect("run");
    assert!(stats.mat_mat_mults > 0);
    // The accumulated product may exceed the bound by one gate's growth but
    // must never run away.
    assert!(
        stats.peak_matrix_nodes <= bound * 4 + 8,
        "peak matrix nodes {} far exceeds bound {bound}",
        stats.peak_matrix_nodes
    );
}

#[test]
fn dd_repeating_grover_does_mxm_only_once() {
    let inst = GroverInstance::new(5, 7);
    let circuit = grover_circuit(inst);
    let iteration_gates = grover_iteration(inst).elementary_count();

    let (_, repeating) = simulate(
        &circuit,
        SimOptions::with_strategy(Strategy::DdRepeating { k: 4 }),
    )
    .expect("run");
    // One MxV for the cached block per iteration (+ setup applications).
    assert!(
        repeating.mat_vec_mults <= u64::from(inst.iterations) + 8,
        "got {} MxV for {} iterations",
        repeating.mat_vec_mults,
        inst.iterations
    );
    // Matrix-matrix work is bounded by ONE iteration's gates, not all.
    assert!(
        repeating.mat_mat_mults <= iteration_gates + 8,
        "got {} MxM for a {}-gate iteration",
        repeating.mat_mat_mults,
        iteration_gates
    );

    let (_, k_ops) = simulate(
        &circuit,
        SimOptions::with_strategy(Strategy::KOperations { k: 4 }),
    )
    .expect("run");
    assert!(
        repeating.mat_mat_mults < k_ops.mat_mat_mults,
        "repeating ({}) must do less MxM than k-operations ({})",
        repeating.mat_mat_mults,
        k_ops.mat_mat_mults
    );
}

#[test]
fn trace_records_combined_steps() {
    let c = ghz_circuit(4);
    let (_, stats) = simulate(
        &c,
        SimOptions {
            strategy: Strategy::KOperations { k: 2 },
            collect_trace: true,
            ..SimOptions::default()
        },
    )
    .expect("run");
    assert_eq!(stats.trace.len() as u64, stats.mat_vec_mults);
    let total_gates: u64 = stats.trace.iter().map(|t| t.combined_gates).sum();
    assert_eq!(total_gates, 4);
    assert!(stats.trace.iter().all(|t| t.matrix_nodes > 0));
}

#[test]
fn measurement_collapses_and_is_seeded() {
    let mut c = Circuit::with_cbits(2, 2);
    c.h(0).cx(0, 1).measure(0, 0).measure(1, 1);
    let (sim_a, _) = simulate(
        &c,
        SimOptions {
            seed: 7,
            ..SimOptions::default()
        },
    )
    .expect("run");
    let (sim_b, _) = simulate(
        &c,
        SimOptions {
            seed: 7,
            ..SimOptions::default()
        },
    )
    .expect("run");
    // Bell state: both bits agree; same seed → same outcome.
    assert_eq!(sim_a.classical_bits()[0], sim_a.classical_bits()[1]);
    assert_eq!(sim_a.classical_bits(), sim_b.classical_bits());
}

#[test]
fn reset_forces_zero() {
    let mut c = Circuit::new(1);
    c.h(0).reset(0);
    for seed in 0..10 {
        let (sim, _) = simulate(
            &c,
            SimOptions {
                seed,
                ..SimOptions::default()
            },
        )
        .expect("run");
        assert!(sim.prob_one(0) < 1e-10, "seed {seed}: qubit not reset");
    }
}

#[test]
fn classical_control_fires_on_matching_bit() {
    // Measure |1⟩, then conditionally flip qubit 1.
    let mut c = Circuit::with_cbits(2, 1);
    c.x(0).measure(0, 0);
    c.classical_gate(ddsim_circuit::StandardGate::X, 1, 0, true);
    let (sim, _) = simulate(&c, SimOptions::default()).expect("run");
    assert!(sim.probability_of(0b11) > 0.999);

    // Condition on the opposite value: gate must not fire.
    let mut c2 = Circuit::with_cbits(2, 1);
    c2.x(0).measure(0, 0);
    c2.classical_gate(ddsim_circuit::StandardGate::X, 1, 0, false);
    let (sim2, _) = simulate(&c2, SimOptions::default()).expect("run");
    assert!(sim2.probability_of(0b10) > 0.999);
}

#[test]
fn width_mismatch_is_an_error() {
    let c = ghz_circuit(4);
    let mut sim = Simulator::new(5);
    assert!(sim.run(&c).is_err());
}

#[test]
fn classical_value_assembles_bits() {
    let mut c = Circuit::with_cbits(3, 3);
    c.x(0).x(2).measure(0, 0).measure(1, 1).measure(2, 2);
    let (sim, _) = simulate(&c, SimOptions::default()).expect("run");
    assert_eq!(sim.classical_value(), 0b101);
}

#[test]
fn barrier_splits_combination_groups() {
    let mut c = Circuit::new(2);
    c.h(0).barrier().h(1);
    let (_, stats) = simulate(
        &c,
        SimOptions::with_strategy(Strategy::KOperations { k: 8 }),
    )
    .expect("run");
    // The barrier forces two applications despite k = 8.
    assert_eq!(stats.mat_vec_mults, 2);
}

#[test]
fn adaptive_strategy_combines_and_stays_bounded() {
    let c = supremacy_circuit(SupremacyInstance::new(2, 4, 12, 5));
    let (_, stats) = simulate(&c, SimOptions::with_strategy(Strategy::adaptive())).expect("run");
    assert!(stats.mat_mat_mults > 0, "adaptive must actually combine");
    assert!(
        stats.mat_vec_mults < stats.elementary_gates,
        "adaptive must reduce MxV below one-per-gate"
    );
}

#[test]
fn adaptive_respects_absolute_cap() {
    let c = qft_circuit(8);
    let cap = 16usize;
    let (_, stats) = simulate(
        &c,
        SimOptions::with_strategy(Strategy::Adaptive {
            ratio_millis: 100_000, // effectively no relative bound
            cap,
        }),
    )
    .expect("run");
    assert!(
        stats.peak_matrix_nodes <= cap * 4 + 8,
        "peak product {} far exceeds cap {cap}",
        stats.peak_matrix_nodes
    );
}

#[test]
fn sample_counts_match_distribution() {
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1); // Bell: only 00 and 11
    let (mut sim, _) = simulate(&c, SimOptions::default()).expect("run");
    let counts = sim.sample_counts(400);
    assert_eq!(
        counts
            .keys()
            .copied()
            .collect::<std::collections::HashSet<u64>>(),
        [0u64, 3].into_iter().collect()
    );
    let c00 = counts[&0] as f64;
    assert!((c00 / 400.0 - 0.5).abs() < 0.15, "c00 = {c00}");
}

#[test]
fn dd_repeating_falls_back_on_nonunitary_repeat_bodies() {
    // A repeat block containing a reset cannot be combined into one
    // matrix; DD-repeating must expand it and still produce correct
    // physics (every iteration re-prepares |+>, so qubit 0 ends at p1=0.5).
    let mut body = Circuit::new(2);
    body.reset(0).h(0);
    let mut c = Circuit::new(2);
    c.repeat(&body, 3);
    let (sim, stats) = simulate(
        &c,
        SimOptions::with_strategy(Strategy::DdRepeating { k: 4 }),
    )
    .expect("run");
    assert!((sim.prob_one(0) - 0.5).abs() < 1e-10);
    // All three H gates were applied individually (no combined block);
    // resets are not unitary gates and do not count.
    assert_eq!(stats.elementary_gates, 3);
}

#[test]
fn nested_repeats_are_combined_recursively() {
    // repeat(repeat(T, 2), 2) == S² == Z on qubit 0.
    let mut inner = Circuit::new(1);
    inner.t(0);
    let mut middle = Circuit::new(1);
    middle.repeat(&inner, 2);
    let mut outer = Circuit::new(1);
    outer.h(0); // make the phase observable
    outer.repeat(&middle, 2);
    outer.h(0);
    let (sim, _) = simulate(
        &outer,
        SimOptions::with_strategy(Strategy::DdRepeating { k: 2 }),
    )
    .expect("run");
    // HZH = X: |0> -> |1>.
    assert!(sim.probability_of(1) > 1.0 - 1e-9);
}

#[test]
fn engine_unitary_matches_equivalence_checker() {
    use ddsim_core::equivalence::{check_equivalence, Equivalence};
    // The engine's state after `c` from |0..0> equals the first column of
    // the full unitary that the equivalence checker builds.
    let c = qft_circuit(4);
    let (sim, _) = simulate(&c, SimOptions::default()).expect("run");
    let mut dd = ddsim_dd::DdManager::new();
    let u = ddsim_core::equivalence::circuit_unitary(&mut dd, &c).expect("unitary");
    for row in 0..16u64 {
        let want = dd.mat_entry(u, row, 0);
        let got = sim.amplitude(row);
        assert!(got.approx_eq(want, 1e-9), "row {row}");
    }
    // And the checker agrees a circuit equals itself.
    assert_eq!(check_equivalence(&c, &c), Ok(Equivalence::Equal));
}

// ---------------------------------------------------------------------------
// Identity-skipping and specialized gate application (PR 2)
// ---------------------------------------------------------------------------

#[test]
fn sequential_routes_every_gate_through_specialized_kernels() {
    let c = ghz_circuit(5);
    let (_, stats) = simulate(&c, SimOptions::default()).expect("run");
    assert_eq!(stats.elementary_gates, 5);
    assert_eq!(stats.specialized_applies, 5);
    // The specialized path still counts as one MxV per gate.
    assert_eq!(stats.mat_vec_mults, 5);
    assert_eq!(stats.mat_mat_mults, 0);
}

#[test]
fn identity_skip_off_disables_specialized_kernels() {
    let c = ghz_circuit(5);
    let mut options = SimOptions::default();
    options.dd_config.identity_skip = false;
    let (_, stats) = simulate(&c, options).expect("run");
    assert_eq!(stats.specialized_applies, 0);
    assert_eq!(stats.identity_skips, 0);
    assert_eq!(stats.mat_vec_mults, 5);
}

#[test]
fn tracing_forces_the_generic_matrix_path() {
    let c = ghz_circuit(5);
    let options = SimOptions {
        collect_trace: true,
        ..SimOptions::default()
    };
    let (_, stats) = simulate(&c, options).expect("run");
    assert_eq!(stats.specialized_applies, 0);
    // The trace needs a matrix DD per step, and it must have gotten one.
    assert!(stats.trace.iter().all(|t| t.matrix_nodes > 0));
}

#[test]
fn single_gate_flushes_use_specialized_kernels() {
    // Barriers cut the stream into one-gate groups: each flush should drop
    // its matrix and descend the state directly.
    let mut c = Circuit::new(2);
    c.h(0).barrier().cx(0, 1);
    let (_, stats) = simulate(
        &c,
        SimOptions::with_strategy(Strategy::KOperations { k: 16 }),
    )
    .expect("run");
    assert_eq!(stats.mat_vec_mults, 2);
    assert_eq!(stats.specialized_applies, 2);
    assert_eq!(stats.mat_mat_mults, 0);
}

#[test]
fn combining_strategies_skip_identity_factors() {
    // DD-repeating folds the block starting from the cached identity, so
    // the very first matrix-matrix product is answered by the skip.
    let instance = GroverInstance::new(5, 0b101);
    let c = grover_circuit(instance);
    let (_, stats) = simulate(
        &c,
        SimOptions::with_strategy(Strategy::DdRepeating { k: 4 }),
    )
    .expect("run");
    assert!(stats.identity_skips > 0, "identity start must be skipped");
}

#[test]
fn identity_skip_ablation_agrees_on_amplitudes() {
    let c = qft_circuit(5);
    for strategy in all_strategies() {
        let on = simulate(&c, SimOptions::with_strategy(strategy)).expect("on");
        let mut options = SimOptions::with_strategy(strategy);
        options.dd_config.identity_skip = false;
        let off = simulate(&c, options).expect("off");
        for idx in 0..32u64 {
            let a = on.0.amplitude(idx);
            let b = off.0.amplitude(idx);
            // Different managers intern weights in different encounter
            // orders, so bitwise identity is not expected across the
            // ablation; agreement far below the unification tolerance is.
            assert!(a.approx_eq(b, 1e-10), "{strategy}: amplitude {idx}");
        }
    }
}

#[test]
fn gate_cost_does_not_scale_with_untouched_qubits() {
    // A gate on the top qubit must cost the same number of multiply
    // recursions no matter how many identity levels sit below it.
    let recursions_for = |n: u32| {
        let mut c = Circuit::new(n);
        c.h(0);
        let (_, stats) = simulate(&c, SimOptions::default()).expect("run");
        stats.mult_recursions
    };
    let narrow = recursions_for(4);
    let wide = recursions_for(20);
    assert_eq!(narrow, wide, "apply cost must not scale with width");
}

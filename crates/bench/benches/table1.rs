//! Criterion bench for Table I: grover under sequential (t_sota),
//! k-operations (t_general), and DD-repeating (t_DD-repeating).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddsim_bench::{grover_suite, Scale};
use ddsim_core::{simulate, SimOptions, Strategy};

fn table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_grover");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let columns = [
        ("t_sota", Strategy::Sequential),
        ("t_general", Strategy::KOperations { k: 8 }),
        ("t_dd_repeating", Strategy::DdRepeating { k: 8 }),
    ];
    for workload in grover_suite(Scale::Quick) {
        let circuit = workload.circuit();
        for (label, strategy) in columns {
            group.bench_with_input(
                BenchmarkId::new(workload.name(), label),
                &strategy,
                |b, &strategy| {
                    b.iter(|| {
                        simulate(&circuit, SimOptions::with_strategy(strategy))
                            .expect("width matches")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);

//! Criterion bench for Table II: shor under sequential (t_sota),
//! k-operations (t_general), and DD-construct (t_DD-construct).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddsim_algorithms::shor::ShorInstance;
use ddsim_bench::{shor_suite, Scale, Workload};
use ddsim_core::{run_shor_dd_construct, simulate, SimOptions, Strategy};

fn table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_shor");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for workload in shor_suite(Scale::Quick) {
        let Workload::Shor { modulus, base } = workload else {
            unreachable!("shor_suite only yields shor workloads");
        };
        let circuit = workload.circuit();
        for (label, strategy) in [
            ("t_sota", Strategy::Sequential),
            ("t_general", Strategy::KOperations { k: 16 }),
        ] {
            group.bench_with_input(
                BenchmarkId::new(workload.name(), label),
                &strategy,
                |b, &strategy| {
                    b.iter(|| {
                        simulate(&circuit, SimOptions::with_strategy(strategy))
                            .expect("width matches")
                    });
                },
            );
        }
        group.bench_with_input(
            BenchmarkId::new(workload.name(), "t_dd_construct"),
            &(modulus, base),
            |b, &(modulus, base)| {
                b.iter(|| run_shor_dd_construct(ShorInstance::new(modulus, base), 0));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);

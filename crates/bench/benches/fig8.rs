//! Criterion bench for Fig. 8: k-operations across the k sweep on the
//! quick suite. One Criterion group per benchmark circuit; the series
//! across `k` is the figure's x-axis (k = 1 is the sequential baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddsim_bench::{sweep_suite, Scale};
use ddsim_core::{simulate, SimOptions, Strategy};

fn fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_k_operations");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for workload in sweep_suite(Scale::Quick).into_iter().step_by(2) {
        let circuit = workload.circuit();
        for k in [1usize, 2, 4, 8, 16, 32] {
            group.bench_with_input(BenchmarkId::new(workload.name(), k), &k, |b, &k| {
                b.iter(|| {
                    let strategy = if k == 1 {
                        Strategy::Sequential
                    } else {
                        Strategy::KOperations { k }
                    };
                    simulate(&circuit, SimOptions::with_strategy(strategy)).expect("width matches")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);

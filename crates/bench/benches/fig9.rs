//! Criterion bench for Fig. 9: max-size across the s_max sweep on the
//! quick suite (s_max = 0 row is the sequential baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddsim_bench::{sweep_suite, Scale};
use ddsim_core::{simulate, SimOptions, Strategy};

fn fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_max_size");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for workload in sweep_suite(Scale::Quick).into_iter().step_by(2) {
        let circuit = workload.circuit();
        for s_max in [0usize, 16, 64, 256] {
            group.bench_with_input(
                BenchmarkId::new(workload.name(), s_max),
                &s_max,
                |b, &s_max| {
                    b.iter(|| {
                        let strategy = if s_max == 0 {
                            Strategy::Sequential
                        } else {
                            Strategy::MaxSize { s_max }
                        };
                        simulate(&circuit, SimOptions::with_strategy(strategy))
                            .expect("width matches")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);

//! Hamiltonian-simulation benchmarks: Trotter steps across the paper's
//! combining strategies, and the exact density-matrix Kraus path.
//!
//! A Trotter step is the repeated-block workload the paper's Table I
//! strategy targets: the same sweep of basis changes, CX parity ladders,
//! and small Rz rotations applied over and over. `trotter_step` measures
//! one whole-run simulation per strategy; `kraus_apply` measures the
//! density-matrix channel application (two MxM products and a conjugate
//! transpose per Kraus term) against the noiseless baseline.

use criterion::{criterion_group, BenchmarkId, Criterion};
use ddsim_algorithms::hamiltonian::{trotter_circuit, PauliHamiltonian, TrotterOrder};
use ddsim_circuit::Circuit;
use ddsim_core::density::simulate_density;
use ddsim_core::noise::DepolarizingNoise;
use ddsim_core::{simulate, SimOptions, Strategy};

fn ising_step(n: u32, steps: u32) -> Circuit {
    let ham = PauliHamiltonian::ising_chain(n, 1.0, 0.8);
    trotter_circuit(&ham, 1.0, steps, TrotterOrder::First)
}

/// A shallow noisy workload for the density path: one entangling layer
/// plus single-qubit rotations, every gate followed by depolarization.
fn noisy_layer(n: u32) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    for q in 0..n {
        c.rz(0.3 + f64::from(q), q);
    }
    c
}

fn trotter_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("trotter_step");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 8u32;
    let circuit = ising_step(n, 5);
    for (label, strategy) in [
        ("sequential", Strategy::Sequential),
        ("kops16", Strategy::KOperations { k: 16 }),
        ("maxsize4096", Strategy::MaxSize { s_max: 4096 }),
        ("ddrepeating8", Strategy::DdRepeating { k: 8 }),
    ] {
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            let options = SimOptions {
                strategy,
                ..SimOptions::default()
            };
            b.iter(|| simulate(&circuit, options).expect("width matches"));
        });
    }
    group.finish();
}

fn kraus_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("kraus_apply");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [4u32, 6] {
        let circuit = noisy_layer(n);
        for (label, p) in [("noiseless", 0.0), ("depolarizing_p10", 0.1)] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                let noise = DepolarizingNoise::new(p);
                b.iter(|| {
                    simulate_density(&circuit, noise, SimOptions::default())
                        .expect("density run succeeds")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, trotter_step, kraus_apply);

/// CI regression gate over the Hamiltonian/noise workloads, run as
/// `cargo bench -p ddsim-bench --bench trotter -- --smoke`.
///
/// 1. **Relative, machine-independent**: on the Trotter-step workload the
///    DD-repeating strategy (cache the step matrix once, re-apply it) must
///    not be slower than `DDSIM_SMOKE_REL_TOL` (default 1.05) × the
///    sequential gate-by-gate run *from the same interleaved measurement*.
///    This is the paper's Table I claim held as an executable invariant —
///    a repeated block whose cached matrix stops paying for itself means
///    the MxM path or the repeat cache regressed.
/// 2. **Absolute**: the sequential Trotter run and the depolarizing
///    density run must stay within `DDSIM_SMOKE_ABS_TOL` (default 0.05)
///    of the checked-in baseline `crates/bench/baselines/trotter_smoke.json`.
///    Absolute nanoseconds are machine-dependent; CI sets a looser
///    tolerance and treats the relative gate as authoritative.
mod smoke {
    use std::time::{Duration, Instant};

    use ddsim_core::density::simulate_density;
    use ddsim_core::noise::DepolarizingNoise;
    use ddsim_core::{simulate, SimOptions, Strategy};

    const BASELINE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/trotter_smoke.json");

    fn env_f64(name: &str, default: f64) -> f64 {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Pulls `"baseline_ns": <number>` out of `bench`'s object in the
    /// baseline file. Hand-rolled because the workspace has no JSON
    /// dependency; the file is flat and checked in, so substring scanning
    /// is safe.
    fn baseline_ns(text: &str, bench: &str) -> Option<f64> {
        let rest = &text[text.find(&format!("\"{bench}\""))?..];
        let rest = &rest[rest.find("\"baseline_ns\"")?..];
        let rest = rest[rest.find(':')? + 1..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    fn best_ns(mut samples: Vec<f64>) -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        // Minimum-of-batches: the most repeatable estimator on shared or
        // frequency-scaled machines.
        samples[0] * 1e9
    }

    /// Interleaved best-of-batches, same estimator as the dd_ops smoke
    /// gate: warm both closures, then alternate ~50 ms sample batches so
    /// neither workload monopolizes a thermal regime.
    fn measure_pair(a: &mut dyn FnMut(), b: &mut dyn FnMut()) -> (f64, f64) {
        const SAMPLES: usize = 30;
        const WARM_UP: Duration = Duration::from_millis(200);
        const PER_BATCH: f64 = 0.05;
        let estimate = |f: &mut dyn FnMut()| -> f64 {
            let started = Instant::now();
            let mut iters = 0u64;
            while started.elapsed() < WARM_UP || iters == 0 {
                f();
                iters += 1;
            }
            started.elapsed().as_secs_f64() / iters as f64
        };
        let iters_a = ((PER_BATCH / estimate(a).max(1e-9)) as u64).clamp(1, 1_000_000);
        let iters_b = ((PER_BATCH / estimate(b).max(1e-9)) as u64).clamp(1, 1_000_000);
        let mut sa = Vec::with_capacity(SAMPLES);
        let mut sb = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let started = Instant::now();
            for _ in 0..iters_a {
                a();
            }
            sa.push(started.elapsed().as_secs_f64() / iters_a as f64);
            let started = Instant::now();
            for _ in 0..iters_b {
                b();
            }
            sb.push(started.elapsed().as_secs_f64() / iters_b as f64);
        }
        (best_ns(sa), best_ns(sb))
    }

    /// Sequential vs. DD-repeating whole-run simulate of a 6-qubit,
    /// 3-step Ising Trotter circuit. Returns
    /// `(sequential_ns, ddrepeating_ns)`.
    fn measure_trotter() -> (f64, f64) {
        let circuit = super::ising_step(6, 3);
        let sequential = SimOptions::default();
        let ddrepeating = SimOptions {
            strategy: Strategy::DdRepeating { k: 8 },
            ..SimOptions::default()
        };
        measure_pair(
            &mut || {
                std::hint::black_box(simulate(&circuit, sequential).expect("width matches"));
            },
            &mut || {
                std::hint::black_box(simulate(&circuit, ddrepeating).expect("width matches"));
            },
        )
    }

    /// Depolarizing vs. noiseless exact density run of a 5-qubit layer.
    /// Returns `(depolarizing_ns, noiseless_ns)`.
    fn measure_kraus() -> (f64, f64) {
        let circuit = super::noisy_layer(5);
        measure_pair(
            &mut || {
                std::hint::black_box(
                    simulate_density(&circuit, DepolarizingNoise::new(0.1), SimOptions::default())
                        .expect("density run succeeds"),
                );
            },
            &mut || {
                std::hint::black_box(
                    simulate_density(&circuit, DepolarizingNoise::new(0.0), SimOptions::default())
                        .expect("density run succeeds"),
                );
            },
        )
    }

    fn gate_absolute(
        baseline: &Result<String, std::io::Error>,
        case: &str,
        ns: f64,
        abs_tol: f64,
    ) -> bool {
        match baseline.as_deref().ok().and_then(|t| baseline_ns(t, case)) {
            Some(base) => {
                let drift = ns / base;
                println!(
                    "smoke {case}: baseline {base:.0} ns, drift x{drift:.3} (gate <= {:.2})",
                    1.0 + abs_tol
                );
                if drift > 1.0 + abs_tol {
                    println!(
                        "SMOKE FAIL {case}: regressed {:.1}% vs {BASELINE} (set \
                         DDSIM_SMOKE_ABS_TOL to loosen on a different machine, or re-baseline)",
                        (drift - 1.0) * 100.0
                    );
                    return true;
                }
                false
            }
            None => {
                println!("SMOKE FAIL {case}: no baseline entry readable from {BASELINE}");
                true
            }
        }
    }

    /// Runs the smoke gate; returns a process exit code.
    pub fn run() -> i32 {
        let rel_tol = env_f64("DDSIM_SMOKE_REL_TOL", 1.05);
        let abs_tol = env_f64("DDSIM_SMOKE_ABS_TOL", 0.05);
        let baseline = std::fs::read_to_string(BASELINE);
        let mut failed = false;

        let (sequential, ddrepeating) = measure_trotter();
        let ratio = ddrepeating / sequential;
        println!(
            "smoke trotter_step: sequential {sequential:.0} ns, dd-repeating {ddrepeating:.0} ns \
             (ratio {ratio:.3}, gate <= {rel_tol:.2})"
        );
        if ratio > rel_tol {
            println!(
                "SMOKE FAIL trotter_step: DD-repeating is {:.1}% slower than sequential on a \
                 repeated Trotter block (repeat-cache / MxM regression)",
                (ratio - 1.0) * 100.0
            );
            failed = true;
        }
        failed |= gate_absolute(&baseline, "trotter_step_sequential", sequential, abs_tol);
        failed |= gate_absolute(&baseline, "trotter_step_ddrepeating", ddrepeating, abs_tol);

        let (depolarizing, noiseless) = measure_kraus();
        println!(
            "smoke kraus_apply: depolarizing {depolarizing:.0} ns, noiseless {noiseless:.0} ns"
        );
        failed |= gate_absolute(&baseline, "kraus_apply_depolarizing", depolarizing, abs_tol);

        if failed {
            1
        } else {
            println!("smoke: all Hamiltonian/noise workloads within tolerance");
            0
        }
    }
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(smoke::run());
    }
    benches();
}

//! Microbenchmarks of the DD package primitives: the ablation data behind
//! the paper's Section III cost argument (MxM on small gate DDs vs. MxV
//! through a large state DD).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ddsim_algorithms::grover::{grover_circuit, GroverInstance};
use ddsim_algorithms::supremacy::{supremacy_circuit, SupremacyInstance};
use ddsim_complex::Complex;
use ddsim_core::{simulate, DdConfig, SimOptions};
use ddsim_dd::{Control, DdManager, VecEdge};

fn h_gate() -> ddsim_dd::Matrix2 {
    let s = Complex::SQRT2_INV;
    [[s, s], [s, -s]]
}

fn x_gate() -> ddsim_dd::Matrix2 {
    [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]
}

/// A "large" state DD: final state of a supremacy-style circuit.
fn dense_state(dd: &mut DdManager, n: u32) -> VecEdge {
    let rows = 2;
    let cols = n / 2;
    let circuit = supremacy_circuit(SupremacyInstance::new(rows, cols, 10, 1));
    let (sim, _) = simulate(&circuit, SimOptions::default()).expect("width matches");
    let amps = sim.dd().vec_to_amplitudes(sim.state());
    dd.vec_from_amplitudes(&amps)
}

fn gate_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_construction");
    for n in [8u32, 12, 16] {
        group.bench_with_input(BenchmarkId::new("single_qubit_h", n), &n, |b, &n| {
            let mut dd = DdManager::new();
            b.iter(|| dd.mat_single_qubit(n, n / 2, h_gate()));
        });
        group.bench_with_input(BenchmarkId::new("toffoli", n), &n, |b, &n| {
            let mut dd = DdManager::new();
            b.iter(|| dd.mat_controlled(n, &[Control::pos(0), Control::pos(1)], n - 1, x_gate()));
        });
    }
    group.finish();
}

fn mxv_vs_mxm(c: &mut Criterion) {
    let mut group = c.benchmark_group("mxv_vs_mxm_section3");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 12u32;

    // MxV of an elementary gate against a large state DD.
    group.bench_function("mxv_gate_times_large_state", |b| {
        let mut dd = DdManager::new();
        let state = dense_state(&mut dd, n);
        dd.inc_ref_vec(state);
        let gate = dd.mat_controlled(n, &[Control::pos(3)], 7, x_gate());
        dd.inc_ref_mat(gate);
        b.iter(|| {
            // GC frees the previous iteration's (unreferenced) result,
            // invalidating its cache entries, so the multiply is re-measured
            // rather than served whole from the compute table.
            dd.collect_garbage();
            dd.mat_vec_mul(gate, state)
        });
    });

    // MxM of two elementary gates (small DDs).
    group.bench_function("mxm_gate_times_gate", |b| {
        let mut dd = DdManager::new();
        let g1 = dd.mat_controlled(n, &[Control::pos(3)], 7, x_gate());
        let g2 = dd.mat_single_qubit(n, 5, h_gate());
        dd.inc_ref_mat(g1);
        dd.inc_ref_mat(g2);
        b.iter(|| {
            dd.collect_garbage();
            dd.mat_mat_mul(g2, g1)
        });
    });

    group.finish();
}

/// A deep circuit on ONE active qubit of an ever-wider register: every
/// level below the target is an untouched identity factor. With identity
/// skipping the run cost must stay (near-)independent of `n`; without it
/// every gate pays for the full register width (gate-matrix construction
/// and descent through the inactive levels).
fn mxv_identity_heavy(c: &mut Criterion) {
    let mut group = c.benchmark_group("mxv_identity_heavy");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let deep_single_qubit = |n: u32| {
        let mut circuit = ddsim_circuit::Circuit::new(n);
        for i in 0..64 {
            if i % 2 == 0 {
                circuit.h(0);
            } else {
                circuit.t(0);
            }
        }
        circuit
    };
    for n in [8u32, 14, 20] {
        for (label, skip) in [("deep_1q_skip_on", true), ("deep_1q_skip_off", false)] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let circuit = deep_single_qubit(n);
                // Small tables: each iteration builds a fresh manager, and
                // with the default 2^16-slot compute tables the allocation
                // would dwarf the 64-gate run we are trying to measure.
                let options = SimOptions {
                    dd_config: DdConfig {
                        identity_skip: skip,
                        compute_table_bits: 12,
                        unique_table_bits: 10,
                        ..DdConfig::default()
                    },
                    ..SimOptions::default()
                };
                b.iter(|| simulate(&circuit, options).expect("width matches"));
            });
        }
    }
    group.finish();
}

/// The same controlled gate applied to the same large state through the
/// generic matrix path (skips ablated away) and through the specialized
/// kernel — the head-to-head behind the `--no-identity-skip` flag.
fn specialized_vs_generic(c: &mut Criterion) {
    let mut group = c.benchmark_group("specialized_vs_generic");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 12u32;

    group.bench_function("generic_matrix_apply", |b| {
        let mut dd = DdManager::with_config(DdConfig {
            identity_skip: false,
            ..DdConfig::default()
        });
        let state = dense_state(&mut dd, n);
        dd.inc_ref_vec(state);
        let gate = dd.mat_controlled(n, &[Control::pos(3)], 7, x_gate());
        dd.inc_ref_mat(gate);
        b.iter(|| {
            dd.collect_garbage();
            dd.mat_vec_mul(gate, state)
        });
    });

    group.bench_function("specialized_apply", |b| {
        let mut dd = DdManager::new();
        let state = dense_state(&mut dd, n);
        dd.inc_ref_vec(state);
        b.iter(|| {
            dd.collect_garbage();
            dd.apply_controlled(&[Control::pos(3)], 7, x_gate(), state)
        });
    });

    group.finish();
}

/// Whole-run simulation under frequent garbage collection: many Grover
/// iterations with a tiny `gc_threshold`, so the run's cost is dominated by
/// how much memoized work survives each collection. Before the epoch
/// scheme every GC emptied the compute tables; now entries whose diagrams
/// survive keep their hits, which is exactly what this group measures
/// against the default (rare-GC) configuration.
fn cache_pressure(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_pressure");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let circuit = grover_circuit(GroverInstance::new(9, 5));

    for (label, gc_threshold) in [
        ("gc_rare_default", 250_000usize),
        ("gc_every_2k_nodes", 2_000),
    ] {
        group.bench_function(format!("grover9/{label}"), |b| {
            let options = SimOptions {
                dd_config: DdConfig {
                    gc_threshold,
                    ..DdConfig::default()
                },
                ..SimOptions::default()
            };
            b.iter(|| simulate(&circuit, options).expect("width matches"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    gate_construction,
    mxv_vs_mxm,
    mxv_identity_heavy,
    specialized_vs_generic,
    cache_pressure
);
criterion_main!(benches);

//! Microbenchmarks of the DD package primitives: the ablation data behind
//! the paper's Section III cost argument (MxM on small gate DDs vs. MxV
//! through a large state DD).

use std::sync::Arc;

use criterion::{criterion_group, BenchmarkId, Criterion};
use ddsim_algorithms::grover::{grover_circuit, GroverInstance};
use ddsim_algorithms::supremacy::{supremacy_circuit, SupremacyInstance};
use ddsim_complex::Complex;
use ddsim_core::{simulate, DdConfig, SimOptions};
use ddsim_dd::{Control, DdManager, Par, ThreadPool, VecEdge};

fn h_gate() -> ddsim_dd::Matrix2 {
    let s = Complex::SQRT2_INV;
    [[s, s], [s, -s]]
}

fn x_gate() -> ddsim_dd::Matrix2 {
    [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]
}

fn t_gate() -> ddsim_dd::Matrix2 {
    [
        [Complex::ONE, Complex::ZERO],
        [Complex::ZERO, Complex::cis(std::f64::consts::FRAC_PI_4)],
    ]
}

/// Order-sensitive ladder state: H(i); CX(i, i+k); T(i) pairs qubit `i`
/// with qubit `i+k`, so under the circuit (identity) order every pair
/// spans the register's upper half and the state DD holds ~2^k nodes —
/// while the interleaved order sifting finds is linear in `k`.
fn ladder_state(dd: &mut DdManager, k: u32) -> VecEdge {
    let mut state = dd.vec_zero_state(2 * k);
    dd.inc_ref_vec(state);
    let step = |dd: &mut DdManager, state: &mut VecEdge, next: VecEdge| {
        dd.inc_ref_vec(next);
        dd.dec_ref_vec(*state);
        *state = next;
    };
    for i in 0..k {
        let next = dd
            .apply_single_qubit(i, h_gate(), state)
            .expect("ungoverned");
        step(dd, &mut state, next);
        let next = dd
            .apply_controlled(&[Control::pos(i)], i + k, x_gate(), state)
            .expect("ungoverned");
        step(dd, &mut state, next);
        let next = dd
            .apply_single_qubit(i, t_gate(), state)
            .expect("ungoverned");
        step(dd, &mut state, next);
    }
    state
}

/// A "large" state DD: final state of a supremacy-style circuit.
fn dense_state(dd: &mut DdManager, n: u32) -> VecEdge {
    let rows = 2;
    let cols = n / 2;
    let circuit = supremacy_circuit(SupremacyInstance::new(rows, cols, 10, 1));
    let (sim, _) = simulate(&circuit, SimOptions::default()).expect("width matches");
    let amps = sim.dd().vec_to_amplitudes(sim.state());
    dd.vec_from_amplitudes(&amps)
}

fn gate_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("gate_construction");
    for n in [8u32, 12, 16] {
        group.bench_with_input(BenchmarkId::new("single_qubit_h", n), &n, |b, &n| {
            let mut dd = DdManager::new();
            b.iter(|| dd.mat_single_qubit(n, n / 2, h_gate()));
        });
        group.bench_with_input(BenchmarkId::new("toffoli", n), &n, |b, &n| {
            let mut dd = DdManager::new();
            b.iter(|| dd.mat_controlled(n, &[Control::pos(0), Control::pos(1)], n - 1, x_gate()));
        });
    }
    group.finish();
}

fn mxv_vs_mxm(c: &mut Criterion) {
    let mut group = c.benchmark_group("mxv_vs_mxm_section3");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 12u32;

    // MxV of an elementary gate against a large state DD.
    group.bench_function("mxv_gate_times_large_state", |b| {
        let mut dd = DdManager::new();
        let state = dense_state(&mut dd, n);
        dd.inc_ref_vec(state);
        let gate = dd.mat_controlled(n, &[Control::pos(3)], 7, x_gate());
        dd.inc_ref_mat(gate);
        b.iter(|| {
            // GC frees the previous iteration's (unreferenced) result,
            // invalidating its cache entries, so the multiply is re-measured
            // rather than served whole from the compute table.
            dd.collect_garbage();
            dd.mat_vec_mul(gate, state)
        });
    });

    // MxM of two elementary gates (small DDs).
    group.bench_function("mxm_gate_times_gate", |b| {
        let mut dd = DdManager::new();
        let g1 = dd.mat_controlled(n, &[Control::pos(3)], 7, x_gate());
        let g2 = dd.mat_single_qubit(n, 5, h_gate());
        dd.inc_ref_mat(g1);
        dd.inc_ref_mat(g2);
        b.iter(|| {
            dd.collect_garbage();
            dd.mat_mat_mul(g2, g1)
        });
    });

    group.finish();
}

/// A deep circuit on ONE active qubit of an ever-wider register: every
/// level below the target is an untouched identity factor. With identity
/// skipping the run cost must stay (near-)independent of `n`; without it
/// every gate pays for the full register width (gate-matrix construction
/// and descent through the inactive levels).
fn mxv_identity_heavy(c: &mut Criterion) {
    let mut group = c.benchmark_group("mxv_identity_heavy");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let deep_single_qubit = |n: u32| {
        let mut circuit = ddsim_circuit::Circuit::new(n);
        for i in 0..64 {
            if i % 2 == 0 {
                circuit.h(0);
            } else {
                circuit.t(0);
            }
        }
        circuit
    };
    for n in [8u32, 14, 20] {
        for (label, skip) in [("deep_1q_skip_on", true), ("deep_1q_skip_off", false)] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let circuit = deep_single_qubit(n);
                // Small tables: each iteration builds a fresh manager, and
                // with the default 2^16-slot compute tables the allocation
                // would dwarf the 64-gate run we are trying to measure.
                let options = SimOptions {
                    dd_config: DdConfig {
                        identity_skip: skip,
                        compute_table_bits: 12,
                        unique_table_bits: 10,
                        ..DdConfig::default()
                    },
                    ..SimOptions::default()
                };
                b.iter(|| simulate(&circuit, options).expect("width matches"));
            });
        }
    }
    group.finish();
}

/// The same controlled gate applied to the same large state through the
/// generic matrix path (skips ablated away) and through the specialized
/// kernel — the head-to-head behind the `--no-identity-skip` flag.
fn specialized_vs_generic(c: &mut Criterion) {
    let mut group = c.benchmark_group("specialized_vs_generic");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 12u32;

    group.bench_function("generic_matrix_apply", |b| {
        let mut dd = DdManager::with_config(DdConfig {
            identity_skip: false,
            ..DdConfig::default()
        });
        let state = dense_state(&mut dd, n);
        dd.inc_ref_vec(state);
        let gate = dd.mat_controlled(n, &[Control::pos(3)], 7, x_gate());
        dd.inc_ref_mat(gate);
        b.iter(|| {
            dd.collect_garbage();
            dd.mat_vec_mul(gate, state)
        });
    });

    group.bench_function("specialized_apply", |b| {
        let mut dd = DdManager::new();
        let state = dense_state(&mut dd, n);
        dd.inc_ref_vec(state);
        b.iter(|| {
            dd.collect_garbage();
            dd.apply_controlled(&[Control::pos(3)], 7, x_gate(), state)
        });
    });

    group.finish();
}

/// Fork-join MxV against a large state DD across pool widths. A 1-lane
/// pool never forks (the `Par` dispatch falls back to the sequential
/// kernel), so the `1` row measures pure dispatch overhead; wider rows
/// measure the isolated-worker split/export/merge pipeline. On a
/// single-core host the wider rows time-slice and mostly show overhead —
/// the smoke gate below only enforces speedup on 4+ hardware threads.
fn mxv_threaded(c: &mut Criterion) {
    let mut group = c.benchmark_group("mxv_threaded");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let n = 12u32;
    for lanes in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("mxv_large_state", lanes),
            &lanes,
            |b, &lanes| {
                let mut dd = DdManager::new();
                dd.set_par(Par::Threaded(Arc::new(ThreadPool::new(lanes))));
                let state = dense_state(&mut dd, n);
                dd.inc_ref_vec(state);
                let gate = dd.mat_controlled(n, &[Control::pos(3)], 7, x_gate());
                dd.inc_ref_mat(gate);
                b.iter(|| {
                    dd.collect_garbage();
                    dd.mat_vec_mul(gate, state)
                });
            },
        );
    }
    group.finish();
}

/// The same cross-half CNOT applied to the same ladder state before and
/// after a full sifting pass: identical function, identical multiply —
/// the only difference is the variable order, ~2^k nodes in circuit
/// order vs. ~2k after sifting. This is the reordering payoff the
/// `--reorder sifting` flag buys at whole-run scale.
fn mxv_reordered(c: &mut Criterion) {
    let mut group = c.benchmark_group("mxv_reordered");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let k = 7u32;
    let n = 2 * k;

    group.bench_function("ladder_circuit_order", |b| {
        let mut dd = DdManager::new();
        let state = ladder_state(&mut dd, k);
        let gate = dd.mat_controlled(n, &[Control::pos(0)], k, x_gate());
        dd.inc_ref_mat(gate);
        b.iter(|| {
            dd.collect_garbage();
            dd.mat_vec_mul(gate, state)
        });
    });

    group.bench_function("ladder_sifted_order", |b| {
        let mut dd = DdManager::new();
        let raw = ladder_state(&mut dd, k);
        let (state, stats) = dd.sift_state(raw, usize::MAX);
        assert!(
            stats.nodes_after * 2 <= stats.nodes_before,
            "sifting must at least halve the ladder ({} -> {})",
            stats.nodes_before,
            stats.nodes_after
        );
        // Built AFTER the sift: matrix construction maps external qubits
        // through the live variable order.
        let gate = dd.mat_controlled(n, &[Control::pos(0)], k, x_gate());
        dd.inc_ref_mat(gate);
        b.iter(|| {
            dd.collect_garbage();
            dd.mat_vec_mul(gate, state)
        });
    });
    group.finish();
}

/// Whole-run simulation under frequent garbage collection: many Grover
/// iterations with a tiny `gc_threshold`, so the run's cost is dominated by
/// how much memoized work survives each collection. Before the epoch
/// scheme every GC emptied the compute tables; now entries whose diagrams
/// survive keep their hits, which is exactly what this group measures
/// against the default (rare-GC) configuration.
fn cache_pressure(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_pressure");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let circuit = grover_circuit(GroverInstance::new(9, 5));

    for (label, gc_threshold) in [
        ("gc_rare_default", 250_000usize),
        ("gc_every_2k_nodes", 2_000),
    ] {
        group.bench_function(format!("grover9/{label}"), |b| {
            let options = SimOptions {
                dd_config: DdConfig {
                    gc_threshold,
                    ..DdConfig::default()
                },
                ..SimOptions::default()
            };
            b.iter(|| simulate(&circuit, options).expect("width matches"));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    gate_construction,
    mxv_vs_mxm,
    mxv_identity_heavy,
    mxv_threaded,
    mxv_reordered,
    specialized_vs_generic,
    cache_pressure
);

/// CI regression gate over the Section-III kernels, run as
/// `cargo bench -p ddsim-bench --bench dd_ops -- --smoke`.
///
/// Measures the `mxv_gate_times_large_state` and `mxm_gate_times_gate`
/// workloads under BOTH kernel instantiations — ungoverned (default
/// config) and governed (a lax budget that never trips) — with
/// interleaved sample batches so thermal drift cancels. Two gates:
///
/// 1. **Relative, machine-independent**: the ungoverned time must not
///    exceed `DDSIM_SMOKE_REL_TOL` (default 1.05) × the governed time
///    from the *same run*. This is the portable check: monomorphization
///    exists precisely so the ungoverned path is at least as fast.
/// 2. **Absolute**: the ungoverned time must stay within
///    `DDSIM_SMOKE_ABS_TOL` (default 0.05, i.e. +5%) of the checked-in
///    baseline `crates/bench/baselines/dd_ops_smoke.json`. Absolute
///    nanoseconds are machine-dependent; CI sets a looser tolerance and
///    treats the relative gate as the authoritative one.
///
/// Two further gates cover the thread-parallel engine:
///
/// 3. **Threaded parity**: with a 1-lane pool installed the `Par`
///    dispatch never forks, so both smoke workloads must run within
///    `DDSIM_SMOKE_REL_TOL` of the plain sequential manager — turning
///    the threading knob on (at width 1) is free.
/// 4. **Threaded speedup** (4+ hardware threads only, skipped with a
///    note otherwise): a pool as wide as the machine must deliver at
///    least `DDSIM_SMOKE_SPEEDUP` (default 2.0) × over sequential on at
///    least one of large-state MxV and shot sampling.
///
/// A fifth gate covers dynamic reordering:
///
/// 5. **Reorder leg**: sifting OFF is the shipped default, so the
///    whole-run `simulate` cost of an order-sensitive ladder is held to
///    the checked-in baseline (`sim_ladder_reorder_off`, same
///    `DDSIM_SMOKE_ABS_TOL` drift window); and sifting ON must earn its
///    keep on the same circuit by shrinking the final state DD ≥ 2×.
mod smoke {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use ddsim_complex::Complex;
    use ddsim_core::{simulate, DdConfig, ReorderMode, SimOptions};
    use ddsim_dd::{Control, DdManager, Par, ThreadPool};

    const BASELINE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/dd_ops_smoke.json");

    fn env_f64(name: &str, default: f64) -> f64 {
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Pulls `"ungoverned_ns": <number>` out of `bench`'s object in the
    /// baseline file. Hand-rolled because the workspace has no JSON
    /// dependency; the file is flat and checked in, so substring scanning
    /// is safe.
    fn baseline_ns(text: &str, bench: &str) -> Option<f64> {
        let rest = &text[text.find(&format!("\"{bench}\""))?..];
        let rest = &rest[rest.find("\"ungoverned_ns\"")?..];
        let rest = rest[rest.find(':')? + 1..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || ".-+eE".contains(c)))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    fn best_ns(mut samples: Vec<f64>) -> f64 {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        // Minimum-of-batches: the most repeatable estimator on shared or
        // frequency-scaled machines, where medians absorb scheduler noise
        // that has nothing to do with the code under test.
        samples[0] * 1e9
    }

    /// Interleaved best-of-batches: warm both closures, then alternate
    /// ~50 ms sample batches so neither instantiation monopolizes a
    /// thermal or frequency-scaling regime. Returns per-iteration
    /// minimum-batch means in ns.
    fn measure_pair(a: &mut dyn FnMut(), b: &mut dyn FnMut()) -> (f64, f64) {
        const SAMPLES: usize = 30;
        const WARM_UP: Duration = Duration::from_millis(200);
        const PER_BATCH: f64 = 0.05;
        let estimate = |f: &mut dyn FnMut()| -> f64 {
            let started = Instant::now();
            let mut iters = 0u64;
            while started.elapsed() < WARM_UP || iters == 0 {
                f();
                iters += 1;
            }
            started.elapsed().as_secs_f64() / iters as f64
        };
        let iters_a = ((PER_BATCH / estimate(a).max(1e-9)) as u64).clamp(1, 1_000_000);
        let iters_b = ((PER_BATCH / estimate(b).max(1e-9)) as u64).clamp(1, 1_000_000);
        let mut sa = Vec::with_capacity(SAMPLES);
        let mut sb = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let started = Instant::now();
            for _ in 0..iters_a {
                a();
            }
            sa.push(started.elapsed().as_secs_f64() / iters_a as f64);
            let started = Instant::now();
            for _ in 0..iters_b {
                b();
            }
            sb.push(started.elapsed().as_secs_f64() / iters_b as f64);
        }
        (best_ns(sa), best_ns(sb))
    }

    fn manager(governed: bool) -> DdManager {
        if governed {
            // A budget that can never trip: forces the governed kernel
            // instantiation without ever degrading or erroring.
            DdManager::with_config(DdConfig {
                max_live_nodes: Some(usize::MAX),
                ..DdConfig::default()
            })
        } else {
            DdManager::new()
        }
    }

    fn measure_case(name: &str) -> (f64, f64) {
        let n = 12u32;
        let x = [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]];
        let h = {
            let s = Complex::SQRT2_INV;
            [[s, s], [s, -s]]
        };
        match name {
            "mxv_gate_times_large_state" => {
                let setup = |governed: bool| {
                    let mut dd = manager(governed);
                    let state = super::dense_state(&mut dd, n);
                    dd.inc_ref_vec(state);
                    let gate = dd.mat_controlled(n, &[Control::pos(3)], 7, x);
                    dd.inc_ref_mat(gate);
                    (dd, gate, state)
                };
                let (mut dd_u, gate_u, state_u) = setup(false);
                let (mut dd_g, gate_g, state_g) = setup(true);
                measure_pair(
                    &mut || {
                        dd_u.collect_garbage();
                        std::hint::black_box(
                            dd_u.mat_vec_mul(gate_u, state_u).expect("ungoverned"),
                        );
                    },
                    &mut || {
                        dd_g.collect_garbage();
                        std::hint::black_box(
                            dd_g.mat_vec_mul(gate_g, state_g)
                                .expect("lax budget never trips"),
                        );
                    },
                )
            }
            "mxm_gate_times_gate" => {
                let setup = |governed: bool| {
                    let mut dd = manager(governed);
                    let g1 = dd.mat_controlled(n, &[Control::pos(3)], 7, x);
                    let g2 = dd.mat_single_qubit(n, 5, h);
                    dd.inc_ref_mat(g1);
                    dd.inc_ref_mat(g2);
                    (dd, g1, g2)
                };
                let (mut dd_u, g1_u, g2_u) = setup(false);
                let (mut dd_g, g1_g, g2_g) = setup(true);
                measure_pair(
                    &mut || {
                        dd_u.collect_garbage();
                        std::hint::black_box(dd_u.mat_mat_mul(g2_u, g1_u).expect("ungoverned"));
                    },
                    &mut || {
                        dd_g.collect_garbage();
                        std::hint::black_box(
                            dd_g.mat_mat_mul(g2_g, g1_g)
                                .expect("lax budget never trips"),
                        );
                    },
                )
            }
            other => unreachable!("unknown smoke case {other}"),
        }
    }

    /// Measures a smoke workload on a sequential manager vs. one with a
    /// `lanes`-wide pool installed, interleaved like every other pair.
    /// Returns `(sequential_ns, threaded_ns)`.
    fn measure_threaded_case(name: &str, lanes: usize) -> (f64, f64) {
        let n = 12u32;
        let setup = |threaded: bool| {
            let mut dd = DdManager::new();
            if threaded {
                dd.set_par(Par::Threaded(Arc::new(ThreadPool::new(lanes))));
            }
            let state = super::dense_state(&mut dd, n);
            dd.inc_ref_vec(state);
            let gate = dd.mat_controlled(n, &[Control::pos(3)], 7, super::x_gate());
            dd.inc_ref_mat(gate);
            let g2 = dd.mat_single_qubit(n, 5, super::h_gate());
            dd.inc_ref_mat(g2);
            (dd, gate, g2, state)
        };
        let (mut dd_s, gate_s, g2_s, state_s) = setup(false);
        let (mut dd_t, gate_t, g2_t, state_t) = setup(true);
        match name {
            "mxv_gate_times_large_state" => measure_pair(
                &mut || {
                    dd_s.collect_garbage();
                    std::hint::black_box(dd_s.mat_vec_mul(gate_s, state_s).expect("sequential"));
                },
                &mut || {
                    dd_t.collect_garbage();
                    std::hint::black_box(dd_t.mat_vec_mul(gate_t, state_t).expect("threaded"));
                },
            ),
            "mxm_gate_times_gate" => measure_pair(
                &mut || {
                    dd_s.collect_garbage();
                    std::hint::black_box(dd_s.mat_mat_mul(g2_s, gate_s).expect("sequential"));
                },
                &mut || {
                    dd_t.collect_garbage();
                    std::hint::black_box(dd_t.mat_mat_mul(g2_t, gate_t).expect("threaded"));
                },
            ),
            other => unreachable!("unknown threaded smoke case {other}"),
        }
    }

    /// Shot sampling on a supremacy-style final state: sequential engine
    /// vs. `threads`-lane engine, interleaved. Returns
    /// `(sequential_ns, threaded_ns)` per `sample_counts` call.
    fn measure_threaded_sampling(threads: u32) -> (f64, f64) {
        let circuit = ddsim_algorithms::supremacy::supremacy_circuit(
            ddsim_algorithms::supremacy::SupremacyInstance::new(2, 6, 10, 1),
        );
        let build = |threads: u32| {
            let options = SimOptions {
                threads,
                ..SimOptions::default()
            };
            simulate(&circuit, options).expect("width matches").0
        };
        let mut sim_s = build(1);
        let mut sim_t = build(threads);
        measure_pair(
            &mut || {
                std::hint::black_box(sim_s.sample_counts(256));
            },
            &mut || {
                std::hint::black_box(sim_t.sample_counts(256));
            },
        )
    }

    /// The order-sensitive ladder circuit behind gate 5 — the same shape
    /// the dd crate's sifting unit tests prove ≥2× on.
    fn ladder_circuit(k: u32) -> ddsim_circuit::Circuit {
        let mut c = ddsim_circuit::Circuit::new(2 * k);
        for i in 0..k {
            c.h(i);
            c.cx(i, i + k);
            c.t(i);
        }
        c
    }

    /// Interleaved whole-run `simulate` of the ladder with sifting off
    /// vs. on. Returns `(off_ns, on_ns, final_nodes_off, final_nodes_on)`.
    fn measure_reorder_sim(k: u32) -> (f64, f64, usize, usize) {
        let circuit = ladder_circuit(k);
        let off = SimOptions::default();
        let on = SimOptions {
            reorder: ReorderMode::Sifting,
            ..SimOptions::default()
        };
        let (_, stats_off) = simulate(&circuit, off).expect("width matches");
        let (_, stats_on) = simulate(&circuit, on).expect("width matches");
        let (off_ns, on_ns) = measure_pair(
            &mut || {
                std::hint::black_box(simulate(&circuit, off).expect("width matches"));
            },
            &mut || {
                std::hint::black_box(simulate(&circuit, on).expect("width matches"));
            },
        );
        (
            off_ns,
            on_ns,
            stats_off.final_state_nodes,
            stats_on.final_state_nodes,
        )
    }

    /// Runs the smoke gate; returns a process exit code.
    pub fn run() -> i32 {
        let rel_tol = env_f64("DDSIM_SMOKE_REL_TOL", 1.05);
        let abs_tol = env_f64("DDSIM_SMOKE_ABS_TOL", 0.05);
        let baseline = std::fs::read_to_string(BASELINE);
        let mut failed = false;
        for case in ["mxv_gate_times_large_state", "mxm_gate_times_gate"] {
            let (ungoverned, governed) = measure_case(case);
            let ratio = ungoverned / governed;
            println!(
                "smoke {case}: ungoverned {ungoverned:.0} ns, governed {governed:.0} ns \
                 (ratio {ratio:.3}, gate <= {rel_tol:.2})"
            );
            if ratio > rel_tol {
                println!(
                    "SMOKE FAIL {case}: ungoverned instantiation is {:.1}% slower than \
                     governed in the same run (monomorphization regression)",
                    (ratio - 1.0) * 100.0
                );
                failed = true;
            }
            match baseline.as_deref().ok().and_then(|t| baseline_ns(t, case)) {
                Some(base) => {
                    let drift = ungoverned / base;
                    println!(
                        "smoke {case}: baseline {base:.0} ns, drift x{drift:.3} \
                         (gate <= {:.2})",
                        1.0 + abs_tol
                    );
                    if drift > 1.0 + abs_tol {
                        println!(
                            "SMOKE FAIL {case}: ungoverned time regressed {:.1}% vs \
                             {BASELINE} (set DDSIM_SMOKE_ABS_TOL to loosen on a \
                             different machine, or re-baseline)",
                            (drift - 1.0) * 100.0
                        );
                        failed = true;
                    }
                }
                None => {
                    println!("SMOKE FAIL {case}: no baseline entry readable from {BASELINE}");
                    failed = true;
                }
            }
        }
        // Gate 3: a 1-lane pool never forks, so installing it must cost
        // nothing beyond the `Par` dispatch.
        for case in ["mxv_gate_times_large_state", "mxm_gate_times_gate"] {
            let (sequential, threaded) = measure_threaded_case(case, 1);
            let ratio = threaded / sequential;
            println!(
                "smoke {case} threads=1: sequential {sequential:.0} ns, threaded {threaded:.0} ns \
                 (ratio {ratio:.3}, gate <= {rel_tol:.2})"
            );
            if ratio > rel_tol {
                println!(
                    "SMOKE FAIL {case}: a 1-lane pool is {:.1}% slower than the sequential \
                     manager (Par dispatch regression)",
                    (ratio - 1.0) * 100.0
                );
                failed = true;
            }
        }
        // Gate 4: genuine speedup, only meaningful with real cores.
        let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
        if cores >= 4 {
            let speedup_gate = env_f64("DDSIM_SMOKE_SPEEDUP", 2.0);
            let mut best = 0.0f64;
            let (sequential, threaded) = measure_threaded_case("mxv_gate_times_large_state", cores);
            let speedup = sequential / threaded;
            println!(
                "smoke mxv_gate_times_large_state threads={cores}: sequential {sequential:.0} ns, \
                 threaded {threaded:.0} ns (speedup x{speedup:.2})"
            );
            best = best.max(speedup);
            let (sequential, threaded) = measure_threaded_sampling(cores as u32);
            let speedup = sequential / threaded;
            println!(
                "smoke shot_sampling_256 threads={cores}: sequential {sequential:.0} ns, \
                 threaded {threaded:.0} ns (speedup x{speedup:.2})"
            );
            best = best.max(speedup);
            if best < speedup_gate {
                println!(
                    "SMOKE FAIL threaded-speedup: best speedup x{best:.2} on {cores} hardware \
                     threads is below the x{speedup_gate:.1} gate"
                );
                failed = true;
            }
        } else {
            println!(
                "smoke threaded-speedup: skipped ({cores} hardware thread(s) < 4; the \
                 >=2x gate needs a multi-core host)"
            );
        }
        // Gate 5: the reorder leg (see the module docs).
        {
            let (off_ns, on_ns, nodes_off, nodes_on) = measure_reorder_sim(5);
            println!(
                "smoke sim_ladder_reorder_off: {off_ns:.0} ns (sifting on: {on_ns:.0} ns); \
                 final state nodes {nodes_off} -> {nodes_on}"
            );
            match baseline
                .as_deref()
                .ok()
                .and_then(|t| baseline_ns(t, "sim_ladder_reorder_off"))
            {
                Some(base) => {
                    let drift = off_ns / base;
                    println!(
                        "smoke sim_ladder_reorder_off: baseline {base:.0} ns, drift x{drift:.3} \
                         (gate <= {:.2})",
                        1.0 + abs_tol
                    );
                    if drift > 1.0 + abs_tol {
                        println!(
                            "SMOKE FAIL sim_ladder_reorder_off: the sifting-off run regressed \
                             {:.1}% vs {BASELINE} (the reorder plumbing must be free when off)",
                            (drift - 1.0) * 100.0
                        );
                        failed = true;
                    }
                }
                None => {
                    println!(
                        "SMOKE FAIL sim_ladder_reorder_off: no baseline entry readable \
                         from {BASELINE}"
                    );
                    failed = true;
                }
            }
            if nodes_off < 2 * nodes_on {
                println!(
                    "SMOKE FAIL reorder-effectiveness: sifting shrank the ladder's final DD \
                     only {nodes_off} -> {nodes_on} nodes (< 2x)"
                );
                failed = true;
            }
        }
        if failed {
            1
        } else {
            println!("smoke: all instantiations within tolerance");
            0
        }
    }
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(smoke::run());
    }
    benches();
}

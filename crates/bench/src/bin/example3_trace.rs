//! Regenerates the evidence behind Example 3 / Fig. 5: on a supremacy-style
//! circuit, the DDs of elementary operations stay tiny while the
//! intermediate state DDs are large — so combining two operations by a
//! matrix-matrix multiplication (touching only small DDs) is cheaper than
//! two matrix-vector multiplications (each touching the large state DD).
//!
//! Usage: `cargo run --release -p ddsim-bench --bin example3_trace [--full]`

use ddsim_bench::{maybe_run_child, parse_harness_options, Scale, Workload};
use ddsim_core::{simulate, SimOptions, Strategy};

fn main() {
    maybe_run_child();
    let options = parse_harness_options();
    let workload = match options.scale {
        Scale::Quick => Workload::Supremacy {
            rows: 4,
            cols: 4,
            depth: 10,
            seed: 42,
        },
        Scale::Paper => Workload::Supremacy {
            rows: 4,
            cols: 5,
            depth: 12,
            seed: 42,
        },
    };
    let circuit = workload.circuit();
    println!(
        "# Example 3 / Fig. 5 — DD sizes during simulation of {}",
        workload.name()
    );

    let trace_options = |strategy| SimOptions {
        strategy,
        collect_trace: true,
        ..SimOptions::default()
    };

    let (_, seq) = simulate(&circuit, trace_options(Strategy::Sequential)).expect("run");
    let (_, combined) =
        simulate(&circuit, trace_options(Strategy::KOperations { k: 2 })).expect("run");

    println!("\n## Sequential (Eq. 1): per-gate matrix vs. state DD sizes");
    println!("{:<8} {:>14} {:>14}", "gate", "matrix_nodes", "state_nodes");
    for t in seq.trace.iter().rev().take(12).rev() {
        println!(
            "{:<8} {:>14} {:>14}",
            t.gate_index, t.matrix_nodes, t.state_nodes
        );
    }
    let avg_matrix: f64 =
        seq.trace.iter().map(|t| t.matrix_nodes as f64).sum::<f64>() / seq.trace.len() as f64;
    let max_state = seq.trace.iter().map(|t| t.state_nodes).max().unwrap_or(0);
    println!(
        "# average elementary-matrix DD: {avg_matrix:.1} nodes; peak state DD: {max_state} nodes"
    );

    println!("\n## Combined (Eq. 2, k=2): the large state DD is touched half as often");
    println!(
        "applications: sequential={} combined={}",
        seq.trace.len(),
        combined.trace.len()
    );
    println!(
        "mult recursions: sequential={} combined={}",
        seq.mult_recursions, combined.mult_recursions
    );
    println!(
        "add recursions:  sequential={} combined={}",
        seq.add_recursions, combined.add_recursions
    );
    let seq_cost = seq.mult_recursions + seq.add_recursions;
    let comb_cost = combined.mult_recursions + combined.add_recursions;
    println!(
        "# total recursive steps: {seq_cost} vs {comb_cost} ({:.2}x)",
        seq_cost as f64 / comb_cost as f64
    );
}

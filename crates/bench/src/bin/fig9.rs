//! Regenerates Fig. 9: speed-up of the *max-size* strategy over the
//! sequential baseline, per benchmark and averaged, for a sweep of s_max.
//!
//! Usage: `cargo run --release -p ddsim-bench --bin fig9 [--full]
//! [--timeout SECS] [--seed N]`

use ddsim_bench::{
    geometric_mean_speedup, maybe_run_child, parse_harness_options, run_measured, sweep_suite,
    Measurement,
};

fn main() {
    maybe_run_child();
    let options = parse_harness_options();
    let suite = sweep_suite(options.scale);
    let sizes: &[usize] = &[8, 16, 32, 64, 128, 256, 512, 1024, 4096];

    println!("# Fig. 9 — speed-up of max-size vs. sequential (Eq. 1 baseline)");
    println!(
        "# scale: {:?}, timeout per run: {:.0}s, seed: {}",
        options.scale,
        options.timeout.as_secs_f64(),
        options.seed
    );

    let mut baselines: Vec<Measurement> = Vec::new();
    for w in &suite {
        let m = run_measured(w, "sequential", options.seed, options.timeout);
        println!("# baseline {:<22} {:>10}s", w.name(), m.display());
        baselines.push(m);
    }

    print!("{:<22}", "benchmark");
    for s in sizes {
        print!(" s={s:<8}");
    }
    println!();

    let mut per_s_pairs: Vec<Vec<(Measurement, Measurement)>> = vec![Vec::new(); sizes.len()];
    for (w, baseline) in suite.iter().zip(baselines.iter()) {
        print!("{:<22}", w.name());
        for (si, &s) in sizes.iter().enumerate() {
            let m = run_measured(w, &format!("maxsize;{s}"), options.seed, options.timeout);
            let cell = match (baseline.seconds(), m.seconds()) {
                (Some(b), Some(c)) => format!("{:.2}x", b / c),
                (_, None) => "t/o".to_string(),
                (None, Some(_)) => "inf".to_string(),
            };
            print!(" {cell:<9}");
            per_s_pairs[si].push((baseline.clone(), m));
        }
        println!();
    }

    print!("{:<22}", "AVERAGE (geo-mean)");
    for pairs in &per_s_pairs {
        match geometric_mean_speedup(pairs) {
            Some(g) => print!(" {:<9}", format!("{g:.2}x")),
            None => print!(" {:<9}", "-"),
        }
    }
    println!();
    println!("# expected shape: peaks for moderate s_max, above the best k-operations peak");
}

//! Ablation studies of the design choices called out in DESIGN.md:
//!
//! 1. strategy comparison including the `Adaptive` extension (is a
//!    parameter-free rule competitive with hand-tuned k / s_max?),
//! 2. edge-weight unification tolerance (node sharing vs. accuracy),
//! 3. garbage-collection threshold (memory vs. cache-flush cost), and
//! 4. identity skipping (short-circuits + specialized apply kernels,
//!    DESIGN.md §9) on versus off.
//!
//! Usage: `cargo run --release -p ddsim-bench --bin ablation [--full]
//! [--timeout SECS]`

use std::time::Instant;

use ddsim_bench::{maybe_run_child, parse_harness_options, run_measured, sweep_suite};
use ddsim_core::{simulate, SimOptions, Strategy};
use ddsim_dd::DdConfig;

fn main() {
    maybe_run_child();
    let options = parse_harness_options();
    let suite = sweep_suite(options.scale);

    println!("# Ablation 1 — strategy comparison (wall seconds)");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "sequential", "k=8", "s_max=256", "dd-repeat", "adaptive"
    );
    for w in &suite {
        let cells: Vec<String> = [
            "sequential",
            "kops;8",
            "maxsize;256",
            "ddrepeating;8",
            "adaptive;1000;4096",
        ]
        .iter()
        .map(|token| run_measured(w, token, options.seed, options.timeout).display())
        .collect();
        println!(
            "{:<22} {:>12} {:>12} {:>12} {:>12} {:>12}",
            w.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4]
        );
    }

    println!("\n# Ablation 2 — complex-table tolerance (supremacy_12_16, sequential)");
    println!(
        "{:<12} {:>12} {:>16}",
        "tolerance", "seconds", "final_nodes"
    );
    let workload = &suite[suite.len() - 1];
    let circuit = workload.circuit();
    for tolerance in [1e-6, 1e-8, 1e-10, 1e-12, 1e-14] {
        let started = Instant::now();
        let (sim, _) = simulate(
            &circuit,
            SimOptions {
                dd_config: DdConfig {
                    tolerance,
                    ..DdConfig::default()
                },
                ..SimOptions::default()
            },
        )
        .expect("width matches");
        println!(
            "{:<12.0e} {:>12.3} {:>16}",
            tolerance,
            started.elapsed().as_secs_f64(),
            sim.state_nodes()
        );
    }
    println!("# expected: loose tolerance → smaller DDs but accuracy risk; tight → larger DDs");

    println!("\n# Ablation 3 — GC threshold (grover workload, k-operations)");
    println!("{:<14} {:>12} {:>10}", "gc_threshold", "seconds", "gc_runs");
    let grover = &suite[0];
    let circuit = grover.circuit();
    for threshold in [5_000usize, 20_000, 100_000, 1_000_000] {
        let started = Instant::now();
        let (_, stats) = simulate(
            &circuit,
            SimOptions {
                strategy: Strategy::KOperations { k: 8 },
                dd_config: DdConfig {
                    gc_threshold: threshold,
                    ..DdConfig::default()
                },
                ..SimOptions::default()
            },
        )
        .expect("width matches");
        println!(
            "{:<14} {:>12.3} {:>10}",
            threshold,
            started.elapsed().as_secs_f64(),
            stats.gc_runs
        );
    }
    println!("# expected: aggressive GC costs time (compute-table flushes); lazy GC costs memory");

    println!("\n# Ablation 4 — identity skipping (sequential, per workload)");
    println!(
        "{:<22} {:>12} {:>12} {:>14} {:>14}",
        "benchmark", "skip_on_s", "skip_off_s", "id_skips", "spec_applies"
    );
    for w in &suite {
        let circuit = w.circuit();
        let timed = |identity_skip: bool| {
            let started = Instant::now();
            let (_, stats) = simulate(
                &circuit,
                SimOptions {
                    dd_config: DdConfig {
                        identity_skip,
                        ..DdConfig::default()
                    },
                    ..SimOptions::default()
                },
            )
            .expect("width matches");
            (started.elapsed().as_secs_f64(), stats)
        };
        let (on_secs, on_stats) = timed(true);
        let (off_secs, _) = timed(false);
        println!(
            "{:<22} {:>12.3} {:>12.3} {:>14} {:>14}",
            w.name(),
            on_secs,
            off_secs,
            on_stats.identity_skips,
            on_stats.specialized_applies
        );
    }
    println!("# expected: skip_on ≤ skip_off everywhere; sequential runs are all specialized");
}

//! Regenerates Table II: shor benchmarks under the sequential baseline
//! (`t_sota`), the best general strategy (`t_general`), and *DD-construct*
//! (`t_DD-construct`, the n+1-qubit direct-DD simulator).
//!
//! Usage: `cargo run --release -p ddsim-bench --bin table2 [--full]
//! [--timeout SECS] [--seed N]`

use ddsim_bench::{
    maybe_run_child, parse_harness_options, run_json, run_measured, shor_suite, Measurement,
};

fn main() {
    maybe_run_child();
    let options = parse_harness_options();
    let suite = shor_suite(options.scale);

    println!("# Table II — shor benchmarks (strategy DD-construct)");
    println!(
        "# scale: {:?}, timeout per run: {:.0}s, seed: {}",
        options.scale,
        options.timeout.as_secs_f64(),
        options.seed
    );
    println!(
        "{:<22} {:>12} {:>12} {:>18}",
        "Benchmark", "t_sota", "t_general", "t_DD-construct"
    );

    for w in &suite {
        let sota = run_measured(w, "sequential", options.seed, options.timeout);
        println!("{}", run_json(&w.name(), "sequential", &sota));

        let mut general: Option<Measurement> = None;
        for token in ["kops;8", "kops;16", "kops;32", "maxsize;256"] {
            let m = run_measured(w, token, options.seed, options.timeout);
            println!("{}", run_json(&w.name(), token, &m));
            general = Some(match (general, m.seconds()) {
                (None, _) => m,
                (Some(best), Some(c)) => {
                    if best.seconds().is_none_or(|b| c < b) {
                        m
                    } else {
                        best
                    }
                }
                (Some(best), None) => best,
            });
        }
        let general = general.expect("strategy sweep is non-empty");

        let construct = run_measured(w, "ddconstruct", options.seed, options.timeout);
        println!("{}", run_json(&w.name(), "ddconstruct", &construct));

        println!(
            "{:<22} {:>12} {:>12} {:>18}",
            w.name(),
            sota.display(),
            general.display(),
            construct.display()
        );
    }
    println!("# paper reference (their machine): shor_1007_602_23: 84.74 / 19.72 / 0.12 s … shor_11623_7531_31: >7200 / 1423.56 / 3.05 s");
}

//! Regenerates Fig. 8: speed-up of the *k-operations* strategy over the
//! sequential baseline, per benchmark and averaged, for k ∈ {1..128}.
//!
//! Usage: `cargo run --release -p ddsim-bench --bin fig8 [--full]
//! [--timeout SECS] [--seed N] [--smoke]`
//!
//! `--smoke` shrinks the sweep to two tiny instances and two k values — a
//! seconds-long end-to-end exercise of the harness for CI.

use ddsim_bench::{
    geometric_mean_speedup, maybe_run_child, parse_harness_options, run_json, run_measured,
    sweep_suite, Measurement, Workload,
};

fn main() {
    maybe_run_child();
    let options = parse_harness_options();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let suite = if smoke {
        vec![
            Workload::Grover {
                qubits: 9,
                marked: 5,
            },
            Workload::Shor {
                modulus: 15,
                base: 7,
            },
        ]
    } else {
        sweep_suite(options.scale)
    };
    let ks: &[usize] = if smoke {
        &[1, 4]
    } else {
        &[1, 2, 4, 8, 16, 32, 64, 128]
    };

    println!("# Fig. 8 — speed-up of k-operations vs. sequential (Eq. 1 baseline)");
    println!(
        "# scale: {:?}, timeout per run: {:.0}s, seed: {}",
        options.scale,
        options.timeout.as_secs_f64(),
        options.seed
    );

    // Baselines.
    let mut baselines: Vec<Measurement> = Vec::new();
    for w in &suite {
        let m = run_measured(w, "sequential", options.seed, options.timeout);
        println!("# baseline {:<22} {:>10}s", w.name(), m.display());
        println!("{}", run_json(&w.name(), "sequential", &m));
        baselines.push(m);
    }

    // Header row.
    print!("{:<22}", "benchmark");
    for k in ks {
        print!(" k={k:<8}");
    }
    println!();

    let mut per_k_pairs: Vec<Vec<(Measurement, Measurement)>> = vec![Vec::new(); ks.len()];
    for (w, baseline) in suite.iter().zip(baselines.iter()) {
        print!("{:<22}", w.name());
        let mut json_lines = Vec::new();
        for (ki, &k) in ks.iter().enumerate() {
            let token = format!("kops;{k}");
            let m = run_measured(w, &token, options.seed, options.timeout);
            let cell = match (baseline.seconds(), m.seconds()) {
                (Some(b), Some(c)) => format!("{:.2}x", b / c),
                (_, None) => "t/o".to_string(),
                (None, Some(_)) => "inf".to_string(),
            };
            print!(" {cell:<9}");
            json_lines.push(run_json(&w.name(), &token, &m));
            per_k_pairs[ki].push((baseline.clone(), m));
        }
        println!();
        for line in json_lines {
            println!("{line}");
        }
    }

    print!("{:<22}", "AVERAGE (geo-mean)");
    for pairs in &per_k_pairs {
        match geometric_mean_speedup(pairs) {
            Some(g) => print!(" {:<9}", format!("{g:.2}x")),
            None => print!(" {:<9}", "-"),
        }
    }
    println!();
    println!("# expected shape: rises above 1x for moderate k, falls for large k");
}

//! Regenerates Table I: grover benchmarks under the sequential baseline
//! (`t_sota`), the best general strategy (`t_general`, k-operations over a
//! small k sweep), and *DD-repeating* (`t_DD-repeating`).
//!
//! Usage: `cargo run --release -p ddsim-bench --bin table1 [--full]
//! [--timeout SECS] [--seed N]`

use ddsim_bench::{
    grover_suite, maybe_run_child, parse_harness_options, run_measured, Measurement,
};

fn main() {
    maybe_run_child();
    let options = parse_harness_options();
    let suite = grover_suite(options.scale);

    println!("# Table I — grover benchmarks (strategy DD-repeating)");
    println!(
        "# scale: {:?}, timeout per run: {:.0}s, seed: {}",
        options.scale,
        options.timeout.as_secs_f64(),
        options.seed
    );
    println!(
        "{:<14} {:>12} {:>12} {:>18}",
        "Benchmark", "t_sota", "t_general", "t_DD-repeating"
    );

    for w in &suite {
        let sota = run_measured(w, "sequential", options.seed, options.timeout);

        // t_general: best k over a small sweep, as the paper's "best choice
        // of k/s_max".
        let mut general: Option<Measurement> = None;
        for k in [4usize, 8, 16, 32] {
            let m = run_measured(w, &format!("kops;{k}"), options.seed, options.timeout);
            general = Some(match (general, m.seconds()) {
                (None, _) => m,
                (Some(best), Some(c)) => {
                    if best.seconds().is_none_or(|b| c < b) {
                        m
                    } else {
                        best
                    }
                }
                (Some(best), None) => best,
            });
        }
        let general = general.expect("k sweep is non-empty");

        let repeating = run_measured(w, "ddrepeating;8", options.seed, options.timeout);

        println!(
            "{:<14} {:>12} {:>12} {:>18}",
            w.name(),
            sota.display(),
            general.display(),
            repeating.display()
        );
    }
    println!("# paper reference (their machine): grover_23: 13.77 / 4.83 / 2.78 s … grover_29: 169.05 / 67.82 / 30.87 s");
}

//! Shared harness for regenerating the paper's figures and tables.
//!
//! Each experiment binary (`fig8`, `fig9`, `table1`, `table2`,
//! `example3_trace`) uses this crate to build benchmark circuits, execute
//! runs in a killable subprocess (so the paper's ">2 CPU hours" timeout
//! rows can be reproduced without hanging the harness), and format the
//! speed-up tables.

use std::io::Write as _;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use ddsim_algorithms::grover::{grover_circuit, GroverInstance};
use ddsim_algorithms::shor::{shor_circuit, ShorInstance};
use ddsim_algorithms::supremacy::{supremacy_circuit, SupremacyInstance};
use ddsim_circuit::Circuit;
use ddsim_core::{run_shor_dd_construct, simulate, CacheStats, RunStats, SimOptions, Strategy};

/// Benchmark scale: CI-friendly defaults versus paper-sized instances.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small instances, each run well under a minute on a laptop core.
    Quick,
    /// The paper's instance sizes (grover_23…29, shor_1007… etc.). Allow
    /// hours and use a generous `--timeout`.
    Paper,
}

/// A named benchmark workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Grover search with `total_qubits` (= search + ancilla).
    Grover {
        /// Total qubits.
        qubits: u32,
        /// Marked element.
        marked: u64,
    },
    /// Beauregard Shor order finding for `N` with base `a`.
    Shor {
        /// The modulus.
        modulus: u64,
        /// The co-prime base.
        base: u64,
    },
    /// Supremacy-style random grid circuit.
    Supremacy {
        /// Grid rows.
        rows: u32,
        /// Grid columns.
        cols: u32,
        /// Clock cycles.
        depth: u32,
        /// Gate-choice seed.
        seed: u64,
    },
}

impl Workload {
    /// The paper's benchmark name for this workload.
    pub fn name(&self) -> String {
        match self {
            Workload::Grover { qubits, .. } => format!("grover_{qubits}"),
            Workload::Shor { modulus, base } => {
                let inst = ShorInstance::new(*modulus, *base);
                inst.name()
            }
            Workload::Supremacy {
                rows, cols, depth, ..
            } => format!("supremacy_{depth}_{}", rows * cols),
        }
    }

    /// Builds the circuit for this workload.
    pub fn circuit(&self) -> Circuit {
        match self {
            Workload::Grover { qubits, marked } => {
                grover_circuit(GroverInstance::new(*qubits, *marked))
            }
            Workload::Shor { modulus, base } => shor_circuit(ShorInstance::new(*modulus, *base)),
            Workload::Supremacy {
                rows,
                cols,
                depth,
                seed,
            } => supremacy_circuit(SupremacyInstance::new(*rows, *cols, *depth, *seed)),
        }
    }

    /// Serializes to the spec understood by [`parse_workload`].
    pub fn spec(&self) -> String {
        match self {
            Workload::Grover { qubits, marked } => format!("grover;{qubits};{marked}"),
            Workload::Shor { modulus, base } => format!("shor;{modulus};{base}"),
            Workload::Supremacy {
                rows,
                cols,
                depth,
                seed,
            } => format!("supremacy;{rows};{cols};{depth};{seed}"),
        }
    }
}

/// Parses a workload spec produced by [`Workload::spec`].
///
/// # Panics
///
/// Panics on a malformed spec (these only travel harness → child process).
pub fn parse_workload(spec: &str) -> Workload {
    let parts: Vec<&str> = spec.split(';').collect();
    match parts[0] {
        "grover" => Workload::Grover {
            qubits: parts[1].parse().expect("qubits"),
            marked: parts[2].parse().expect("marked"),
        },
        "shor" => Workload::Shor {
            modulus: parts[1].parse().expect("modulus"),
            base: parts[2].parse().expect("base"),
        },
        "supremacy" => Workload::Supremacy {
            rows: parts[1].parse().expect("rows"),
            cols: parts[2].parse().expect("cols"),
            depth: parts[3].parse().expect("depth"),
            seed: parts[4].parse().expect("seed"),
        },
        other => panic!("unknown workload kind `{other}`"),
    }
}

/// Serializes a strategy to a spec token.
pub fn strategy_spec(s: Strategy) -> String {
    match s {
        Strategy::Sequential => "sequential".to_string(),
        Strategy::KOperations { k } => format!("kops;{k}"),
        Strategy::MaxSize { s_max } => format!("maxsize;{s_max}"),
        Strategy::DdRepeating { k } => format!("ddrepeating;{k}"),
        Strategy::Adaptive { ratio_millis, cap } => format!("adaptive;{ratio_millis};{cap}"),
    }
}

/// Parses a strategy spec.
///
/// # Panics
///
/// Panics on a malformed spec.
pub fn parse_strategy(spec: &str) -> Strategy {
    let parts: Vec<&str> = spec.split(';').collect();
    match parts[0] {
        "sequential" => Strategy::Sequential,
        "kops" => Strategy::KOperations {
            k: parts[1].parse().expect("k"),
        },
        "maxsize" => Strategy::MaxSize {
            s_max: parts[1].parse().expect("s_max"),
        },
        "ddrepeating" => Strategy::DdRepeating {
            k: parts[1].parse().expect("k"),
        },
        "adaptive" => Strategy::Adaptive {
            ratio_millis: parts[1].parse().expect("ratio_millis"),
            cap: parts[2].parse().expect("cap"),
        },
        other => panic!("unknown strategy `{other}`"),
    }
}

/// The standard benchmark suites for the Fig. 8 / Fig. 9 sweeps.
pub fn sweep_suite(scale: Scale) -> Vec<Workload> {
    match scale {
        Scale::Quick => vec![
            Workload::Grover {
                qubits: 13,
                marked: 5,
            },
            Workload::Grover {
                qubits: 15,
                marked: 5,
            },
            Workload::Shor {
                modulus: 33,
                base: 5,
            },
            Workload::Shor {
                modulus: 55,
                base: 17,
            },
            Workload::Supremacy {
                rows: 4,
                cols: 4,
                depth: 8,
                seed: 42,
            },
            Workload::Supremacy {
                rows: 4,
                cols: 4,
                depth: 12,
                seed: 42,
            },
        ],
        Scale::Paper => vec![
            Workload::Grover {
                qubits: 19,
                marked: 5,
            },
            Workload::Grover {
                qubits: 21,
                marked: 5,
            },
            Workload::Shor {
                modulus: 221,
                base: 4,
            },
            Workload::Shor {
                modulus: 1007,
                base: 602,
            },
            Workload::Supremacy {
                rows: 4,
                cols: 4,
                depth: 16,
                seed: 42,
            },
            Workload::Supremacy {
                rows: 4,
                cols: 5,
                depth: 10,
                seed: 42,
            },
        ],
    }
}

/// The Table I grover instances.
pub fn grover_suite(scale: Scale) -> Vec<Workload> {
    let sizes: &[u32] = match scale {
        Scale::Quick => &[13, 15, 17],
        Scale::Paper => &[23, 25, 27, 29],
    };
    sizes
        .iter()
        .map(|&qubits| Workload::Grover { qubits, marked: 5 })
        .collect()
}

/// The Table II shor instances.
pub fn shor_suite(scale: Scale) -> Vec<Workload> {
    match scale {
        Scale::Quick => vec![
            Workload::Shor {
                modulus: 33,
                base: 5,
            },
            Workload::Shor {
                modulus: 55,
                base: 17,
            },
            Workload::Shor {
                modulus: 221,
                base: 4,
            },
        ],
        Scale::Paper => vec![
            Workload::Shor {
                modulus: 1007,
                base: 602,
            },
            Workload::Shor {
                modulus: 1851,
                base: 17,
            },
            Workload::Shor {
                modulus: 2561,
                base: 2409,
            },
            Workload::Shor {
                modulus: 7361,
                base: 5878,
            },
            Workload::Shor {
                modulus: 5513,
                base: 3591,
            },
            Workload::Shor {
                modulus: 8193,
                base: 1024,
            },
            Workload::Shor {
                modulus: 11623,
                base: 7531,
            },
        ],
    }
}

/// Result of one measured run.
#[derive(Clone, Debug)]
pub enum Measurement {
    /// Completed within the limit.
    Completed {
        /// Wall-clock seconds.
        seconds: f64,
        /// Per-table cache counters as a JSON object (the child's `CACHE`
        /// protocol line), when the run reported them.
        cache_json: Option<String>,
        /// Top-level multiplication counters as a JSON object (the child's
        /// `COUNTERS` protocol line), when the run reported them.
        counters_json: Option<String>,
    },
    /// Exceeded the timeout and was killed (the paper's `>7200.00` rows).
    TimedOut {
        /// The limit that was exceeded, in seconds.
        limit: f64,
    },
}

impl Measurement {
    /// Seconds if completed.
    pub fn seconds(&self) -> Option<f64> {
        match self {
            Measurement::Completed { seconds, .. } => Some(*seconds),
            Measurement::TimedOut { .. } => None,
        }
    }

    /// Formats like the paper's tables (`>7200.00` for timeouts).
    pub fn display(&self) -> String {
        match self {
            Measurement::Completed { seconds, .. } => format!("{seconds:.2}"),
            Measurement::TimedOut { limit } => format!(">{limit:.2}"),
        }
    }
}

/// Serializes per-table cache counters as a JSON object (hand-rolled; the
/// repo deliberately has no serialization dependency).
pub fn cache_json(cache: &CacheStats) -> String {
    let mut parts = Vec::new();
    for (name, t) in cache.named_compute() {
        parts.push(format!(
            "\"{name}\":{{\"lookups\":{},\"hits\":{},\"hit_rate\":{:.4},\"collisions\":{},\"evictions\":{},\"stale\":{}}}",
            t.lookups,
            t.hits,
            t.hit_rate(),
            t.collisions,
            t.evictions,
            t.stale
        ));
    }
    for (name, u) in cache.named_unique() {
        parts.push(format!(
            "\"{name}\":{{\"lookups\":{},\"hits\":{},\"hit_rate\":{:.4},\"probes\":{},\"grows\":{},\"rebuilds\":{}}}",
            u.lookups,
            u.hits,
            u.hit_rate(),
            u.probes,
            u.grows,
            u.rebuilds
        ));
    }
    let c = &cache.complex;
    parts.push(format!(
        "\"complex_table\":{{\"lookups\":{},\"unified\":{},\"unify_rate\":{:.4},\"inserts\":{},\"buckets_probed\":{},\"probe_entries\":{},\"mean_probe_len\":{:.4}}}",
        c.lookups,
        c.unified,
        c.unify_rate(),
        c.inserts,
        c.buckets_probed,
        c.probe_entries,
        c.mean_probe_len()
    ));
    format!("{{{}}}", parts.join(","))
}

/// Serializes the run's top-level multiplication counters as a JSON
/// object — the ablation-relevant numbers next to the wall time.
pub fn counters_json(stats: &RunStats) -> String {
    format!(
        "{{\"mat_vec_mults\":{},\"mat_mat_mults\":{},\"identity_skips\":{},\"specialized_applies\":{}}}",
        stats.mat_vec_mults, stats.mat_mat_mults, stats.identity_skips, stats.specialized_applies
    )
}

/// One run as a self-describing JSON line for downstream tooling:
/// benchmark, strategy, seconds (null on timeout), the per-table
/// `cache` object, and the top-level `counters` object (null when the run
/// did not report them).
pub fn run_json(benchmark: &str, strategy: &str, m: &Measurement) -> String {
    let (seconds, timed_out, cache, counters) = match m {
        Measurement::Completed {
            seconds,
            cache_json,
            counters_json,
        } => (
            format!("{seconds:.6}"),
            false,
            cache_json.clone().unwrap_or_else(|| "null".to_string()),
            counters_json.clone().unwrap_or_else(|| "null".to_string()),
        ),
        Measurement::TimedOut { limit } => (
            format!("{limit:.6}"),
            true,
            "null".to_string(),
            "null".to_string(),
        ),
    };
    format!(
        "{{\"benchmark\":\"{benchmark}\",\"strategy\":\"{strategy}\",\"seconds\":{seconds},\"timed_out\":{timed_out},\"counters\":{counters},\"cache\":{cache}}}"
    )
}

/// Executes one workload/strategy pair in-process and returns the stats.
/// `dd-construct` is spelled as a pseudo-strategy token `ddconstruct`.
///
/// # Panics
///
/// Panics if `ddconstruct` is requested for a non-shor workload.
pub fn execute(workload: &Workload, strategy_token: &str, seed: u64) -> RunStats {
    if strategy_token == "ddconstruct" {
        let Workload::Shor { modulus, base } = workload else {
            panic!("dd-construct only applies to shor workloads");
        };
        let outcome = run_shor_dd_construct(ShorInstance::new(*modulus, *base), seed);
        return outcome.stats;
    }
    let strategy = parse_strategy(strategy_token);
    let circuit = workload.circuit();
    let (_, stats) = simulate(
        &circuit,
        SimOptions {
            strategy,
            seed,
            ..SimOptions::default()
        },
    )
    .expect("workload circuits always match their own width");
    stats
}

/// Child-process entry: if the argument list matches the hidden
/// `__run-one` protocol, execute and exit. Call this first from every
/// harness binary's `main`.
pub fn maybe_run_child() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 5 && args[1] == "__run-one" {
        let workload = parse_workload(&args[2]);
        let strategy = &args[3];
        let seed: u64 = args[4].parse().expect("seed");
        let started = Instant::now();
        let stats = execute(&workload, strategy, seed);
        println!("mxv={} mxm={}", stats.mat_vec_mults, stats.mat_mat_mults);
        println!("COUNTERS {}", counters_json(&stats));
        println!("CACHE {}", cache_json(&stats.cache));
        println!("RESULT {:.6}", started.elapsed().as_secs_f64());
        let _ = std::io::stdout().flush();
        std::process::exit(0);
    }
}

/// Runs one workload/strategy pair in a killable subprocess with a
/// timeout. Falls back to in-process execution when spawning fails.
///
/// Only valid from a binary whose `main` starts with
/// [`maybe_run_child`] — the subprocess re-invokes the current executable
/// with the hidden `__run-one` protocol.
pub fn run_measured(
    workload: &Workload,
    strategy_token: &str,
    seed: u64,
    timeout: Duration,
) -> Measurement {
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(_) => return run_in_process(workload, strategy_token, seed),
    };
    let child = Command::new(exe)
        .arg("__run-one")
        .arg(workload.spec())
        .arg(strategy_token)
        .arg(seed.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn();
    let mut child = match child {
        Ok(c) => c,
        Err(_) => return run_in_process(workload, strategy_token, seed),
    };
    let started = Instant::now();
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                let mut output = String::new();
                if let Some(mut stdout) = child.stdout.take() {
                    use std::io::Read as _;
                    let _ = stdout.read_to_string(&mut output);
                }
                if !status.success() {
                    // Treat crashes like timeouts so a table row still prints.
                    return Measurement::TimedOut {
                        limit: started.elapsed().as_secs_f64(),
                    };
                }
                let seconds = output
                    .lines()
                    .rev()
                    .find_map(|l| l.strip_prefix("RESULT "))
                    .and_then(|s| s.trim().parse::<f64>().ok())
                    .unwrap_or_else(|| started.elapsed().as_secs_f64());
                let cache_json = output
                    .lines()
                    .rev()
                    .find_map(|l| l.strip_prefix("CACHE "))
                    .map(|s| s.trim().to_string());
                let counters_json = output
                    .lines()
                    .rev()
                    .find_map(|l| l.strip_prefix("COUNTERS "))
                    .map(|s| s.trim().to_string());
                return Measurement::Completed {
                    seconds,
                    cache_json,
                    counters_json,
                };
            }
            Ok(None) => {
                if started.elapsed() >= timeout {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Measurement::TimedOut {
                        limit: timeout.as_secs_f64(),
                    };
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => {
                return Measurement::TimedOut {
                    limit: timeout.as_secs_f64(),
                };
            }
        }
    }
}

fn run_in_process(workload: &Workload, strategy_token: &str, seed: u64) -> Measurement {
    let started = Instant::now();
    let stats = execute(workload, strategy_token, seed);
    Measurement::Completed {
        seconds: started.elapsed().as_secs_f64(),
        cache_json: Some(cache_json(&stats.cache)),
        counters_json: Some(counters_json(&stats)),
    }
}

/// Common CLI options for the harness binaries.
#[derive(Clone, Copy, Debug)]
pub struct HarnessOptions {
    /// Instance scale.
    pub scale: Scale,
    /// Per-run timeout.
    pub timeout: Duration,
    /// Measurement seed.
    pub seed: u64,
}

/// Parses `--full`, `--timeout <secs>`, and `--seed <n>` from the
/// command line (ignoring the hidden child protocol).
pub fn parse_harness_options() -> HarnessOptions {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let mut timeout = if full { 7200.0 } else { 60.0 };
    let mut seed = 0u64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    timeout = v;
                    i += 1;
                }
            }
            "--seed" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    seed = v;
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    HarnessOptions {
        scale: if full { Scale::Paper } else { Scale::Quick },
        timeout: Duration::from_secs_f64(timeout),
        seed,
    }
}

/// Geometric mean of speed-ups (the paper's average lines in Figs. 8/9),
/// ignoring entries where either side timed out.
pub fn geometric_mean_speedup(pairs: &[(Measurement, Measurement)]) -> Option<f64> {
    let mut log_sum = 0.0f64;
    let mut count = 0usize;
    for (baseline, candidate) in pairs {
        if let (Some(b), Some(c)) = (baseline.seconds(), candidate.seconds()) {
            if b > 0.0 && c > 0.0 {
                log_sum += (b / c).ln();
                count += 1;
            }
        }
    }
    if count == 0 {
        None
    } else {
        Some((log_sum / count as f64).exp())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_spec_roundtrip() {
        for w in [
            Workload::Grover {
                qubits: 15,
                marked: 7,
            },
            Workload::Shor {
                modulus: 33,
                base: 5,
            },
            Workload::Supremacy {
                rows: 3,
                cols: 4,
                depth: 9,
                seed: 1,
            },
        ] {
            assert_eq!(parse_workload(&w.spec()), w);
        }
    }

    #[test]
    fn strategy_spec_roundtrip() {
        for s in [
            Strategy::Sequential,
            Strategy::KOperations { k: 8 },
            Strategy::MaxSize { s_max: 512 },
            Strategy::DdRepeating { k: 2 },
            Strategy::adaptive(),
        ] {
            assert_eq!(parse_strategy(&strategy_spec(s)), s);
        }
    }

    #[test]
    fn names_follow_paper_convention() {
        assert_eq!(
            Workload::Grover {
                qubits: 23,
                marked: 0
            }
            .name(),
            "grover_23"
        );
        assert_eq!(
            Workload::Shor {
                modulus: 1007,
                base: 602
            }
            .name(),
            "shor_1007_602_23"
        );
        assert_eq!(
            Workload::Supremacy {
                rows: 4,
                cols: 5,
                depth: 25,
                seed: 0
            }
            .name(),
            "supremacy_25_20"
        );
    }

    #[test]
    fn execute_runs_quick_workloads() {
        let w = Workload::Grover {
            qubits: 5,
            marked: 1,
        };
        let stats = execute(&w, "sequential", 0);
        assert!(stats.mat_vec_mults > 0);
        let stats = execute(&w, "kops;4", 0);
        assert!(stats.mat_mat_mults > 0);
        let shor = Workload::Shor {
            modulus: 15,
            base: 7,
        };
        let stats = execute(&shor, "ddconstruct", 0);
        assert!(stats.mat_vec_mults > 0);
    }

    fn completed(seconds: f64) -> Measurement {
        Measurement::Completed {
            seconds,
            cache_json: None,
            counters_json: None,
        }
    }

    #[test]
    fn geometric_mean_ignores_timeouts() {
        let pairs = vec![
            (completed(4.0), completed(1.0)),
            (completed(1.0), Measurement::TimedOut { limit: 10.0 }),
        ];
        let g = geometric_mean_speedup(&pairs).expect("one valid pair");
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn measurement_display_matches_paper_format() {
        assert_eq!(completed(13.77).display(), "13.77");
        assert_eq!(
            Measurement::TimedOut { limit: 7200.0 }.display(),
            ">7200.00"
        );
    }

    #[test]
    fn cache_json_lists_every_table() {
        let stats = execute(
            &Workload::Grover {
                qubits: 5,
                marked: 1,
            },
            "sequential",
            0,
        );
        let json = cache_json(&stats.cache);
        for table in [
            "add_vec",
            "add_mat",
            "mat_vec",
            "mat_mat",
            "conj_transpose",
            "kron_vec",
            "kron_mat",
            "apply_gate",
            "vec_unique",
            "mat_unique",
        ] {
            assert!(json.contains(&format!("\"{table}\":{{")), "missing {table}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
        // Sequential gate application routes through the specialized
        // kernels, so the apply-gate cache must have seen the traffic.
        assert!(stats.cache.apply_gate.lookups > 0);
    }

    #[test]
    fn counters_json_reports_specialized_applies() {
        let stats = execute(
            &Workload::Grover {
                qubits: 5,
                marked: 1,
            },
            "sequential",
            0,
        );
        let json = counters_json(&stats);
        assert!(json.contains(&format!("\"mat_vec_mults\":{}", stats.mat_vec_mults)));
        assert!(json.contains(&format!(
            "\"specialized_applies\":{}",
            stats.specialized_applies
        )));
        assert!(stats.specialized_applies > 0);
        assert!(json.contains("\"identity_skips\":"));
    }

    #[test]
    fn run_json_embeds_the_cache_object() {
        let m = Measurement::Completed {
            seconds: 1.25,
            cache_json: Some("{\"x\":1}".to_string()),
            counters_json: Some("{\"y\":2}".to_string()),
        };
        let line = run_json("grover_5", "sequential", &m);
        assert!(line.contains("\"benchmark\":\"grover_5\""));
        assert!(line.contains("\"seconds\":1.250000"));
        assert!(line.contains("\"timed_out\":false"));
        assert!(line.contains("\"cache\":{\"x\":1}"));
        assert!(line.contains("\"counters\":{\"y\":2}"));
        let t = run_json("g", "s", &Measurement::TimedOut { limit: 60.0 });
        assert!(t.contains("\"timed_out\":true"));
        assert!(t.contains("\"cache\":null"));
        assert!(t.contains("\"counters\":null"));
    }
}

//! Vendored, dependency-free stand-in for the slice of `proptest` this
//! workspace uses.
//!
//! The build environment has no registry access, so the real `proptest`
//! cannot be fetched. This shim keeps the property-test sources unchanged:
//! `proptest!`, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_assume!`, `Strategy` with `prop_map`/`prop_filter`, `Just`,
//! numeric-range and tuple strategies, and `collection::vec`.
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases from a
//! deterministic per-test seed (derived from the test's module path and
//! name). There is no shrinking — a failing case panics with the standard
//! assert message. `prop_assume!` skips the remainder of the current case.

/// Runner configuration. Only `cases` is honored.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identifier via FNV-1a so every property gets an
    /// independent but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        // Multiply-shift; the tiny modulo bias is irrelevant for testing.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing the predicate (regenerating, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Object-safe strategy, used by [`Union`] (`prop_oneof!`).
pub trait DynStrategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Weighted choice among strategies of a common value type.
pub struct Union<T> {
    options: Vec<(u32, Box<dyn DynStrategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// Builds a union from weighted boxed strategies.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or all weights are zero.
    pub fn new_weighted(options: Vec<(u32, Box<dyn DynStrategy<Value = T>>)>) -> Self {
        let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof needs at least one positive weight");
        Union { options }
    }
}

/// Boxes a strategy for [`Union`] storage (used by `prop_oneof!`).
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> Box<dyn DynStrategy<Value = S::Value>> {
    Box::new(s)
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return s.dyn_generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact `usize` or a `Range`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Declares property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(#[test] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for __case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let __run = || { $body };
                    __run();
                }
            }
        )*
    };
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight, $crate::boxed_strategy($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::boxed_strategy($strat)),)+
        ])
    };
}

/// Asserts within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the remainder of the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_filters_compose() {
        let mut rng = crate::TestRng::from_name("compose");
        let strat = (0u32..10, 0u32..10).prop_filter("distinct", |(a, b)| a != b);
        for _ in 0..200 {
            let (a, b) = strat.generate(&mut rng);
            assert!(a < 10 && b < 10 && a != b);
        }
    }

    #[test]
    fn oneof_respects_weights_loosely() {
        let mut rng = crate::TestRng::from_name("weights");
        let strat = prop_oneof![
            9 => Just(0u8),
            1 => Just(1u8),
        ];
        let ones = (0..1000).filter(|_| strat.generate(&mut rng) == 1).count();
        assert!(ones > 20 && ones < 300, "ones = {ones}");
    }

    #[test]
    fn vec_sizes() {
        let mut rng = crate::TestRng::from_name("vecs");
        let exact = crate::collection::vec(0u32..5, 16usize);
        assert_eq!(exact.generate(&mut rng).len(), 16);
        let ranged = crate::collection::vec(0u32..5, 1..40usize);
        for _ in 0..100 {
            let len = ranged.generate(&mut rng).len();
            assert!((1..40).contains(&len));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..5, 0u32..5), x in -1.0f64..1.0) {
            prop_assume!(a + b > 0);
            prop_assert!(x.abs() <= 1.0);
            prop_assert_eq!(a + b, b + a);
        }
    }
}

//! Vendored, dependency-free stand-in for the slice of `proptest` this
//! workspace uses.
//!
//! The build environment has no registry access, so the real `proptest`
//! cannot be fetched. This shim keeps the property-test sources unchanged:
//! `proptest!`, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`,
//! `prop_assume!`, `Strategy` with `prop_map`/`prop_filter`, `Just`,
//! numeric-range and tuple strategies, and `collection::vec`.
//!
//! Semantics: each test runs `ProptestConfig::cases` random cases from a
//! deterministic per-test seed (derived from the test's module path and
//! name). A failing case is greedily shrunk via [`Strategy::shrink`]
//! (halving for numeric ranges, prefix/element removal for
//! `collection::vec`, component-wise for tuples), the minimal failing
//! input is printed, and the test then re-runs it so the standard assert
//! message points at the shrunk case. `prop_assume!` skips the remainder
//! of the current case.

/// Runner configuration. Only `cases` is honored.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to execute per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic per-test random source (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test identifier via FNV-1a so every property gets an
    /// independent but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        // Multiply-shift; the tiny modulo bias is irrelevant for testing.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A generator of random values with optional shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `value`, most aggressive first. An
    /// empty vector (the default) means the value cannot shrink further.
    /// Every candidate must itself be producible by this strategy.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing the predicate (regenerating, bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 candidates", self.whence);
    }

    fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
        let mut cands = self.inner.shrink(value);
        cands.retain(|v| (self.f)(v));
        cands
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }

            // Shrink toward the range start: the start itself, the halfway
            // point, and the predecessor.
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                if v == self.start {
                    return Vec::new();
                }
                let mut cands = vec![self.start];
                let half = self.start + (v - self.start) / 2;
                if half != self.start && half != v {
                    cands.push(half);
                }
                let pred = v - 1;
                if pred != self.start && pred != half {
                    cands.push(pred);
                }
                cands
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }

    // Shrink by halving toward 0.0 when the range spans it, otherwise
    // toward the range start.
    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        let target = if self.start <= 0.0 && 0.0 < self.end {
            0.0
        } else {
            self.start
        };
        if v == target {
            return Vec::new();
        }
        let mut cands = vec![target];
        let half = target + (v - target) / 2.0;
        if half != target && half != v {
            cands.push(half);
        }
        cands
    }
}

macro_rules! impl_tuple_strategy {
    ($(($name:ident, $idx:tt)),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone),+
        {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            // Component-wise: each candidate shrinks one position and
            // clones the rest.
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut cands = Vec::new();
                $(
                    for c in self.$idx.shrink(&value.$idx) {
                        let mut candidate = value.clone();
                        candidate.$idx = c;
                        cands.push(candidate);
                    }
                )+
                cands
            }
        }
    };
}

impl_tuple_strategy!((A, 0));
impl_tuple_strategy!((A, 0), (B, 1));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));

/// Object-safe strategy, used by [`Union`] (`prop_oneof!`).
pub trait DynStrategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Weighted choice among strategies of a common value type.
pub struct Union<T> {
    options: Vec<(u32, Box<dyn DynStrategy<Value = T>>)>,
}

impl<T> Union<T> {
    /// Builds a union from weighted boxed strategies.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or all weights are zero.
    pub fn new_weighted(options: Vec<(u32, Box<dyn DynStrategy<Value = T>>)>) -> Self {
        let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof needs at least one positive weight");
        Union { options }
    }
}

/// Boxes a strategy for [`Union`] storage (used by `prop_oneof!`).
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> Box<dyn DynStrategy<Value = S::Value>> {
    Box::new(s)
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.options.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return s.dyn_generate(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: an exact `usize` or a `Range`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        // Aggressive-first: drop the front/back half, then single
        // elements, then shrink elements in place.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let len = value.len();
            let min = self.size.min;
            let mut cands: Vec<Vec<S::Value>> = Vec::new();
            if len > min {
                let half = len / 2;
                if half >= min && half < len {
                    cands.push(value[len - half..].to_vec());
                    cands.push(value[..half].to_vec());
                }
                // Single-element removals (bounded so huge vectors don't
                // explode the candidate list).
                let stride = len.div_ceil(32);
                for i in (0..len).step_by(stride) {
                    let mut v = value.clone();
                    v.remove(i);
                    cands.push(v);
                }
            }
            let stride = len.div_ceil(16).max(1);
            for i in (0..len).step_by(stride) {
                for c in self.element.shrink(&value[i]).into_iter().take(2) {
                    let mut v = value.clone();
                    v[i] = c;
                    cands.push(v);
                }
            }
            cands
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Greedily minimizes a failing input: repeatedly takes the first
/// [`Strategy::shrink`] candidate that still fails `passes`, until no
/// candidate fails or the attempt budget is spent.
///
/// Used by the `proptest!` runner; public so harnesses (and the shim's own
/// tests) can drive shrinking directly.
pub fn shrink_failing<S: Strategy>(
    strategy: &S,
    failing: S::Value,
    passes: impl Fn(&S::Value) -> bool,
) -> S::Value {
    let mut current = failing;
    let mut budget = 512usize;
    loop {
        let mut improved = false;
        for cand in strategy.shrink(&current) {
            if budget == 0 {
                return current;
            }
            budget -= 1;
            if !passes(&cand) {
                current = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Runs `f` with the global panic hook replaced by a no-op, restoring it
/// afterwards, so shrink candidates don't spam panic backtraces.
///
/// The hook is process-global: concurrent panics in *other* tests are
/// silenced for the duration. Shrinking only runs on an already-failing
/// test, so the trade is acceptable for a test-only shim.
#[doc(hidden)]
pub fn with_silent_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

/// Declares property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `cases` random cases, shrinking any failing
/// input before reporting it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(#[test] fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                // One tuple strategy over all bindings, so the whole input
                // shrinks component-wise. Generation order (and hence the
                // random stream) matches the per-binding draws this macro
                // previously performed.
                let __strategy = ($(($strat),)+);
                for __case in 0..config.cases {
                    let __vals = $crate::Strategy::generate(&__strategy, &mut rng);
                    let __failed = {
                        let __probe = ::std::clone::Clone::clone(&__vals);
                        ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || {
                            let ($($pat,)+) = __probe;
                            $body
                        }))
                        .is_err()
                    };
                    if __failed {
                        let __minimal = $crate::with_silent_panics(|| {
                            $crate::shrink_failing(&__strategy, __vals, |__cand| {
                                let __probe = ::std::clone::Clone::clone(__cand);
                                ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                                    move || {
                                        let ($($pat,)+) = __probe;
                                        $body
                                    },
                                ))
                                .is_ok()
                            })
                        });
                        eprintln!(
                            "proptest: case {} of {} failed; shrunk input: {:?}",
                            __case + 1,
                            stringify!($name),
                            &__minimal
                        );
                        // Re-run the minimal input outside catch_unwind so
                        // the test fails with its own assert message.
                        let ($($pat,)+) = __minimal;
                        { $body }
                        panic!(
                            "proptest: input failed but its shrunk form passed on re-run \
                             (flaky or order-dependent property)"
                        );
                    }
                }
            }
        )*
    };
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight, $crate::boxed_strategy($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::boxed_strategy($strat)),)+
        ])
    };
}

/// Asserts within a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the remainder of the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_filters_compose() {
        let mut rng = crate::TestRng::from_name("compose");
        let strat = (0u32..10, 0u32..10).prop_filter("distinct", |(a, b)| a != b);
        for _ in 0..200 {
            let (a, b) = strat.generate(&mut rng);
            assert!(a < 10 && b < 10 && a != b);
        }
    }

    #[test]
    fn oneof_respects_weights_loosely() {
        let mut rng = crate::TestRng::from_name("weights");
        let strat = prop_oneof![
            9 => Just(0u8),
            1 => Just(1u8),
        ];
        let ones = (0..1000).filter(|_| strat.generate(&mut rng) == 1).count();
        assert!(ones > 20 && ones < 300, "ones = {ones}");
    }

    #[test]
    fn vec_sizes() {
        let mut rng = crate::TestRng::from_name("vecs");
        let exact = crate::collection::vec(0u32..5, 16usize);
        assert_eq!(exact.generate(&mut rng).len(), 16);
        let ranged = crate::collection::vec(0u32..5, 1..40usize);
        for _ in 0..100 {
            let len = ranged.generate(&mut rng).len();
            assert!((1..40).contains(&len));
        }
    }

    #[test]
    fn int_shrink_finds_boundary() {
        // Failing set: v >= 17. Greedy shrinking from 83 must land exactly
        // on the boundary.
        let strat = 0u32..100;
        let minimal = crate::shrink_failing(&strat, 83, |v| *v < 17);
        assert_eq!(minimal, 17);
    }

    #[test]
    fn int_shrink_stops_at_start() {
        let strat = 5u32..100;
        let minimal = crate::shrink_failing(&strat, 42, |_| false);
        assert_eq!(minimal, 5, "everything fails, so shrink to the range start");
        assert!(strat.shrink(&5).is_empty());
    }

    #[test]
    fn f64_shrink_prefers_zero() {
        let strat = -10.0f64..10.0;
        let minimal = crate::shrink_failing(&strat, 7.25, |_| false);
        assert_eq!(minimal, 0.0);
    }

    #[test]
    fn vec_shrink_isolates_offending_element() {
        let strat = crate::collection::vec(0u32..10, 0..20usize);
        let start = vec![1, 7, 3, 7, 9, 2, 4];
        let minimal = crate::shrink_failing(&strat, start, |v| !v.contains(&7));
        assert_eq!(minimal, vec![7]);
    }

    #[test]
    fn vec_shrink_respects_min_size() {
        let strat = crate::collection::vec(0u32..10, 3..20usize);
        let minimal = crate::shrink_failing(&strat, vec![9, 9, 9, 9, 9], |_| false);
        assert_eq!(minimal.len(), 3, "may not shrink below the minimum size");
        for c in strat.shrink(&minimal) {
            assert!(c.len() >= 3);
        }
    }

    #[test]
    fn tuple_shrink_is_component_wise() {
        let strat = (0u32..100, 0u32..100);
        let minimal = crate::shrink_failing(&strat, (80, 70), |(a, b)| a + b < 30);
        assert_eq!(minimal, (0, 30));
    }

    #[test]
    fn filter_shrink_keeps_invariant() {
        let strat = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        let minimal = crate::shrink_failing(&strat, 84, |v| *v < 10);
        assert_eq!(minimal % 2, 0, "shrink candidates must satisfy the filter");
        assert!(
            (10..84).contains(&minimal),
            "shrunk but still failing: {minimal}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..5, 0u32..5), x in -1.0f64..1.0) {
            prop_assume!(a + b > 0);
            prop_assert!(x.abs() <= 1.0);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn macro_single_binding(v in crate::collection::vec(0u32..7, 1..12usize)) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.iter().all(|&x| x < 7));
        }
    }
}

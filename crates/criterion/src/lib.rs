//! Vendored, dependency-free stand-in for the slice of `criterion` this
//! workspace uses (`criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `black_box`).
//!
//! The build environment has no registry access, so the real `criterion`
//! cannot be fetched. The shim keeps bench sources unchanged and produces
//! wall-clock timings in a criterion-like format:
//!
//! ```text
//! group/name/param        time: [min 12.34 µs  median 12.50 µs  max 12.91 µs]  (20 samples)
//! ```
//!
//! Methodology: after a warm-up phase, each sample executes a fixed batch
//! of iterations sized from the warm-up estimate so one sample lasts
//! roughly `measurement_time / sample_size`; the reported numbers are
//! per-iteration means of the min / median / max sample. No statistical
//! regression analysis is performed.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries as `<bin> --bench [FILTER]`; accept
        // the first positional argument as a substring filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            config: MeasurementConfig::default(),
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_benchmark(self, name, MeasurementConfig::default(), f);
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

#[derive(Clone, Copy, Debug)]
struct MeasurementConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        MeasurementConfig {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    config: MeasurementConfig,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(self.criterion, &full, self.config, f);
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(self.criterion, &full, self.config, |b| f(b, input));
    }

    /// Ends the group (formatting separator only).
    pub fn finish(self) {
        println!();
    }
}

/// A benchmark identifier, `function/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of `&str` / `String` / [`BenchmarkId`] into an id string.
pub trait IntoBenchmarkId {
    /// The id as a display string.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the bench closure; [`iter`](Bencher::iter) runs the timed loop.
pub struct Bencher {
    config: MeasurementConfig,
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `f`, storing per-iteration sample means.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also estimating the per-iteration cost.
        let warm_started = Instant::now();
        let mut warm_iters = 0u64;
        while warm_started.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let est_iter = warm_started.elapsed().as_secs_f64() / warm_iters as f64;

        let per_sample =
            self.config.measurement_time.as_secs_f64() / self.config.sample_size as f64;
        let iters = ((per_sample / est_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let started = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples
                .push(started.elapsed().as_secs_f64() / iters as f64);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    id: &str,
    config: MeasurementConfig,
    mut f: F,
) {
    if !criterion.matches(id) {
        return;
    }
    let mut bencher = Bencher {
        config,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<56} (no samples: closure never called iter)");
        return;
    }
    bencher
        .samples
        .sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let min = bencher.samples[0];
    let median = bencher.samples[bencher.samples.len() / 2];
    let max = bencher.samples[bencher.samples.len() - 1];
    println!(
        "{id:<56} time: [{} {} {}]  ({} samples)",
        format_time(min),
        format_time(median),
        format_time(max),
        bencher.samples.len()
    );
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Defines a function running the given benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_closure() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(30));
        group.warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 3, "closure must run warm-up and samples");
    }

    #[test]
    fn filter_skips_non_matching() {
        let c = Criterion {
            filter: Some("wanted".into()),
        };
        assert!(c.matches("group/wanted/3"));
        assert!(!c.matches("group/other/3"));
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2.5e-9).ends_with("ns"));
        assert!(format_time(2.5e-6).ends_with("µs"));
        assert!(format_time(2.5e-3).ends_with("ms"));
        assert!(format_time(2.5).ends_with('s'));
    }
}

//! Vendored, dependency-free stand-in for the tiny slice of the `rand`
//! crate this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`).
//!
//! The build environment has no access to a crate registry, so the real
//! `rand` cannot be fetched. This shim keeps the public call sites
//! source-compatible. The generator is xoshiro256** seeded through
//! SplitMix64 — statistically solid for simulation sampling, *not*
//! cryptographic. Streams differ from upstream `rand`'s `StdRng` (which
//! never guaranteed cross-version stability either), so only relative,
//! seed-deterministic behavior is preserved.

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type (`f64` in
    /// `[0, 1)`, `bool`, unsigned integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from raw random bits (the `Standard` distribution).
pub trait Standard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Uniform draw from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform integer in `[0, bound)` via Lemire-style rejection.
#[inline]
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let raw = rng.next_u64();
        let (hi, lo) = mul_wide(raw, bound);
        if lo >= threshold {
            return hi;
        }
    }
}

#[inline]
fn mul_wide(a: u64, b: u64) -> (u64, u64) {
    let wide = u128::from(a) * u128::from(b);
    ((wide >> 64) as u64, wide as u64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seed expansion. Deterministic per seed, `Clone` for replay.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0; 4] {
                s = [0xDEAD_BEEF, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state, for checkpointing the stream
        /// position. Restoring via [`from_state`](Self::from_state)
        /// continues the stream exactly where it left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured
        /// [`state`](Self::state).
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which is a fixed point of
        /// xoshiro256** and cannot be produced by [`state`](Self::state)
        /// on a properly seeded generator.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(
                s != [0; 4],
                "the all-zero state is not a valid xoshiro256** state"
            );
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        let first: Vec<u64> = (0..4).map(|_| c.gen::<u64>()).collect();
        let mut a = StdRng::seed_from_u64(7);
        let other: Vec<u64> = (0..4).map(|_| a.gen::<u64>()).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never hit: {seen:?}");
        for _ in 0..100 {
            let v = rng.gen_range(3..4u32);
            assert_eq!(v, 3);
        }
        for _ in 0..100 {
            let v = rng.gen_range(-3..3i32);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(2.5..7.5);
            assert!((2.5..7.5).contains(&x));
        }
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            rng.gen::<u64>();
        }
        let saved = rng.state();
        let expected: Vec<u64> = (0..32).map(|_| rng.gen::<u64>()).collect();
        let mut resumed = StdRng::from_state(saved);
        let got: Vec<u64> = (0..32).map(|_| resumed.gen::<u64>()).collect();
        assert_eq!(expected, got);
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn all_zero_state_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate} far from 0.25");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}

//! Complex arithmetic and tolerance-aware value interning for DD-based
//! quantum-circuit simulation.
//!
//! Two items matter to downstream crates:
//!
//! * [`Complex`] — a small `Copy` complex number over `f64`.
//! * [`ComplexTable`] — interning of complex values up to a tolerance, so the
//!   decision-diagram unique tables can key nodes on compact, canonical
//!   [`ComplexId`]s instead of raw floating-point pairs.
//!
//! # Examples
//!
//! ```
//! use ddsim_complex::{Complex, ComplexTable};
//!
//! let mut table = ComplexTable::new();
//! let h = table.lookup(Complex::SQRT2_INV);
//! let half = table.mul(h, h);
//! assert_eq!(half, table.lookup(Complex::real(0.5)));
//! ```

mod table;
mod value;

pub use table::{ComplexId, ComplexTable};
pub use value::{Complex, DEFAULT_TOLERANCE};

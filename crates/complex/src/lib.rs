//! Complex arithmetic and tolerance-aware value interning for DD-based
//! quantum-circuit simulation.
//!
//! Items that matter to downstream crates:
//!
//! * [`Complex`] — a small `Copy` complex number over `f64`.
//! * [`ComplexTable`] — interning of complex values up to a tolerance, so the
//!   decision-diagram unique tables can key nodes on compact, canonical
//!   [`ComplexId`]s instead of raw floating-point pairs.
//! * [`hash`] — the shared FxHash implementation used by every hot-path
//!   table in the workspace (hoisted here, the bottom crate, in PR 7).
//! * [`simd`] — runtime-dispatched SSE2/AVX kernels for the leaf arithmetic
//!   and the interning probe, gated behind the `simd` cargo feature
//!   (default on) with a bitwise-identical scalar fallback.
//!
//! # Examples
//!
//! ```
//! use ddsim_complex::{Complex, ComplexTable};
//!
//! let mut table = ComplexTable::new();
//! let h = table.lookup(Complex::SQRT2_INV);
//! let half = table.mul(h, h);
//! assert_eq!(half, table.lookup(Complex::real(0.5)));
//! ```

pub mod hash;
pub mod simd;
mod table;
mod value;

pub use simd::SimdLevel;
pub use table::{ComplexId, ComplexTable, ComplexTableStats};
pub use value::{Complex, DEFAULT_TOLERANCE};

//! A fast, non-cryptographic hasher for the hot-path tables.
//!
//! The DD compute and unique tables — and, since this module moved down
//! here from `ddsim-dd`, the [`ComplexTable`](crate::ComplexTable) bucket
//! map — hash small fixed-size keys (a few `u32`/`i64` words) millions of
//! times per simulation; the standard library's SipHash is the wrong
//! trade-off there. This is the FxHash mix (rotate, xor, multiply by a
//! sparse odd constant) used by rustc's internal hash maps: two or three
//! ALU ops per word, good-enough diffusion for table indexing.
//!
//! Lossy direct-mapped caches tolerate the weaker avalanche behaviour — a
//! pathological collision costs a recomputation, never a wrong result.

use std::hash::{Hash, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style [`Hasher`]. Word-at-a-time; byte slices fold per byte
/// (only reachable through derived `Hash` impls on primitive fields here).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// Hashes a value with [`FxHasher`].
#[inline]
pub fn fx_hash<T: Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// A `HashMap` keyed by [`FxHasher`] — the drop-in replacement for the
/// standard SipHash map wherever a DoS-resistant hash is unnecessary
/// (shot-count histograms, export walks, other small-key hot loops).
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, std::hash::BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        assert_eq!(fx_hash(&(1u32, 2u32)), fx_hash(&(1u32, 2u32)));
        assert_ne!(fx_hash(&(1u32, 2u32)), fx_hash(&(2u32, 1u32)));
        assert_ne!(fx_hash(&1u32), fx_hash(&2u32));
    }

    #[test]
    fn spreads_sequential_ids_across_low_bits() {
        // Direct-mapped tables index with the low bits; sequential arena
        // ids must not collapse onto a few slots.
        let mask = (1u64 << 10) - 1;
        let mut seen = std::collections::HashSet::new();
        for id in 0u32..1024 {
            seen.insert(fx_hash(&(id, id.wrapping_add(1))) & mask);
        }
        assert!(seen.len() > 512, "only {} distinct slots", seen.len());
    }
}

//! Tolerance-aware interning of complex values.
//!
//! Decision-diagram canonicity depends on *identical* edge weights hashing
//! identically. Floating-point arithmetic produces values such as
//! `1/√2 · 1/√2` and `0.5` that are mathematically equal but bit-wise
//! different; without unification the unique table would treat them as
//! distinct and node sharing would collapse (see footnote 2 of the paper and
//! its reference [21]). The [`ComplexTable`] assigns a stable [`ComplexId`]
//! to every value, mapping any value within the configured tolerance of an
//! already-stored representative onto that representative.
//!
//! The tolerance is **absolute** and tight (default `1e-13`, ~500 f64
//! epsilons): two values unify when their components differ by at most the
//! tolerance. The choice is deliberate, measured both ways on this code
//! base (see DESIGN.md §6): a *relative* tolerance fails to re-merge the
//! cancellation noise that iterated algorithms (Grover) produce on small
//! amplitudes, splitting mathematically-equal nodes until the diagram and
//! the distinct-weight population explode; a *loose absolute* tolerance
//! (1e-10) destroys the relative precision of structurally tiny weights.
//! Tight-absolute is the working middle ground, matching mature QMDD
//! packages.

use std::collections::HashMap;

use crate::value::{Complex, DEFAULT_TOLERANCE};

/// Handle to an interned complex value inside a [`ComplexTable`].
///
/// Ids are only meaningful relative to the table that produced them. The two
/// distinguished values zero and one have fixed ids in every table so that
/// hot-path checks need no table access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComplexId(u32);

impl ComplexId {
    /// The id of the additive identity in every table.
    pub const ZERO: ComplexId = ComplexId(0);
    /// The id of the multiplicative identity in every table.
    pub const ONE: ComplexId = ComplexId(1);

    /// Whether this id denotes exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == ComplexId::ZERO
    }

    /// Whether this id denotes exactly one.
    #[inline]
    pub fn is_one(self) -> bool {
        self == ComplexId::ONE
    }

    /// The raw index (for diagnostics / serialization).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from a table index (snapshot restore).
    ///
    /// The caller is responsible for the index being in range of the table
    /// the id will be used with; out-of-range ids panic on first `value`
    /// lookup rather than aliasing another entry.
    #[inline]
    pub fn from_index(index: usize) -> ComplexId {
        ComplexId(u32::try_from(index).expect("complex table index overflow"))
    }
}

/// Bucket key: grid coordinates at the tolerance scale.
type BucketKey = (i64, i64);

/// Interning table unifying complex values up to an absolute tolerance.
///
/// # Examples
///
/// ```
/// use ddsim_complex::{Complex, ComplexTable};
///
/// let mut table = ComplexTable::new();
/// let a = table.lookup(Complex::SQRT2_INV * Complex::SQRT2_INV);
/// let b = table.lookup(Complex::real(0.5));
/// assert_eq!(a, b);
/// ```
#[derive(Clone, Debug)]
pub struct ComplexTable {
    values: Vec<Complex>,
    /// Squared magnitude of each stored value, filled at intern time so
    /// normalization pivot selection is an array read instead of a complex
    /// reload plus multiply-adds on every node build.
    norms: Vec<f64>,
    buckets: HashMap<BucketKey, Vec<u32>>,
    tolerance: f64,
}

impl ComplexTable {
    /// Creates a table with the [`DEFAULT_TOLERANCE`].
    pub fn new() -> Self {
        Self::with_tolerance(DEFAULT_TOLERANCE)
    }

    /// Creates a table with a caller-chosen absolute tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not a finite positive number below 0.1.
    pub fn with_tolerance(tolerance: f64) -> Self {
        assert!(
            tolerance.is_finite() && tolerance > 0.0 && tolerance < 0.1,
            "tolerance must be finite, positive, and small"
        );
        let mut table = ComplexTable {
            values: Vec::with_capacity(1024),
            norms: Vec::with_capacity(1024),
            buckets: HashMap::with_capacity(1024),
            tolerance,
        };
        // Ids 0 and 1 are pinned (see `ComplexId::{ZERO, ONE}`).
        table.insert_raw(Complex::ZERO);
        table.insert_raw(Complex::ONE);
        table
    }

    /// The unification tolerance (absolute).
    #[inline]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Number of distinct stored values (including zero and one).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the table holds only the two pinned values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.len() <= 2
    }

    /// The value a given id denotes.
    ///
    /// # Panics
    ///
    /// Panics if `id` was produced by a different table (index out of range).
    #[inline]
    pub fn value(&self, id: ComplexId) -> Complex {
        self.values[id.index()]
    }

    /// Squared magnitude of a stored value, precomputed at intern time.
    #[inline]
    pub fn norm_sqr(&self, id: ComplexId) -> f64 {
        self.norms[id.index()]
    }

    /// Absolute equality at this table's tolerance.
    #[inline]
    fn matches(&self, a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() <= self.tolerance && (a.im - b.im).abs() <= self.tolerance
    }

    /// Interns `c`, returning the id of its representative.
    ///
    /// Values within the tolerance of zero or one collapse onto the pinned
    /// ids; any other value within the tolerance of an existing
    /// representative reuses that representative's id.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not finite — non-finite edge weights indicate a bug
    /// upstream (e.g. division by a zero weight) and must not be interned.
    pub fn lookup(&mut self, c: Complex) -> ComplexId {
        assert!(
            c.is_finite(),
            "cannot intern non-finite complex value {c:?}"
        );
        if c.approx_zero(self.tolerance) {
            return ComplexId::ZERO;
        }
        if c.approx_one(self.tolerance) {
            return ComplexId::ONE;
        }
        let (qre, qim) = self.grid_coords(c);
        for dre in -1..=1 {
            for dim in -1..=1 {
                // Saturating: huge values (e.g. weight ratios across many
                // magnitude scales) clamp `grid_coords` to the i64 edge.
                let key = (qre.saturating_add(dre), qim.saturating_add(dim));
                if let Some(ids) = self.buckets.get(&key) {
                    for &raw in ids {
                        if self.matches(self.values[raw as usize], c) {
                            return ComplexId(raw);
                        }
                    }
                }
            }
        }
        self.insert_raw(c)
    }

    /// Interns the product of two interned values.
    #[inline]
    pub fn mul(&mut self, a: ComplexId, b: ComplexId) -> ComplexId {
        if a.is_zero() || b.is_zero() {
            return ComplexId::ZERO;
        }
        if a.is_one() {
            return b;
        }
        if b.is_one() {
            return a;
        }
        let product = self.value(a) * self.value(b);
        self.lookup(product)
    }

    /// Interns the sum of two interned values.
    #[inline]
    pub fn add(&mut self, a: ComplexId, b: ComplexId) -> ComplexId {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let sum = self.value(a) + self.value(b);
        self.lookup(sum)
    }

    /// Interns the quotient `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` denotes zero.
    #[inline]
    pub fn div(&mut self, a: ComplexId, b: ComplexId) -> ComplexId {
        assert!(!b.is_zero(), "division by interned zero");
        if a.is_zero() {
            return ComplexId::ZERO;
        }
        if b.is_one() {
            return a;
        }
        if a == b {
            return ComplexId::ONE;
        }
        let quotient = self.value(a) / self.value(b);
        self.lookup(quotient)
    }

    /// Interns the negation of an interned value.
    #[inline]
    pub fn neg(&mut self, a: ComplexId) -> ComplexId {
        if a.is_zero() {
            return ComplexId::ZERO;
        }
        let negated = -self.value(a);
        self.lookup(negated)
    }

    /// Interns the conjugate of an interned value.
    #[inline]
    pub fn conj(&mut self, a: ComplexId) -> ComplexId {
        if a.is_zero() || a.is_one() {
            return a;
        }
        let conjugated = self.value(a).conj();
        self.lookup(conjugated)
    }

    /// All stored values in insertion order (index `i` is the value of
    /// `ComplexId` with raw index `i`). For snapshot serialization: because
    /// tolerance bucketing makes representatives depend on insertion
    /// history, a bitwise-faithful restore must replay the *entire* table,
    /// not merely the reachable ids.
    #[inline]
    pub fn values(&self) -> &[Complex] {
        &self.values
    }

    /// Rebuilds a table holding exactly `values`, id-for-id.
    ///
    /// `values` must be a sequence previously produced by
    /// [`values`](Self::values): entry 0 must be zero, entry 1 must be one,
    /// and every entry must be finite. Values are re-inserted raw, in
    /// order, so every id, representative, and bucket layout matches the
    /// captured table exactly and subsequent [`lookup`](Self::lookup) calls
    /// resolve identically to the original.
    pub fn from_values(tolerance: f64, values: &[Complex]) -> Result<Self, String> {
        let mut table = Self::with_tolerance(tolerance);
        if values.len() < 2 {
            return Err("complex table dump must contain the pinned zero and one".into());
        }
        if values[0] != Complex::ZERO {
            return Err(format!("entry 0 must be exactly zero, got {:?}", values[0]));
        }
        if values[1] != Complex::ONE {
            return Err(format!("entry 1 must be exactly one, got {:?}", values[1]));
        }
        for (i, &c) in values.iter().enumerate().skip(2) {
            if !c.is_finite() {
                return Err(format!("entry {i} is not finite: {c:?}"));
            }
            table.insert_raw(c);
        }
        Ok(table)
    }

    fn grid_coords(&self, c: Complex) -> (i64, i64) {
        // Grid width 2 · tolerance: any two matching values sit in the same
        // or adjacent cells, so a 3x3 probe finds every candidate.
        let width = 2.0 * self.tolerance;
        ((c.re / width).floor() as i64, (c.im / width).floor() as i64)
    }

    fn insert_raw(&mut self, c: Complex) -> ComplexId {
        let raw = u32::try_from(self.values.len()).expect("complex table overflow");
        self.values.push(c);
        self.norms.push(c.norm_sqr());
        let key = self.grid_coords(c);
        self.buckets.entry(key).or_default().push(raw);
        ComplexId(raw)
    }
}

impl Default for ComplexTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_ids() {
        let mut t = ComplexTable::new();
        assert_eq!(t.lookup(Complex::ZERO), ComplexId::ZERO);
        assert_eq!(t.lookup(Complex::ONE), ComplexId::ONE);
        assert_eq!(t.lookup(Complex::new(1e-16, -1e-16)), ComplexId::ZERO);
        assert_eq!(t.lookup(Complex::new(1.0 + 1e-15, 0.0)), ComplexId::ONE);
    }

    #[test]
    fn unifies_within_tolerance() {
        let mut t = ComplexTable::with_tolerance(1e-10);
        let a = t.lookup(Complex::new(0.5, 0.25));
        let b = t.lookup(Complex::new(0.5 + 1e-12, 0.25 - 1e-12));
        assert_eq!(a, b);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn tiny_values_keep_their_relative_identity_at_tight_tolerance() {
        // At the tight default (1e-13), values of magnitude ~1e-7 (Grover
        // diffusion entries at n=22) with a 1e-6 relative difference stay
        // distinct, preserving the precision of structurally tiny weights.
        let mut t = ComplexTable::new();
        let v = 4.768e-7;
        let a = t.lookup(Complex::real(v));
        let b = t.lookup(Complex::real(v * (1.0 + 1e-12)));
        assert_eq!(a, b, "FP-noise-level differences must unify");
        let c = t.lookup(Complex::real(v * (1.0 + 1e-6)));
        assert_ne!(a, c, "genuinely distinct tiny values must stay distinct");
    }

    #[test]
    fn distinguishes_beyond_tolerance() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::real(0.5));
        let b = t.lookup(Complex::real(0.5001));
        assert_ne!(a, b);
    }

    #[test]
    fn hadamard_product_unifies_with_half() {
        let mut t = ComplexTable::new();
        let h = t.lookup(Complex::SQRT2_INV);
        let prod = t.mul(h, h);
        let half = t.lookup(Complex::real(0.5));
        assert_eq!(prod, half);
    }

    #[test]
    fn arithmetic_shortcuts() {
        let mut t = ComplexTable::new();
        let z = t.lookup(Complex::new(0.3, -0.4));
        assert_eq!(t.mul(ComplexId::ZERO, z), ComplexId::ZERO);
        assert_eq!(t.mul(ComplexId::ONE, z), z);
        assert_eq!(t.add(ComplexId::ZERO, z), z);
        assert_eq!(t.div(z, ComplexId::ONE), z);
        assert_eq!(t.div(z, z), ComplexId::ONE);
        let minus = t.neg(z);
        assert!(t.value(minus).approx_eq(Complex::new(-0.3, 0.4), 1e-12));
        let back = t.neg(minus);
        assert_eq!(back, z);
    }

    #[test]
    fn division_roundtrip() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.7, 0.1));
        let b = t.lookup(Complex::new(-0.2, 0.9));
        let q = t.div(a, b);
        let back = t.mul(q, b);
        assert_eq!(back, a);
    }

    #[test]
    fn conjugation() {
        let mut t = ComplexTable::new();
        let z = t.lookup(Complex::new(0.6, 0.8));
        let c = t.conj(z);
        assert!(t.value(c).approx_eq(Complex::new(0.6, -0.8), 1e-12));
        assert_eq!(t.conj(c), z);
        assert_eq!(t.conj(ComplexId::ONE), ComplexId::ONE);
    }

    #[test]
    #[should_panic(expected = "division by interned zero")]
    fn division_by_zero_panics() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::real(2.0));
        let _ = t.div(a, ComplexId::ZERO);
    }

    #[test]
    fn values_straddling_a_grid_cell_unify() {
        let mut t = ComplexTable::with_tolerance(1e-10);
        let a = t.lookup(Complex::real(2.0 - 1e-12));
        let b = t.lookup(Complex::real(2.0 + 1e-12));
        assert_eq!(a, b);
    }

    #[test]
    fn grid_boundary_values_unify() {
        let mut t = ComplexTable::with_tolerance(1e-10);
        // Construct two values straddling a quantization-cell edge.
        let width = 2e-10;
        let edge = 1234.0 * width;
        let a = t.lookup(Complex::real(edge - 1e-14));
        let b = t.lookup(Complex::real(edge + 1e-14));
        assert_eq!(a, b);
    }

    #[test]
    fn from_values_restores_ids_and_lookup_behavior() {
        let mut t = ComplexTable::new();
        let ids: Vec<ComplexId> = [
            Complex::SQRT2_INV,
            Complex::new(0.3, -0.4),
            Complex::real(0.5),
            Complex::new(-0.1, 0.2),
        ]
        .iter()
        .map(|&c| t.lookup(c))
        .collect();
        let restored = ComplexTable::from_values(t.tolerance(), t.values()).unwrap();
        assert_eq!(restored.len(), t.len());
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(restored.value(id), t.value(id), "value {i}");
            assert_eq!(restored.norm_sqr(id), t.norm_sqr(id), "norm {i}");
        }
        // Future lookups resolve to the same representatives.
        let mut a = t.clone();
        let mut b = restored;
        let probe = Complex::new(0.3 + 1e-14, -0.4);
        assert_eq!(a.lookup(probe), b.lookup(probe));
        let fresh = Complex::new(0.77, 0.12);
        assert_eq!(a.lookup(fresh), b.lookup(fresh));
    }

    #[test]
    fn from_values_rejects_corrupt_dumps() {
        assert!(ComplexTable::from_values(1e-13, &[]).is_err());
        assert!(
            ComplexTable::from_values(1e-13, &[Complex::ONE, Complex::ONE]).is_err(),
            "entry 0 must be zero"
        );
        assert!(
            ComplexTable::from_values(1e-13, &[Complex::ZERO, Complex::ZERO]).is_err(),
            "entry 1 must be one"
        );
        assert!(ComplexTable::from_values(
            1e-13,
            &[Complex::ZERO, Complex::ONE, Complex::new(f64::NAN, 0.0)]
        )
        .is_err());
    }

    #[test]
    fn widely_separated_scales_coexist() {
        // Stay above the zero floor (the tolerance, 1e-13): 2^-40 ≈ 9e-13.
        let mut t = ComplexTable::new();
        let ids: Vec<ComplexId> = (0..40)
            .map(|k| t.lookup(Complex::real(2f64.powi(-k))))
            .collect();
        // 2^0 is ONE; all others distinct.
        for (i, &a) in ids.iter().enumerate() {
            for (j, &b) in ids.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "2^-{i} vs 2^-{j}");
                }
            }
        }
    }
}

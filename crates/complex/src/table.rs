//! Tolerance-aware interning of complex values.
//!
//! Decision-diagram canonicity depends on *identical* edge weights hashing
//! identically. Floating-point arithmetic produces values such as
//! `1/√2 · 1/√2` and `0.5` that are mathematically equal but bit-wise
//! different; without unification the unique table would treat them as
//! distinct and node sharing would collapse (see footnote 2 of the paper and
//! its reference [21]). The [`ComplexTable`] assigns a stable [`ComplexId`]
//! to every value, mapping any value within the configured tolerance of an
//! already-stored representative onto that representative.
//!
//! The tolerance is **absolute** and tight (default `1e-13`, ~500 f64
//! epsilons): two values unify when their components differ by at most the
//! tolerance. The choice is deliberate, measured both ways on this code
//! base (see DESIGN.md §6): a *relative* tolerance fails to re-merge the
//! cancellation noise that iterated algorithms (Grover) produce on small
//! amplitudes, splitting mathematically-equal nodes until the diagram and
//! the distinct-weight population explode; a *loose absolute* tolerance
//! (1e-10) destroys the relative precision of structurally tiny weights.
//! Tight-absolute is the working middle ground, matching mature QMDD
//! packages.
//!
//! # Hot-path layout (PR 7, DESIGN.md §13)
//!
//! `lookup` sits under every interned multiply/add/divide, so its storage
//! is arranged for the probe, not for elegance:
//!
//! * The bucket map is an [`FxHashMap`] (3 ALU ops per key word) instead of
//!   the standard SipHash map.
//! * Each bucket stores its candidates' `(re, im)` pairs **packed
//!   contiguously** next to the ids, so the tolerance scan is a linear read
//!   (and SIMD-comparable, 2 candidates per AVX instruction) instead of a
//!   random `values[id]` gather per candidate.
//! * Each stored value carries its `norm_sqr` in the same struct, so
//!   normalization pivot selection touches the cache line the value itself
//!   occupies.
//! * The neighbour probe visits only grid cells that can actually contain a
//!   match: the cell width is `2·tolerance`, so a candidate within
//!   tolerance of `c` lies in `c`'s own cell or the *one* neighbour on the
//!   side `c` is nearer to — 4 buckets typically, not 9 (a conservative FP
//!   slack falls back to 3 cells per axis near half-cell positions).

use crate::hash::FxHashMap;
use crate::simd::{self, SimdLevel};
use crate::value::{Complex, DEFAULT_TOLERANCE};

/// Handle to an interned complex value inside a [`ComplexTable`].
///
/// Ids are only meaningful relative to the table that produced them. The two
/// distinguished values zero and one have fixed ids in every table so that
/// hot-path checks need no table access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComplexId(u32);

impl ComplexId {
    /// The id of the additive identity in every table.
    pub const ZERO: ComplexId = ComplexId(0);
    /// The id of the multiplicative identity in every table.
    pub const ONE: ComplexId = ComplexId(1);

    /// Whether this id denotes exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == ComplexId::ZERO
    }

    /// Whether this id denotes exactly one.
    #[inline]
    pub fn is_one(self) -> bool {
        self == ComplexId::ONE
    }

    /// The raw index (for diagnostics / serialization).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from a table index (snapshot restore).
    ///
    /// The caller is responsible for the index being in range of the table
    /// the id will be used with; out-of-range ids panic on first `value`
    /// lookup rather than aliasing another entry.
    #[inline]
    pub fn from_index(index: usize) -> ComplexId {
        ComplexId(u32::try_from(index).expect("complex table index overflow"))
    }
}

/// Bucket key: grid coordinates at the tolerance scale.
type BucketKey = (i64, i64);

/// One stored representative: the value and its squared magnitude,
/// interleaved so normalization pivot reads (`norm`) land on the cache line
/// the value itself (`val`) occupies — the "norm_sqr adjacent to the weight
/// it describes" layout from DESIGN.md §13.
#[derive(Clone, Copy, Debug)]
struct Stored {
    val: Complex,
    norm: f64,
}

/// One tolerance-grid bucket: candidate values packed contiguously for the
/// linear/SIMD probe, with the matching raw ids alongside.
#[derive(Clone, Debug, Default)]
struct Bucket {
    vals: Vec<Complex>,
    ids: Vec<u32>,
}

/// Counters of the interning table, reported through `DdStats::cache`
/// alongside the compute/unique-table counters (`--stats`, bench JSON).
///
/// All counters are defined *semantically* — from probe outcomes, not from
/// how many lanes an instruction compared — so scalar and SIMD builds
/// produce identical statistics (property-tested).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComplexTableStats {
    /// `lookup` calls (interning requests), including the pinned zero/one
    /// fast paths.
    pub lookups: u64,
    /// Lookups resolved to an existing non-pinned representative by the
    /// bucket probe.
    pub unified: u64,
    /// Lookups that inserted a new representative.
    pub inserts: u64,
    /// Grid cells examined across all probes (4 per lookup typically; up
    /// to 9 near half-cell positions).
    pub buckets_probed: u64,
    /// Candidate representatives compared across all probes: the probe
    /// length. On a hit this counts the matched candidate's position + 1;
    /// on a miss, the full bucket lengths scanned.
    pub probe_entries: u64,
}

impl ComplexTableStats {
    /// Share of lookups resolved without inserting (pinned or unified).
    pub fn unify_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            1.0 - self.inserts as f64 / self.lookups as f64
        }
    }

    /// Mean candidates compared per lookup that reached the probe.
    pub fn mean_probe_len(&self) -> f64 {
        let probed = self.unified + self.inserts;
        if probed == 0 {
            0.0
        } else {
            self.probe_entries as f64 / probed as f64
        }
    }

    /// Field-wise `self − before`.
    #[must_use]
    pub fn delta(&self, before: &ComplexTableStats) -> ComplexTableStats {
        ComplexTableStats {
            lookups: self.lookups - before.lookups,
            unified: self.unified - before.unified,
            inserts: self.inserts - before.inserts,
            buckets_probed: self.buckets_probed - before.buckets_probed,
            probe_entries: self.probe_entries - before.probe_entries,
        }
    }

    /// Field-wise accumulation.
    pub fn accumulate(&mut self, other: &ComplexTableStats) {
        self.lookups += other.lookups;
        self.unified += other.unified;
        self.inserts += other.inserts;
        self.buckets_probed += other.buckets_probed;
        self.probe_entries += other.probe_entries;
    }
}

/// Interning table unifying complex values up to an absolute tolerance.
///
/// # Examples
///
/// ```
/// use ddsim_complex::{Complex, ComplexTable};
///
/// let mut table = ComplexTable::new();
/// let a = table.lookup(Complex::SQRT2_INV * Complex::SQRT2_INV);
/// let b = table.lookup(Complex::real(0.5));
/// assert_eq!(a, b);
/// ```
#[derive(Clone, Debug)]
pub struct ComplexTable {
    entries: Vec<Stored>,
    buckets: FxHashMap<BucketKey, Bucket>,
    tolerance: f64,
    /// SIMD tier for the probe and the batched products, resolved once at
    /// construction (never per lookup — see `simd::SimdLevel::detect`).
    simd: SimdLevel,
    stats: ComplexTableStats,
}

impl ComplexTable {
    /// Creates a table with the [`DEFAULT_TOLERANCE`].
    pub fn new() -> Self {
        Self::with_tolerance(DEFAULT_TOLERANCE)
    }

    /// Creates a table with a caller-chosen absolute tolerance and the
    /// strongest available SIMD tier.
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is not a finite positive number below 0.1.
    pub fn with_tolerance(tolerance: f64) -> Self {
        Self::with_tolerance_and_simd(tolerance, true)
    }

    /// [`with_tolerance`](Self::with_tolerance) with an explicit SIMD
    /// switch (`false` forces the canonical scalar kernels; results are
    /// bitwise identical either way).
    pub fn with_tolerance_and_simd(tolerance: f64, simd_enabled: bool) -> Self {
        assert!(
            tolerance.is_finite() && tolerance > 0.0 && tolerance < 0.1,
            "tolerance must be finite, positive, and small"
        );
        let mut table = ComplexTable {
            entries: Vec::with_capacity(1024),
            buckets: FxHashMap::default(),
            tolerance,
            simd: SimdLevel::detect_or_scalar(simd_enabled),
            stats: ComplexTableStats::default(),
        };
        table.buckets.reserve(1024);
        // Ids 0 and 1 are pinned (see `ComplexId::{ZERO, ONE}`).
        table.insert_raw(Complex::ZERO);
        table.insert_raw(Complex::ONE);
        table
    }

    /// The unification tolerance (absolute).
    #[inline]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The SIMD tier the probe and batched products dispatch to.
    #[inline]
    pub fn simd_level(&self) -> SimdLevel {
        self.simd
    }

    /// Re-resolves the SIMD tier (scalar when `enabled` is false). Used by
    /// snapshot restore, which rebuilds the table via
    /// [`from_values`](Self::from_values) and then applies the manager's
    /// configuration. Storage layout and lookup results are unaffected.
    pub fn set_simd_enabled(&mut self, enabled: bool) {
        self.simd = SimdLevel::detect_or_scalar(enabled);
    }

    /// Interning counters (see [`ComplexTableStats`]).
    #[inline]
    pub fn stats(&self) -> ComplexTableStats {
        self.stats
    }

    /// Mutable access to the counters (worker absorption, resets).
    #[inline]
    pub fn stats_mut(&mut self) -> &mut ComplexTableStats {
        &mut self.stats
    }

    /// Number of distinct stored values (including zero and one).
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table holds only the two pinned values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.len() <= 2
    }

    /// Number of occupied tolerance-grid buckets (occupancy telemetry).
    #[inline]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Longest bucket candidate list (occupancy telemetry; the worst-case
    /// probe length within one cell).
    pub fn max_bucket_len(&self) -> usize {
        self.buckets
            .values()
            .map(|b| b.ids.len())
            .max()
            .unwrap_or(0)
    }

    /// The value a given id denotes.
    ///
    /// # Panics
    ///
    /// Panics if `id` was produced by a different table (index out of range).
    #[inline]
    pub fn value(&self, id: ComplexId) -> Complex {
        self.entries[id.index()].val
    }

    /// Squared magnitude of a stored value, precomputed at intern time and
    /// stored adjacent to the value itself.
    #[inline]
    pub fn norm_sqr(&self, id: ComplexId) -> f64 {
        self.entries[id.index()].norm
    }

    /// Interns `c`, returning the id of its representative.
    ///
    /// Values within the tolerance of zero or one collapse onto the pinned
    /// ids; any other value within the tolerance of an existing
    /// representative reuses that representative's id.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not finite — non-finite edge weights indicate a bug
    /// upstream (e.g. division by a zero weight) and must not be interned.
    pub fn lookup(&mut self, c: Complex) -> ComplexId {
        assert!(
            c.is_finite(),
            "cannot intern non-finite complex value {c:?}"
        );
        self.stats.lookups += 1;
        if c.approx_zero(self.tolerance) {
            return ComplexId::ZERO;
        }
        if c.approx_one(self.tolerance) {
            return ComplexId::ONE;
        }
        let (qre, re_lo, re_hi) = self.axis_cells(c.re);
        let (qim, im_lo, im_hi) = self.axis_cells(c.im);
        let mut buckets_probed = 0u64;
        let mut probe_entries = 0u64;
        let mut found: Option<u32> = None;
        'probe: for dre in -1i64..=1 {
            if (dre == -1 && !re_lo) || (dre == 1 && !re_hi) {
                continue;
            }
            for dim in -1i64..=1 {
                if (dim == -1 && !im_lo) || (dim == 1 && !im_hi) {
                    continue;
                }
                // Saturating: huge values (e.g. weight ratios across many
                // magnitude scales) clamp the grid to the i64 edge.
                let key = (qre.saturating_add(dre), qim.saturating_add(dim));
                buckets_probed += 1;
                if let Some(bucket) = self.buckets.get(&key) {
                    match simd::probe_first_match(self.simd, &bucket.vals, c, self.tolerance) {
                        Some(i) => {
                            probe_entries += i as u64 + 1;
                            found = Some(bucket.ids[i]);
                            break 'probe;
                        }
                        None => probe_entries += bucket.vals.len() as u64,
                    }
                }
            }
        }
        self.stats.buckets_probed += buckets_probed;
        self.stats.probe_entries += probe_entries;
        match found {
            Some(raw) => {
                self.stats.unified += 1;
                ComplexId(raw)
            }
            None => {
                self.stats.inserts += 1;
                self.insert_raw(c)
            }
        }
    }

    /// Interns the product of two interned values.
    #[inline]
    pub fn mul(&mut self, a: ComplexId, b: ComplexId) -> ComplexId {
        if a.is_zero() || b.is_zero() {
            return ComplexId::ZERO;
        }
        if a.is_one() {
            return b;
        }
        if b.is_one() {
            return a;
        }
        let product = self.value(a) * self.value(b);
        self.lookup(product)
    }

    /// Interns `[a·b0, a·b1]` — the vector-node leaf multiply: one edge
    /// weight times both child weights, with the products computed through
    /// the dispatched SIMD kernel (bitwise identical to two [`mul`]
    /// calls, including per-element shortcut and interning order).
    ///
    /// [`mul`]: Self::mul
    #[inline]
    pub fn mul2(&mut self, a: ComplexId, b: [ComplexId; 2]) -> [ComplexId; 2] {
        if a.is_zero() {
            return [ComplexId::ZERO; 2];
        }
        if a.is_one() {
            return b;
        }
        // Lanes holding zero/one children resolve without arithmetic; only
        // batch when at least two lanes pay for a product. Lane products
        // are bitwise identical either way, so this is purely a cost gate.
        let needs = [self.needs_product(b[0]), self.needs_product(b[1])];
        let av = self.value(a);
        let products = match needs {
            [true, true] => simd::mul_scaled2(self.simd, av, [self.value(b[0]), self.value(b[1])]),
            [true, false] => [av * self.value(b[0]), Complex::ONE],
            [false, true] => [Complex::ONE, av * self.value(b[1])],
            [false, false] => [Complex::ONE; 2],
        };
        let mut out = [ComplexId::ZERO; 2];
        for i in 0..2 {
            out[i] = self.resolve_scaled(a, b[i], products[i]);
        }
        out
    }

    /// Interns `[a·b0, a·b1, a·b2, a·b3]` — the matrix-node (2×2 quadrant)
    /// leaf multiply. Same contract as [`mul2`](Self::mul2).
    #[inline]
    pub fn mul4(&mut self, a: ComplexId, b: [ComplexId; 4]) -> [ComplexId; 4] {
        if a.is_zero() {
            return [ComplexId::ZERO; 4];
        }
        if a.is_one() {
            return b;
        }
        let needs = [
            self.needs_product(b[0]),
            self.needs_product(b[1]),
            self.needs_product(b[2]),
            self.needs_product(b[3]),
        ];
        let av = self.value(a);
        let mut products = [Complex::ONE; 4];
        if needs.iter().filter(|&&n| n).count() >= 2 {
            products = simd::mul_scaled4(
                self.simd,
                av,
                [
                    self.factor(b[0]),
                    self.factor(b[1]),
                    self.factor(b[2]),
                    self.factor(b[3]),
                ],
            );
        } else {
            for i in 0..4 {
                if needs[i] {
                    products[i] = av * self.value(b[i]);
                }
            }
        }
        let mut out = [ComplexId::ZERO; 4];
        for i in 0..4 {
            out[i] = self.resolve_scaled(a, b[i], products[i]);
        }
        out
    }

    /// The multiplicand fed to the batched product for child weight `b`:
    /// trivial children (zero/one) get a placeholder lane whose product is
    /// discarded by [`resolve_scaled`](Self::resolve_scaled).
    #[inline]
    fn factor(&self, b: ComplexId) -> Complex {
        if b.is_zero() || b.is_one() {
            Complex::ONE
        } else {
            self.value(b)
        }
    }

    /// Whether a batched-multiply lane actually needs its product computed
    /// (zero/one lanes resolve by shortcut alone).
    #[inline]
    fn needs_product(&self, b: ComplexId) -> bool {
        !b.is_zero() && !b.is_one()
    }

    /// Whether a batched-divide lane needs its quotient computed (zero and
    /// `a == b` lanes resolve by shortcut alone).
    #[inline]
    fn needs_quotient(&self, a: ComplexId, b: ComplexId) -> bool {
        !a.is_zero() && a != b
    }

    /// Per-element epilogue of the batched multiply, mirroring [`mul`]'s
    /// shortcuts exactly: zero/one children never intern, everything else
    /// interns the precomputed product in element order.
    ///
    /// [`mul`]: Self::mul
    #[inline]
    fn resolve_scaled(&mut self, a: ComplexId, b: ComplexId, product: Complex) -> ComplexId {
        if b.is_zero() {
            ComplexId::ZERO
        } else if b.is_one() {
            a
        } else {
            self.lookup(product)
        }
    }

    /// Interns the sum of two interned values.
    #[inline]
    pub fn add(&mut self, a: ComplexId, b: ComplexId) -> ComplexId {
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let sum = self.value(a) + self.value(b);
        self.lookup(sum)
    }

    /// Interns the quotient `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` denotes zero.
    #[inline]
    pub fn div(&mut self, a: ComplexId, b: ComplexId) -> ComplexId {
        assert!(!b.is_zero(), "division by interned zero");
        if a.is_zero() {
            return ComplexId::ZERO;
        }
        if b.is_one() {
            return a;
        }
        if a == b {
            return ComplexId::ONE;
        }
        let quotient = self.value(a) / self.value(b);
        self.lookup(quotient)
    }

    /// Interns `[a0/b, a1/b]` — edge-weight normalization: every child
    /// weight divided by the pivot. The reciprocal of `b` is computed once
    /// and the products go through the dispatched SIMD kernel; per-element
    /// results are bitwise identical to [`div`](Self::div) (which is
    /// multiplication by the same reciprocal), in the same interning order.
    ///
    /// # Panics
    ///
    /// Panics if `b` denotes zero.
    #[inline]
    pub fn div2(&mut self, a: [ComplexId; 2], b: ComplexId) -> [ComplexId; 2] {
        assert!(!b.is_zero(), "division by interned zero");
        if b.is_one() {
            return a;
        }
        // Same cost gate as [`mul2`](Self::mul2): shortcut lanes skip the
        // arithmetic entirely, and a single live lane multiplies inline.
        // The reciprocal (two float divides) is only taken when some lane
        // actually consumes it — all-shortcut normalizations are free.
        let needs = [self.needs_quotient(a[0], b), self.needs_quotient(a[1], b)];
        let products = match needs {
            [true, true] => {
                let recip = self.value(b).recip();
                simd::mul_scaled2(self.simd, recip, [self.value(a[0]), self.value(a[1])])
            }
            [true, false] => [self.value(b).recip() * self.value(a[0]), Complex::ONE],
            [false, true] => [Complex::ONE, self.value(b).recip() * self.value(a[1])],
            [false, false] => [Complex::ONE; 2],
        };
        let mut out = [ComplexId::ZERO; 2];
        for i in 0..2 {
            out[i] = self.resolve_div(a[i], b, products[i]);
        }
        out
    }

    /// Interns `[a0/b, a1/b, a2/b, a3/b]`. Same contract as
    /// [`div2`](Self::div2).
    #[inline]
    pub fn div4(&mut self, a: [ComplexId; 4], b: ComplexId) -> [ComplexId; 4] {
        assert!(!b.is_zero(), "division by interned zero");
        if b.is_one() {
            return a;
        }
        let needs = [
            self.needs_quotient(a[0], b),
            self.needs_quotient(a[1], b),
            self.needs_quotient(a[2], b),
            self.needs_quotient(a[3], b),
        ];
        let live = needs.iter().filter(|&&n| n).count();
        let mut products = [Complex::ONE; 4];
        if live >= 2 {
            let recip = self.value(b).recip();
            products = simd::mul_scaled4(
                self.simd,
                recip,
                [
                    self.div_factor(a[0], b),
                    self.div_factor(a[1], b),
                    self.div_factor(a[2], b),
                    self.div_factor(a[3], b),
                ],
            );
        } else if live == 1 {
            let recip = self.value(b).recip();
            for i in 0..4 {
                if needs[i] {
                    products[i] = recip * self.value(a[i]);
                }
            }
        }
        let mut out = [ComplexId::ZERO; 4];
        for i in 0..4 {
            out[i] = self.resolve_div(a[i], b, products[i]);
        }
        out
    }

    /// Dividend lane fed to the batched normalization for numerator `a`:
    /// shortcut elements (zero, or `a == b`) get a placeholder lane.
    #[inline]
    fn div_factor(&self, a: ComplexId, b: ComplexId) -> Complex {
        if a.is_zero() || a == b {
            Complex::ONE
        } else {
            self.value(a)
        }
    }

    /// Per-element epilogue of the batched division, mirroring
    /// [`div`](Self::div)'s shortcuts exactly.
    #[inline]
    fn resolve_div(&mut self, a: ComplexId, b: ComplexId, quotient: Complex) -> ComplexId {
        if a.is_zero() {
            ComplexId::ZERO
        } else if a == b {
            ComplexId::ONE
        } else {
            self.lookup(quotient)
        }
    }

    /// Interns the negation of an interned value.
    #[inline]
    pub fn neg(&mut self, a: ComplexId) -> ComplexId {
        if a.is_zero() {
            return ComplexId::ZERO;
        }
        let negated = -self.value(a);
        self.lookup(negated)
    }

    /// Interns the conjugate of an interned value.
    #[inline]
    pub fn conj(&mut self, a: ComplexId) -> ComplexId {
        if a.is_zero() || a.is_one() {
            return a;
        }
        let conjugated = self.value(a).conj();
        self.lookup(conjugated)
    }

    /// All stored values in insertion order (index `i` is the value of
    /// `ComplexId` with raw index `i`). For snapshot serialization: because
    /// tolerance bucketing makes representatives depend on insertion
    /// history, a bitwise-faithful restore must replay the *entire* table,
    /// not merely the reachable ids. (Returns an owned vector since PR 7:
    /// values are stored interleaved with their norms.)
    pub fn values(&self) -> Vec<Complex> {
        self.entries.iter().map(|s| s.val).collect()
    }

    /// Rebuilds a table holding exactly `values`, id-for-id.
    ///
    /// `values` must be a sequence previously produced by
    /// [`values`](Self::values): entry 0 must be zero, entry 1 must be one,
    /// and every entry must be finite. Values are re-inserted raw, in
    /// order, so every id, representative, and bucket layout matches the
    /// captured table exactly and subsequent [`lookup`](Self::lookup) calls
    /// resolve identically to the original.
    pub fn from_values(tolerance: f64, values: &[Complex]) -> Result<Self, String> {
        let mut table = Self::with_tolerance(tolerance);
        if values.len() < 2 {
            return Err("complex table dump must contain the pinned zero and one".into());
        }
        if values[0] != Complex::ZERO {
            return Err(format!("entry 0 must be exactly zero, got {:?}", values[0]));
        }
        if values[1] != Complex::ONE {
            return Err(format!("entry 1 must be exactly one, got {:?}", values[1]));
        }
        for (i, &c) in values.iter().enumerate().skip(2) {
            if !c.is_finite() {
                return Err(format!("entry {i} is not finite: {c:?}"));
            }
            table.insert_raw(c);
        }
        Ok(table)
    }

    /// One probe axis: the value's grid cell plus which neighbours could
    /// hold a match. The cell width is `2·tolerance`, so the tolerance
    /// window `x ± tol` spans exactly half a cell each way: only the
    /// neighbour on the side `x` is nearer to can contain a matching
    /// candidate. `slack` (in cell units) conservatively covers the
    /// rounding of `x / width` and of the fraction itself, so a skipped
    /// cell provably contains no match — the probe result is *identical*
    /// to scanning all three cells, just cheaper. Near half-cell positions
    /// (or at magnitudes where an ulp exceeds the slack) both neighbours
    /// are probed, restoring the full 3-cell axis.
    fn axis_cells(&self, x: f64) -> (i64, bool, bool) {
        let width = 2.0 * self.tolerance;
        let r = x / width;
        let q = r.floor();
        let frac = r - q;
        let slack = 8.0 * f64::EPSILON * r.abs() + 1e-9;
        if !frac.is_finite() {
            // r overflowed to infinity (astronomically large weight ratio):
            // grid coordinates saturate; probe everything like the old
            // unconditional 3×3 did.
            return (r as i64, true, true);
        }
        (q as i64, frac <= 0.5 + slack, frac >= 0.5 - slack)
    }

    fn insert_raw(&mut self, c: Complex) -> ComplexId {
        let raw = u32::try_from(self.entries.len()).expect("complex table overflow");
        self.entries.push(Stored {
            val: c,
            norm: c.norm_sqr(),
        });
        let (qre, _, _) = self.axis_cells(c.re);
        let (qim, _, _) = self.axis_cells(c.im);
        let bucket = self.buckets.entry((qre, qim)).or_default();
        bucket.vals.push(c);
        bucket.ids.push(raw);
        ComplexId(raw)
    }
}

impl Default for ComplexTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_ids() {
        let mut t = ComplexTable::new();
        assert_eq!(t.lookup(Complex::ZERO), ComplexId::ZERO);
        assert_eq!(t.lookup(Complex::ONE), ComplexId::ONE);
        assert_eq!(t.lookup(Complex::new(1e-16, -1e-16)), ComplexId::ZERO);
        assert_eq!(t.lookup(Complex::new(1.0 + 1e-15, 0.0)), ComplexId::ONE);
    }

    #[test]
    fn unifies_within_tolerance() {
        let mut t = ComplexTable::with_tolerance(1e-10);
        let a = t.lookup(Complex::new(0.5, 0.25));
        let b = t.lookup(Complex::new(0.5 + 1e-12, 0.25 - 1e-12));
        assert_eq!(a, b);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn tiny_values_keep_their_relative_identity_at_tight_tolerance() {
        // At the tight default (1e-13), values of magnitude ~1e-7 (Grover
        // diffusion entries at n=22) with a 1e-6 relative difference stay
        // distinct, preserving the precision of structurally tiny weights.
        let mut t = ComplexTable::new();
        let v = 4.768e-7;
        let a = t.lookup(Complex::real(v));
        let b = t.lookup(Complex::real(v * (1.0 + 1e-12)));
        assert_eq!(a, b, "FP-noise-level differences must unify");
        let c = t.lookup(Complex::real(v * (1.0 + 1e-6)));
        assert_ne!(a, c, "genuinely distinct tiny values must stay distinct");
    }

    #[test]
    fn distinguishes_beyond_tolerance() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::real(0.5));
        let b = t.lookup(Complex::real(0.5001));
        assert_ne!(a, b);
    }

    #[test]
    fn hadamard_product_unifies_with_half() {
        let mut t = ComplexTable::new();
        let h = t.lookup(Complex::SQRT2_INV);
        let prod = t.mul(h, h);
        let half = t.lookup(Complex::real(0.5));
        assert_eq!(prod, half);
    }

    #[test]
    fn arithmetic_shortcuts() {
        let mut t = ComplexTable::new();
        let z = t.lookup(Complex::new(0.3, -0.4));
        assert_eq!(t.mul(ComplexId::ZERO, z), ComplexId::ZERO);
        assert_eq!(t.mul(ComplexId::ONE, z), z);
        assert_eq!(t.add(ComplexId::ZERO, z), z);
        assert_eq!(t.div(z, ComplexId::ONE), z);
        assert_eq!(t.div(z, z), ComplexId::ONE);
        let minus = t.neg(z);
        assert!(t.value(minus).approx_eq(Complex::new(-0.3, 0.4), 1e-12));
        let back = t.neg(minus);
        assert_eq!(back, z);
    }

    #[test]
    fn batched_mul_matches_sequential_mul_bitwise() {
        // mul2/mul4 against a replayed table using scalar mul calls: ids,
        // table length, and every stored bit must coincide — including the
        // shortcut elements (zero/one children) and mixed cases.
        let weights = [
            Complex::SQRT2_INV,
            Complex::new(0.3, -0.4),
            Complex::new(-0.7, 0.2),
            Complex::new(0.11, 0.93),
        ];
        let mut a_t = ComplexTable::new();
        let mut b_t = ComplexTable::new();
        let a_ids: Vec<ComplexId> = weights.iter().map(|&c| a_t.lookup(c)).collect();
        let b_ids: Vec<ComplexId> = weights.iter().map(|&c| b_t.lookup(c)).collect();
        assert_eq!(a_ids, b_ids);

        let scale = a_ids[0];
        let cases2: [[ComplexId; 2]; 4] = [
            [a_ids[1], a_ids[2]],
            [ComplexId::ZERO, a_ids[3]],
            [a_ids[2], ComplexId::ONE],
            [ComplexId::ONE, ComplexId::ZERO],
        ];
        for case in cases2 {
            let batched = a_t.mul2(scale, case);
            let sequential = [b_t.mul(scale, case[0]), b_t.mul(scale, case[1])];
            assert_eq!(batched, sequential, "case {case:?}");
        }
        let case4 = [a_ids[1], ComplexId::ZERO, a_ids[2], a_ids[3]];
        assert_eq!(
            a_t.mul4(scale, case4),
            [
                b_t.mul(scale, case4[0]),
                b_t.mul(scale, case4[1]),
                b_t.mul(scale, case4[2]),
                b_t.mul(scale, case4[3]),
            ]
        );
        assert_eq!(a_t.len(), b_t.len(), "identical interning history");
        let av = a_t.values();
        let bv = b_t.values();
        for (i, (x, y)) in av.iter().zip(bv.iter()).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "entry {i} re");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "entry {i} im");
        }
        // Degenerate scales.
        assert_eq!(
            a_t.mul2(ComplexId::ZERO, [a_ids[1], a_ids[2]]),
            [ComplexId::ZERO; 2]
        );
        assert_eq!(
            a_t.mul2(ComplexId::ONE, [a_ids[1], a_ids[2]]),
            [a_ids[1], a_ids[2]]
        );
    }

    #[test]
    fn batched_div_matches_sequential_div_bitwise() {
        let weights = [
            Complex::new(0.3, -0.4),
            Complex::new(-0.7, 0.2),
            Complex::new(0.11, 0.93),
        ];
        let mut a_t = ComplexTable::new();
        let mut b_t = ComplexTable::new();
        let a_ids: Vec<ComplexId> = weights.iter().map(|&c| a_t.lookup(c)).collect();
        let b_ids: Vec<ComplexId> = weights.iter().map(|&c| b_t.lookup(c)).collect();
        assert_eq!(a_ids, b_ids);

        let pivot = a_ids[0];
        let cases2: [[ComplexId; 2]; 3] = [
            [a_ids[1], a_ids[2]],
            [pivot, a_ids[1]],           // a == b shortcut lane
            [ComplexId::ZERO, a_ids[2]], // zero lane
        ];
        for case in cases2 {
            let batched = a_t.div2(case, pivot);
            let sequential = [b_t.div(case[0], pivot), b_t.div(case[1], pivot)];
            assert_eq!(batched, sequential, "case {case:?}");
        }
        let case4 = [a_ids[1], pivot, ComplexId::ZERO, a_ids[2]];
        assert_eq!(
            a_t.div4(case4, pivot),
            [
                b_t.div(case4[0], pivot),
                b_t.div(case4[1], pivot),
                b_t.div(case4[2], pivot),
                b_t.div(case4[3], pivot),
            ]
        );
        assert_eq!(a_t.len(), b_t.len());
        // ONE pivot is the identity.
        assert_eq!(
            a_t.div2([a_ids[1], a_ids[2]], ComplexId::ONE),
            [a_ids[1], a_ids[2]]
        );
    }

    #[test]
    fn division_roundtrip() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::new(0.7, 0.1));
        let b = t.lookup(Complex::new(-0.2, 0.9));
        let q = t.div(a, b);
        let back = t.mul(q, b);
        assert_eq!(back, a);
    }

    #[test]
    fn conjugation() {
        let mut t = ComplexTable::new();
        let z = t.lookup(Complex::new(0.6, 0.8));
        let c = t.conj(z);
        assert!(t.value(c).approx_eq(Complex::new(0.6, -0.8), 1e-12));
        assert_eq!(t.conj(c), z);
        assert_eq!(t.conj(ComplexId::ONE), ComplexId::ONE);
    }

    #[test]
    #[should_panic(expected = "division by interned zero")]
    fn division_by_zero_panics() {
        let mut t = ComplexTable::new();
        let a = t.lookup(Complex::real(2.0));
        let _ = t.div(a, ComplexId::ZERO);
    }

    #[test]
    fn values_straddling_a_grid_cell_unify() {
        let mut t = ComplexTable::with_tolerance(1e-10);
        let a = t.lookup(Complex::real(2.0 - 1e-12));
        let b = t.lookup(Complex::real(2.0 + 1e-12));
        assert_eq!(a, b);
    }

    #[test]
    fn grid_boundary_values_unify() {
        let mut t = ComplexTable::with_tolerance(1e-10);
        // Construct two values straddling a quantization-cell edge.
        let width = 2e-10;
        let edge = 1234.0 * width;
        let a = t.lookup(Complex::real(edge - 1e-14));
        let b = t.lookup(Complex::real(edge + 1e-14));
        assert_eq!(a, b);
    }

    #[test]
    fn narrowed_probe_still_finds_matches_at_every_cell_fraction() {
        // Sweep probe positions across a full grid cell (including the
        // half-cell point where the neighbour choice flips and the exact
        // boundaries): a stored value within tolerance must always be
        // found, proving the skipped cells never hide a match.
        let tol = 1e-10;
        let width = 2.0 * tol;
        for base_cell in [-3i64, 0, 7, 12345] {
            let base = base_cell as f64 * width;
            for frac_num in 0..=20 {
                let x = base + width * (frac_num as f64 / 20.0);
                let probe = Complex::real(x);
                if probe.approx_zero(tol) || probe.approx_one(tol) {
                    continue; // the pinned fast paths preempt the probe
                }
                for offset in [-tol, -0.5 * tol, 0.0, 0.5 * tol, tol] {
                    let mut t = ComplexTable::with_tolerance(tol);
                    let stored = t.lookup(Complex::real(x + offset));
                    if stored == ComplexId::ZERO || stored == ComplexId::ONE {
                        continue; // pinned fast path, probe not exercised
                    }
                    // Ground truth from the stored bits: `x + offset` rounds,
                    // so an offset of exactly ±tol can land a hair outside
                    // the tolerance predicate — legitimately a miss.
                    let within = (t.value(stored).re - x).abs() <= tol;
                    let found = t.lookup(Complex::real(x));
                    assert_eq!(
                        found == stored,
                        within,
                        "cell {base_cell}, frac {frac_num}/20, offset {offset:e}"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_count_lookups_unifications_and_probe_work() {
        let mut t = ComplexTable::new();
        assert_eq!(t.stats().lookups, 0);
        let a = t.lookup(Complex::new(0.5, 0.25)); // insert
        let b = t.lookup(Complex::new(0.5, 0.25)); // unify
        let _ = t.lookup(Complex::ZERO); // pinned
        assert_eq!(a, b);
        let s = t.stats();
        assert_eq!(s.lookups, 3);
        assert_eq!(s.inserts, 1);
        assert_eq!(s.unified, 1);
        assert!(s.buckets_probed >= 2, "both probing lookups walked cells");
        assert!(
            s.probe_entries >= 1,
            "the unifying lookup compared a candidate"
        );
        assert!(s.unify_rate() > 0.5);
        assert!(t.bucket_count() >= 3, "zero, one, and the new value");
        assert!(t.max_bucket_len() >= 1);

        let mut other = ComplexTableStats::default();
        other.accumulate(&s);
        assert_eq!(other, s);
        assert_eq!(s.delta(&s), ComplexTableStats::default());
    }

    #[test]
    fn scalar_and_simd_tables_intern_identically() {
        // The same lookup sequence against a SIMD table and a forced-scalar
        // table: identical ids, identical stats, identical stored bits.
        let mut simd_t = ComplexTable::with_tolerance_and_simd(DEFAULT_TOLERANCE, true);
        let mut scalar_t = ComplexTable::with_tolerance_and_simd(DEFAULT_TOLERANCE, false);
        assert_eq!(scalar_t.simd_level(), SimdLevel::Scalar);
        let mut state = 0x1234_5678_9abc_def0u64;
        for round in 0..500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let re = ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2.0;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let im = ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2.0;
            // Mix in near-duplicates so unification paths run.
            let c = if round % 3 == 0 {
                Complex::new(re + 1e-15, im)
            } else {
                Complex::new(re, im)
            };
            assert_eq!(simd_t.lookup(c), scalar_t.lookup(c), "round {round}");
        }
        assert_eq!(simd_t.len(), scalar_t.len());
        assert_eq!(simd_t.stats(), scalar_t.stats());
    }

    #[test]
    fn from_values_restores_ids_and_lookup_behavior() {
        let mut t = ComplexTable::new();
        let ids: Vec<ComplexId> = [
            Complex::SQRT2_INV,
            Complex::new(0.3, -0.4),
            Complex::real(0.5),
            Complex::new(-0.1, 0.2),
        ]
        .iter()
        .map(|&c| t.lookup(c))
        .collect();
        let restored = ComplexTable::from_values(t.tolerance(), &t.values()).unwrap();
        assert_eq!(restored.len(), t.len());
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(restored.value(id), t.value(id), "value {i}");
            assert_eq!(restored.norm_sqr(id), t.norm_sqr(id), "norm {i}");
        }
        // Future lookups resolve to the same representatives.
        let mut a = t.clone();
        let mut b = restored;
        let probe = Complex::new(0.3 + 1e-14, -0.4);
        assert_eq!(a.lookup(probe), b.lookup(probe));
        let fresh = Complex::new(0.77, 0.12);
        assert_eq!(a.lookup(fresh), b.lookup(fresh));
    }

    #[test]
    fn from_values_rejects_corrupt_dumps() {
        assert!(ComplexTable::from_values(1e-13, &[]).is_err());
        assert!(
            ComplexTable::from_values(1e-13, &[Complex::ONE, Complex::ONE]).is_err(),
            "entry 0 must be zero"
        );
        assert!(
            ComplexTable::from_values(1e-13, &[Complex::ZERO, Complex::ZERO]).is_err(),
            "entry 1 must be one"
        );
        assert!(ComplexTable::from_values(
            1e-13,
            &[Complex::ZERO, Complex::ONE, Complex::new(f64::NAN, 0.0)]
        )
        .is_err());
    }

    #[test]
    fn widely_separated_scales_coexist() {
        // Stay above the zero floor (the tolerance, 1e-13): 2^-40 ≈ 9e-13.
        let mut t = ComplexTable::new();
        let ids: Vec<ComplexId> = (0..40)
            .map(|k| t.lookup(Complex::real(2f64.powi(-k))))
            .collect();
        // 2^0 is ONE; all others distinct.
        for (i, &a) in ids.iter().enumerate() {
            for (j, &b) in ids.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "2^-{i} vs 2^-{j}");
                }
            }
        }
    }
}

//! The [`Complex`] value type used throughout the DD package.
//!
//! This is a deliberately small, `Copy`, `f64`-based complex number. It is
//! *not* a general-purpose numerics type: it provides exactly the operations
//! a decision-diagram package needs (ring arithmetic, conjugation, magnitude,
//! polar construction, and tolerance-aware comparison).

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// The default absolute tolerance used when deciding whether two
/// floating-point complex values denote the same mathematical value
/// (see [`ComplexTable`](crate::ComplexTable)).
///
/// Tight (~500 f64 epsilons): large enough to re-merge rounding noise from
/// different computation orders, small enough to preserve the relative
/// precision of the smallest structurally meaningful edge weights. See
/// DESIGN.md §6 for the measured failure modes on either side.
pub const DEFAULT_TOLERANCE: f64 = 1e-13;

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use ddsim_complex::Complex;
///
/// let h = Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
/// assert!((h * h).approx_eq(Complex::new(0.5, 0.0), 1e-12));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };
    /// `1/sqrt(2)`, the Hadamard factor.
    pub const SQRT2_INV: Complex = Complex {
        re: std::f64::consts::FRAC_1_SQRT_2,
        im: 0.0,
    };

    /// Creates a complex number from Cartesian components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a real-valued complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar form `r * e^{iθ}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ddsim_complex::Complex;
    /// let v = Complex::from_polar(1.0, std::f64::consts::PI);
    /// assert!(v.approx_eq(Complex::real(-1.0), 1e-12));
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{iθ}` — a point on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// The primitive `2^n`-th root of unity raised to the `k`-th power,
    /// `exp(2πi · k / 2^n)`. This is the phase that appears throughout the
    /// quantum Fourier transform.
    #[inline]
    pub fn root_of_unity(k: i64, n: u32) -> Self {
        let denom = (1u64 << n) as f64;
        Complex::cis(2.0 * std::f64::consts::PI * (k as f64) / denom)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `z` is exactly zero; in release builds the
    /// result contains infinities, as for `f64` division by zero.
    #[inline]
    pub fn recip(self) -> Self {
        debug_assert!(
            self.norm_sqr() > 0.0,
            "attempted to invert a zero complex value"
        );
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Whether both components are exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.re == 0.0 && self.im == 0.0
    }

    /// Whether the value is within `tol` of zero (component-wise).
    #[inline]
    pub fn approx_zero(self, tol: f64) -> bool {
        self.re.abs() <= tol && self.im.abs() <= tol
    }

    /// Whether the value is within `tol` of one (component-wise).
    #[inline]
    pub fn approx_one(self, tol: f64) -> bool {
        (self.re - 1.0).abs() <= tol && self.im.abs() <= tol
    }

    /// Component-wise tolerance comparison.
    ///
    /// # Examples
    ///
    /// ```
    /// use ddsim_complex::Complex;
    /// assert!(Complex::new(0.1 + 0.2, 0.0).approx_eq(Complex::new(0.3, 0.0), 1e-12));
    /// ```
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Whether both components are finite (no NaN / infinity).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl From<(f64, f64)> for Complex {
    fn from((re, im): (f64, f64)) -> Self {
        Complex::new(re, im)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division really is multiplication by the reciprocal here; the single
    // recip() keeps the operation count down versus the textbook formula.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im == 0.0 {
            write!(f, "{}", self.re)
        } else if self.re == 0.0 {
            write!(f, "{}i", self.im)
        } else if self.im < 0.0 {
            write!(f, "{}{}i", self.re, self.im)
        } else {
            write!(f, "{}+{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Complex::ZERO + Complex::ONE, Complex::ONE);
        assert_eq!(Complex::I * Complex::I, Complex::real(-1.0));
        assert!((Complex::SQRT2_INV.norm_sqr() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(1.25, -0.5);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert!((z * z.recip()).approx_eq(Complex::ONE, 1e-12));
        assert_eq!(-(-z), z);
    }

    #[test]
    fn conjugate_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!((z * z.conj()).approx_eq(Complex::real(25.0), 1e-12));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn roots_of_unity() {
        // exp(2πi·1/2) = -1, exp(2πi·1/4) = i.
        assert!(Complex::root_of_unity(1, 1).approx_eq(Complex::real(-1.0), 1e-12));
        assert!(Complex::root_of_unity(1, 2).approx_eq(Complex::I, 1e-12));
        // k = 2^n wraps to 1.
        assert!(Complex::root_of_unity(8, 3).approx_eq(Complex::ONE, 1e-12));
    }

    #[test]
    fn division() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-0.5, 0.25);
        assert!(((a / b) * b).approx_eq(a, 1e-12));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Complex::real(1.5).to_string(), "1.5");
        assert_eq!(Complex::new(0.0, -2.0).to_string(), "-2i");
        assert_eq!(Complex::new(1.0, 1.0).to_string(), "1+1i");
        assert_eq!(Complex::new(1.0, -1.0).to_string(), "1-1i");
    }

    #[test]
    fn approx_predicates() {
        assert!(Complex::new(1e-12, -1e-12).approx_zero(1e-10));
        assert!(!Complex::new(1e-9, 0.0).approx_zero(1e-10));
        assert!(Complex::new(1.0 + 1e-12, -1e-12).approx_one(1e-10));
    }
}

//! Runtime-dispatched SIMD kernels for the leaf-level complex arithmetic.
//!
//! Three hot routines are vectorized (see DESIGN.md §13):
//!
//! * [`probe_first_match`] — the [`ComplexTable`](crate::ComplexTable)
//!   tolerance probe, the single hottest comparison loop in the repo: every
//!   interned multiply/add/divide scans bucket candidates with two
//!   `abs(diff) <= tol` compares per candidate. The SIMD paths pack the
//!   candidates' `(re, im)` pairs into lanes and compare one (SSE2) or two
//!   (AVX) candidates per instruction, replacing the branchy scalar
//!   compare-and-jump pair with a single mask extraction.
//! * [`mul_scaled2`] / [`mul_scaled4`] — the 2×2 leaf multiply/accumulate:
//!   a common scale factor (an edge weight) times the 2 (vector) or 4
//!   (matrix) child weights of a node.
//!
//! # Bitwise identity with the scalar fallback
//!
//! The scalar path is the canonical semantics; every SIMD path is required
//! to be **bit-for-bit identical** to it, which is what lets the `simd`
//! cargo feature default on without perturbing snapshots, fuzz oracles, or
//! the cross-strategy property tests:
//!
//! * The probe is a pure predicate (`|a−b| <= tol` per component). IEEE 754
//!   comparison has no rounding, so a vectorized compare decides exactly
//!   like the scalar one; returning the lowest matching lane preserves the
//!   scalar first-match-in-insertion-order semantics.
//! * The products use one multiply and one add/sub rounding per component —
//!   the same operations, in the same order, as `Complex::mul`. No FMA is
//!   used anywhere: fused multiply-add rounds once instead of twice and
//!   would silently change interned representatives.
//!
//! Dispatch is detected **once** (per table / manager construction, via
//! [`SimdLevel::detect`]) and stored; the kernels branch on the stored
//! level, never on `is_x86_feature_detected!` (an atomic load) per call.
//! On non-x86-64 targets, or with the `simd` cargo feature disabled, every
//! entry point compiles straight to the scalar code.

use crate::value::Complex;

/// The instruction-set tier selected at detection time.
///
/// Ordered from weakest to strongest; [`SimdLevel::detect`] returns the
/// strongest tier the running CPU supports (x86-64 with the `simd` feature
/// enabled), otherwise [`SimdLevel::Scalar`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Plain scalar `f64` arithmetic — the canonical semantics.
    #[default]
    Scalar,
    /// 128-bit lanes: one complex value per probe compare / product.
    Sse2,
    /// 256-bit lanes: two complex values per probe compare / product.
    Avx,
}

impl SimdLevel {
    /// Detects the strongest available tier. Returns [`SimdLevel::Scalar`]
    /// unless the crate was built with the `simd` feature on x86-64.
    ///
    /// `is_x86_feature_detected!` caches its CPUID result internally, but
    /// even the cached read is an atomic load — callers are expected to
    /// invoke `detect` once per table/manager and store the result.
    pub fn detect() -> SimdLevel {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            if std::arch::is_x86_feature_detected!("avx") {
                return SimdLevel::Avx;
            }
            if std::arch::is_x86_feature_detected!("sse2") {
                // SSE2 is baseline for x86-64, but honour the runtime
                // answer anyway (the scalar path is always correct).
                return SimdLevel::Sse2;
            }
        }
        SimdLevel::Scalar
    }

    /// [`detect`](Self::detect) when `enabled`, [`SimdLevel::Scalar`]
    /// otherwise — the hook behind `DdConfig::simd` and the fuzz lattice's
    /// scalar axis.
    pub fn detect_or_scalar(enabled: bool) -> SimdLevel {
        if enabled {
            Self::detect()
        } else {
            SimdLevel::Scalar
        }
    }
}

// ----------------------------------------------------------------------
// Tolerance probe
// ----------------------------------------------------------------------

/// Index of the first candidate in `vals` within `tol` of `c`
/// (component-wise absolute difference), or `None`.
///
/// All tiers return the *same* index: the match decision is a rounding-free
/// comparison, and the SIMD paths resolve multi-lane matches to the lowest
/// lane.
#[inline]
pub fn probe_first_match(
    level: SimdLevel,
    vals: &[Complex],
    c: Complex,
    tol: f64,
) -> Option<usize> {
    match level {
        SimdLevel::Scalar => probe_scalar(vals, c, tol),
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Sse2 => unsafe { probe_sse2(vals, c, tol) },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Avx => unsafe { probe_avx(vals, c, tol) },
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        _ => probe_scalar(vals, c, tol),
    }
}

#[inline]
fn probe_scalar(vals: &[Complex], c: Complex, tol: f64) -> Option<usize> {
    vals.iter()
        .position(|&v| (v.re - c.re).abs() <= tol && (v.im - c.im).abs() <= tol)
}

// ----------------------------------------------------------------------
// Scaled products (edge weight × child weights)
// ----------------------------------------------------------------------

/// `[a·b0, a·b1]`, bit-identical to `Complex::mul` per element.
#[inline]
pub fn mul_scaled2(level: SimdLevel, a: Complex, b: [Complex; 2]) -> [Complex; 2] {
    match level {
        SimdLevel::Scalar => [a * b[0], a * b[1]],
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Sse2 => unsafe { [mul_one_sse2(a, b[0]), mul_one_sse2(a, b[1])] },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Avx => unsafe { mul_pair_avx(a, b) },
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        _ => [a * b[0], a * b[1]],
    }
}

/// `[a·b0, a·b1, a·b2, a·b3]`, bit-identical to `Complex::mul` per element.
#[inline]
pub fn mul_scaled4(level: SimdLevel, a: Complex, b: [Complex; 4]) -> [Complex; 4] {
    match level {
        SimdLevel::Scalar => [a * b[0], a * b[1], a * b[2], a * b[3]],
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Sse2 => unsafe {
            [
                mul_one_sse2(a, b[0]),
                mul_one_sse2(a, b[1]),
                mul_one_sse2(a, b[2]),
                mul_one_sse2(a, b[3]),
            ]
        },
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        SimdLevel::Avx => unsafe {
            let lo = mul_pair_avx(a, [b[0], b[1]]);
            let hi = mul_pair_avx(a, [b[2], b[3]]);
            [lo[0], lo[1], hi[0], hi[1]]
        },
        #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
        _ => [a * b[0], a * b[1], a * b[2], a * b[3]],
    }
}

// ----------------------------------------------------------------------
// x86-64 intrinsic paths
// ----------------------------------------------------------------------

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    use super::*;
    use std::arch::x86_64::*;

    /// Clears the sign bit of both lanes (|x| without branching; exact).
    const ABS_MASK: i64 = 0x7fff_ffff_ffff_ffff;

    /// SSE2 probe: one candidate per iteration, both component compares in
    /// a single packed compare + mask extraction.
    ///
    /// # Safety
    ///
    /// Caller guarantees the CPU supports SSE2 (baseline on x86-64).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn probe_sse2(vals: &[Complex], c: Complex, tol: f64) -> Option<usize> {
        let target = _mm_set_pd(c.im, c.re); // lanes: [re, im]
        let tolv = _mm_set1_pd(tol);
        let abs = _mm_castsi128_pd(_mm_set1_epi64x(ABS_MASK));
        for (i, v) in vals.iter().enumerate() {
            // `Complex` is two contiguous f64s; unaligned load is fine.
            let cand = _mm_loadu_pd(&v.re as *const f64);
            let diff = _mm_and_pd(_mm_sub_pd(cand, target), abs);
            if _mm_movemask_pd(_mm_cmple_pd(diff, tolv)) == 0b11 {
                return Some(i);
            }
        }
        None
    }

    /// AVX probe: two candidates per iteration. Lane layout after a 256-bit
    /// load of `vals[i..i+2]` is `[re0, im0, re1, im1]`; candidate `k`
    /// matches when movemask bits `2k` and `2k+1` are both set. The lowest
    /// matching candidate is returned, preserving scalar first-match order.
    ///
    /// # Safety
    ///
    /// Caller guarantees the CPU supports AVX.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn probe_avx(vals: &[Complex], c: Complex, tol: f64) -> Option<usize> {
        let target = _mm256_set_pd(c.im, c.re, c.im, c.re);
        let tolv = _mm256_set1_pd(tol);
        let abs = _mm256_castsi256_pd(_mm256_set1_epi64x(ABS_MASK));
        let pairs = vals.len() / 2;
        for p in 0..pairs {
            let base = p * 2;
            let cand = _mm256_loadu_pd(&vals[base].re as *const f64);
            let diff = _mm256_and_pd(_mm256_sub_pd(cand, target), abs);
            let m = _mm256_movemask_pd(_mm256_cmp_pd::<{ _CMP_LE_OQ }>(diff, tolv));
            if m & 0b0011 == 0b0011 {
                return Some(base);
            }
            if m & 0b1100 == 0b1100 {
                return Some(base + 1);
            }
        }
        if vals.len() % 2 == 1 {
            let i = vals.len() - 1;
            let cand = _mm_loadu_pd(&vals[i].re as *const f64);
            let diff128 = _mm_and_pd(
                _mm_sub_pd(cand, _mm256_castpd256_pd128(target)),
                _mm256_castpd256_pd128(abs),
            );
            if _mm_movemask_pd(_mm_cmple_pd(diff128, _mm256_castpd256_pd128(tolv))) == 0b11 {
                return Some(i);
            }
        }
        None
    }

    /// One complex product in 128-bit lanes.
    ///
    /// Per component this performs exactly the scalar sequence
    /// `fl(fl(re·re) − fl(im·im))` / `fl(fl(re·im) + fl(im·re))`: two
    /// multiply roundings and one add/sub rounding. The subtraction is
    /// realised as addition of the sign-flipped product (sign flips are
    /// exact), keeping the whole kernel SSE2-only.
    ///
    /// # Safety
    ///
    /// Caller guarantees the CPU supports SSE2.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn mul_one_sse2(a: Complex, b: Complex) -> Complex {
        let vb = _mm_loadu_pd(&b.re as *const f64); // [b.re, b.im]
        let t1 = _mm_mul_pd(_mm_set1_pd(a.re), vb); // [a.re·b.re, a.re·b.im]
        let vswap = _mm_shuffle_pd::<0b01>(vb, vb); // [b.im, b.re]
        let t2 = _mm_mul_pd(_mm_set1_pd(a.im), vswap); // [a.im·b.im, a.im·b.re]
                                                       // Negate only lane 0 of t2, then add: lane 0 = re·re − im·im,
                                                       // lane 1 = re·im + im·re.
        let negmask = _mm_castsi128_pd(_mm_set_epi64x(0, i64::MIN));
        let res = _mm_add_pd(t1, _mm_xor_pd(t2, negmask));
        let mut out = [0.0f64; 2];
        _mm_storeu_pd(out.as_mut_ptr(), res);
        Complex::new(out[0], out[1])
    }

    /// Two complex products with a common left factor in 256-bit lanes,
    /// using `vaddsubpd` (subtract in even lanes, add in odd lanes — the
    /// complex-multiply pattern). Same rounding sequence as the scalar
    /// code.
    ///
    /// # Safety
    ///
    /// Caller guarantees the CPU supports AVX.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn mul_pair_avx(a: Complex, b: [Complex; 2]) -> [Complex; 2] {
        let vb = _mm256_loadu_pd(&b[0].re as *const f64); // [b0.re, b0.im, b1.re, b1.im]
        let t1 = _mm256_mul_pd(_mm256_set1_pd(a.re), vb);
        let vswap = _mm256_permute_pd::<0b0101>(vb); // swap within each 128-bit half
        let t2 = _mm256_mul_pd(_mm256_set1_pd(a.im), vswap);
        let res = _mm256_addsub_pd(t1, t2);
        let mut out = [0.0f64; 4];
        _mm256_storeu_pd(out.as_mut_ptr(), res);
        [Complex::new(out[0], out[1]), Complex::new(out[2], out[3])]
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
use x86::{mul_one_sse2, mul_pair_avx, probe_avx, probe_sse2};

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic value stream without a RNG dependency: a 64-bit LCG
    /// driving mantissa/exponent patterns that cover magnitudes from 1e-14
    /// to 1e3, both signs, exact zeros, and values straddling tolerance.
    struct Gen(u64);

    impl Gen {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }

        fn next_f64(&mut self) -> f64 {
            let bits = self.next_u64();
            let mag = (bits >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
            let scale = [1e-14, 1e-13, 1e-10, 1e-6, 1e-2, 1.0, 3.7, 1e3][(bits & 0x7) as usize];
            let sign = if bits & 0x8 == 0 { 1.0 } else { -1.0 };
            sign * mag * scale
        }

        fn next_complex(&mut self) -> Complex {
            Complex::new(self.next_f64(), self.next_f64())
        }
    }

    fn available_levels() -> Vec<SimdLevel> {
        let mut levels = vec![SimdLevel::Scalar];
        let best = SimdLevel::detect();
        if best >= SimdLevel::Sse2 {
            levels.push(SimdLevel::Sse2);
        }
        if best >= SimdLevel::Avx {
            levels.push(SimdLevel::Avx);
        }
        levels
    }

    #[test]
    fn probe_matches_scalar_on_random_candidate_lists() {
        let mut g = Gen(0x5eed_0001);
        let tol = 1e-13;
        for round in 0..2000 {
            let len = (g.next_u64() % 7) as usize; // covers 0..=6, odd tails
            let vals: Vec<Complex> = (0..len).map(|_| g.next_complex()).collect();
            // Half the rounds probe a perturbed copy of a stored value so
            // matches actually occur; half probe an unrelated value.
            let c = if round % 2 == 0 && !vals.is_empty() {
                let i = (g.next_u64() as usize) % vals.len();
                let eps = (g.next_f64() * 1e-14).clamp(-2e-13, 2e-13);
                Complex::new(vals[i].re + eps, vals[i].im - eps)
            } else {
                g.next_complex()
            };
            let want = probe_first_match(SimdLevel::Scalar, &vals, c, tol);
            for &level in &available_levels() {
                assert_eq!(
                    probe_first_match(level, &vals, c, tol),
                    want,
                    "round {round}, level {level:?}, c {c:?}, vals {vals:?}"
                );
            }
        }
    }

    #[test]
    fn probe_boundary_cases_match_scalar() {
        let tol = 1e-10;
        let cases = [
            // Exactly at tolerance (inclusive compare).
            (Complex::new(0.5 + 1e-10, 0.25), Complex::new(0.5, 0.25)),
            // Just beyond.
            (
                Complex::new(0.5 + 1.0000001e-10, 0.25),
                Complex::new(0.5, 0.25),
            ),
            // Signed zero.
            (Complex::new(-0.0, 0.0), Complex::new(0.0, -0.0)),
            // One component matches, the other fails.
            (Complex::new(0.5, 0.25), Complex::new(0.5, 0.26)),
        ];
        for (a, b) in cases {
            let vals = [b];
            let want = probe_first_match(SimdLevel::Scalar, &vals, a, tol);
            for &level in &available_levels() {
                assert_eq!(
                    probe_first_match(level, &vals, a, tol),
                    want,
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn probe_returns_first_match_when_several_candidates_match() {
        // Three candidates inside tolerance of the probe: every tier must
        // return index 0 (insertion order decides the representative).
        let tol = 1e-6;
        let c = Complex::new(0.5, 0.5);
        let vals = [
            Complex::new(0.5 + 1e-8, 0.5),
            Complex::new(0.5, 0.5 - 1e-8),
            Complex::new(0.5 - 1e-8, 0.5 + 1e-8),
        ];
        for &level in &available_levels() {
            assert_eq!(
                probe_first_match(level, &vals, c, tol),
                Some(0),
                "{level:?}"
            );
        }
        // And when only the later ones match, the lowest matching index wins.
        let vals = [Complex::new(2.0, 2.0), vals[1], vals[2]];
        for &level in &available_levels() {
            assert_eq!(
                probe_first_match(level, &vals, c, tol),
                Some(1),
                "{level:?}"
            );
        }
    }

    #[test]
    fn scaled_products_are_bitwise_identical_to_scalar() {
        let mut g = Gen(0xfeed_0002);
        for round in 0..2000 {
            let a = g.next_complex();
            let b2 = [g.next_complex(), g.next_complex()];
            let b4 = [
                g.next_complex(),
                g.next_complex(),
                g.next_complex(),
                g.next_complex(),
            ];
            let want2 = mul_scaled2(SimdLevel::Scalar, a, b2);
            let want4 = mul_scaled4(SimdLevel::Scalar, a, b4);
            for &level in &available_levels() {
                let got2 = mul_scaled2(level, a, b2);
                let got4 = mul_scaled4(level, a, b4);
                for i in 0..2 {
                    assert_eq!(
                        got2[i].re.to_bits(),
                        want2[i].re.to_bits(),
                        "round {round} {level:?} mul2[{i}].re"
                    );
                    assert_eq!(
                        got2[i].im.to_bits(),
                        want2[i].im.to_bits(),
                        "round {round} {level:?} mul2[{i}].im"
                    );
                }
                for i in 0..4 {
                    assert_eq!(
                        got4[i].re.to_bits(),
                        want4[i].re.to_bits(),
                        "round {round} {level:?} mul4[{i}].re"
                    );
                    assert_eq!(
                        got4[i].im.to_bits(),
                        want4[i].im.to_bits(),
                        "round {round} {level:?} mul4[{i}].im"
                    );
                }
            }
        }
    }

    #[test]
    fn scaled_product_agrees_with_complex_mul_operator() {
        // The scalar tier *is* `Complex::mul`; pin that equivalence so the
        // canonical semantics cannot silently diverge from the operator.
        let mut g = Gen(0xabcd_0003);
        for _ in 0..500 {
            let a = g.next_complex();
            let b = [g.next_complex(), g.next_complex()];
            let got = mul_scaled2(SimdLevel::Scalar, a, b);
            for i in 0..2 {
                let want = a * b[i];
                assert_eq!(got[i].re.to_bits(), want.re.to_bits());
                assert_eq!(got[i].im.to_bits(), want.im.to_bits());
            }
        }
    }

    #[test]
    fn detect_respects_the_enable_switch() {
        assert_eq!(SimdLevel::detect_or_scalar(false), SimdLevel::Scalar);
        assert_eq!(SimdLevel::detect_or_scalar(true), SimdLevel::detect());
    }
}

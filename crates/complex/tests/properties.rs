//! Property-based tests for complex arithmetic and the interning table.

use ddsim_complex::{Complex, ComplexTable};
use proptest::prelude::*;

fn small_complex() -> impl Strategy<Value = Complex> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(re, im)| Complex::new(re, im))
}

fn nonzero_complex() -> impl Strategy<Value = Complex> {
    small_complex().prop_filter("must not be close to zero", |c| c.abs() > 1e-3)
}

proptest! {
    #[test]
    fn addition_commutes(a in small_complex(), b in small_complex()) {
        prop_assert!((a + b).approx_eq(b + a, 1e-12));
    }

    #[test]
    fn multiplication_commutes(a in small_complex(), b in small_complex()) {
        prop_assert!((a * b).approx_eq(b * a, 1e-9));
    }

    #[test]
    fn multiplication_associates(
        a in small_complex(),
        b in small_complex(),
        c in small_complex(),
    ) {
        prop_assert!(((a * b) * c).approx_eq(a * (b * c), 1e-7));
    }

    #[test]
    fn distributivity(a in small_complex(), b in small_complex(), c in small_complex()) {
        prop_assert!((a * (b + c)).approx_eq(a * b + a * c, 1e-7));
    }

    #[test]
    fn conjugation_is_involution(a in small_complex()) {
        prop_assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn norm_is_multiplicative(a in small_complex(), b in small_complex()) {
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-7);
    }

    #[test]
    fn reciprocal_inverts(a in nonzero_complex()) {
        prop_assert!((a * a.recip()).approx_eq(Complex::ONE, 1e-9));
    }

    #[test]
    fn polar_roundtrip(r in 0.01f64..10.0, theta in -3.1f64..3.1) {
        let z = Complex::from_polar(r, theta);
        prop_assert!((z.abs() - r).abs() < 1e-9);
        prop_assert!((z.arg() - theta).abs() < 1e-9);
    }

    #[test]
    fn table_lookup_is_idempotent(a in small_complex()) {
        let mut t = ComplexTable::new();
        let id1 = t.lookup(a);
        let id2 = t.lookup(a);
        prop_assert_eq!(id1, id2);
        // The representative is within tolerance of the input.
        prop_assert!(t.value(id1).approx_eq(a, t.tolerance()));
    }

    #[test]
    fn table_mul_matches_value_mul(a in small_complex(), b in small_complex()) {
        let mut t = ComplexTable::new();
        let ia = t.lookup(a);
        let ib = t.lookup(b);
        let ip = t.mul(ia, ib);
        // Representatives drift by at most the tolerance per operand.
        prop_assert!(t.value(ip).approx_eq(a * b, 1e-6));
    }

    #[test]
    fn table_add_matches_value_add(a in small_complex(), b in small_complex()) {
        let mut t = ComplexTable::new();
        let ia = t.lookup(a);
        let ib = t.lookup(b);
        let is = t.add(ia, ib);
        prop_assert!(t.value(is).approx_eq(a + b, 1e-6));
    }

    #[test]
    fn table_div_then_mul_roundtrips(a in small_complex(), b in nonzero_complex()) {
        let mut t = ComplexTable::new();
        let ia = t.lookup(a);
        let ib = t.lookup(b);
        let iq = t.div(ia, ib);
        let back = t.mul(iq, ib);
        prop_assert!(t.value(back).approx_eq(a, 1e-6));
    }

    #[test]
    fn perturbations_below_tolerance_unify(a in nonzero_complex()) {
        let mut t = ComplexTable::new();
        let id = t.lookup(a);
        // Absolute jitter one order below the absolute tolerance.
        let jittered = a + Complex::new(1e-14, -1e-14);
        prop_assert_eq!(t.lookup(jittered), id);
    }
}

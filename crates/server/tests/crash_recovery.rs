//! The crash drill: SIGKILL the real `ddsim-server` binary at an
//! arbitrary point mid-run (with checkpoint writes in flight), restart
//! it on the same data directory, and assert that every accepted job
//! still reaches its terminal state — none lost, none duplicated, and
//! results bitwise-identical to an uninterrupted in-process reference
//! run. Also covers corrupt-checkpoint fallback and journal quarantine.

use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ddsim_core::CancelToken;
use ddsim_server::jobs::{self, JobOptions};
use ddsim_server::protocol::{read_frame, write_frame};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ddsim-crash-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawns the real server binary and parses its `listening on <addr>`
/// line for the picked port.
fn spawn_server(data_dir: &Path, extra: &[&str]) -> (Child, SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ddsim-server"));
    cmd.arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--data-dir")
        .arg(data_dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd.spawn().expect("spawn ddsim-server");
    let mut line = String::new();
    BufReader::new(child.stdout.take().expect("piped stdout"))
        .read_line(&mut line)
        .expect("read listening line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .parse()
        .expect("parse addr");
    (child, addr)
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    return Client {
                        reader: BufReader::new(stream.try_clone().unwrap()),
                        writer: stream,
                    }
                }
                Err(e) => {
                    assert!(Instant::now() < deadline, "cannot connect: {e}");
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    fn request(&mut self, payload: &str) -> String {
        write_frame(&mut self.writer, payload).expect("write frame");
        read_frame(&mut self.reader)
            .expect("read frame")
            .expect("reply before EOF")
    }

    fn wait_terminal(&mut self, id: u64) -> String {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let reply = self.request(&format!("RESULT {id}"));
            if !reply.starts_with("PENDING") {
                return reply;
            }
            assert!(
                Instant::now() < deadline,
                "job {id} stuck non-terminal: {reply}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

const BELL: &str = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";

/// Long enough that the kill always lands mid-run, with checkpoints
/// written throughout; small DD so budgets never interfere.
fn long_circuit() -> String {
    let mut q = String::from("OPENQASM 2.0;\nqreg q[8];\nh q[0];\n");
    for i in 0..7 {
        q.push_str(&format!("cx q[{i}],q[{}];\n", i + 1));
    }
    for k in 0..40_000u64 {
        q.push_str(&format!("rz(0.41) q[{}];\n", k % 8));
    }
    q
}

#[test]
fn sigkill_mid_run_loses_no_job_and_results_converge_bitwise() {
    let dir = temp_dir("kill");
    let (mut child, addr) = spawn_server(&dir, &["--workers", "2", "--retry-base-ms", "10"]);
    let mut c = Client::connect(addr);
    let long = long_circuit();

    // Two identical long jobs (their results must match bitwise after
    // recovery) plus two quick ones, so the kill catches a mix of
    // running, checkpointed, and possibly already-done jobs.
    let submit = |c: &mut Client, opts: &str, qasm: &str| -> u64 {
        let reply = c.request(&format!("SUBMIT drill {opts}\n{qasm}"));
        reply
            .strip_prefix("OK ")
            .unwrap_or_else(|| panic!("submit rejected: {reply}"))
            .parse()
            .unwrap()
    };
    let j1 = submit(&mut c, "seed=5 shots=64 ckpt_every=1000", &long);
    let j2 = submit(&mut c, "seed=5 shots=64 ckpt_every=1000", &long);
    let j3 = submit(&mut c, "seed=1 shots=32", BELL);
    let j4 = submit(&mut c, "seed=2 shots=32", BELL);

    // Wait until checkpoint writes are demonstrably in flight, then
    // SIGKILL at that arbitrary instant (some checkpoint or journal
    // write may be mid-way — exactly the point of the drill).
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let ckpts = (1..=2)
            .filter(|id| dir.join(format!("job-{id}.ckpt")).exists())
            .count();
        if ckpts >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoint ever appeared");
        std::thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL server");
    child.wait().expect("reap server");
    drop(c);

    // All four accepted jobs must still be journaled.
    for id in [j1, j2, j3, j4] {
        assert!(
            dir.join(format!("job-{id}.job")).exists(),
            "journal record for job {id} lost by the crash"
        );
    }

    // Corrupt j2's checkpoint (simulated torn disk): recovery must fall
    // back to a fresh run and still converge to the same result.
    let ckpt2 = dir.join(format!("job-{j2}.ckpt"));
    if ckpt2.exists() {
        let mut bytes = std::fs::read(&ckpt2).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&ckpt2, bytes).unwrap();
    }

    let (mut child2, addr2) = spawn_server(&dir, &["--workers", "2", "--retry-base-ms", "10"]);
    let mut c = Client::connect(addr2);

    // Atomic rename discipline means no record was torn: nothing
    // quarantined, and any leftover temp files were swept.
    let stats = c.request("STATS");
    assert!(stats.contains("\nquarantined=0"), "{stats}");

    let r1 = c.wait_terminal(j1);
    let r2 = c.wait_terminal(j2);
    let r3 = c.wait_terminal(j3);
    let r4 = c.wait_terminal(j4);
    for (id, r) in [(j1, &r1), (j2, &r2), (j3, &r3), (j4, &r4)] {
        assert!(r.starts_with("DONE\n"), "job {id} did not complete: {r}");
    }
    assert_eq!(r1, r2, "identical jobs must converge bitwise after crash");

    // Ground truth: an uninterrupted in-process run of the same job.
    let opts = JobOptions {
        seed: 5,
        shots: 64,
        ..JobOptions::default()
    };
    let reference = jobs::execute(
        &long,
        &opts,
        &dir.join("reference-unused.ckpt"),
        CancelToken::new(),
        CancelToken::new(),
        0,
        0,
    )
    .expect("reference run");
    assert_eq!(
        r1,
        format!("DONE\n{reference}"),
        "recovered result must be bitwise-identical to an uninterrupted run"
    );

    // No stray temp files survive recovery (mid-write artifacts are
    // swept, never promoted).
    let strays: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".tmp"))
        .collect();
    assert!(strays.is_empty(), "leftover temp files: {strays:?}");

    assert_eq!(c.request("SHUTDOWN"), "OK shutting down");
    child2.wait().expect("server exits after SHUTDOWN");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_journal_records_are_quarantined_not_fatal() {
    let dir = temp_dir("quarantine");
    std::fs::write(dir.join("job-7.job"), b"DDJOB1 this is not a record").unwrap();
    std::fs::write(dir.join("job-3.job.tmp"), b"torn mid-write").unwrap();

    let (mut child, addr) = spawn_server(&dir, &[]);
    let mut c = Client::connect(addr);
    let stats = c.request("STATS");
    assert!(stats.contains("\nquarantined=1"), "{stats}");
    assert!(
        dir.join("job-7.quarantine").exists(),
        "corrupt record must be preserved for inspection, not deleted"
    );
    assert!(!dir.join("job-3.job.tmp").exists(), "tmp not swept");

    // The server still takes and finishes work.
    let reply = c.request(&format!("SUBMIT t seed=1\n{BELL}"));
    let id: u64 = reply
        .strip_prefix("OK ")
        .expect("accepted")
        .parse()
        .unwrap();
    assert!(c.wait_terminal(id).starts_with("DONE\n"));

    assert_eq!(c.request("SHUTDOWN"), "OK shutting down");
    child.wait().expect("server exits");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repeated_kill_restart_cycles_converge() {
    // Kill-restart the server several times over the same data dir while
    // a checkpointed job is mid-flight: each incarnation resumes from
    // the latest checkpoint and the final result is still bitwise right.
    let dir = temp_dir("cycles");
    let long = long_circuit();
    let mut addr;
    let mut child;
    (child, addr) = spawn_server(&dir, &["--workers", "1"]);
    let id = {
        let mut c = Client::connect(addr);
        let reply = c.request(&format!(
            "SUBMIT drill seed=9 shots=16 ckpt_every=800\n{long}"
        ));
        reply
            .strip_prefix("OK ")
            .unwrap_or_else(|| panic!("submit rejected: {reply}"))
            .parse::<u64>()
            .unwrap()
    };

    for _cycle in 0..3 {
        // Let it make some progress (checkpoints appear), then kill.
        let deadline = Instant::now() + Duration::from_secs(60);
        let ckpt = dir.join(format!("job-{id}.ckpt"));
        let before = std::fs::metadata(&ckpt).ok().map(|m| m.len());
        loop {
            let now = std::fs::metadata(&ckpt).ok().map(|m| m.len());
            if now.is_some() && now != before {
                break; // a (new) checkpoint landed this incarnation
            }
            if Instant::now() > deadline {
                break; // job may already be done — fine, restart anyway
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        child.kill().expect("SIGKILL");
        child.wait().expect("reap");
        (child, addr) = spawn_server(&dir, &["--workers", "1"]);
    }

    let mut c = Client::connect(addr);
    let r = c.wait_terminal(id);
    assert!(r.starts_with("DONE\n"), "{r}");

    let reference = jobs::execute(
        &long,
        &JobOptions {
            seed: 9,
            shots: 16,
            ..JobOptions::default()
        },
        &dir.join("reference-unused.ckpt"),
        CancelToken::new(),
        CancelToken::new(),
        0,
        0,
    )
    .expect("reference run");
    assert_eq!(r, format!("DONE\n{reference}"));

    assert_eq!(c.request("SHUTDOWN"), "OK shutting down");
    child.wait().expect("server exits");
    std::fs::remove_dir_all(&dir).ok();
}

//! In-process end-to-end tests: a real `Server` on a loopback socket,
//! driven by a real TCP client, covering the full request surface plus
//! the supervision behaviours (panic containment + retry/backoff,
//! retries-exhausted typed failure, cancellation in every non-terminal
//! state, load shedding, and checkpoint-based eviction with bitwise
//! re-convergence).

use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use ddsim_server::protocol::{read_frame, write_frame};
use ddsim_server::{Server, ServerConfig};

const BELL: &str = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ddsim-e2e-{tag}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Starts a server on a fresh port, returns its address (the server
/// thread exits on SHUTDOWN).
fn start(cfg: ServerConfig) -> std::net::SocketAddr {
    let server = Server::bind(cfg).expect("bind server");
    let addr = server.local_addr().unwrap();
    std::thread::spawn(move || server.run().expect("server run"));
    addr
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn request(&mut self, payload: &str) -> String {
        write_frame(&mut self.writer, payload).expect("write frame");
        read_frame(&mut self.reader)
            .expect("read frame")
            .expect("reply before EOF")
    }
}

fn submit(c: &mut Client, tenant: &str, opts: &str, qasm: &str) -> u64 {
    let reply = c.request(&format!("SUBMIT {tenant} {opts}\n{qasm}"));
    let id = reply
        .strip_prefix("OK ")
        .unwrap_or_else(|| panic!("submit rejected: {reply}"));
    id.parse().expect("numeric job id")
}

/// Polls RESULT until the job is terminal; returns the full reply.
fn wait_terminal(c: &mut Client, id: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let reply = c.request(&format!("RESULT {id}"));
        if !reply.starts_with("PENDING") {
            return reply;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} stuck non-terminal: {reply}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn stat(c: &mut Client, key: &str) -> u64 {
    let reply = c.request("STATS");
    for line in reply.lines() {
        if let Some(v) = line.strip_prefix(&format!("{key}=")) {
            return v.parse().expect("numeric stat");
        }
    }
    panic!("stat {key} missing in:\n{reply}");
}

#[test]
fn submit_result_flow_is_deterministic_across_tenants() {
    let dir = temp_dir("basic");
    let addr = start(ServerConfig {
        data_dir: dir.clone(),
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);

    assert!(c.request("HEALTH").starts_with("OK "));
    let a = submit(&mut c, "alice", "seed=9 shots=256", BELL);
    let b = submit(&mut c, "bob", "seed=9 shots=256", BELL);
    let ra = wait_terminal(&mut c, a);
    let rb = wait_terminal(&mut c, b);
    assert!(ra.starts_with("DONE\ncounts qubits=2 shots=256"), "{ra}");
    assert_eq!(ra, rb, "same seed+circuit must be byte-identical");

    let status = c.request(&format!("STATUS {a}"));
    assert_eq!(status, format!("STATUS {a} done attempt=0"));
    assert!(c.request("STATUS 999").starts_with("ERR unknown job"));
    assert!(c.request("RESULT 999").starts_with("ERR unknown job"));

    // Adversarial submissions are rejected up front, before any journal
    // write (typed parser limits, malformed programs, bad options).
    assert!(c
        .request("SUBMIT alice\nnot qasm at all")
        .starts_with("ERR "));
    assert!(c
        .request(&format!("SUBMIT alice bogus_opt=1\n{BELL}"))
        .starts_with("ERR unknown option"));
    assert!(
        c.request(&format!("SUBMIT alice fault=panic:1\n{BELL}"))
            .starts_with("ERR fault injection is disabled"),
        "faults must be rejected unless --enable-test-faults"
    );
    assert_eq!(stat(&mut c, "done"), 2);
    assert_eq!(stat(&mut c, "submitted"), 2);

    assert_eq!(c.request("SHUTDOWN"), "OK shutting down");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_panics_are_contained_retried_and_eventually_typed() {
    let dir = temp_dir("panic");
    let addr = start(ServerConfig {
        data_dir: dir.clone(),
        retry_max: 3,
        retry_base_ms: 1,
        enable_test_faults: true,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);

    // Panics twice (attempts 0 and 1), succeeds on attempt 2.
    let flaky = submit(&mut c, "t", "seed=3 shots=64 fault=panic:2", BELL);
    let r = wait_terminal(&mut c, flaky);
    assert!(r.starts_with("DONE\n"), "flaky job must recover: {r}");
    assert_eq!(
        c.request(&format!("STATUS {flaky}")),
        format!("STATUS {flaky} done attempt=2")
    );

    // Panics on every attempt: retries exhaust, typed Internal failure.
    let doomed = submit(&mut c, "t", "fault=panic:255", BELL);
    let r = wait_terminal(&mut c, doomed);
    assert!(
        r.starts_with("FAILED 1 ") && r.contains("worker panicked"),
        "exhausted retries must surface the contained panic: {r}"
    );
    assert_eq!(stat(&mut c, "panics_contained"), 2 + 4); // 2 flaky + 1+3 doomed
    assert_eq!(stat(&mut c, "retries"), 2 + 3);
    assert_eq!(stat(&mut c, "failed"), 1);

    // The server is still healthy after all that.
    let ok = submit(&mut c, "t", "seed=1", BELL);
    assert!(wait_terminal(&mut c, ok).starts_with("DONE\n"));

    assert_eq!(c.request("SHUTDOWN"), "OK shutting down");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_shedding_and_tenant_caps_reply_busy() {
    // queue_cap = 0: every submission is shed with a pacing hint.
    let dir = temp_dir("shed");
    let addr = start(ServerConfig {
        data_dir: dir.clone(),
        queue_cap: 0,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);
    let reply = c.request(&format!("SUBMIT t\n{BELL}"));
    assert!(reply.starts_with("BUSY retry-after="), "{reply}");
    assert_eq!(stat(&mut c, "shed"), 1);
    assert_eq!(c.request("SHUTDOWN"), "OK shutting down");
    std::fs::remove_dir_all(&dir).ok();

    // Per-tenant cap: park one job in retry-backoff (it panics and the
    // backoff is 60 s), then the same tenant is refused while another
    // tenant is admitted. Cancelling the parked job frees the slot.
    let dir = temp_dir("tenant");
    let addr = start(ServerConfig {
        data_dir: dir.clone(),
        tenant_max_active: 1,
        retry_max: 5,
        retry_base_ms: 60_000,
        enable_test_faults: true,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);
    let parked = submit(&mut c, "greedy", "fault=panic:255", BELL);
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status = c.request(&format!("STATUS {parked}"));
        if status.contains("queued attempt=1") {
            break; // first attempt panicked, now parked in backoff
        }
        assert!(Instant::now() < deadline, "never parked: {status}");
        std::thread::sleep(Duration::from_millis(5));
    }
    let refused = c.request(&format!("SUBMIT greedy\n{BELL}"));
    assert!(refused.starts_with("BUSY retry-after="), "{refused}");
    assert!(refused.contains("tenant-cap=1"), "{refused}");
    let other = submit(&mut c, "modest", "seed=1", BELL);
    assert!(wait_terminal(&mut c, other).starts_with("DONE\n"));

    assert_eq!(
        c.request(&format!("CANCEL {parked}")),
        format!("OK cancel {parked}")
    );
    let r = wait_terminal(&mut c, parked);
    assert!(r.starts_with("CANCELLED "), "{r}");
    assert!(
        c.request(&format!("CANCEL {parked}")).starts_with("ERR "),
        "cancelling a terminal job is an error"
    );
    let freed = submit(&mut c, "greedy", "seed=2", BELL);
    assert!(wait_terminal(&mut c, freed).starts_with("DONE\n"));

    assert_eq!(c.request("SHUTDOWN"), "OK shutting down");
    std::fs::remove_dir_all(&dir).ok();
}

/// A deliberately long-running circuit: enough ops that the dispatcher's
/// eviction latch (a ~50 ms clock) always lands mid-run, while the DD
/// stays tiny (a GHZ state under single-qubit rotations keeps ~10 live
/// nodes) so the job's own node budget never trips.
fn long_circuit() -> String {
    let mut q = String::from("OPENQASM 2.0;\nqreg q[10];\nh q[0];\n");
    for i in 0..9 {
        q.push_str(&format!("cx q[{i}],q[{}];\n", i + 1));
    }
    for k in 0..120_000u64 {
        q.push_str(&format!("rz(0.37) q[{}];\n", k % 10));
    }
    q
}

#[test]
fn memory_pressure_evicts_heaviest_job_and_resumes_bitwise() {
    let dir = temp_dir("evict");
    let addr = start(ServerConfig {
        data_dir: dir.clone(),
        workers: 2,
        // Budget fits the heavy job alone, or the light job alone, but
        // not both: admitting the light job requires evicting the heavy.
        max_total_nodes: 1_050,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);
    let heavy_qasm = long_circuit();

    let heavy = submit(
        &mut c,
        "bulk",
        "seed=11 shots=128 max_nodes=1000 ckpt_every=5000",
        &heavy_qasm,
    );
    // Wait until the heavy job holds a lane, then submit the light one.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if c.request(&format!("STATUS {heavy}")).contains("running") {
            break;
        }
        assert!(Instant::now() < deadline, "heavy job never started");
        std::thread::sleep(Duration::from_millis(2));
    }
    let light = submit(&mut c, "interactive", "seed=1 max_nodes=100", BELL);

    let light_reply = wait_terminal(&mut c, light);
    assert!(light_reply.starts_with("DONE\n"), "{light_reply}");
    let heavy_reply = wait_terminal(&mut c, heavy);
    assert!(heavy_reply.starts_with("DONE\n"), "{heavy_reply}");
    assert!(
        stat(&mut c, "evictions") >= 1,
        "the heavy job should have been checkpoint-evicted"
    );

    // Bitwise re-convergence: an identical job run without any eviction
    // must produce the byte-identical result text.
    let control = submit(
        &mut c,
        "control",
        "seed=11 shots=128 max_nodes=1000",
        &heavy_qasm,
    );
    let control_reply = wait_terminal(&mut c, control);
    assert_eq!(
        heavy_reply, control_reply,
        "evict+resume must be bitwise-identical to an uninterrupted run"
    );

    assert_eq!(c.request("SHUTDOWN"), "OK shutting down");
    std::fs::remove_dir_all(&dir).ok();
}

//! Job options, lifecycle states, and the execution routine a worker
//! lane runs.
//!
//! Execution is **deterministic**: one job = one single-threaded
//! [`Simulator`] seeded from the job's options, so a job resumed from a
//! checkpoint — or re-run from scratch after a crash — produces the
//! byte-identical result text. Parallelism lives *across* jobs (the
//! worker pool), never inside one.

use std::path::Path;
use std::time::Duration;

use ddsim_circuit::qasm::{parse_with_limits, ParseLimits};
use ddsim_core::{
    CancelToken, CheckpointConfig, DdConfig, SimError, SimOptions, Simulator, Strategy,
};

/// Per-job options parsed from the `SUBMIT` header's `key=value` pairs.
#[derive(Clone, Debug, PartialEq)]
pub struct JobOptions {
    /// Measurement seed (determinism anchor).
    pub seed: u64,
    /// Shots for the counts read-out.
    pub shots: u32,
    /// Combining strategy.
    pub strategy: Strategy,
    /// Per-job live-node budget; 0 means the server default applies.
    pub max_nodes: u64,
    /// Wall-clock budget in milliseconds; 0 disables.
    pub deadline_ms: u64,
    /// Checkpoint every N executed ops; 0 disables checkpointing (the
    /// job then restarts from scratch after a crash or eviction — still
    /// correct, just slower).
    pub ckpt_every: u64,
    /// Test-only fault injection (requires `--enable-test-faults`).
    pub fault: Option<FaultSpec>,
}

impl Default for JobOptions {
    fn default() -> Self {
        JobOptions {
            seed: 0,
            shots: 1024,
            strategy: Strategy::Sequential,
            max_nodes: 0,
            deadline_ms: 0,
            ckpt_every: 0,
            fault: None,
        }
    }
}

/// Deterministic fault injection for the supervision tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// Panic at the start of every attempt numbered `< until_attempt`
    /// (attempts count from 0), succeed afterwards. `panic:255` never
    /// stops panicking — the retries-exhausted scenario.
    Panic {
        /// First attempt number that does NOT panic.
        until_attempt: u32,
    },
}

impl JobOptions {
    /// Parses `SUBMIT` option pairs. `allow_faults` gates the test-only
    /// `fault=` key so production servers cannot be panicked to order.
    pub fn parse(pairs: &[(String, String)], allow_faults: bool) -> Result<JobOptions, String> {
        let mut o = JobOptions::default();
        for (k, v) in pairs {
            match k.as_str() {
                "seed" => o.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?,
                "shots" => {
                    o.shots = v.parse().map_err(|_| format!("bad shots `{v}`"))?;
                    if o.shots > 1_000_000 {
                        return Err("shots capped at 1000000".into());
                    }
                }
                "strategy" => o.strategy = v.parse().map_err(|e| format!("{e}"))?,
                "max_nodes" => {
                    o.max_nodes = v.parse().map_err(|_| format!("bad max_nodes `{v}`"))?
                }
                "deadline_ms" => {
                    o.deadline_ms = v.parse().map_err(|_| format!("bad deadline_ms `{v}`"))?
                }
                "ckpt_every" => {
                    o.ckpt_every = v.parse().map_err(|_| format!("bad ckpt_every `{v}`"))?
                }
                "fault" => {
                    if !allow_faults {
                        return Err("fault injection is disabled on this server".into());
                    }
                    o.fault = Some(parse_fault(v)?);
                }
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(o)
    }

    /// The compact `key=value` rendering, inverse of [`parse`](Self::parse)
    /// (used by the journal).
    pub fn strategy_spec(&self) -> String {
        match self.strategy {
            Strategy::Sequential => "sequential".into(),
            Strategy::KOperations { k } => format!("kops:{k}"),
            Strategy::MaxSize { s_max } => format!("maxsize:{s_max}"),
            Strategy::DdRepeating { k } => format!("ddrepeating:{k}"),
            Strategy::Adaptive { .. } => "adaptive".into(),
        }
    }

    /// The fault spec's journal rendering (`-` when absent).
    pub fn fault_spec(&self) -> String {
        match self.fault {
            None => "-".into(),
            Some(FaultSpec::Panic { until_attempt }) => format!("panic:{until_attempt}"),
        }
    }
}

/// Parses `panic:N`.
pub fn parse_fault(spec: &str) -> Result<FaultSpec, String> {
    match spec.split_once(':') {
        Some(("panic", n)) => n
            .parse()
            .map(|until_attempt| FaultSpec::Panic { until_attempt })
            .map_err(|_| format!("bad fault attempt count `{n}`")),
        _ => Err(format!("unknown fault `{spec}` (expected panic:N)")),
    }
}

/// A job's lifecycle state. `Queued → Running → {Done, Failed,
/// Cancelled}`, with `Running → Queued` edges for eviction (suspend) and
/// retry-with-backoff. Terminal states never transition again.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and journaled, waiting for a worker lane.
    Queued,
    /// On a worker lane.
    Running,
    /// Completed; the result is in the journal.
    Done,
    /// Terminal typed failure (retries exhausted or deterministic error).
    Failed,
    /// Cancelled by the client.
    Cancelled,
}

impl JobState {
    /// Journal/protocol rendering.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Result<JobState, String> {
        Ok(match s {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            "cancelled" => JobState::Cancelled,
            other => return Err(format!("unknown job state `{other}`")),
        })
    }

    /// Whether the state can never transition again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Maps a [`SimError`] onto the CLI's documented exit-code taxonomy —
/// the `FAILED <code>` responses reuse the same numbers, so one table
/// serves both surfaces.
pub fn error_code(e: &SimError) -> u8 {
    match e {
        SimError::BudgetExceeded { .. } => 2,
        SimError::DeadlineExceeded => 3,
        SimError::Cancelled => 4,
        SimError::WidthMismatch { .. } => 5,
        SimError::Snapshot(_) => 6,
        SimError::Suspended => 7,
        SimError::Internal(_) => 1,
    }
}

/// Whether a failure is worth retrying. Deterministic rejections
/// (budget, deadline, width, cancellation) would fail identically on
/// every attempt; checkpoint I/O and internal errors (including
/// contained panics, which arrive as `Internal`) may be transient.
pub fn retryable(e: &SimError) -> bool {
    matches!(e, SimError::Snapshot(_) | SimError::Internal(_))
}

/// Runs one attempt of a job to completion, suspension, or error.
///
/// * `ckpt_path` — the job's checkpoint file; resumed from when present
///   and valid, written every `ckpt_every` ops (and on suspension).
/// * `suspend` / `cancel` — the supervisor's cooperative tokens.
/// * `effective_max_nodes` — the admission-controlled node budget
///   (option value or server default); 0 disables.
/// * `attempt` — this attempt's number, consumed by fault injection.
///
/// Returns the deterministic result text on success.
pub fn execute(
    qasm: &str,
    opts: &JobOptions,
    ckpt_path: &Path,
    suspend: CancelToken,
    cancel: CancelToken,
    effective_max_nodes: u64,
    attempt: u32,
) -> Result<String, SimError> {
    if let Some(FaultSpec::Panic { until_attempt }) = opts.fault {
        if attempt < until_attempt {
            panic!("injected test fault (attempt {attempt} < {until_attempt})");
        }
    }
    let circuit = parse_with_limits(qasm, &ParseLimits::UNTRUSTED)
        .map_err(|e| SimError::Internal(format!("journaled QASM no longer parses: {e}")))?;
    let sim_options = SimOptions {
        strategy: opts.strategy,
        seed: opts.seed,
        dd_config: DdConfig {
            max_live_nodes: match effective_max_nodes {
                0 => None,
                n => Some(n as usize),
            },
            ..DdConfig::default()
        },
        deadline: match opts.deadline_ms {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        },
        ..SimOptions::default()
    };
    let ckpt_cfg = (opts.ckpt_every > 0).then(|| CheckpointConfig {
        every_ops: opts.ckpt_every,
        path: ckpt_path.to_path_buf(),
    });

    // Resume from a valid checkpoint; a missing, corrupt, or
    // wrong-circuit file falls back to a fresh run (the deterministic
    // engine converges to the same result either way).
    let (mut sim, start_op) = match Simulator::resume_from(ckpt_path, &circuit, sim_options) {
        Ok((sim, at)) => (sim, at),
        Err(_) => (Simulator::with_options(circuit.qubits(), sim_options), 0),
    };
    sim.set_cancel_token(Some(cancel));
    sim.set_suspend_token(Some(suspend));
    sim.run_from(&circuit, start_op, ckpt_cfg.as_ref())?;

    // Deterministic result text: sorted counts, fixed header.
    let mut counts: Vec<(u64, u32)> = sim.sample_counts(opts.shots).into_iter().collect();
    counts.sort_unstable();
    let mut out = format!(
        "counts qubits={} shots={} nodes={}",
        sim.qubits(),
        opts.shots,
        sim.state_nodes()
    );
    for (outcome, count) in counts {
        out.push_str(&format!("\n{outcome} {count}"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BELL: &str = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";

    fn pairs(kv: &[(&str, &str)]) -> Vec<(String, String)> {
        kv.iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn options_parse_and_reject() {
        let o = JobOptions::parse(
            &pairs(&[
                ("seed", "7"),
                ("shots", "64"),
                ("strategy", "kops:4"),
                ("max_nodes", "1000"),
                ("deadline_ms", "2000"),
                ("ckpt_every", "3"),
            ]),
            false,
        )
        .unwrap();
        assert_eq!(o.seed, 7);
        assert_eq!(o.shots, 64);
        assert_eq!(o.strategy, Strategy::KOperations { k: 4 });
        assert_eq!(o.max_nodes, 1000);
        assert!(JobOptions::parse(&pairs(&[("bogus", "1")]), false).is_err());
        assert!(JobOptions::parse(&pairs(&[("shots", "2000000")]), false).is_err());
        assert!(
            JobOptions::parse(&pairs(&[("fault", "panic:1")]), false).is_err(),
            "faults must be gated"
        );
        let o = JobOptions::parse(&pairs(&[("fault", "panic:2")]), true).unwrap();
        assert_eq!(o.fault, Some(FaultSpec::Panic { until_attempt: 2 }));
    }

    #[test]
    fn execute_is_deterministic_per_seed() {
        let dir = std::env::temp_dir().join(format!("ddsim-jobs-det-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let opts = JobOptions {
            seed: 5,
            shots: 128,
            ..JobOptions::default()
        };
        let run = || {
            execute(
                BELL,
                &opts,
                &dir.join("never-written.ckpt"),
                CancelToken::new(),
                CancelToken::new(),
                0,
                0,
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must give byte-identical results");
        assert!(a.starts_with("counts qubits=2 shots=128"));
        let other = execute(
            BELL,
            &JobOptions {
                seed: 6,
                shots: 128,
                ..JobOptions::default()
            },
            &dir.join("never-written.ckpt"),
            CancelToken::new(),
            CancelToken::new(),
            0,
            0,
        )
        .unwrap();
        assert_ne!(a, other, "different seeds should differ for a Bell pair");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_panics_fire_per_attempt() {
        let opts = JobOptions {
            fault: Some(FaultSpec::Panic { until_attempt: 2 }),
            ..JobOptions::default()
        };
        let tmp = std::env::temp_dir().join("ddsim-jobs-fault.ckpt");
        for attempt in 0..2 {
            let r = std::panic::catch_unwind(|| {
                execute(
                    BELL,
                    &opts,
                    &tmp,
                    CancelToken::new(),
                    CancelToken::new(),
                    0,
                    attempt,
                )
            });
            assert!(r.is_err(), "attempt {attempt} must panic");
        }
        let r = std::panic::catch_unwind(|| {
            execute(
                BELL,
                &opts,
                &tmp,
                CancelToken::new(),
                CancelToken::new(),
                0,
                2,
            )
        });
        assert!(r.unwrap().is_ok(), "attempt 2 must succeed");
    }

    #[test]
    fn budget_and_cancel_surface_typed() {
        // Budget enforcement is amortized *inside* governed ops (the
        // degradation ladder is its rescue path, see DdManager::charge),
        // so the breach circuit must be pseudo-random enough to grow the
        // DD well past the budget and run single ops long enough for a
        // charge point to land mid-op. A Bell pair finishes between
        // charge points — by design, not a leak.
        let mut src = String::from("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[12];\n");
        for q in 0..12 {
            src.push_str(&format!("h q[{q}];\n"));
        }
        for layer in 0..16 {
            for q in 0..12 {
                let angle = 0.37 + 0.11 * (layer * 12 + q) as f64;
                src.push_str(&format!("rz({angle}) q[{q}];\n"));
            }
            for q in 0..11 {
                src.push_str(&format!("cx q[{q}],q[{}];\n", q + 1));
            }
            for q in 0..12 {
                src.push_str(&format!("h q[{q}];\n"));
            }
        }
        let e = execute(
            &src,
            &JobOptions::default(),
            Path::new("/nonexistent/x.ckpt"),
            CancelToken::new(),
            CancelToken::new(),
            1,
            0,
        )
        .unwrap_err();
        assert_eq!(error_code(&e), 2, "budget failure, got {e:?}");
        assert!(!retryable(&e), "budget failures are deterministic");

        let cancel = CancelToken::new();
        cancel.cancel();
        let e = execute(
            BELL,
            &JobOptions::default(),
            Path::new("/nonexistent/x.ckpt"),
            CancelToken::new(),
            cancel,
            0,
            0,
        )
        .unwrap_err();
        assert_eq!(e, SimError::Cancelled);
    }
}

//! The write-ahead job journal: one checksummed record file per job.
//!
//! Every state a job passes through is persisted by atomically rewriting
//! its record (`job-<id>.job`): write to `job-<id>.job.tmp`, fsync,
//! rename over the record, fsync the directory — the same durability
//! discipline as [`ddsim_dd::Snapshot::save`]. A reader therefore sees
//! either the complete old record or the complete new one, never a torn
//! mix; a `kill -9` between rename and fsync at worst reverts to the
//! previous durable state, which the recovery scan handles like any
//! other non-terminal record (re-queue and re-run — correct because
//! execution is deterministic).
//!
//! The WAL ordering invariant: a `SUBMIT` is acknowledged to the client
//! only *after* its `queued` record is durable. Accepted-but-lost jobs
//! are therefore impossible; the converse (journaled but the `OK` reply
//! lost to the crash) leaves a job the server will still run — visible
//! under the id the client never learned, which is why ids are also
//! returned by `STATS`-level debugging rather than being load-bearing.
//!
//! # Record format
//!
//! Line-oriented header, byte-framed payload sections (QASM and result
//! can contain anything), trailing FNV-1a checksum over every byte that
//! precedes it:
//!
//! ```text
//! DDJOB1
//! id=<u64>
//! tenant=<name>
//! state=queued|running|done|failed|cancelled
//! attempt=<u32>
//! seed=<u64>
//! shots=<u32>
//! strategy=<compact spec>
//! max_nodes=<u64>
//! deadline_ms=<u64>
//! ckpt_every=<u64>
//! fault=<panic:N or ->
//! code=<u8>                   error code, 0 when not failed
//! qasm_len=<bytes>\n<qasm bytes>
//! result_len=<bytes>\n<result bytes>
//! error_len=<bytes>\n<error bytes>
//! checksum=<16 hex digits>
//! ```

use std::io;
use std::path::{Path, PathBuf};

use ddsim_dd::snapshot::{fnv1a, sync_parent_dir};

use crate::jobs::{parse_fault, JobOptions, JobState};

/// Magic first line of a record file.
const MAGIC: &str = "DDJOB1";

/// One job's durable state.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRecord {
    /// Server-assigned id (monotonic per journal directory).
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Lifecycle state as of the last durable transition.
    pub state: JobState,
    /// Attempts consumed (survives crashes: a panic loop cannot retry
    /// forever by resetting its counter on restart).
    pub attempt: u32,
    /// Execution options.
    pub opts: JobOptions,
    /// The submitted program.
    pub qasm: String,
    /// Result text once `state == Done`.
    pub result: String,
    /// Error rendering once `state == Failed` / `Cancelled`.
    pub error: String,
    /// Exit-code-taxonomy number for `Failed` (0 otherwise).
    pub code: u8,
}

impl JobRecord {
    /// A fresh `queued` record for a just-accepted job.
    pub fn new(id: u64, tenant: String, opts: JobOptions, qasm: String) -> JobRecord {
        JobRecord {
            id,
            tenant,
            state: JobState::Queued,
            attempt: 0,
            opts,
            qasm,
            result: String::new(),
            error: String::new(),
            code: 0,
        }
    }

    /// The record's path under `dir`.
    pub fn path_in(dir: &Path, id: u64) -> PathBuf {
        dir.join(format!("job-{id}.job"))
    }

    /// The job's checkpoint path under `dir` (engine snapshot format).
    pub fn ckpt_path_in(dir: &Path, id: u64) -> PathBuf {
        dir.join(format!("job-{id}.ckpt"))
    }

    /// Serializes the record (checksummed, see the module docs).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        out.push_str(&format!("id={}\n", self.id));
        out.push_str(&format!("tenant={}\n", self.tenant));
        out.push_str(&format!("state={}\n", self.state.as_str()));
        out.push_str(&format!("attempt={}\n", self.attempt));
        out.push_str(&format!("seed={}\n", self.opts.seed));
        out.push_str(&format!("shots={}\n", self.opts.shots));
        out.push_str(&format!("strategy={}\n", self.opts.strategy_spec()));
        out.push_str(&format!("max_nodes={}\n", self.opts.max_nodes));
        out.push_str(&format!("deadline_ms={}\n", self.opts.deadline_ms));
        out.push_str(&format!("ckpt_every={}\n", self.opts.ckpt_every));
        out.push_str(&format!("fault={}\n", self.opts.fault_spec()));
        out.push_str(&format!("code={}\n", self.code));
        let mut bytes = out.into_bytes();
        for (tag, payload) in [
            ("qasm_len", self.qasm.as_bytes()),
            ("result_len", self.result.as_bytes()),
            ("error_len", self.error.as_bytes()),
        ] {
            bytes.extend_from_slice(format!("{tag}={}\n", payload.len()).as_bytes());
            bytes.extend_from_slice(payload);
        }
        let sum = fnv1a(&bytes);
        bytes.extend_from_slice(format!("\nchecksum={sum:016x}").as_bytes());
        bytes
    }

    /// Parses and checksum-verifies a serialized record.
    pub fn from_bytes(bytes: &[u8]) -> Result<JobRecord, String> {
        let tail_at = bytes
            .len()
            .checked_sub(26)
            .ok_or("record too short for a checksum")?;
        let tail = std::str::from_utf8(&bytes[tail_at..]).map_err(|_| "bad checksum tail")?;
        let sum_hex = tail
            .strip_prefix("\nchecksum=")
            .ok_or("missing checksum line")?;
        let want = u64::from_str_radix(sum_hex, 16).map_err(|_| "bad checksum digits")?;
        let got = fnv1a(&bytes[..tail_at]);
        if want != got {
            return Err(format!("checksum mismatch ({got:016x} != {want:016x})"));
        }

        let mut rest = &bytes[..tail_at];
        let mut line = || -> Result<&str, String> {
            let pos = rest
                .iter()
                .position(|&b| b == b'\n')
                .ok_or("truncated header")?;
            let l = std::str::from_utf8(&rest[..pos]).map_err(|_| "non-UTF-8 header")?;
            rest = &rest[pos + 1..];
            Ok(l)
        };
        if line()? != MAGIC {
            return Err("bad record magic".into());
        }
        let mut field = |key: &str| -> Result<String, String> {
            let l = line()?;
            l.strip_prefix(key)
                .and_then(|l| l.strip_prefix('='))
                .map(str::to_string)
                .ok_or_else(|| format!("expected `{key}=`, got `{l}`"))
        };
        let id = field("id")?.parse().map_err(|_| "bad id")?;
        let tenant = field("tenant")?;
        let state = JobState::parse(&field("state")?)?;
        let attempt = field("attempt")?.parse().map_err(|_| "bad attempt")?;
        let seed = field("seed")?.parse().map_err(|_| "bad seed")?;
        let shots = field("shots")?.parse().map_err(|_| "bad shots")?;
        let strategy = field("strategy")?
            .parse()
            .map_err(|e| format!("bad strategy: {e}"))?;
        let max_nodes = field("max_nodes")?.parse().map_err(|_| "bad max_nodes")?;
        let deadline_ms = field("deadline_ms")?
            .parse()
            .map_err(|_| "bad deadline_ms")?;
        let ckpt_every = field("ckpt_every")?.parse().map_err(|_| "bad ckpt_every")?;
        let fault = match field("fault")?.as_str() {
            "-" => None,
            spec => Some(parse_fault(spec)?),
        };
        let code = field("code")?.parse().map_err(|_| "bad code")?;

        let mut section = |tag: &str| -> Result<String, String> {
            let pos = rest
                .iter()
                .position(|&b| b == b'\n')
                .ok_or("truncated section header")?;
            let l = std::str::from_utf8(&rest[..pos]).map_err(|_| "non-UTF-8 section")?;
            let len: usize = l
                .strip_prefix(tag)
                .and_then(|l| l.strip_prefix('='))
                .ok_or_else(|| format!("expected `{tag}=`"))?
                .parse()
                .map_err(|_| format!("bad `{tag}` length"))?;
            rest = &rest[pos + 1..];
            if rest.len() < len {
                return Err(format!("`{tag}` section exceeds the record"));
            }
            let payload =
                String::from_utf8(rest[..len].to_vec()).map_err(|_| "non-UTF-8 payload")?;
            rest = &rest[len..];
            Ok(payload)
        };
        let qasm = section("qasm_len")?;
        let result = section("result_len")?;
        let error = section("error_len")?;
        if !rest.is_empty() {
            return Err("trailing bytes after sections".into());
        }

        Ok(JobRecord {
            id,
            tenant,
            state,
            attempt,
            opts: JobOptions {
                seed,
                shots,
                strategy,
                max_nodes,
                deadline_ms,
                ckpt_every,
                fault,
            },
            qasm,
            result,
            error,
            code,
        })
    }

    /// Durably writes the record into `dir` (atomic tmp + rename + file
    /// and directory fsync). Any previous version is replaced whole.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        let path = Self::path_in(dir, self.id);
        let tmp = path.with_extension("job.tmp");
        let bytes = self.to_bytes();
        std::fs::write(&tmp, &bytes)?;
        let f = std::fs::File::open(&tmp)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, &path)?;
        sync_parent_dir(&path).map_err(|e| io::Error::other(e.to_string()))?;
        Ok(())
    }

    /// Loads and verifies one record file.
    pub fn load(path: &Path) -> Result<JobRecord, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_bytes(&bytes)
    }
}

/// Result of a startup journal scan.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Every valid record, sorted by id.
    pub records: Vec<JobRecord>,
    /// Files that failed checksum/parse and were quarantined
    /// (renamed to `*.quarantine`, never deleted).
    pub quarantined: usize,
    /// Leftover `*.tmp` files removed (torn writes mid-rename).
    pub cleaned_tmp: usize,
}

/// Scans `dir` for journal records, cleaning torn temp files and
/// quarantining corrupt records along the way.
pub fn scan(dir: &Path) -> io::Result<ScanOutcome> {
    let mut out = ScanOutcome::default();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.ends_with(".tmp") {
            std::fs::remove_file(&path)?;
            out.cleaned_tmp += 1;
            continue;
        }
        if !(name.starts_with("job-") && name.ends_with(".job")) {
            continue;
        }
        match JobRecord::load(&path) {
            Ok(rec) => out.records.push(rec),
            Err(_) => {
                let mut q = path.clone();
                q.set_extension("quarantine");
                std::fs::rename(&path, &q)?;
                out.quarantined += 1;
            }
        }
    }
    out.records.sort_by_key(|r| r.id);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddsim_core::Strategy;

    fn record() -> JobRecord {
        JobRecord {
            id: 42,
            tenant: "alice".into(),
            state: JobState::Running,
            attempt: 3,
            opts: JobOptions {
                seed: 9,
                shots: 256,
                strategy: Strategy::MaxSize { s_max: 128 },
                max_nodes: 5000,
                deadline_ms: 1500,
                ckpt_every: 4,
                fault: None,
            },
            qasm: "OPENQASM 2.0;\nqreg q[2];\nh q[0];\n".into(),
            result: "counts qubits=2 shots=256\n0 130\n1 126".into(),
            error: String::new(),
            code: 0,
        }
    }

    #[test]
    fn records_round_trip() {
        let rec = record();
        let bytes = rec.to_bytes();
        let back = JobRecord::from_bytes(&bytes).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn corruption_is_detected() {
        let rec = record();
        let bytes = rec.to_bytes();
        for at in [0, 10, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x01;
            assert!(
                JobRecord::from_bytes(&bad).is_err(),
                "flip at byte {at} must be caught"
            );
        }
        assert!(JobRecord::from_bytes(&bytes[..bytes.len() - 4]).is_err());
        assert!(JobRecord::from_bytes(b"").is_err());
    }

    #[test]
    fn save_scan_and_quarantine() {
        let dir = std::env::temp_dir().join(format!("ddsim-journal-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();

        let mut a = record();
        a.id = 1;
        let mut b = record();
        b.id = 2;
        b.state = JobState::Done;
        a.save(&dir).unwrap();
        b.save(&dir).unwrap();
        // Torn tmp file and a corrupt record alongside.
        std::fs::write(dir.join("job-3.job.tmp"), b"torn").unwrap();
        std::fs::write(dir.join("job-4.job"), b"garbage").unwrap();

        let scan1 = scan(&dir).unwrap();
        assert_eq!(
            scan1.records.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(scan1.quarantined, 1);
        assert_eq!(scan1.cleaned_tmp, 1);
        assert!(dir.join("job-4.quarantine").exists(), "never deleted");

        // Rewriting a record replaces it atomically; a second scan sees
        // the new state and no strays.
        let mut a2 = a.clone();
        a2.state = JobState::Failed;
        a2.code = 2;
        a2.error = "resource budget exhausted".into();
        a2.save(&dir).unwrap();
        let scan2 = scan(&dir).unwrap();
        assert_eq!(scan2.cleaned_tmp, 0);
        let got = scan2.records.iter().find(|r| r.id == 1).unwrap();
        assert_eq!(got.state, JobState::Failed);
        assert_eq!(got.code, 2);

        std::fs::remove_dir_all(&dir).ok();
    }
}

//! The daemon: acceptor, dispatcher/supervisor, and worker lanes.
//!
//! Thread model (all `std`, all blocking — see DESIGN.md §15 for why):
//!
//! * the **acceptor** (the thread inside [`Server::run`]) blocks on
//!   `TcpListener::accept` and spawns one short-lived handler thread per
//!   connection;
//! * the **dispatcher** owns admission: it moves due retries back into
//!   the queue, launches queued jobs onto the worker pool while lanes
//!   and the node budget allow, and latches suspend tokens to evict the
//!   heaviest running job when the budget blocks the queue;
//! * **worker lanes** are the [`ThreadPool`]'s threads (`workers + 1`
//!   parallelism, submission via the injector). Each job attempt runs
//!   under `catch_unwind`: a panic is *contained* — journaled, counted,
//!   retried with exponential backoff, and turned into a typed
//!   `Failed` once the retry budget is gone. The server never dies with
//!   a job.
//!
//! Every state transition is durably journaled *before* it is
//! acknowledged or acted on (WAL discipline, see `journal.rs`), which is
//! what makes `kill -9` at any instant recoverable: on restart,
//! non-terminal jobs re-enter the queue and resume from their last
//! checkpoint (bitwise-identically) or from scratch (same result, by
//! determinism).

use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use ddsim_circuit::qasm::{parse_with_limits, ParseLimits};
use ddsim_core::{CancelToken, SimError, ThreadPool};

use crate::jobs::{self, JobOptions, JobState};
use crate::journal::{self, JobRecord};
use crate::protocol::{parse_request, read_frame, write_frame, Request};

/// Server tuning knobs (all have serviceable defaults).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Journal + checkpoint directory.
    pub data_dir: PathBuf,
    /// Worker lanes (concurrent jobs).
    pub workers: usize,
    /// Queued-job cap; submissions beyond it are shed with `BUSY`.
    pub queue_cap: usize,
    /// Per-tenant cap on queued + running jobs.
    pub tenant_max_active: usize,
    /// Global node budget across *running* jobs; 0 disables admission
    /// control and eviction.
    pub max_total_nodes: u64,
    /// Node budget assigned to jobs that do not set `max_nodes`.
    pub default_max_nodes: u64,
    /// Attempts after the first before a retryable failure turns
    /// terminal.
    pub retry_max: u32,
    /// Backoff base: attempt `n` waits `retry_base_ms << (n-1)`.
    pub retry_base_ms: u64,
    /// Accept `fault=` options (integration tests only).
    pub enable_test_faults: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            data_dir: PathBuf::from("ddsim-server-data"),
            workers: 2,
            queue_cap: 64,
            tenant_max_active: 16,
            max_total_nodes: 0,
            default_max_nodes: 1 << 22,
            retry_max: 3,
            retry_base_ms: 50,
            enable_test_faults: false,
        }
    }
}

/// Monotonic counters, surfaced by `STATS`.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Jobs accepted (journaled + acknowledged).
    pub submitted: u64,
    /// Jobs completed successfully.
    pub done: u64,
    /// Jobs that reached `Failed`.
    pub failed: u64,
    /// Jobs cancelled by clients.
    pub cancelled: u64,
    /// Retry attempts scheduled.
    pub retries: u64,
    /// Worker panics contained by the supervisor.
    pub panics_contained: u64,
    /// Suspend-and-requeue evictions under memory pressure.
    pub evictions: u64,
    /// Submissions shed with `BUSY`.
    pub shed: u64,
    /// Non-terminal jobs re-queued by crash recovery at startup.
    pub recovered: u64,
    /// Corrupt journal records quarantined at startup.
    pub quarantined: u64,
}

/// One live job: its durable record plus in-memory control handles.
struct Job {
    rec: JobRecord,
    cancel: CancelToken,
    suspend: CancelToken,
    /// An eviction latch is pending (cleared when the attempt lands).
    evicting: bool,
}

impl Job {
    fn from_record(rec: JobRecord) -> Job {
        Job {
            rec,
            cancel: CancelToken::new(),
            suspend: CancelToken::new(),
            evicting: false,
        }
    }
}

/// Mutable server state under the one lock.
struct Inner {
    jobs: HashMap<u64, Job>,
    /// Runnable job ids, FIFO; evicted jobs re-enter at the front.
    queue: VecDeque<u64>,
    /// Backoff parking lot: `(due, id)`, scanned linearly (small).
    retries: Vec<(Instant, u64)>,
    /// Ids currently on a worker lane.
    running: Vec<u64>,
    next_id: u64,
    shutdown: bool,
    stats: Stats,
}

/// State shared by every thread.
struct Shared {
    cfg: ServerConfig,
    state: Mutex<Inner>,
    /// Dispatcher wake-up (submission, completion, cancel, shutdown).
    work: Condvar,
    pool: ThreadPool,
    started: Instant,
}

/// A bound, recovered server ready to [`run`](Server::run).
pub struct Server {
    shared: Arc<Shared>,
    listener: TcpListener,
}

impl Server {
    /// Creates the data directory, replays the journal (crash recovery),
    /// and binds the listener. No traffic is served until
    /// [`run`](Server::run).
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        std::fs::create_dir_all(&cfg.data_dir)?;
        let scan = journal::scan(&cfg.data_dir)?;
        let mut inner = Inner {
            jobs: HashMap::new(),
            queue: VecDeque::new(),
            retries: Vec::new(),
            running: Vec::new(),
            next_id: 1,
            shutdown: false,
            stats: Stats {
                quarantined: scan.quarantined as u64,
                ..Stats::default()
            },
        };
        for mut rec in scan.records {
            inner.next_id = inner.next_id.max(rec.id + 1);
            if !rec.state.is_terminal() {
                // `running` at crash time means the attempt died with the
                // process; both `queued` and `running` re-enter the queue
                // with their attempt counter intact. The transition is
                // journaled now so a crash during recovery converges.
                if rec.state != JobState::Queued {
                    rec.state = JobState::Queued;
                    rec.save(&cfg.data_dir)?;
                }
                inner.stats.recovered += 1;
                inner.queue.push_back(rec.id);
            } else {
                // Terminal jobs keep serving RESULT from the journal; a
                // leftover checkpoint is dead weight.
                let _ = std::fs::remove_file(JobRecord::ckpt_path_in(&cfg.data_dir, rec.id));
            }
            inner.jobs.insert(rec.id, Job::from_record(rec));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let pool = ThreadPool::new(cfg.workers.max(1) + 1);
        Ok(Server {
            shared: Arc::new(Shared {
                cfg,
                state: Mutex::new(inner),
                work: Condvar::new(),
                pool,
                started: Instant::now(),
            }),
            listener,
        })
    }

    /// The bound address (useful with `addr: "127.0.0.1:0"`).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `SHUTDOWN` request arrives; returns after the
    /// dispatcher has drained running work.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.local_addr()?;
        let dispatcher = {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name("ddsim-dispatch".into())
                .spawn(move || dispatcher_loop(&shared))
                .expect("spawn dispatcher")
        };
        // Nudge the dispatcher once: recovery may have filled the queue.
        self.shared.work.notify_all();
        for stream in self.listener.incoming() {
            if self.shared.state.lock().expect("server lock").shutdown {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&self.shared);
            let _ = std::thread::Builder::new()
                .name("ddsim-conn".into())
                .spawn(move || handle_connection(&shared, stream, addr));
        }
        let _ = dispatcher.join();
        Ok(())
    }
}

/// Serves one client connection (any number of frames until EOF).
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream, addr: SocketAddr) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => return,
            Err(e) => {
                let _ = write_frame(&mut writer, &format!("ERR {e}"));
                return;
            }
        };
        let reply = match parse_request(&frame) {
            Ok(req) => {
                let is_shutdown = req == Request::Shutdown;
                let reply = dispatch_request(shared, req);
                if is_shutdown {
                    let _ = write_frame(&mut writer, &reply);
                    let _ = writer.flush();
                    // Unblock the acceptor so `Server::run` observes the
                    // flag and exits its accept loop.
                    let _ = TcpStream::connect(addr);
                    return;
                }
                reply
            }
            Err(e) => format!("ERR {e}"),
        };
        if write_frame(&mut writer, &reply).is_err() {
            return;
        }
    }
}

/// Executes one request against the shared state, returning the reply
/// payload.
fn dispatch_request(shared: &Arc<Shared>, req: Request) -> String {
    match req {
        Request::Submit {
            tenant,
            options,
            qasm,
        } => submit(shared, tenant, &options, qasm),
        Request::Status(id) => {
            let st = shared.state.lock().expect("server lock");
            match st.jobs.get(&id) {
                Some(job) => format!(
                    "STATUS {id} {} attempt={}",
                    job.rec.state.as_str(),
                    job.rec.attempt
                ),
                None => format!("ERR unknown job {id}"),
            }
        }
        Request::Result(id) => {
            let st = shared.state.lock().expect("server lock");
            match st.jobs.get(&id) {
                Some(job) => match job.rec.state {
                    JobState::Done => format!("DONE\n{}", job.rec.result),
                    JobState::Failed => format!("FAILED {} {}", job.rec.code, job.rec.error),
                    JobState::Cancelled => format!("CANCELLED {}", job.rec.error),
                    state => format!("PENDING {}", state.as_str()),
                },
                None => format!("ERR unknown job {id}"),
            }
        }
        Request::Cancel(id) => cancel(shared, id),
        Request::Health => {
            let st = shared.state.lock().expect("server lock");
            format!(
                "OK uptime_ms={} queued={} running={} jobs={}",
                shared.started.elapsed().as_millis(),
                st.queue.len() + st.retries.len(),
                st.running.len(),
                st.jobs.len()
            )
        }
        Request::Stats => {
            let st = shared.state.lock().expect("server lock");
            let s = &st.stats;
            format!(
                "OK\nsubmitted={}\ndone={}\nfailed={}\ncancelled={}\nretries={}\n\
                 panics_contained={}\nevictions={}\nshed={}\nrecovered={}\nquarantined={}\n\
                 queued={}\nrunning={}",
                s.submitted,
                s.done,
                s.failed,
                s.cancelled,
                s.retries,
                s.panics_contained,
                s.evictions,
                s.shed,
                s.recovered,
                s.quarantined,
                st.queue.len() + st.retries.len(),
                st.running.len()
            )
        }
        Request::Shutdown => {
            let mut st = shared.state.lock().expect("server lock");
            st.shutdown = true;
            shared.work.notify_all();
            "OK shutting down".into()
        }
    }
}

/// Admission control + WAL append for one submission.
fn submit(
    shared: &Arc<Shared>,
    tenant: String,
    options: &[(String, String)],
    qasm: String,
) -> String {
    let opts = match JobOptions::parse(options, shared.cfg.enable_test_faults) {
        Ok(o) => o,
        Err(e) => return format!("ERR {e}"),
    };
    // Parse up front with the untrusted limits: malformed or adversarial
    // programs are rejected before they cost a journal write or a lane.
    if let Err(e) = parse_with_limits(&qasm, &ParseLimits::UNTRUSTED) {
        return format!("ERR {e}");
    }

    let mut st = shared.state.lock().expect("server lock");
    if st.shutdown {
        return "ERR shutting down".into();
    }
    let waiting = st.queue.len() + st.retries.len();
    if waiting >= shared.cfg.queue_cap {
        st.stats.shed += 1;
        // Hint scales with backlog depth: each worker lane drains jobs
        // at an unknown rate, so this is a pacing signal, not a promise.
        let hint = 1 + waiting as u64 / shared.cfg.workers.max(1) as u64;
        return format!("BUSY retry-after={hint}");
    }
    let active = st
        .jobs
        .values()
        .filter(|j| j.rec.tenant == tenant && !j.rec.state.is_terminal())
        .count();
    if active >= shared.cfg.tenant_max_active {
        st.stats.shed += 1;
        return format!(
            "BUSY retry-after=2 tenant-cap={}",
            shared.cfg.tenant_max_active
        );
    }

    let id = st.next_id;
    let rec = JobRecord::new(id, tenant, opts, qasm);
    // WAL ordering: the record must be durable before the client hears
    // `OK` — an acknowledged job survives any crash from here on.
    if let Err(e) = rec.save(&shared.cfg.data_dir) {
        return format!("ERR journal write failed: {e}");
    }
    st.next_id += 1;
    st.stats.submitted += 1;
    st.jobs.insert(id, Job::from_record(rec));
    st.queue.push_back(id);
    shared.work.notify_all();
    format!("OK {id}")
}

/// Cancels a job in any non-terminal state.
fn cancel(shared: &Arc<Shared>, id: u64) -> String {
    let mut st = shared.state.lock().expect("server lock");
    let Some(job) = st.jobs.get_mut(&id) else {
        return format!("ERR unknown job {id}");
    };
    if job.rec.state.is_terminal() {
        return format!("ERR job {id} is already {}", job.rec.state.as_str());
    }
    job.cancel.cancel();
    let was_waiting = job.rec.state == JobState::Queued;
    if was_waiting {
        // Not on a lane: transition directly (a running job instead
        // observes the token and lands as Cancelled via its worker).
        job.rec.state = JobState::Cancelled;
        job.rec.error = "cancelled by client".into();
        let _ = job.rec.save(&shared.cfg.data_dir);
        st.queue.retain(|&q| q != id);
        st.retries.retain(|&(_, q)| q != id);
        st.stats.cancelled += 1;
    }
    shared.work.notify_all();
    format!("OK cancel {id}")
}

/// The dispatcher/supervisor: retry clock, lane scheduling, eviction.
fn dispatcher_loop(shared: &Arc<Shared>) {
    let mut st = shared.state.lock().expect("server lock");
    loop {
        if st.shutdown && st.running.is_empty() {
            return;
        }
        let now = Instant::now();
        // Promote due retries (stable order: earliest due first).
        st.retries.sort_by_key(|&(due, _)| due);
        while let Some(&(due, id)) = st.retries.first() {
            if due > now {
                break;
            }
            st.retries.remove(0);
            st.queue.push_back(id);
        }
        if !st.shutdown {
            dispatch_ready(shared, &mut st);
        }
        let next_due = st.retries.first().map(|&(due, _)| due);
        let wait = next_due
            .map(|d| d.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(50))
            .min(Duration::from_millis(50))
            .max(Duration::from_millis(1));
        let (guard, _) = shared
            .work
            .wait_timeout(st, wait)
            .expect("server lock poisoned");
        st = guard;
    }
}

/// Effective node budget used for admission accounting.
fn effective_nodes(cfg: &ServerConfig, opts: &JobOptions) -> u64 {
    if opts.max_nodes > 0 {
        opts.max_nodes
    } else {
        cfg.default_max_nodes
    }
}

/// Launches queued jobs while lanes and the node budget allow; latches
/// an eviction when the budget (not the lanes) is what blocks the queue.
fn dispatch_ready(shared: &Arc<Shared>, st: &mut MutexGuard<'_, Inner>) {
    while st.running.len() < shared.cfg.workers {
        let Some(&candidate) = st.queue.front() else {
            return;
        };
        let admitted: u64 = st
            .running
            .iter()
            .filter_map(|id| st.jobs.get(id))
            .map(|j| effective_nodes(&shared.cfg, &j.rec.opts))
            .sum();
        let need = st
            .jobs
            .get(&candidate)
            .map(|j| effective_nodes(&shared.cfg, &j.rec.opts))
            .unwrap_or(0);
        let budget = shared.cfg.max_total_nodes;
        if budget > 0 && !st.running.is_empty() && admitted + need > budget {
            // Memory pressure: shed load by checkpoint-and-evicting the
            // heaviest running job (largest admitted budget). Its suspend
            // token parks it at the next op boundary with a checkpoint;
            // the worker then re-queues it at the back, yielding its
            // budget to the lighter jobs, and it resumes from the
            // checkpoint once pressure clears. Eviction only fires when
            // the evictee is strictly heavier than the blocked job, so
            // it cannot ping-pong between two equal jobs. The per-job
            // degradation ladder (GC → cache flush → sift → downgrade)
            // has already run inside the engine by the time budgets
            // matter here.
            let heaviest = st
                .running
                .iter()
                .filter_map(|id| st.jobs.get(id))
                .filter(|j| !j.evicting)
                .max_by_key(|j| effective_nodes(&shared.cfg, &j.rec.opts))
                .map(|j| j.rec.id);
            if let Some(hid) = heaviest {
                let job = st.jobs.get_mut(&hid).expect("running job exists");
                if effective_nodes(&shared.cfg, &job.rec.opts) > need {
                    job.evicting = true;
                    job.suspend.cancel();
                    st.stats.evictions += 1;
                }
            }
            return; // wait for the eviction (or a completion) to land
        }

        let id = st.queue.pop_front().expect("checked front");
        let job = st.jobs.get_mut(&id).expect("queued job exists");
        // A cancel raced the dispatch: the token is latched but the job
        // never reached a lane.
        if job.cancel.is_cancelled() {
            job.rec.state = JobState::Cancelled;
            job.rec.error = "cancelled by client".into();
            let _ = job.rec.save(&shared.cfg.data_dir);
            st.stats.cancelled += 1;
            continue;
        }
        job.rec.state = JobState::Running;
        job.suspend = CancelToken::new();
        job.evicting = false;
        let _ = job.rec.save(&shared.cfg.data_dir);
        let attempt = job.rec.attempt;
        let qasm = job.rec.qasm.clone();
        let opts = job.rec.opts.clone();
        let suspend = job.suspend.clone();
        let cancel = job.cancel.clone();
        let nodes = effective_nodes(&shared.cfg, &opts);
        st.running.push(id);

        let shared2 = Arc::clone(shared);
        shared.pool.submit(move || {
            let ckpt = JobRecord::ckpt_path_in(&shared2.cfg.data_dir, id);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                jobs::execute(&qasm, &opts, &ckpt, suspend, cancel, nodes, attempt)
            }));
            land(&shared2, id, outcome);
        });
    }
}

/// Applies one finished attempt's outcome to the job's state machine.
fn land(
    shared: &Arc<Shared>,
    id: u64,
    outcome: Result<Result<String, SimError>, Box<dyn std::any::Any + Send>>,
) {
    let mut st = shared.state.lock().expect("server lock");
    st.running.retain(|&r| r != id);
    let data_dir = shared.cfg.data_dir.clone();
    let Some(job) = st.jobs.get_mut(&id) else {
        return;
    };
    match outcome {
        Ok(Ok(result)) => {
            job.rec.state = JobState::Done;
            job.rec.result = result;
            let _ = job.rec.save(&data_dir);
            let _ = std::fs::remove_file(JobRecord::ckpt_path_in(&data_dir, id));
            st.stats.done += 1;
        }
        Ok(Err(SimError::Suspended)) => {
            // Eviction landed: progress is checkpointed, no attempt is
            // consumed (this was the supervisor's doing, not a failure).
            // The evictee re-enters at the *back* so the lighter jobs
            // that triggered the eviction get their lane first; putting
            // it at the front would re-dispatch it immediately and
            // evict it again — a livelock.
            job.rec.state = JobState::Queued;
            job.evicting = false;
            let _ = job.rec.save(&data_dir);
            st.queue.push_back(id);
        }
        Ok(Err(SimError::Cancelled)) => {
            job.rec.state = JobState::Cancelled;
            job.rec.error = "cancelled by client".into();
            let _ = job.rec.save(&data_dir);
            let _ = std::fs::remove_file(JobRecord::ckpt_path_in(&data_dir, id));
            st.stats.cancelled += 1;
        }
        Ok(Err(e)) => {
            retry_or_fail(&shared.cfg, &mut st, id, e);
        }
        Err(payload) => {
            st.stats.panics_contained += 1;
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            retry_or_fail(
                &shared.cfg,
                &mut st,
                id,
                SimError::Internal(format!("worker panicked: {msg}")),
            );
        }
    }
    shared.work.notify_all();
}

/// Retry-with-backoff bookkeeping for one failed attempt.
fn retry_or_fail(cfg: &ServerConfig, st: &mut MutexGuard<'_, Inner>, id: u64, e: SimError) {
    let job = st.jobs.get_mut(&id).expect("failed job exists");
    let next_attempt = job.rec.attempt + 1;
    if jobs::retryable(&e) && next_attempt <= cfg.retry_max {
        job.rec.attempt = next_attempt;
        job.rec.state = JobState::Queued;
        let _ = job.rec.save(&cfg.data_dir);
        let backoff = Duration::from_millis(cfg.retry_base_ms << (next_attempt - 1).min(16));
        st.retries.push((Instant::now() + backoff, id));
        st.stats.retries += 1;
    } else {
        job.rec.state = JobState::Failed;
        job.rec.code = jobs::error_code(&e);
        job.rec.error = e.to_string();
        let _ = job.rec.save(&cfg.data_dir);
        let _ = std::fs::remove_file(JobRecord::ckpt_path_in(&cfg.data_dir, id));
        st.stats.failed += 1;
    }
}

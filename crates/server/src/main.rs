//! `ddsim-server` binary: thin wrapper over [`ddsim_server::run_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(ddsim_server::run_cli(&args));
}

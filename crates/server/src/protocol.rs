//! The wire protocol: length-prefixed UTF-8 text frames over TCP.
//!
//! A frame is the ASCII decimal byte length of the payload, a newline,
//! then exactly that many payload bytes. Both directions use the same
//! framing. The payload grammar is line-oriented:
//!
//! ```text
//! SUBMIT <tenant> [key=value ...]      first line
//! <OpenQASM program>                   remaining lines
//!
//! STATUS <job-id>
//! RESULT <job-id>
//! CANCEL <job-id>
//! HEALTH
//! STATS
//! SHUTDOWN
//! ```
//!
//! Responses: `OK ...`, `BUSY retry-after=<secs>`, `ERR <message>`,
//! `DONE\n<result>`, `FAILED <code> <message>`, `CANCELLED <message>`,
//! `PENDING <state>`. Text framing over blocking sockets keeps the
//! protocol debuggable with five lines of netcat scripting and needs no
//! serialization dependency — deliberate under the std-only constraint.

use std::io::{self, BufRead, Write};

/// Upper bound on one frame's payload. Bounds per-connection memory
/// against adversarial length prefixes; generous enough for a 1M-op QASM
/// program (the parser's own op limit trips first on real circuits).
pub const MAX_FRAME: usize = 32 << 20;

/// Writes one frame.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    w.write_all(payload.len().to_string().as_bytes())?;
    w.write_all(b"\n")?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on clean EOF before the first
/// length byte (the peer closed between requests).
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut len_line = String::new();
    if r.read_line(&mut len_line)? == 0 {
        return Ok(None);
    }
    let len: usize = len_line
        .trim()
        .parse()
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad frame length"))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit a QASM job for `tenant` with `key=value` options.
    Submit {
        /// Tenant name (validated: short, alphanumeric + `-_`).
        tenant: String,
        /// Raw option pairs from the header line, in order.
        options: Vec<(String, String)>,
        /// The QASM program (everything after the header line).
        qasm: String,
    },
    /// Query a job's state.
    Status(u64),
    /// Fetch a job's result (or its terminal error).
    Result(u64),
    /// Cancel a queued or running job.
    Cancel(u64),
    /// Liveness probe.
    Health,
    /// Counters snapshot.
    Stats,
    /// Graceful shutdown (used by tests and orchestrators).
    Shutdown,
}

fn parse_id(rest: &str, verb: &str) -> Result<u64, String> {
    rest.trim()
        .parse()
        .map_err(|_| format!("{verb} needs a numeric job id"))
}

/// Validates a tenant name: 1–32 chars of `[A-Za-z0-9_-]`. Tenant names
/// appear in journal filenames' metadata and stats keys, so the grammar
/// is strict.
pub fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 32
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

/// Parses one request frame.
pub fn parse_request(frame: &str) -> Result<Request, String> {
    let (header, body) = match frame.find('\n') {
        Some(pos) => (&frame[..pos], &frame[pos + 1..]),
        None => (frame, ""),
    };
    let mut words = header.split_whitespace();
    let verb = words.next().ok_or("empty request")?;
    match verb {
        "SUBMIT" => {
            let tenant = words.next().ok_or("SUBMIT needs a tenant")?.to_string();
            if !valid_tenant(&tenant) {
                return Err(format!(
                    "bad tenant `{tenant}` (1-32 chars, alphanumeric/-/_)"
                ));
            }
            let mut options = Vec::new();
            for w in words {
                let (k, v) = w
                    .split_once('=')
                    .ok_or_else(|| format!("bad option `{w}` (expected key=value)"))?;
                options.push((k.to_string(), v.to_string()));
            }
            if body.trim().is_empty() {
                return Err("SUBMIT needs a QASM body after the header line".into());
            }
            Ok(Request::Submit {
                tenant,
                options,
                qasm: body.to_string(),
            })
        }
        "STATUS" => Ok(Request::Status(parse_id(
            header.strip_prefix("STATUS").unwrap_or(""),
            "STATUS",
        )?)),
        "RESULT" => Ok(Request::Result(parse_id(
            header.strip_prefix("RESULT").unwrap_or(""),
            "RESULT",
        )?)),
        "CANCEL" => Ok(Request::Cancel(parse_id(
            header.strip_prefix("CANCEL").unwrap_or(""),
            "CANCEL",
        )?)),
        "HEALTH" => Ok(Request::Health),
        "STATS" => Ok(Request::Stats),
        "SHUTDOWN" => Ok(Request::Shutdown),
        other => Err(format!("unknown verb `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "HEALTH").unwrap();
        write_frame(&mut buf, "STATS").unwrap();
        let mut r = io::BufReader::new(&buf[..]);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("HEALTH"));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("STATS"));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_and_malformed_frames_are_rejected() {
        let huge = format!("{}\n", MAX_FRAME + 1);
        let mut r = io::BufReader::new(huge.as_bytes());
        assert!(read_frame(&mut r).is_err());
        let mut r = io::BufReader::new("notanumber\nxx".as_bytes());
        assert!(read_frame(&mut r).is_err());
        let mut r = io::BufReader::new(b"3\n\xff\xfe\xfd".as_slice());
        assert!(read_frame(&mut r).is_err(), "non-UTF-8 payload");
    }

    #[test]
    fn submit_parses_header_and_body() {
        let req = parse_request("SUBMIT alice seed=7 shots=16\nOPENQASM 2.0;\nqreg q[1];\nh q[0];")
            .unwrap();
        match req {
            Request::Submit {
                tenant,
                options,
                qasm,
            } => {
                assert_eq!(tenant, "alice");
                assert_eq!(
                    options,
                    vec![
                        ("seed".to_string(), "7".to_string()),
                        ("shots".to_string(), "16".to_string())
                    ]
                );
                assert!(qasm.starts_with("OPENQASM"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn bad_requests_are_typed_errors() {
        assert!(parse_request("SUBMIT bad tenant!\nx").is_err());
        assert!(parse_request("SUBMIT ok-tenant\n").is_err(), "empty body");
        assert!(parse_request("STATUS abc").is_err());
        assert!(parse_request("NONSENSE").is_err());
        assert!(parse_request("SUBMIT t oops\nqreg").is_err(), "bad option");
        let too_long = "x".repeat(33);
        assert!(!valid_tenant(&too_long));
        assert!(valid_tenant("tenant-0_9"));
    }

    #[test]
    fn simple_verbs_parse() {
        assert_eq!(parse_request("STATUS 12").unwrap(), Request::Status(12));
        assert_eq!(parse_request("RESULT 3").unwrap(), Request::Result(3));
        assert_eq!(parse_request("CANCEL 9").unwrap(), Request::Cancel(9));
        assert_eq!(parse_request("HEALTH").unwrap(), Request::Health);
        assert_eq!(parse_request("SHUTDOWN").unwrap(), Request::Shutdown);
    }
}

//! Crash-safe simulation-as-a-service on top of the DD engine.
//!
//! `ddsim-server` turns the single-shot simulator into a supervised
//! multi-tenant daemon: jobs arrive over a length-prefixed text protocol
//! ([`protocol`]), are journaled durably before acknowledgement
//! ([`journal`]), executed deterministically on a worker pool
//! ([`jobs`]), and supervised with retry/backoff, panic containment,
//! and checkpoint-based eviction ([`server`]). Everything is `std`-only
//! blocking I/O — see DESIGN.md §15 for the full design rationale.

pub mod jobs;
pub mod journal;
pub mod protocol;
pub mod server;

pub use server::{Server, ServerConfig, Stats};

/// Parses `--flag value` style server options and runs the daemon.
/// Shared by the `ddsim-server` binary and the `ddsim serve` verb.
/// Returns a process exit code.
pub fn run_cli(args: &[String]) -> i32 {
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parsed: Result<(), String> = (|| {
            match arg.as_str() {
                "--addr" => cfg.addr = take("--addr")?,
                "--data-dir" => cfg.data_dir = take("--data-dir")?.into(),
                "--workers" => {
                    cfg.workers = take("--workers")?
                        .parse()
                        .map_err(|_| "--workers needs an integer".to_string())?
                }
                "--queue-cap" => {
                    cfg.queue_cap = take("--queue-cap")?
                        .parse()
                        .map_err(|_| "--queue-cap needs an integer".to_string())?
                }
                "--tenant-max-active" => {
                    cfg.tenant_max_active = take("--tenant-max-active")?
                        .parse()
                        .map_err(|_| "--tenant-max-active needs an integer".to_string())?
                }
                "--max-total-nodes" => {
                    cfg.max_total_nodes = take("--max-total-nodes")?
                        .parse()
                        .map_err(|_| "--max-total-nodes needs an integer".to_string())?
                }
                "--default-max-nodes" => {
                    cfg.default_max_nodes = take("--default-max-nodes")?
                        .parse()
                        .map_err(|_| "--default-max-nodes needs an integer".to_string())?
                }
                "--retry-max" => {
                    cfg.retry_max = take("--retry-max")?
                        .parse()
                        .map_err(|_| "--retry-max needs an integer".to_string())?
                }
                "--retry-base-ms" => {
                    cfg.retry_base_ms = take("--retry-base-ms")?
                        .parse()
                        .map_err(|_| "--retry-base-ms needs an integer".to_string())?
                }
                "--enable-test-faults" => cfg.enable_test_faults = true,
                "--help" | "-h" => {
                    println!("{USAGE}");
                    return Err(String::new());
                }
                other => return Err(format!("unknown option `{other}`")),
            }
            Ok(())
        })();
        if let Err(msg) = parsed {
            if msg.is_empty() {
                return 0; // --help
            }
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            return 64;
        }
    }
    if cfg.workers == 0 {
        eprintln!("error: --workers must be at least 1");
        return 64;
    }
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to start server: {e}");
            return 1;
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // Single flushed line so wrappers (tests, orchestrators) can
            // discover the port when bound to `:0`.
            println!("listening on {addr}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("error: no local address: {e}");
            return 1;
        }
    }
    match server.run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: server failed: {e}");
            1
        }
    }
}

const USAGE: &str = "\
ddsim-server — crash-safe multi-tenant simulation daemon

USAGE:
    ddsim-server [OPTIONS]
    ddsim serve  [OPTIONS]

OPTIONS:
    --addr <host:port>          bind address (default 127.0.0.1:0)
    --data-dir <path>           journal + checkpoint dir (default ddsim-server-data)
    --workers <n>               concurrent worker lanes (default 2)
    --queue-cap <n>             max queued jobs before BUSY (default 64)
    --tenant-max-active <n>     per-tenant active-job cap (default 16)
    --max-total-nodes <n>       global node budget, 0 = off (default 0)
    --default-max-nodes <n>     budget for jobs without max_nodes (default 4194304)
    --retry-max <n>             retry attempts before Failed (default 3)
    --retry-base-ms <ms>        backoff base, doubles per attempt (default 50)
    --enable-test-faults        accept fault= job options (tests only)
    --help                      show this help

PROTOCOL (length-prefixed text frames; see crate docs):
    SUBMIT <tenant> [seed=N shots=N strategy=S max_nodes=N deadline_ms=N ckpt_every=N]
    <QASM body>
    STATUS <id> | RESULT <id> | CANCEL <id> | HEALTH | STATS | SHUTDOWN";

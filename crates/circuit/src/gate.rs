//! The standard gate set and its 2x2 unitary matrices.

use std::fmt;

use ddsim_complex::Complex;
use ddsim_dd::Matrix2;

/// A single-qubit gate from the standard set (possibly parameterized).
///
/// Angles are in radians. `U` is the general single-qubit unitary with the
/// OpenQASM `u3(theta, phi, lambda)` convention.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StandardGate {
    /// Identity.
    I,
    /// Pauli-X (negation, the paper's `X`).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard (the paper's `H`).
    H,
    /// Phase gate `S = diag(1, i)` (the paper's phase shift).
    S,
    /// Inverse phase gate `S† = diag(1, -i)`.
    Sdg,
    /// `T = diag(1, e^{iπ/4})`.
    T,
    /// `T† = diag(1, e^{-iπ/4})`.
    Tdg,
    /// Square root of X (`X^{1/2}`, used in the supremacy circuits).
    SqrtX,
    /// Inverse square root of X.
    SqrtXdg,
    /// Square root of Y (`Y^{1/2}`, used in the supremacy circuits).
    SqrtY,
    /// Inverse square root of Y.
    SqrtYdg,
    /// Rotation about X by the given angle.
    Rx(f64),
    /// Rotation about Y by the given angle.
    Ry(f64),
    /// Rotation about Z by the given angle.
    Rz(f64),
    /// Phase gate `diag(1, e^{iθ})` (OpenQASM `u1`); the QFT's controlled
    /// rotations use this kind.
    Phase(f64),
    /// General single-qubit unitary, OpenQASM `u3(θ, φ, λ)` convention.
    U(f64, f64, f64),
}

impl StandardGate {
    /// The gate's 2x2 unitary matrix.
    pub fn matrix(self) -> Matrix2 {
        use StandardGate::*;
        let zero = Complex::ZERO;
        let one = Complex::ONE;
        let i = Complex::I;
        match self {
            I => [[one, zero], [zero, one]],
            X => [[zero, one], [one, zero]],
            Y => [[zero, -i], [i, zero]],
            Z => [[one, zero], [zero, -one]],
            H => {
                let s = Complex::SQRT2_INV;
                [[s, s], [s, -s]]
            }
            S => [[one, zero], [zero, i]],
            Sdg => [[one, zero], [zero, -i]],
            T => [
                [one, zero],
                [zero, Complex::cis(std::f64::consts::FRAC_PI_4)],
            ],
            Tdg => [
                [one, zero],
                [zero, Complex::cis(-std::f64::consts::FRAC_PI_4)],
            ],
            SqrtX => {
                // (I + iX)/√2 up to global phase: the common convention
                // [[(1+i)/2, (1-i)/2], [(1-i)/2, (1+i)/2]].
                let p = Complex::new(0.5, 0.5);
                let m = Complex::new(0.5, -0.5);
                [[p, m], [m, p]]
            }
            SqrtXdg => {
                let p = Complex::new(0.5, 0.5);
                let m = Complex::new(0.5, -0.5);
                [[m, p], [p, m]]
            }
            SqrtY => {
                // [[(1+i)/2, -(1+i)/2], [(1+i)/2, (1+i)/2]].
                let p = Complex::new(0.5, 0.5);
                [[p, -p], [p, p]]
            }
            SqrtYdg => {
                let m = Complex::new(0.5, -0.5);
                [[m, m], [-m, m]]
            }
            Rx(theta) => {
                let (s2, c2) = (theta / 2.0).sin_cos();
                [
                    [Complex::real(c2), Complex::new(0.0, -s2)],
                    [Complex::new(0.0, -s2), Complex::real(c2)],
                ]
            }
            Ry(theta) => {
                let (s2, c2) = (theta / 2.0).sin_cos();
                [
                    [Complex::real(c2), Complex::real(-s2)],
                    [Complex::real(s2), Complex::real(c2)],
                ]
            }
            Rz(theta) => [
                [Complex::cis(-theta / 2.0), zero],
                [zero, Complex::cis(theta / 2.0)],
            ],
            Phase(theta) => [[one, zero], [zero, Complex::cis(theta)]],
            U(theta, phi, lambda) => {
                let (s2, c2) = (theta / 2.0).sin_cos();
                [
                    [Complex::real(c2), -Complex::cis(lambda) * s2],
                    [Complex::cis(phi) * s2, Complex::cis(phi + lambda) * c2],
                ]
            }
        }
    }

    /// The inverse gate (`G†`), again from the standard set.
    pub fn inverse(self) -> StandardGate {
        use StandardGate::*;
        match self {
            I | X | Y | Z | H => self,
            S => Sdg,
            Sdg => S,
            T => Tdg,
            Tdg => T,
            SqrtX => SqrtXdg,
            SqrtXdg => SqrtX,
            SqrtY => SqrtYdg,
            SqrtYdg => SqrtY,
            Rx(t) => Rx(-t),
            Ry(t) => Ry(-t),
            Rz(t) => Rz(-t),
            Phase(t) => Phase(-t),
            U(theta, phi, lambda) => U(-theta, -lambda, -phi),
        }
    }

    /// Whether the gate is diagonal in the computational basis.
    pub fn is_diagonal(self) -> bool {
        use StandardGate::*;
        matches!(self, I | Z | S | Sdg | T | Tdg | Rz(_) | Phase(_))
    }

    /// Short lowercase mnemonic, matching OpenQASM where one exists.
    pub fn name(self) -> &'static str {
        use StandardGate::*;
        match self {
            I => "id",
            X => "x",
            Y => "y",
            Z => "z",
            H => "h",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            SqrtX => "sx",
            SqrtXdg => "sxdg",
            SqrtY => "sy",
            SqrtYdg => "sydg",
            Rx(_) => "rx",
            Ry(_) => "ry",
            Rz(_) => "rz",
            Phase(_) => "u1",
            U(..) => "u3",
        }
    }
}

impl fmt::Display for StandardGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use StandardGate::*;
        match self {
            Rx(t) | Ry(t) | Rz(t) | Phase(t) => write!(f, "{}({t:.6})", self.name()),
            U(t, p, l) => write!(f, "u3({t:.6},{p:.6},{l:.6})"),
            _ => f.write_str(self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_mul(a: Matrix2, b: Matrix2) -> Matrix2 {
        let mut out = [[Complex::ZERO; 2]; 2];
        for r in 0..2 {
            for c in 0..2 {
                for k in 0..2 {
                    out[r][c] += a[r][k] * b[k][c];
                }
            }
        }
        out
    }

    fn approx_identity(m: Matrix2, tol: f64) -> bool {
        m[0][0].approx_eq(Complex::ONE, tol)
            && m[0][1].approx_eq(Complex::ZERO, tol)
            && m[1][0].approx_eq(Complex::ZERO, tol)
            && m[1][1].approx_eq(Complex::ONE, tol)
    }

    fn all_gates() -> Vec<StandardGate> {
        use StandardGate::*;
        vec![
            I,
            X,
            Y,
            Z,
            H,
            S,
            Sdg,
            T,
            Tdg,
            SqrtX,
            SqrtXdg,
            SqrtY,
            SqrtYdg,
            Rx(0.37),
            Ry(-1.2),
            Rz(2.5),
            Phase(0.9),
            U(0.5, 1.5, -0.5),
        ]
    }

    #[test]
    fn every_gate_is_unitary() {
        for g in all_gates() {
            let m = g.matrix();
            let dagger = [
                [m[0][0].conj(), m[1][0].conj()],
                [m[0][1].conj(), m[1][1].conj()],
            ];
            assert!(
                approx_identity(mat_mul(dagger, m), 1e-12),
                "{g} is not unitary"
            );
        }
    }

    #[test]
    fn inverse_composes_to_identity() {
        for g in all_gates() {
            let p = mat_mul(g.inverse().matrix(), g.matrix());
            assert!(approx_identity(p, 1e-12), "{g} inverse is wrong");
        }
    }

    #[test]
    fn sqrt_gates_square_correctly() {
        let xx = mat_mul(StandardGate::SqrtX.matrix(), StandardGate::SqrtX.matrix());
        assert!(xx[0][1].approx_eq(Complex::ONE, 1e-12));
        assert!(xx[1][0].approx_eq(Complex::ONE, 1e-12));
        let yy = mat_mul(StandardGate::SqrtY.matrix(), StandardGate::SqrtY.matrix());
        let y = StandardGate::Y.matrix();
        // SqrtY² equals Y up to a global phase; compare ratios.
        let phase = yy[1][0] / y[1][0];
        assert!((phase.abs() - 1.0).abs() < 1e-12);
        assert!((yy[0][1] / y[0][1]).approx_eq(phase, 1e-12));
    }

    #[test]
    fn s_is_t_squared() {
        let tt = mat_mul(StandardGate::T.matrix(), StandardGate::T.matrix());
        let s = StandardGate::S.matrix();
        for r in 0..2 {
            for c in 0..2 {
                assert!(tt[r][c].approx_eq(s[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn phase_matches_rz_up_to_global_phase() {
        let theta = 1.234;
        let p = StandardGate::Phase(theta).matrix();
        let rz = StandardGate::Rz(theta).matrix();
        let ratio = p[0][0] / rz[0][0];
        assert!((p[1][1] / rz[1][1]).approx_eq(ratio, 1e-12));
    }

    #[test]
    fn u3_specializations() {
        use std::f64::consts::{FRAC_PI_2, PI};
        // u3(π/2, 0, π) = H.
        let u = StandardGate::U(FRAC_PI_2, 0.0, PI).matrix();
        let h = StandardGate::H.matrix();
        for r in 0..2 {
            for c in 0..2 {
                assert!(u[r][c].approx_eq(h[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn diagonal_classification() {
        assert!(StandardGate::Z.is_diagonal());
        assert!(StandardGate::Phase(0.1).is_diagonal());
        assert!(!StandardGate::X.is_diagonal());
        assert!(!StandardGate::H.is_diagonal());
    }
}

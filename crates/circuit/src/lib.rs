//! Quantum-circuit intermediate representation.
//!
//! A [`Circuit`] is an ordered list of [`Operation`]s over a qubit register
//! (qubit 0 topmost, as in the paper's figures) and an optional classical
//! register. The IR keeps the structure the paper's strategies exploit:
//! [`Operation::Repeat`] marks repeated blocks (for *DD-repeating*) and
//! [`Operation::Barrier`] bounds combining. Measurement, reset, and
//! classically controlled gates support the semiclassical Shor circuit.
//!
//! The [`qasm`] module reads and writes an OpenQASM 2.0 subset.
//!
//! # Examples
//!
//! ```
//! use ddsim_circuit::{Circuit, StandardGate};
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! assert_eq!(bell.elementary_count(), 2);
//! let inverse = bell.inverse()?;
//! assert_eq!(inverse.elementary_count(), 2);
//! # Ok::<(), ddsim_circuit::InvertCircuitError>(())
//! ```

mod circuit;
mod gate;
mod operation;
pub mod qasm;

pub use circuit::{lower_swap, Circuit, InvertCircuitError};
pub use gate::StandardGate;
pub use operation::{GateOp, Operation};

//! OpenQASM 2.0 subset reader and writer.
//!
//! Supported statements: the `OPENQASM 2.0;` header, `include` (ignored),
//! one `qreg` and at most one `creg`, the standard gates
//! `id x y z h s sdg t tdg sx sxdg sy sydg rx ry rz u1 u2 u3 cx cz ccx
//! cswap swap`, controlled phases `cu1`, plus `measure`, `reset`,
//! `barrier`, and `if` conditionals — `if (c == k)` on a size-1 classical
//! register or the indexed `if (c[j] == k)` on larger ones. Comments
//! (`//`) are stripped. Expressions in parameters support `pi`, numeric
//! literals, unary minus, `+ - * /`, and parentheses.
//!
//! As an extension for fuzzer repro files, arbitrary controlled gates are
//! read and written with OpenQASM 3-style modifiers: each leading
//! `ctrl @` / `negctrl @` adds one positive/negative control, whose qubit
//! operands precede the base gate's own (`ctrl @ negctrl @ h
//! q[0],q[2],q[1];` is H on `q[1]`, positively controlled on `q[0]` and
//! negatively on `q[2]`). The base gate must be single-qubit or `swap`.

use std::fmt;

use ddsim_dd::{Control, ControlPolarity};

use crate::circuit::Circuit;
use crate::gate::StandardGate;
use crate::operation::{GateOp, Operation};

/// Error produced when parsing OpenQASM input.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseQasmError {
    /// 1-based line of the offending statement.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// Typed classification, so callers serving untrusted input can
    /// distinguish malformed programs from limit trips without string
    /// matching.
    pub kind: ParseErrorKind,
}

/// Why a QASM program was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Malformed or unsupported input.
    Syntax,
    /// A [`ParseLimits`] bound was exceeded (adversarial-input guard).
    LimitExceeded {
        /// Which limit tripped (`"ops"`, `"expression depth"`,
        /// `"qubits"`, `"classical bits"`).
        what: &'static str,
        /// The configured bound.
        limit: u64,
    },
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qasm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseQasmError {}

fn err(line: usize, message: impl Into<String>) -> ParseQasmError {
    ParseQasmError {
        line,
        message: message.into(),
        kind: ParseErrorKind::Syntax,
    }
}

fn limit_err(line: usize, what: &'static str, limit: u64) -> ParseQasmError {
    ParseQasmError {
        line,
        message: format!("input exceeds the configured limit of {limit} {what}"),
        kind: ParseErrorKind::LimitExceeded { what, limit },
    }
}

/// Resource bounds for parsing untrusted QASM.
///
/// The grammar itself is regular per statement, but two surfaces scale
/// with attacker-controlled input: the parameter-expression evaluator
/// recurses on nested parentheses and unary-minus chains (stack
/// overflow), and the op stream / register sizes drive allocation
/// (`2^qubits` dense amplitudes downstream, one `Operation` per
/// statement). [`parse`] uses [`ParseLimits::unbounded`] — trusted local
/// files keep their exact historical behavior — while a server front-end
/// parses with [`ParseLimits::UNTRUSTED`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum total operations in the parsed circuit.
    pub max_ops: u64,
    /// Maximum recursion depth inside one parameter expression.
    pub max_expr_depth: u64,
    /// Maximum `qreg` size.
    pub max_qubits: u64,
    /// Maximum `creg` size.
    pub max_cbits: u64,
}

impl ParseLimits {
    /// Defaults for untrusted network input: far above anything a DD
    /// simulation can actually execute, far below anything that hurts.
    pub const UNTRUSTED: ParseLimits = ParseLimits {
        max_ops: 1_000_000,
        max_expr_depth: 64,
        max_qubits: 63,
        max_cbits: 4096,
    };

    /// No bounds — the historical behavior of [`parse`].
    pub const fn unbounded() -> ParseLimits {
        ParseLimits {
            max_ops: u64::MAX,
            max_expr_depth: u64::MAX,
            max_qubits: u64::MAX,
            max_cbits: u64::MAX,
        }
    }
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits::UNTRUSTED
    }
}

/// Parses an OpenQASM 2.0 subset program into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseQasmError`] on unsupported or malformed statements.
///
/// # Examples
///
/// ```
/// use ddsim_circuit::qasm::parse;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n";
/// let circuit = parse(program)?;
/// assert_eq!(circuit.qubits(), 2);
/// assert_eq!(circuit.elementary_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<Circuit, ParseQasmError> {
    parse_with_limits(source, &ParseLimits::unbounded())
}

/// Like [`parse`], but enforcing [`ParseLimits`] — the entry point for
/// untrusted input (a server's `SUBMIT` payload).
///
/// # Errors
///
/// Everything [`parse`] returns, plus
/// [`ParseErrorKind::LimitExceeded`]-kinded errors when a bound trips.
pub fn parse_with_limits(source: &str, limits: &ParseLimits) -> Result<Circuit, ParseQasmError> {
    let mut circuit: Option<Circuit> = None;
    let mut qreg_name = String::new();
    let mut creg_name = String::new();
    let mut creg_size = 0usize;

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw_line.find("//") {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        for stmt in line.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("qreg") {
                let (name, size) = parse_reg_decl(rest, line_no)?;
                if circuit.is_some() {
                    return Err(err(line_no, "multiple qreg declarations are not supported"));
                }
                if size as u64 > limits.max_qubits {
                    return Err(limit_err(line_no, "qubits", limits.max_qubits));
                }
                qreg_name = name;
                circuit = Some(Circuit::with_cbits(
                    u32::try_from(size).map_err(|_| err(line_no, "qreg too large"))?,
                    creg_size,
                ));
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("creg") {
                let (name, size) = parse_reg_decl(rest, line_no)?;
                if size as u64 > limits.max_cbits {
                    return Err(limit_err(line_no, "classical bits", limits.max_cbits));
                }
                creg_name = name;
                creg_size = size;
                if let Some(c) = circuit.take() {
                    let mut grown = Circuit::with_cbits(c.qubits(), creg_size);
                    grown.append(&c);
                    circuit = Some(grown);
                }
                continue;
            }
            let circuit_ref = circuit
                .as_mut()
                .ok_or_else(|| err(line_no, "statement before qreg declaration"))?;
            parse_statement(
                stmt,
                line_no,
                &qreg_name,
                &creg_name,
                creg_size,
                circuit_ref,
                limits,
            )?;
            // Checked after every statement so a pathological program is
            // rejected as soon as it crosses the line, not after the full
            // allocation has happened.
            if circuit_ref.ops().len() as u64 > limits.max_ops {
                return Err(limit_err(line_no, "ops", limits.max_ops));
            }
        }
    }
    circuit.ok_or_else(|| err(0, "no qreg declaration found"))
}

fn parse_reg_decl(rest: &str, line: usize) -> Result<(String, usize), ParseQasmError> {
    let rest = rest.trim();
    let open = rest
        .find('[')
        .ok_or_else(|| err(line, "missing [ in register"))?;
    let close = rest
        .find(']')
        .ok_or_else(|| err(line, "missing ] in register"))?;
    let name = rest[..open].trim().to_string();
    let size: usize = rest[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| err(line, "bad register size"))?;
    if name.is_empty() || size == 0 {
        return Err(err(line, "bad register declaration"));
    }
    Ok((name, size))
}

fn parse_statement(
    stmt: &str,
    line: usize,
    qreg: &str,
    creg: &str,
    creg_size: usize,
    circuit: &mut Circuit,
    limits: &ParseLimits,
) -> Result<(), ParseQasmError> {
    // Conditional: if (c == k) or if (c[j] == k), then a gate statement.
    if let Some(rest) = stmt.strip_prefix("if") {
        let rest = rest.trim_start();
        let rest = rest
            .strip_prefix('(')
            .ok_or_else(|| err(line, "expected ( after if"))?;
        let close = rest.find(')').ok_or_else(|| err(line, "missing ) in if"))?;
        let condition = &rest[..close];
        let body = rest[close + 1..].trim();
        let parts: Vec<&str> = condition.split("==").map(str::trim).collect();
        if parts.len() != 2 {
            return Err(err(line, "if condition must compare the creg with =="));
        }
        let cbit = if parts[0] == creg {
            if creg_size != 1 {
                return Err(err(
                    line,
                    "whole-register conditionals need a size-1 creg; use `if (c[j] == k)`",
                ));
            }
            0
        } else if parts[0].contains('[') {
            let bit = parse_indexed(parts[0], creg, line)? as usize;
            if bit >= creg_size {
                return Err(err(line, "conditional bit index out of range"));
            }
            bit
        } else {
            return Err(err(line, "if condition must compare the creg with =="));
        };
        let value: u64 = parts[1]
            .parse()
            .map_err(|_| err(line, "bad comparison value in if"))?;
        if value > 1 {
            return Err(err(line, "conditional value must be 0 or 1"));
        }
        let (gate, args) = parse_gate_call(body, line)?;
        let (kind, params) = split_params(&gate, line, limits)?;
        let standard = standard_gate(&kind, &params, line)?;
        let targets = parse_qubit_args(&args, qreg, line)?;
        if targets.len() != 1 {
            return Err(err(line, "conditional gates must be single-qubit"));
        }
        circuit.push(Operation::Classical {
            gate: GateOp::new(standard, targets[0]),
            cbit,
            value: value == 1,
        });
        return Ok(());
    }

    if stmt.starts_with("barrier") {
        circuit.barrier();
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("measure") {
        let parts: Vec<&str> = rest.split("->").map(str::trim).collect();
        if parts.len() != 2 {
            return Err(err(line, "measure requires `q[i] -> c[j]`"));
        }
        let qubit = parse_indexed(parts[0], qreg, line)?;
        let cbit = parse_indexed(parts[1], creg, line)? as usize;
        circuit.measure(qubit, cbit);
        return Ok(());
    }
    if let Some(rest) = stmt.strip_prefix("reset") {
        let qubit = parse_indexed(rest.trim(), qreg, line)?;
        circuit.reset(qubit);
        return Ok(());
    }

    // OpenQASM 3-style control modifiers (see module docs): peel leading
    // `ctrl @` / `negctrl @` prefixes, which claim the leading operands.
    let mut polarities: Vec<ControlPolarity> = Vec::new();
    let mut body = stmt;
    loop {
        let trimmed = body.trim_start();
        let (polarity, rest) = if let Some(rest) = trimmed.strip_prefix("negctrl") {
            (ControlPolarity::Negative, rest)
        } else if let Some(rest) = trimmed.strip_prefix("ctrl") {
            (ControlPolarity::Positive, rest)
        } else {
            break;
        };
        let rest = rest
            .trim_start()
            .strip_prefix('@')
            .ok_or_else(|| err(line, "expected @ after control modifier"))?;
        polarities.push(polarity);
        body = rest;
    }

    let (gate, args) = parse_gate_call(body.trim_start(), line)?;
    let (kind, params) = split_params(&gate, line, limits)?;
    let qubits = parse_qubit_args(&args, qreg, line)?;

    if !polarities.is_empty() {
        if qubits.len() < polarities.len() + 1 {
            return Err(err(line, "not enough operands for control modifiers"));
        }
        let controls: Vec<Control> = polarities
            .iter()
            .zip(&qubits)
            .map(|(&polarity, &qubit)| Control { qubit, polarity })
            .collect();
        let rest = &qubits[polarities.len()..];
        match (kind.as_str(), rest) {
            ("swap", [a, b]) => {
                circuit.push(Operation::Swap {
                    a: *a,
                    b: *b,
                    controls,
                });
            }
            (_, [t]) => {
                let standard = standard_gate(&kind, &params, line)?;
                circuit.controlled_gate(standard, controls, *t);
            }
            _ => {
                return Err(err(
                    line,
                    "control modifiers need a single-qubit base gate or swap",
                ));
            }
        }
        return Ok(());
    }

    match (kind.as_str(), qubits.as_slice()) {
        ("cx", [c, t]) => {
            circuit.cx(*c, *t);
        }
        ("cz", [c, t]) => {
            circuit.cz(*c, *t);
        }
        ("ccx", [c0, c1, t]) => {
            circuit.ccx(*c0, *c1, *t);
        }
        ("swap", [a, b]) => {
            circuit.swap(*a, *b);
        }
        ("cswap", [c, a, b]) => {
            circuit.cswap(*c, *a, *b);
        }
        ("cu1", [c, t]) => {
            if params.len() != 1 {
                return Err(err(line, "cu1 takes one parameter"));
            }
            circuit.cphase(params[0], *c, *t);
        }
        (_, [t]) => {
            let standard = standard_gate(&kind, &params, line)?;
            circuit.gate(standard, *t);
        }
        _ => {
            return Err(err(line, format!("unsupported gate `{kind}` or arity")));
        }
    }
    Ok(())
}

fn parse_gate_call(stmt: &str, line: usize) -> Result<(String, String), ParseQasmError> {
    // The gate token ends at the first whitespace *outside* parentheses.
    let mut depth = 0usize;
    for (i, ch) in stmt.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            c if c.is_whitespace() && depth == 0 => {
                return Ok((stmt[..i].trim().to_string(), stmt[i..].trim().to_string()));
            }
            _ => {}
        }
    }
    Err(err(line, "gate statement missing operands"))
}

fn split_params(
    gate: &str,
    line: usize,
    limits: &ParseLimits,
) -> Result<(String, Vec<f64>), ParseQasmError> {
    match gate.find('(') {
        None => Ok((gate.to_string(), Vec::new())),
        Some(open) => {
            let close = gate
                .rfind(')')
                .ok_or_else(|| err(line, "missing ) in gate parameters"))?;
            let kind = gate[..open].trim().to_string();
            let params = gate[open + 1..close]
                .split(',')
                .map(|p| eval_expr(p.trim(), line, limits))
                .collect::<Result<Vec<f64>, _>>()?;
            Ok((kind, params))
        }
    }
}

fn standard_gate(kind: &str, params: &[f64], line: usize) -> Result<StandardGate, ParseQasmError> {
    let need = |n: usize| -> Result<(), ParseQasmError> {
        if params.len() == n {
            Ok(())
        } else {
            Err(err(line, format!("gate `{kind}` takes {n} parameter(s)")))
        }
    };
    Ok(match kind {
        "id" => StandardGate::I,
        "x" => StandardGate::X,
        "y" => StandardGate::Y,
        "z" => StandardGate::Z,
        "h" => StandardGate::H,
        "s" => StandardGate::S,
        "sdg" => StandardGate::Sdg,
        "t" => StandardGate::T,
        "tdg" => StandardGate::Tdg,
        "sx" => StandardGate::SqrtX,
        "sxdg" => StandardGate::SqrtXdg,
        "sy" => StandardGate::SqrtY,
        "sydg" => StandardGate::SqrtYdg,
        "rx" => {
            need(1)?;
            StandardGate::Rx(params[0])
        }
        "ry" => {
            need(1)?;
            StandardGate::Ry(params[0])
        }
        "rz" => {
            need(1)?;
            StandardGate::Rz(params[0])
        }
        "u1" | "p" => {
            need(1)?;
            StandardGate::Phase(params[0])
        }
        "u2" => {
            need(2)?;
            StandardGate::U(std::f64::consts::FRAC_PI_2, params[0], params[1])
        }
        "u3" | "u" => {
            need(3)?;
            StandardGate::U(params[0], params[1], params[2])
        }
        other => return Err(err(line, format!("unsupported gate `{other}`"))),
    })
}

fn parse_qubit_args(args: &str, qreg: &str, line: usize) -> Result<Vec<u32>, ParseQasmError> {
    args.split(',')
        .map(|a| parse_indexed(a.trim(), qreg, line))
        .collect()
}

fn parse_indexed(text: &str, reg: &str, line: usize) -> Result<u32, ParseQasmError> {
    let open = text
        .find('[')
        .ok_or_else(|| err(line, format!("expected `{reg}[i]`, got `{text}`")))?;
    let close = text
        .find(']')
        .ok_or_else(|| err(line, "missing ] in operand"))?;
    let name = text[..open].trim();
    if name != reg {
        return Err(err(line, format!("unknown register `{name}`")));
    }
    text[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| err(line, "bad operand index"))
}

// ----------------------------------------------------------------------
// Tiny arithmetic-expression evaluator for gate parameters.
// ----------------------------------------------------------------------

fn eval_expr(text: &str, line: usize, limits: &ParseLimits) -> Result<f64, ParseQasmError> {
    let tokens = tokenize(text, line)?;
    let mut pos = 0usize;
    let value = eval_sum(&tokens, &mut pos, line, limits, 0)?;
    if pos != tokens.len() {
        return Err(err(line, format!("trailing tokens in expression `{text}`")));
    }
    Ok(value)
}

#[derive(Clone, Debug, PartialEq)]
enum Token {
    Number(f64),
    Plus,
    Minus,
    Star,
    Slash,
    Open,
    Close,
}

fn tokenize(text: &str, line: usize) -> Result<Vec<Token>, ParseQasmError> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '(' => {
                out.push(Token::Open);
                i += 1;
            }
            ')' => {
                out.push(Token::Close);
                i += 1;
            }
            'p' if text[i..].starts_with("pi") => {
                out.push(Token::Number(std::f64::consts::PI));
                i += 2;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let num: f64 = text[start..i]
                    .parse()
                    .map_err(|_| err(line, format!("bad number in `{text}`")))?;
                out.push(Token::Number(num));
            }
            other => return Err(err(line, format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

fn eval_sum(
    tokens: &[Token],
    pos: &mut usize,
    line: usize,
    limits: &ParseLimits,
    depth: u64,
) -> Result<f64, ParseQasmError> {
    let mut value = eval_product(tokens, pos, line, limits, depth)?;
    while *pos < tokens.len() {
        match tokens[*pos] {
            Token::Plus => {
                *pos += 1;
                value += eval_product(tokens, pos, line, limits, depth)?;
            }
            Token::Minus => {
                *pos += 1;
                value -= eval_product(tokens, pos, line, limits, depth)?;
            }
            _ => break,
        }
    }
    Ok(value)
}

fn eval_product(
    tokens: &[Token],
    pos: &mut usize,
    line: usize,
    limits: &ParseLimits,
    depth: u64,
) -> Result<f64, ParseQasmError> {
    let mut value = eval_atom(tokens, pos, line, limits, depth)?;
    while *pos < tokens.len() {
        match tokens[*pos] {
            Token::Star => {
                *pos += 1;
                value *= eval_atom(tokens, pos, line, limits, depth)?;
            }
            Token::Slash => {
                *pos += 1;
                let divisor = eval_atom(tokens, pos, line, limits, depth)?;
                if divisor == 0.0 {
                    return Err(err(line, "division by zero in parameter"));
                }
                value /= divisor;
            }
            _ => break,
        }
    }
    Ok(value)
}

fn eval_atom(
    tokens: &[Token],
    pos: &mut usize,
    line: usize,
    limits: &ParseLimits,
    depth: u64,
) -> Result<f64, ParseQasmError> {
    // Every recursion edge of the evaluator passes through here (nested
    // parens via `eval_sum`, unary sign chains directly), so one depth
    // check bounds the whole call tree against stack overflow.
    if depth >= limits.max_expr_depth {
        return Err(limit_err(line, "expression depth", limits.max_expr_depth));
    }
    match tokens.get(*pos) {
        Some(Token::Number(v)) => {
            *pos += 1;
            Ok(*v)
        }
        Some(Token::Minus) => {
            *pos += 1;
            Ok(-eval_atom(tokens, pos, line, limits, depth + 1)?)
        }
        Some(Token::Plus) => {
            *pos += 1;
            eval_atom(tokens, pos, line, limits, depth + 1)
        }
        Some(Token::Open) => {
            *pos += 1;
            let value = eval_sum(tokens, pos, line, limits, depth + 1)?;
            if tokens.get(*pos) != Some(&Token::Close) {
                return Err(err(line, "missing ) in expression"));
            }
            *pos += 1;
            Ok(value)
        }
        _ => Err(err(line, "malformed expression")),
    }
}

// ----------------------------------------------------------------------
// Writer
// ----------------------------------------------------------------------

/// Serializes a circuit to the supported OpenQASM 2.0 subset.
///
/// Repeats are flattened. Controlled gates use the named forms (`cx`,
/// `cz`, `ccx`, `cu1`, `cswap`) where one exists and `ctrl @` /
/// `negctrl @` modifiers (see the module docs) otherwise, so every
/// control pattern the IR can express round-trips through [`parse`].
///
/// # Errors
///
/// Returns a message naming the first unserializable operation
/// (currently only conditionals whose gate itself carries controls).
pub fn write(circuit: &Circuit) -> Result<String, String> {
    use std::fmt::Write as _;
    let flat = circuit.flattened();
    let mut out = String::new();
    let _ = writeln!(out, "OPENQASM 2.0;");
    let _ = writeln!(out, "include \"qelib1.inc\";");
    let _ = writeln!(out, "qreg q[{}];", flat.qubits());
    if flat.cbits() > 0 {
        let _ = writeln!(out, "creg c[{}];", flat.cbits());
    }
    for op in flat.ops() {
        match op {
            Operation::Gate(g) => write_gate(&mut out, g)?,
            Operation::Swap { a, b, controls } => {
                if controls.is_empty() {
                    let _ = writeln!(out, "swap q[{a}],q[{b}];");
                } else if controls.len() == 1 && controls[0].polarity == ControlPolarity::Positive {
                    let _ = writeln!(out, "cswap q[{}],q[{a}],q[{b}];", controls[0].qubit);
                } else {
                    write_modifiers(&mut out, controls);
                    let _ = write!(out, "swap ");
                    write_control_operands(&mut out, controls);
                    let _ = writeln!(out, "q[{a}],q[{b}];");
                }
            }
            Operation::Measure { qubit, cbit } => {
                let _ = writeln!(out, "measure q[{qubit}] -> c[{cbit}];");
            }
            Operation::Reset { qubit } => {
                let _ = writeln!(out, "reset q[{qubit}];");
            }
            Operation::Classical { gate, cbit, value } => {
                if !gate.controls.is_empty() {
                    return Err("cannot serialize a conditional controlled gate".into());
                }
                let mut body = String::new();
                write_gate(&mut body, gate)?;
                if flat.cbits() == 1 && *cbit == 0 {
                    let _ = write!(out, "if (c == {}) {}", u8::from(*value), body);
                } else {
                    let _ = write!(out, "if (c[{cbit}] == {}) {}", u8::from(*value), body);
                }
            }
            Operation::Barrier => {
                let _ = writeln!(out, "barrier q;");
            }
            Operation::Repeat { .. } => unreachable!("flattened() removed repeats"),
        }
    }
    Ok(out)
}

fn write_modifiers(out: &mut String, controls: &[Control]) {
    use std::fmt::Write as _;
    for c in controls {
        let _ = write!(
            out,
            "{} @ ",
            if c.polarity == ControlPolarity::Positive {
                "ctrl"
            } else {
                "negctrl"
            }
        );
    }
}

fn write_control_operands(out: &mut String, controls: &[Control]) {
    use std::fmt::Write as _;
    for c in controls {
        let _ = write!(out, "q[{}],", c.qubit);
    }
}

fn write_gate(out: &mut String, g: &GateOp) -> Result<(), String> {
    use std::fmt::Write as _;
    let positive = g
        .controls
        .iter()
        .all(|c| c.polarity == ControlPolarity::Positive);
    let params = |gate: StandardGate| -> String {
        match gate {
            StandardGate::Rx(t) | StandardGate::Ry(t) | StandardGate::Rz(t) => format!("({t})"),
            StandardGate::Phase(t) => format!("({t})"),
            StandardGate::U(t, p, l) => format!("({t},{p},{l})"),
            _ => String::new(),
        }
    };
    match (g.controls.len(), g.gate, positive) {
        (0, gate, _) => {
            let _ = writeln!(out, "{}{} q[{}];", gate.name(), params(gate), g.target);
        }
        (1, StandardGate::X, true) => {
            let _ = writeln!(out, "cx q[{}],q[{}];", g.controls[0].qubit, g.target);
        }
        (1, StandardGate::Z, true) => {
            let _ = writeln!(out, "cz q[{}],q[{}];", g.controls[0].qubit, g.target);
        }
        (1, StandardGate::Phase(t), true) => {
            let _ = writeln!(out, "cu1({t}) q[{}],q[{}];", g.controls[0].qubit, g.target);
        }
        (2, StandardGate::X, true) => {
            let _ = writeln!(
                out,
                "ccx q[{}],q[{}],q[{}];",
                g.controls[0].qubit, g.controls[1].qubit, g.target
            );
        }
        (_, gate, _) => {
            // General form: control modifiers, control operands in list
            // order, then the target.
            write_modifiers(out, &g.controls);
            let _ = writeln!(
                out,
                "{}{} {}q[{}];",
                gate.name(),
                params(gate),
                {
                    let mut s = String::new();
                    write_control_operands(&mut s, &g.controls);
                    s
                },
                g.target
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_program() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\ncx q[0],q[1];\nccx q[0],q[1],q[2];\n";
        let c = parse(src).expect("valid program");
        assert_eq!(c.qubits(), 3);
        assert_eq!(c.ops().len(), 3);
    }

    #[test]
    fn parse_parameterized_gates() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nrx(pi/2) q[0];\nrz(-pi/4) q[0];\nu1(0.5) q[0];\nu3(pi, 0, pi) q[0];\n";
        let c = parse(src).expect("valid program");
        assert_eq!(c.ops().len(), 4);
        match &c.ops()[0] {
            Operation::Gate(g) => match g.gate {
                StandardGate::Rx(t) => {
                    assert!((t - std::f64::consts::FRAC_PI_2).abs() < 1e-12)
                }
                other => panic!("wrong gate {other:?}"),
            },
            other => panic!("wrong op {other:?}"),
        }
    }

    #[test]
    fn parse_expressions() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nrz(2*pi/(4+4)) q[0];\nrz(1.5e-1) q[0];\n";
        let c = parse(src).expect("valid program");
        match &c.ops()[0] {
            Operation::Gate(g) => match g.gate {
                StandardGate::Rz(t) => {
                    assert!((t - std::f64::consts::PI / 4.0).abs() < 1e-12)
                }
                other => panic!("wrong gate {other:?}"),
            },
            other => panic!("wrong op {other:?}"),
        }
    }

    #[test]
    fn parse_measure_reset_conditional() {
        let src = "OPENQASM 2.0;\nqreg q[2];\ncreg c[1];\nh q[0];\nmeasure q[0] -> c[0];\nif (c == 1) x q[1];\nreset q[0];\n";
        let c = parse(src).expect("valid program");
        assert_eq!(c.cbits(), 1);
        assert!(matches!(
            c.ops()[1],
            Operation::Measure { qubit: 0, cbit: 0 }
        ));
        assert!(matches!(
            c.ops()[2],
            Operation::Classical {
                cbit: 0,
                value: true,
                ..
            }
        ));
        assert!(matches!(c.ops()[3], Operation::Reset { qubit: 0 }));
    }

    #[test]
    fn parse_comments_and_blank_lines() {
        let src = "// header\nOPENQASM 2.0;\n\nqreg q[1]; // register\nx q[0]; // flip\n";
        let c = parse(src).expect("valid program");
        assert_eq!(c.ops().len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];\n";
        let e = parse(src).expect_err("unknown gate");
        assert_eq!(e.line, 3);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn parse_rejects_gate_before_qreg() {
        let src = "OPENQASM 2.0;\nx q[0];\n";
        let e = parse(src).expect_err("gate before register");
        assert!(e.message.contains("before qreg"));
    }

    #[test]
    fn roundtrip_through_writer() {
        let mut c = Circuit::with_cbits(3, 1);
        c.h(0)
            .cx(0, 1)
            .ccx(0, 1, 2)
            .rz(0.25, 2)
            .cphase(0.5, 0, 2)
            .swap(1, 2)
            .measure(2, 0);
        let qasm = write(&c).expect("serializable");
        let back = parse(&qasm).expect("roundtrip parse");
        assert_eq!(back.qubits(), 3);
        assert_eq!(back.elementary_count(), c.elementary_count());
    }

    #[test]
    fn modifier_form_round_trips_negative_and_multi_controls() {
        let mut c = Circuit::new(4);
        c.controlled_gate(StandardGate::X, vec![Control::neg(0)], 1);
        c.controlled_gate(
            StandardGate::Rz(0.75),
            vec![Control::pos(2), Control::neg(3)],
            1,
        );
        c.push(Operation::Swap {
            a: 2,
            b: 3,
            controls: vec![Control::neg(0), Control::pos(1)],
        });
        let qasm = write(&c).expect("modifier form serializes everything");
        assert!(qasm.contains("negctrl @ x q[0],q[1];"));
        assert!(qasm.contains("ctrl @ negctrl @ rz(0.75) q[2],q[3],q[1];"));
        assert!(qasm.contains("negctrl @ ctrl @ swap q[0],q[1],q[2],q[3];"));
        let back = parse(&qasm).expect("modifier form parses");
        assert_eq!(back.ops(), c.ops());
        // Fixpoint: a second emit is byte-identical.
        assert_eq!(write(&back).expect("re-emit"), qasm);
    }

    #[test]
    fn indexed_conditional_round_trips_on_wide_creg() {
        let mut c = Circuit::with_cbits(2, 3);
        c.measure(0, 2);
        c.push(Operation::Classical {
            gate: GateOp::new(StandardGate::H, 1),
            cbit: 2,
            value: false,
        });
        let qasm = write(&c).expect("indexed conditional serializes");
        assert!(qasm.contains("if (c[2] == 0) h q[1];"));
        let back = parse(&qasm).expect("indexed conditional parses");
        assert_eq!(back.ops(), c.ops());
        assert_eq!(back.cbits(), 3);
    }

    #[test]
    fn sqrt_y_gates_round_trip() {
        let mut c = Circuit::new(1);
        c.gate(StandardGate::SqrtY, 0)
            .gate(StandardGate::SqrtYdg, 0);
        let qasm = write(&c).expect("serializable");
        let back = parse(&qasm).expect("sy/sydg parse");
        assert_eq!(back.ops(), c.ops());
    }

    // ------------------------------------------------------------------
    // Adversarial-input limits (server attack surface)
    // ------------------------------------------------------------------

    #[test]
    fn deep_paren_nesting_is_rejected_not_overflowed() {
        // 200k nested parens would overflow the recursion stack without
        // the depth guard; with it, the parse fails typed and fast.
        let depth = 200_000;
        let expr = format!("{}pi{}", "(".repeat(depth), ")".repeat(depth));
        let src = format!("OPENQASM 2.0;\nqreg q[1];\nrz({expr}) q[0];\n");
        let e = parse_with_limits(&src, &ParseLimits::UNTRUSTED).expect_err("must refuse");
        assert_eq!(
            e.kind,
            ParseErrorKind::LimitExceeded {
                what: "expression depth",
                limit: ParseLimits::UNTRUSTED.max_expr_depth,
            },
            "{e}"
        );
    }

    #[test]
    fn unary_minus_chains_are_depth_limited() {
        let src = format!(
            "OPENQASM 2.0;\nqreg q[1];\nrz({}1) q[0];\n",
            "-".repeat(200_000)
        );
        let e = parse_with_limits(&src, &ParseLimits::UNTRUSTED).expect_err("must refuse");
        assert!(
            matches!(e.kind, ParseErrorKind::LimitExceeded { .. }),
            "{e}"
        );
    }

    #[test]
    fn op_count_limit_stops_allocation_early() {
        let limits = ParseLimits {
            max_ops: 100,
            ..ParseLimits::UNTRUSTED
        };
        let mut src = String::from("OPENQASM 2.0;\nqreg q[1];\n");
        for _ in 0..1_000 {
            src.push_str("h q[0];\n");
        }
        let e = parse_with_limits(&src, &limits).expect_err("must refuse");
        assert_eq!(
            e.kind,
            ParseErrorKind::LimitExceeded {
                what: "ops",
                limit: 100
            }
        );
        // Rejected at the boundary: the error line proves parsing stopped
        // right after op 101, not at the end of the 1000-op program.
        assert_eq!(e.line, 103, "rejection must be prompt, got line {}", e.line);
    }

    #[test]
    fn register_size_limits_are_enforced() {
        let e = parse_with_limits("OPENQASM 2.0;\nqreg q[64];\n", &ParseLimits::UNTRUSTED)
            .expect_err("64 qubits over the 63 cap");
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded { what: "qubits", .. }
        ));
        let e = parse_with_limits(
            "OPENQASM 2.0;\nqreg q[2];\ncreg c[1000000];\n",
            &ParseLimits::UNTRUSTED,
        )
        .expect_err("creg over the cap");
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded {
                what: "classical bits",
                ..
            }
        ));
    }

    #[test]
    fn limits_admit_reasonable_programs_and_parse_stays_unbounded() {
        // A deep-but-sane expression and a mid-sized program both pass
        // under UNTRUSTED, and `parse` (trusted path) accepts input that
        // UNTRUSTED would refuse.
        let src = "OPENQASM 2.0;\nqreg q[2];\nrz(-(-(-(pi/2)))) q[0];\ncx q[0],q[1];\n";
        let c = parse_with_limits(src, &ParseLimits::UNTRUSTED).expect("sane program");
        assert_eq!(c.qubits(), 2);
        let deep = format!(
            "OPENQASM 2.0;\nqreg q[1];\nrz({}pi{}) q[0];\n",
            "(".repeat(80),
            ")".repeat(80)
        );
        assert!(parse_with_limits(&deep, &ParseLimits::UNTRUSTED).is_err());
        parse(&deep).expect("trusted parse stays unbounded");
        // Limit errors render the bound for the operator.
        let e = parse_with_limits(&deep, &ParseLimits::UNTRUSTED).unwrap_err();
        assert!(e.to_string().contains("64"), "{e}");
    }
}

//! The [`Circuit`] container and builder.

use std::fmt;

use ddsim_dd::Control;

use crate::gate::StandardGate;
use crate::operation::{GateOp, Operation};

/// Error returned when inverting a circuit containing non-unitary
/// operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvertCircuitError;

impl fmt::Display for InvertCircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("circuit contains non-unitary operations and cannot be inverted")
    }
}

impl std::error::Error for InvertCircuitError {}

/// A quantum circuit: a qubit register, a classical register, and an ordered
/// list of [`Operation`]s.
///
/// Qubit 0 is the topmost (most significant) line, matching the paper's
/// circuit figures.
///
/// # Examples
///
/// ```
/// use ddsim_circuit::Circuit;
///
/// // The paper's Fig. 1: |01⟩, H on q0, CX(q0 → q1).
/// let mut c = Circuit::new(2);
/// c.x(1).h(0).cx(0, 1);
/// assert_eq!(c.elementary_count(), 3);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Circuit {
    n_qubits: u32,
    n_cbits: usize,
    name: String,
    ops: Vec<Operation>,
}

impl Circuit {
    /// An empty circuit over `n_qubits` qubits and no classical bits.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero.
    pub fn new(n_qubits: u32) -> Self {
        Self::with_cbits(n_qubits, 0)
    }

    /// An empty circuit with a classical register.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` is zero.
    pub fn with_cbits(n_qubits: u32, n_cbits: usize) -> Self {
        assert!(n_qubits >= 1, "circuit needs at least one qubit");
        Circuit {
            n_qubits,
            n_cbits,
            name: String::new(),
            ops: Vec::new(),
        }
    }

    /// Sets a human-readable benchmark name (e.g. `grover_23`).
    pub fn set_name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// The benchmark name (empty if unset).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    pub fn qubits(&self) -> u32 {
        self.n_qubits
    }

    /// Number of classical bits.
    pub fn cbits(&self) -> usize {
        self.n_cbits
    }

    /// The operation list.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Total elementary gate count after flattening repeats and lowering
    /// swaps.
    pub fn elementary_count(&self) -> u64 {
        self.ops.iter().map(|op| op.elementary_count()).sum()
    }

    /// Whether the circuit contains measurements, resets, or classically
    /// controlled gates.
    pub fn has_nonunitary(&self) -> bool {
        fn check(ops: &[Operation]) -> bool {
            ops.iter().any(|op| match op {
                Operation::Measure { .. }
                | Operation::Reset { .. }
                | Operation::Classical { .. } => true,
                Operation::Repeat { body, .. } => check(body),
                _ => false,
            })
        }
        check(&self.ops)
    }

    // ------------------------------------------------------------------
    // Builder methods
    // ------------------------------------------------------------------

    /// Appends a raw operation.
    ///
    /// # Panics
    ///
    /// Panics if the operation references qubits or classical bits outside
    /// the registers.
    pub fn push(&mut self, op: Operation) -> &mut Self {
        if let Some(q) = op.max_qubit() {
            assert!(
                q < self.n_qubits,
                "operation references qubit {q} out of range"
            );
        }
        if let Some(c) = op.max_cbit() {
            assert!(
                c < self.n_cbits,
                "operation references cbit {c} out of range"
            );
        }
        self.ops.push(op);
        self
    }

    /// Appends an uncontrolled standard gate.
    pub fn gate(&mut self, gate: StandardGate, target: u32) -> &mut Self {
        self.push(Operation::Gate(GateOp::new(gate, target)))
    }

    /// Appends a controlled standard gate.
    pub fn controlled_gate(
        &mut self,
        gate: StandardGate,
        controls: Vec<Control>,
        target: u32,
    ) -> &mut Self {
        self.push(Operation::Gate(GateOp::controlled(gate, controls, target)))
    }

    /// Pauli-X on `target`.
    pub fn x(&mut self, target: u32) -> &mut Self {
        self.gate(StandardGate::X, target)
    }

    /// Pauli-Y on `target`.
    pub fn y(&mut self, target: u32) -> &mut Self {
        self.gate(StandardGate::Y, target)
    }

    /// Pauli-Z on `target`.
    pub fn z(&mut self, target: u32) -> &mut Self {
        self.gate(StandardGate::Z, target)
    }

    /// Hadamard on `target`.
    pub fn h(&mut self, target: u32) -> &mut Self {
        self.gate(StandardGate::H, target)
    }

    /// Phase gate S on `target`.
    pub fn s(&mut self, target: u32) -> &mut Self {
        self.gate(StandardGate::S, target)
    }

    /// Inverse phase gate S† on `target`.
    pub fn sdg(&mut self, target: u32) -> &mut Self {
        self.gate(StandardGate::Sdg, target)
    }

    /// T gate on `target`.
    pub fn t(&mut self, target: u32) -> &mut Self {
        self.gate(StandardGate::T, target)
    }

    /// T† gate on `target`.
    pub fn tdg(&mut self, target: u32) -> &mut Self {
        self.gate(StandardGate::Tdg, target)
    }

    /// X rotation by `theta` on `target`.
    pub fn rx(&mut self, theta: f64, target: u32) -> &mut Self {
        self.gate(StandardGate::Rx(theta), target)
    }

    /// Y rotation by `theta` on `target`.
    pub fn ry(&mut self, theta: f64, target: u32) -> &mut Self {
        self.gate(StandardGate::Ry(theta), target)
    }

    /// Z rotation by `theta` on `target`.
    pub fn rz(&mut self, theta: f64, target: u32) -> &mut Self {
        self.gate(StandardGate::Rz(theta), target)
    }

    /// Phase gate `diag(1, e^{iθ})` on `target`.
    pub fn phase(&mut self, theta: f64, target: u32) -> &mut Self {
        self.gate(StandardGate::Phase(theta), target)
    }

    /// Controlled-X with positive control.
    pub fn cx(&mut self, control: u32, target: u32) -> &mut Self {
        self.controlled_gate(StandardGate::X, vec![Control::pos(control)], target)
    }

    /// Controlled-Z with positive control.
    pub fn cz(&mut self, control: u32, target: u32) -> &mut Self {
        self.controlled_gate(StandardGate::Z, vec![Control::pos(control)], target)
    }

    /// Controlled phase gate.
    pub fn cphase(&mut self, theta: f64, control: u32, target: u32) -> &mut Self {
        self.controlled_gate(
            StandardGate::Phase(theta),
            vec![Control::pos(control)],
            target,
        )
    }

    /// Toffoli (doubly controlled X).
    pub fn ccx(&mut self, c0: u32, c1: u32, target: u32) -> &mut Self {
        self.controlled_gate(
            StandardGate::X,
            vec![Control::pos(c0), Control::pos(c1)],
            target,
        )
    }

    /// Multi-controlled X with arbitrary positive controls.
    pub fn mcx(&mut self, controls: &[u32], target: u32) -> &mut Self {
        let controls = controls.iter().map(|&q| Control::pos(q)).collect();
        self.controlled_gate(StandardGate::X, controls, target)
    }

    /// Multi-controlled Z with arbitrary positive controls.
    pub fn mcz(&mut self, controls: &[u32], target: u32) -> &mut Self {
        let controls = controls.iter().map(|&q| Control::pos(q)).collect();
        self.controlled_gate(StandardGate::Z, controls, target)
    }

    /// Swap of two qubits.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn swap(&mut self, a: u32, b: u32) -> &mut Self {
        assert_ne!(a, b, "swap requires distinct qubits");
        self.push(Operation::Swap {
            a,
            b,
            controls: Vec::new(),
        })
    }

    /// Controlled swap (Fredkin when one control).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn cswap(&mut self, control: u32, a: u32, b: u32) -> &mut Self {
        assert_ne!(a, b, "swap requires distinct qubits");
        self.push(Operation::Swap {
            a,
            b,
            controls: vec![Control::pos(control)],
        })
    }

    /// Measurement of `qubit` into classical bit `cbit`.
    pub fn measure(&mut self, qubit: u32, cbit: usize) -> &mut Self {
        self.push(Operation::Measure { qubit, cbit })
    }

    /// Reset of `qubit` to |0⟩.
    pub fn reset(&mut self, qubit: u32) -> &mut Self {
        self.push(Operation::Reset { qubit })
    }

    /// Gate applied only when classical bit `cbit` equals `value`.
    pub fn classical_gate(
        &mut self,
        gate: StandardGate,
        target: u32,
        cbit: usize,
        value: bool,
    ) -> &mut Self {
        self.push(Operation::Classical {
            gate: GateOp::new(gate, target),
            cbit,
            value,
        })
    }

    /// Scheduling barrier (strategies never combine across it).
    pub fn barrier(&mut self) -> &mut Self {
        self.push(Operation::Barrier)
    }

    /// Appends another circuit's operations.
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits or classical bits than `self`.
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        assert!(other.n_qubits <= self.n_qubits, "appended circuit too wide");
        assert!(
            other.n_cbits <= self.n_cbits,
            "appended circuit has too many cbits"
        );
        self.ops.extend(other.ops.iter().cloned());
        self
    }

    /// Appends `body` as a [`Operation::Repeat`] block executed `times`
    /// times — the structure the *DD-repeating* strategy caches.
    ///
    /// # Panics
    ///
    /// Panics if `body` is wider than `self` or `times` is zero.
    pub fn repeat(&mut self, body: &Circuit, times: u32) -> &mut Self {
        assert!(times >= 1, "repeat count must be positive");
        assert!(body.n_qubits <= self.n_qubits, "repeated circuit too wide");
        assert!(
            body.n_cbits <= self.n_cbits,
            "repeated circuit has too many cbits"
        );
        self.push(Operation::Repeat {
            body: body.ops.clone(),
            times,
        })
    }

    // ------------------------------------------------------------------
    // Transformations
    // ------------------------------------------------------------------

    /// The inverse circuit (gates reversed and inverted).
    ///
    /// # Errors
    ///
    /// Returns [`InvertCircuitError`] if the circuit contains measurements,
    /// resets, or classically controlled gates.
    pub fn inverse(&self) -> Result<Circuit, InvertCircuitError> {
        fn invert_ops(ops: &[Operation]) -> Result<Vec<Operation>, InvertCircuitError> {
            let mut out = Vec::with_capacity(ops.len());
            for op in ops.iter().rev() {
                out.push(match op {
                    Operation::Gate(g) => Operation::Gate(g.inverse()),
                    Operation::Swap { a, b, controls } => Operation::Swap {
                        a: *a,
                        b: *b,
                        controls: controls.clone(),
                    },
                    Operation::Repeat { body, times } => Operation::Repeat {
                        body: invert_ops(body)?,
                        times: *times,
                    },
                    Operation::Barrier => Operation::Barrier,
                    Operation::Measure { .. }
                    | Operation::Reset { .. }
                    | Operation::Classical { .. } => return Err(InvertCircuitError),
                });
            }
            Ok(out)
        }
        Ok(Circuit {
            n_qubits: self.n_qubits,
            n_cbits: self.n_cbits,
            name: format!("{}_inverse", self.name),
            ops: invert_ops(&self.ops)?,
        })
    }

    /// A flattened copy: repeats expanded, structure otherwise preserved.
    pub fn flattened(&self) -> Circuit {
        fn flatten(ops: &[Operation], out: &mut Vec<Operation>) {
            for op in ops {
                match op {
                    Operation::Repeat { body, times } => {
                        for _ in 0..*times {
                            flatten(body, out);
                        }
                    }
                    other => out.push(other.clone()),
                }
            }
        }
        let mut ops = Vec::new();
        flatten(&self.ops, &mut ops);
        Circuit {
            n_qubits: self.n_qubits,
            n_cbits: self.n_cbits,
            name: self.name.clone(),
            ops,
        }
    }
}

/// Lowers a (controlled) swap into three CX-family gates.
///
/// Uses the Fredkin identity `CSWAP(C; a,b) = CX(b→a) · MCX(C∪{a}→b) ·
/// CX(b→a)`: only the middle gate carries the external controls (the outer
/// pair cancels when they are inactive). With no controls this reduces to
/// the textbook three-CX swap.
pub fn lower_swap(a: u32, b: u32, controls: &[Control]) -> Vec<GateOp> {
    let mut middle_controls = controls.to_vec();
    middle_controls.push(Control::pos(a));
    vec![
        GateOp::controlled(StandardGate::X, vec![Control::pos(b)], a),
        GateOp::controlled(StandardGate::X, middle_controls, b),
        GateOp::controlled(StandardGate::X, vec![Control::pos(b)], a),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccx(0, 1, 2).swap(1, 2).barrier().z(2);
        assert_eq!(c.ops().len(), 6);
        // swap counts 3 elementary, barrier 0.
        assert_eq!(c.elementary_count(), (1 + 1 + 1 + 3) + 1);
        assert!(!c.has_nonunitary());
    }

    #[test]
    fn measurement_flags_nonunitary() {
        let mut c = Circuit::with_cbits(2, 1);
        c.h(0).measure(0, 0);
        assert!(c.has_nonunitary());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_rejected() {
        let mut c = Circuit::new(2);
        c.x(2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cbit_rejected() {
        let mut c = Circuit::with_cbits(2, 1);
        c.measure(0, 1);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).s(1).cx(0, 1);
        let inv = c.inverse().expect("unitary circuit inverts");
        assert_eq!(inv.ops().len(), 3);
        match &inv.ops()[0] {
            Operation::Gate(g) => {
                assert_eq!(g.gate, StandardGate::X);
                assert_eq!(g.target, 1);
            }
            other => panic!("unexpected op {other:?}"),
        }
        match &inv.ops()[1] {
            Operation::Gate(g) => assert_eq!(g.gate, StandardGate::Sdg),
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn inverse_rejects_measurement() {
        let mut c = Circuit::with_cbits(1, 1);
        c.measure(0, 0);
        assert_eq!(c.inverse(), Err(InvertCircuitError));
    }

    #[test]
    fn repeat_flattens_to_expanded_sequence() {
        let mut body = Circuit::new(2);
        body.h(0).cx(0, 1);
        let mut c = Circuit::new(2);
        c.x(0).repeat(&body, 3);
        assert_eq!(c.elementary_count(), 1 + 3 * 2);
        let flat = c.flattened();
        assert_eq!(flat.ops().len(), 1 + 3 * 2);
        assert!(flat
            .ops()
            .iter()
            .all(|op| !matches!(op, Operation::Repeat { .. })));
    }

    #[test]
    fn nested_repeat_counts() {
        let mut inner = Circuit::new(1);
        inner.x(0);
        let mut middle = Circuit::new(1);
        middle.repeat(&inner, 2).h(0);
        let mut outer = Circuit::new(1);
        outer.repeat(&middle, 3);
        assert_eq!(outer.elementary_count(), 3 * (2 + 1));
        assert_eq!(outer.flattened().ops().len(), 9);
    }

    #[test]
    fn lower_swap_produces_three_cx() {
        let gates = lower_swap(0, 1, &[]);
        assert_eq!(gates.len(), 3);
        for g in &gates {
            assert_eq!(g.gate, StandardGate::X);
            assert_eq!(g.controls.len(), 1);
        }
    }

    #[test]
    fn append_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.append(&b);
        assert_eq!(a.ops().len(), 2);
    }
}

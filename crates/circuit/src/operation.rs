//! Circuit operations: gates with controls, measurement, reset, classical
//! control, and repeated blocks.

use std::fmt;

use ddsim_dd::Control;

use crate::gate::StandardGate;

/// A (possibly multi-)controlled single-qubit gate application.
#[derive(Clone, Debug, PartialEq)]
pub struct GateOp {
    /// The base single-qubit gate.
    pub gate: StandardGate,
    /// Target qubit (0 = topmost / most significant, as in the paper).
    pub target: u32,
    /// Controls (positive or negative), any positions.
    pub controls: Vec<Control>,
}

impl GateOp {
    /// An uncontrolled gate on `target`.
    pub fn new(gate: StandardGate, target: u32) -> Self {
        GateOp {
            gate,
            target,
            controls: Vec::new(),
        }
    }

    /// A controlled gate.
    pub fn controlled(gate: StandardGate, controls: Vec<Control>, target: u32) -> Self {
        GateOp {
            gate,
            target,
            controls,
        }
    }

    /// The inverse application (`G†` with the same controls).
    pub fn inverse(&self) -> GateOp {
        GateOp {
            gate: self.gate.inverse(),
            target: self.target,
            controls: self.controls.clone(),
        }
    }

    /// Highest qubit index referenced.
    pub fn max_qubit(&self) -> u32 {
        self.controls
            .iter()
            .map(|c| c.qubit)
            .chain(std::iter::once(self.target))
            .max()
            .expect("iterator is never empty")
    }
}

impl fmt::Display for GateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.controls {
            match c.polarity {
                ddsim_dd::ControlPolarity::Positive => write!(f, "c{}·", c.qubit)?,
                ddsim_dd::ControlPolarity::Negative => write!(f, "c̄{}·", c.qubit)?,
            }
        }
        write!(f, "{} q{}", self.gate, self.target)
    }
}

/// One step of a quantum circuit.
#[derive(Clone, Debug, PartialEq)]
pub enum Operation {
    /// A unitary gate application.
    Gate(GateOp),
    /// Swap two qubits (optionally controlled). Lowered to three CX gates
    /// when a unitary DD is built.
    Swap {
        /// First qubit.
        a: u32,
        /// Second qubit.
        b: u32,
        /// Controls guarding the swap.
        controls: Vec<Control>,
    },
    /// Measure a qubit into a classical bit (destructive, collapsing).
    Measure {
        /// Measured qubit.
        qubit: u32,
        /// Classical bit receiving the outcome.
        cbit: usize,
    },
    /// Reset a qubit to |0⟩ (measure and flip if 1).
    Reset {
        /// Qubit to reset.
        qubit: u32,
    },
    /// A gate applied only if a classical bit has the given value — the
    /// primitive behind semiclassical (measurement-feedback) circuits such
    /// as the single-control-qubit Shor variant (paper footnote 7).
    Classical {
        /// The guarded gate.
        gate: GateOp,
        /// Classical bit examined.
        cbit: usize,
        /// Required value for the gate to fire.
        value: bool,
    },
    /// A block repeated a fixed number of times — the structure the
    /// *DD-repeating* strategy exploits (e.g. the Grover iteration).
    Repeat {
        /// The repeated operations.
        body: Vec<Operation>,
        /// Number of repetitions.
        times: u32,
    },
    /// A scheduling barrier; strategies never combine across it.
    Barrier,
}

impl Operation {
    /// Whether the operation is a unitary gate (combinable by the paper's
    /// strategies).
    pub fn is_unitary(&self) -> bool {
        matches!(
            self,
            Operation::Gate(_) | Operation::Swap { .. } | Operation::Repeat { .. }
        )
    }

    /// Highest qubit index referenced (`None` for barriers).
    pub fn max_qubit(&self) -> Option<u32> {
        match self {
            Operation::Gate(g) => Some(g.max_qubit()),
            Operation::Swap { a, b, controls } => {
                controls.iter().map(|c| c.qubit).chain([*a, *b]).max()
            }
            Operation::Measure { qubit, .. } | Operation::Reset { qubit } => Some(*qubit),
            Operation::Classical { gate, .. } => Some(gate.max_qubit()),
            Operation::Repeat { body, .. } => body.iter().filter_map(|op| op.max_qubit()).max(),
            Operation::Barrier => None,
        }
    }

    /// Highest classical bit referenced, if any.
    pub fn max_cbit(&self) -> Option<usize> {
        match self {
            Operation::Measure { cbit, .. } | Operation::Classical { cbit, .. } => Some(*cbit),
            Operation::Repeat { body, .. } => body.iter().filter_map(|op| op.max_cbit()).max(),
            _ => None,
        }
    }

    /// Number of elementary gates after flattening repeats and lowering
    /// swaps (barriers count zero, measurements/resets count one).
    pub fn elementary_count(&self) -> u64 {
        match self {
            Operation::Gate(_) | Operation::Classical { .. } => 1,
            Operation::Swap { .. } => 3,
            Operation::Measure { .. } | Operation::Reset { .. } => 1,
            Operation::Repeat { body, times } => {
                let inner: u64 = body.iter().map(|op| op.elementary_count()).sum();
                inner * u64::from(*times)
            }
            Operation::Barrier => 0,
        }
    }
}

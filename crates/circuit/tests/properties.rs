//! Property-based tests for the circuit IR and the OpenQASM subset.

use ddsim_circuit::{qasm, Circuit, Operation, StandardGate};
use proptest::prelude::*;

/// Gates the QASM writer can serialize losslessly.
fn serializable_gate() -> impl Strategy<Value = StandardGate> {
    prop_oneof![
        Just(StandardGate::X),
        Just(StandardGate::Y),
        Just(StandardGate::Z),
        Just(StandardGate::H),
        Just(StandardGate::S),
        Just(StandardGate::Sdg),
        Just(StandardGate::T),
        Just(StandardGate::Tdg),
        (-3.0f64..3.0).prop_map(StandardGate::Rx),
        (-3.0f64..3.0).prop_map(StandardGate::Ry),
        (-3.0f64..3.0).prop_map(StandardGate::Rz),
        (-3.0f64..3.0).prop_map(StandardGate::Phase),
    ]
}

const N: u32 = 5;

#[derive(Clone, Debug)]
enum Step {
    Single(StandardGate, u32),
    Cx(u32, u32),
    Cz(u32, u32),
    Ccx(u32, u32, u32),
    Swap(u32, u32),
}

fn step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (serializable_gate(), 0..N).prop_map(|(g, t)| Step::Single(g, t)),
        (0..N, 0..N)
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| Step::Cx(a, b)),
        (0..N, 0..N)
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| Step::Cz(a, b)),
        (0..N, 0..N, 0..N)
            .prop_filter("distinct", |(a, b, c)| a != b && b != c && a != c)
            .prop_map(|(a, b, c)| Step::Ccx(a, b, c)),
        (0..N, 0..N)
            .prop_filter("distinct", |(a, b)| a != b)
            .prop_map(|(a, b)| Step::Swap(a, b)),
    ]
}

fn build(steps: &[Step]) -> Circuit {
    let mut c = Circuit::new(N);
    for s in steps {
        match *s {
            Step::Single(g, t) => {
                c.gate(g, t);
            }
            Step::Cx(a, b) => {
                c.cx(a, b);
            }
            Step::Cz(a, b) => {
                c.cz(a, b);
            }
            Step::Ccx(a, b, t) => {
                c.ccx(a, b, t);
            }
            Step::Swap(a, b) => {
                c.swap(a, b);
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn qasm_roundtrip_preserves_structure(steps in proptest::collection::vec(step(), 1..40)) {
        let circuit = build(&steps);
        let text = qasm::write(&circuit).expect("all generated gates serialize");
        let back = qasm::parse(&text).expect("writer output parses");
        prop_assert_eq!(back.qubits(), circuit.qubits());
        prop_assert_eq!(back.elementary_count(), circuit.elementary_count());
        prop_assert_eq!(back.ops().len(), circuit.ops().len());
        // Re-serializing is a fixpoint.
        let text2 = qasm::write(&back).expect("reserialize");
        prop_assert_eq!(text, text2);
    }

    #[test]
    fn inverse_is_an_involution(steps in proptest::collection::vec(step(), 1..30)) {
        let circuit = build(&steps);
        let twice = circuit
            .inverse()
            .expect("unitary")
            .inverse()
            .expect("unitary");
        // Double inversion restores the exact op sequence (angles negate
        // twice, order reverses twice).
        prop_assert_eq!(twice.ops(), circuit.ops());
    }

    #[test]
    fn flattening_preserves_elementary_count(
        steps in proptest::collection::vec(step(), 1..15),
        times in 1u32..5,
    ) {
        let body = build(&steps);
        let mut c = Circuit::new(N);
        c.repeat(&body, times);
        prop_assert_eq!(
            c.elementary_count(),
            body.elementary_count() * u64::from(times)
        );
        let flat = c.flattened();
        prop_assert_eq!(flat.elementary_count(), c.elementary_count());
        let no_repeats = flat
            .ops()
            .iter()
            .all(|op| !matches!(op, Operation::Repeat { .. }));
        prop_assert!(no_repeats);
    }

    #[test]
    fn appended_circuits_concatenate(
        a in proptest::collection::vec(step(), 0..10),
        b in proptest::collection::vec(step(), 0..10),
    ) {
        let ca = build(&a);
        let cb = build(&b);
        let mut joined = Circuit::new(N);
        joined.append(&ca).append(&cb);
        prop_assert_eq!(joined.ops().len(), ca.ops().len() + cb.ops().len());
        prop_assert_eq!(
            joined.elementary_count(),
            ca.elementary_count() + cb.elementary_count()
        );
    }
}

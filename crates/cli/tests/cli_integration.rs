//! End-to-end tests of the `ddsim` binary via `CARGO_BIN_EXE`.

use std::process::Command;

fn ddsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ddsim"))
}

#[test]
fn generates_and_reports_stats() {
    let output = ddsim()
        .args(["--generate", "ghz:5", "--stats"])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("mat_vec_mults      5"), "stdout: {stdout}");
    assert!(stdout.contains("final_state_nodes"), "stdout: {stdout}");
}

#[test]
fn counts_mode_shows_ghz_outcomes() {
    let output = ddsim()
        .args([
            "--generate",
            "ghz:4",
            "--counts",
            "--shots",
            "64",
            "--seed",
            "3",
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    // Only the two cat outcomes appear.
    let outcome_lines: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with('0') || l.starts_with('1'))
        .collect();
    assert!(!outcome_lines.is_empty());
    for line in outcome_lines {
        let outcome = line.split_whitespace().next().expect("outcome column");
        assert!(
            outcome == "0000" || outcome == "1111",
            "unexpected GHZ outcome line: {line}"
        );
    }
}

#[test]
fn amplitudes_mode_prints_nonzero_rows() {
    let output = ddsim()
        .args(["--generate", "bv:4:9", "--amplitudes"])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("basis  amplitude"), "stdout: {stdout}");
}

#[test]
fn qasm_file_roundtrip() {
    let dir = std::env::temp_dir().join("ddsim_cli_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("bell.qasm");
    std::fs::write(&path, "OPENQASM 2.0;\nqreg q[2];\nh q[0];\ncx q[0],q[1];\n")
        .expect("write qasm");
    let output = ddsim()
        .args([path.to_str().expect("utf-8 path"), "--stats"])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("mat_vec_mults      2"), "stdout: {stdout}");
}

#[test]
fn dot_export_writes_a_digraph() {
    let dir = std::env::temp_dir().join("ddsim_cli_test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let dot_path = dir.join("state.dot");
    let output = ddsim()
        .args([
            "--generate",
            "ghz:3",
            "--stats",
            "--dot",
            dot_path.to_str().expect("utf-8 path"),
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let dot = std::fs::read_to_string(&dot_path).expect("dot written");
    assert!(dot.starts_with("digraph vectordd"));
}

#[test]
fn strategy_flag_changes_multiplication_profile() {
    let run = |strategy: &str| -> String {
        let output = ddsim()
            .args(["--generate", "qft:6", "--stats", "--strategy", strategy])
            .output()
            .expect("binary runs");
        assert!(output.status.success(), "{strategy}");
        String::from_utf8_lossy(&output.stdout).to_string()
    };
    let seq = run("sequential");
    let combined = run("kops:8");
    assert!(seq.contains("mat_mat_mults      0"));
    assert!(!combined.contains("mat_mat_mults      0"));
}

#[test]
fn bad_arguments_fail_with_message() {
    let output = ddsim()
        .args(["--generate", "nonsense:1"])
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("bad generator spec"), "stderr: {stderr}");
}

#[test]
fn missing_file_fails_cleanly() {
    let output = ddsim()
        .arg("/nonexistent/circuit.qasm")
        .output()
        .expect("binary runs");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot read"), "stderr: {stderr}");
}

#[test]
fn trace_flag_prints_step_table() {
    let output = ddsim()
        .args(["--generate", "ghz:3", "--stats", "--trace"])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("step_gate combined matrix_nodes state_nodes"));
}

//! `ddsim` — command-line DD-based quantum-circuit simulator.
//!
//! ```text
//! ddsim bell.qasm --counts --shots 2048
//! ddsim --generate grover:13:5 --strategy ddrepeating:8 --stats
//! ddsim --generate shor:55:17 --strategy kops:16 --stats
//! ```

mod args;
mod generate;
mod noisy;
mod trotter;

use std::path::Path;
use std::process::ExitCode;

use ddsim_circuit::{qasm, Circuit};
use ddsim_core::{CheckpointConfig, SimError, SimOptions, Simulator};

use crate::args::{Args, CircuitSource, OutputMode};

/// Maps a simulation error onto the documented exit codes (see
/// `args::USAGE`): 2 budget, 3 deadline, 4 cancelled, 5 width mismatch,
/// 6 checkpoint, 7 suspended (resumable), 1 everything else.
fn exit_code_for(e: &SimError) -> u8 {
    match e {
        SimError::BudgetExceeded { .. } => 2,
        SimError::DeadlineExceeded => 3,
        SimError::Cancelled => 4,
        SimError::WidthMismatch { .. } => 5,
        SimError::Snapshot(_) => 6,
        SimError::Suspended => 7,
        SimError::Internal(_) => 1,
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // `ddsim serve ...` delegates wholesale to the server crate; every
    // other invocation goes through the regular argument parser.
    if argv.first().map(String::as_str) == Some("serve") {
        return ExitCode::from(ddsim_server::run_cli(&argv[1..]) as u8);
    }
    if argv.first().map(String::as_str) == Some("trotter") {
        return trotter::run_cli(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("noisy") {
        return noisy::run_cli(&argv[1..]);
    }
    let parsed = match args::parse(&argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            let code = e.downcast_ref::<SimError>().map(exit_code_for).unwrap_or(1);
            ExitCode::from(code)
        }
    }
}

fn load_circuit(source: &CircuitSource) -> Result<Circuit, Box<dyn std::error::Error>> {
    match source {
        CircuitSource::QasmFile(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Ok(qasm::parse(&text)?)
        }
        CircuitSource::Generator(spec) => Ok(generate::generate(spec)?),
    }
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let circuit = load_circuit(&args.source)?;
    let name = if circuit.name().is_empty() {
        "circuit".to_string()
    } else {
        circuit.name().to_string()
    };
    eprintln!(
        "{name}: {} qubits, {} classical bits, {} elementary gates",
        circuit.qubits(),
        circuit.cbits(),
        circuit.elementary_count()
    );

    let options = SimOptions {
        strategy: args.strategy,
        reorder: args.reorder,
        seed: args.seed,
        collect_trace: args.trace,
        dd_config: args.dd_config,
        deadline: args.deadline,
        threads: args.threads,
    };
    let checkpoint_cfg = (args.checkpoint_every > 0).then(|| CheckpointConfig {
        every_ops: args.checkpoint_every,
        path: args.checkpoint_file.clone().into(),
    });
    let (mut sim, stats) = if let Some(snapshot) = &args.resume {
        let (mut sim, next_op) = Simulator::resume_from(Path::new(snapshot), &circuit, options)?;
        eprintln!(
            "resumed from {snapshot} at op {next_op}/{}",
            circuit.flattened().ops().len()
        );
        let stats = sim.run_from(&circuit, next_op, checkpoint_cfg.as_ref())?;
        (sim, stats)
    } else if let Some(cfg) = &checkpoint_cfg {
        let mut sim = Simulator::with_options(circuit.qubits(), options);
        let stats = sim.run_from(&circuit, 0, Some(cfg))?;
        (sim, stats)
    } else {
        let mut sim = Simulator::with_options(circuit.qubits(), options);
        let stats = sim.run(&circuit)?;
        (sim, stats)
    };

    eprintln!(
        "strategy {}: {:?}, {} MxV, {} MxM, final DD {} nodes",
        args.strategy,
        stats.wall_time,
        stats.mat_vec_mults,
        stats.mat_mat_mults,
        stats.final_state_nodes
    );

    if args.trace {
        println!("step_gate combined matrix_nodes state_nodes");
        for t in &stats.trace {
            println!(
                "{:<9} {:<8} {:<12} {}",
                t.gate_index, t.combined_gates, t.matrix_nodes, t.state_nodes
            );
        }
    }

    if circuit.cbits() > 0 {
        let bits: String = sim
            .classical_bits()
            .iter()
            .rev()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        println!(
            "classical register: {bits} (decimal {})",
            sim.classical_value()
        );
    }

    match args.output {
        OutputMode::Counts => {
            let mut counts: Vec<(u64, u32)> = sim.sample_counts(args.shots).into_iter().collect();
            counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            println!("outcome  count  (of {} shots)", args.shots);
            for (outcome, count) in counts.iter().take(32) {
                println!(
                    "{outcome:0width$b}  {count}",
                    width = circuit.qubits() as usize
                );
            }
            if counts.len() > 32 {
                println!("… {} more distinct outcomes", counts.len() - 32);
            }
        }
        OutputMode::Amplitudes => {
            let n = circuit.qubits();
            if n > 16 {
                return Err("--amplitudes is limited to 16 qubits (65536 rows)".into());
            }
            println!("basis  amplitude  probability");
            for idx in 0..(1u64 << n) {
                let a = sim.amplitude(idx);
                if a.norm_sqr() > 1e-12 {
                    println!(
                        "{idx:0width$b}  {a}  {:.6}",
                        a.norm_sqr(),
                        width = n as usize
                    );
                }
            }
        }
        OutputMode::Stats => {
            println!("wall_time_s        {:.6}", stats.wall_time.as_secs_f64());
            println!("elementary_gates   {}", stats.elementary_gates);
            println!("mat_vec_mults      {}", stats.mat_vec_mults);
            println!("mat_mat_mults      {}", stats.mat_mat_mults);
            println!("identity_skips     {}", stats.identity_skips);
            println!("specialized_applies {}", stats.specialized_applies);
            println!("mult_recursions    {}", stats.mult_recursions);
            println!("add_recursions     {}", stats.add_recursions);
            println!("peak_state_nodes   {}", stats.peak_state_nodes);
            println!("peak_matrix_nodes  {}", stats.peak_matrix_nodes);
            println!("final_state_nodes  {}", stats.final_state_nodes);
            println!("gc_runs            {}", stats.gc_runs);
            println!("ladder_gc_rescues  {}", stats.ladder_gc_rescues);
            println!("ladder_cache_flushes {}", stats.ladder_cache_flushes);
            println!("ladder_downgrades  {}", stats.ladder_strategy_downgrades);
            println!("reorders           {}", stats.reorders);
            println!("ladder_reorders    {}", stats.ladder_reorders);
            println!("degraded           {}", stats.degraded);
            println!("checkpoints_written {}", stats.checkpoints_written);
            for (name, t) in stats.cache.named_compute() {
                if t.lookups == 0 {
                    continue;
                }
                println!(
                    "cache_{name:<14} lookups {} hits {} ({:.1}%) evictions {} stale {}",
                    t.lookups,
                    t.hits,
                    100.0 * t.hit_rate(),
                    t.evictions,
                    t.stale
                );
            }
            for (name, u) in stats.cache.named_unique() {
                if u.lookups == 0 {
                    continue;
                }
                println!(
                    "{name:<20} lookups {} hits {} ({:.1}%) probes {} grows {} rebuilds {}",
                    u.lookups,
                    u.hits,
                    100.0 * u.hit_rate(),
                    u.probes,
                    u.grows,
                    u.rebuilds
                );
            }
            let c = &stats.cache.complex;
            if c.lookups > 0 {
                let (buckets, longest) = sim.dd().complex_table_occupancy();
                println!(
                    "complex_table        lookups {} unified {} ({:.1}%) inserts {} mean_probe {:.2} buckets {} longest {}",
                    c.lookups,
                    c.unified,
                    100.0 * c.unify_rate(),
                    c.inserts,
                    c.mean_probe_len(),
                    buckets,
                    longest
                );
            }
        }
    }

    if let Some(path) = &args.dot_out {
        let dot = sim.dd().vec_to_dot(sim.state());
        std::fs::write(path, dot).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("final state DD written to {path}");
    }
    Ok(())
}

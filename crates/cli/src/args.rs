//! Hand-rolled argument parsing for the `ddsim` binary (no external
//! dependencies beyond the approved set).

use std::fmt;
use std::time::Duration;

use ddsim_core::{DdConfig, ReorderMode, Strategy};

/// Where the circuit comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum CircuitSource {
    /// An OpenQASM 2.0 file.
    QasmFile(String),
    /// A built-in benchmark generator spec like `grover:13:5`,
    /// `shor:55:17`, `supremacy:4:4:12:42`, `ghz:8`, `qft:6`,
    /// `bv:8:37`, `qaoa-ring:6:0.6:0.3`.
    Generator(String),
}

/// What the run should print.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputMode {
    /// Sampled measurement counts (`--shots`).
    Counts,
    /// The nonzero amplitudes (small registers only).
    Amplitudes,
    /// Statistics only.
    Stats,
}

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct Args {
    /// Circuit source.
    pub source: CircuitSource,
    /// Combining strategy.
    pub strategy: Strategy,
    /// Dynamic variable reordering policy.
    pub reorder: ReorderMode,
    /// Measurement seed.
    pub seed: u64,
    /// Shots for `--counts`.
    pub shots: u32,
    /// Output mode.
    pub output: OutputMode,
    /// Export the final state DD as Graphviz DOT to this path.
    pub dot_out: Option<String>,
    /// Record and print the per-step trace.
    pub trace: bool,
    /// DD-manager tuning (table sizes, cache switch, GC threshold,
    /// resource budgets).
    pub dd_config: DdConfig,
    /// Wall-clock budget for the run (`--deadline`, seconds).
    pub deadline: Option<Duration>,
    /// Worker threads (`--threads`; 1 = sequential, 0 = all cores).
    pub threads: u32,
    /// Write a checkpoint every this many executed ops (0 = never).
    pub checkpoint_every: u64,
    /// Checkpoint destination (`--checkpoint-file`).
    pub checkpoint_file: String,
    /// Resume from this snapshot instead of starting fresh.
    pub resume: Option<String>,
}

/// A parse failure with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseArgsError {}

/// Usage text shown on `--help` or errors.
pub const USAGE: &str = "\
ddsim — DD-based quantum-circuit simulator (DATE'19 reproduction)

USAGE:
    ddsim <circuit.qasm | --generate SPEC> [OPTIONS]
    ddsim serve [SERVER OPTIONS]      run as a multi-tenant TCP daemon
                                      (see `ddsim serve --help`)
    ddsim trotter [OPTIONS]           Trotterized Hamiltonian evolution swept
                                      across combining strategies
                                      (see `ddsim trotter --help`)
    ddsim noisy <circuit> [OPTIONS]   depolarizing noise: trajectory ensemble
                                      or exact density matrix
                                      (see `ddsim noisy --help`)

CIRCUIT SOURCES:
    circuit.qasm             OpenQASM 2.0 subset file
    --generate grover:Q:M    Grover with Q total qubits, marked element M
    --generate shor:N:A      Beauregard Shor circuit for N with base A
    --generate supremacy:R:C:D:S   RxC grid, depth D, seed S
    --generate ghz:N | qft:N | bv:N:SECRET | qaoa-ring:N:GAMMA:BETA

OPTIONS:
    --strategy sequential | kops:K | maxsize:S | ddrepeating:K | adaptive
                             combining strategy [default: sequential]
    --reorder none | sifting dynamic variable reordering: sifting shrinks
                             the state DD when it outgrows its post-sift
                             baseline (amplitudes are unchanged)
                             [default: none]
    --seed N                 measurement seed [default: 0]
    --shots N                samples for --counts [default: 1024]
    --counts | --amplitudes | --stats
                             output mode [default: counts]
    --dot FILE               write the final state DD as Graphviz DOT
    --trace                  print the per-step DD-size trace
    --ct-bits N              log2 of each compute-table capacity [default: 16]
    --ut-bits N              log2 of the initial unique-table capacity
                             [default: 14]
    --no-cache               disable compute-table memoization (identical
                             results, for ablation)
    --no-identity-skip       disable identity short-circuits and the
                             specialized gate-apply kernels (for ablation)
    --no-simd                force the scalar leaf-arithmetic kernels
                             (bitwise-identical results, for ablation)
    --gc-threshold N         live-node count that triggers garbage
                             collection [default: 250000]
    --threads N              worker threads for the DD kernels and shot
                             sampling; 1 = strictly sequential (bitwise
                             identical to the single-threaded engine),
                             0 = all cores [default: 1]
    --help                   show this text

RESOURCE LIMITS:
    --max-nodes N            abort (after degradation) when the DD exceeds
                             N live nodes
    --max-table-bytes N      abort (after degradation) when table memory
                             exceeds N bytes
    --deadline SECS          wall-clock budget for the run (fractional
                             seconds allowed)
    --checkpoint-every OPS   write a resumable snapshot every OPS executed
                             operations (implies flattened execution)
    --checkpoint-file FILE   snapshot path [default: ddsim.snapshot]
    --resume FILE            continue a run from a snapshot written by
                             --checkpoint-every

EXIT CODES:
    0  success
    1  usage, I/O, or parse error
    2  resource budget exceeded (--max-nodes / --max-table-bytes)
    3  wall-clock deadline exceeded (--deadline)
    4  cancelled
    5  circuit/simulator width mismatch
    6  checkpoint error (unreadable, corrupt, or wrong circuit)
    7  suspended at an op boundary (resumable; server eviction)
";

/// Parses argv (excluding the program name).
///
/// # Errors
///
/// Returns a message describing the first problem encountered.
pub fn parse(argv: &[String]) -> Result<Args, ParseArgsError> {
    let mut source: Option<CircuitSource> = None;
    let mut strategy = Strategy::Sequential;
    let mut reorder = ReorderMode::None;
    let mut seed = 0u64;
    let mut shots = 1024u32;
    let mut output = OutputMode::Counts;
    let mut dot_out = None;
    let mut trace = false;
    let mut dd_config = DdConfig::default();
    let mut deadline = None;
    let mut threads = 1u32;
    let mut checkpoint_every = 0u64;
    let mut checkpoint_file = "ddsim.snapshot".to_string();
    let mut resume = None;

    let mut i = 0usize;
    while i < argv.len() {
        let arg = argv[i].as_str();
        match arg {
            "--help" | "-h" => return Err(ParseArgsError(USAGE.to_string())),
            "--generate" => {
                let spec = argv
                    .get(i + 1)
                    .ok_or_else(|| ParseArgsError("--generate needs a spec".into()))?;
                source = Some(CircuitSource::Generator(spec.clone()));
                i += 1;
            }
            "--strategy" => {
                let spec = argv
                    .get(i + 1)
                    .ok_or_else(|| ParseArgsError("--strategy needs a value".into()))?;
                strategy = parse_strategy(spec)?;
                i += 1;
            }
            "--reorder" => {
                let spec = argv
                    .get(i + 1)
                    .ok_or_else(|| ParseArgsError("--reorder needs a value".into()))?;
                reorder = ReorderMode::parse(spec).ok_or_else(|| {
                    ParseArgsError(format!("unknown reorder mode `{spec}` (see --help)"))
                })?;
                i += 1;
            }
            "--seed" => {
                seed = parse_value(argv.get(i + 1), "--seed")?;
                i += 1;
            }
            "--shots" => {
                shots = parse_value(argv.get(i + 1), "--shots")?;
                i += 1;
            }
            "--counts" => output = OutputMode::Counts,
            "--amplitudes" => output = OutputMode::Amplitudes,
            "--stats" => output = OutputMode::Stats,
            "--dot" => {
                let path = argv
                    .get(i + 1)
                    .ok_or_else(|| ParseArgsError("--dot needs a path".into()))?;
                dot_out = Some(path.clone());
                i += 1;
            }
            "--trace" => trace = true,
            "--ct-bits" => {
                let bits: u32 = parse_value(argv.get(i + 1), "--ct-bits")?;
                if !(1..=28).contains(&bits) {
                    return Err(ParseArgsError("--ct-bits must be in 1..=28".into()));
                }
                dd_config.compute_table_bits = bits;
                i += 1;
            }
            "--ut-bits" => {
                let bits: u32 = parse_value(argv.get(i + 1), "--ut-bits")?;
                if !(1..=28).contains(&bits) {
                    return Err(ParseArgsError("--ut-bits must be in 1..=28".into()));
                }
                dd_config.unique_table_bits = bits;
                i += 1;
            }
            "--no-cache" => dd_config.cache_enabled = false,
            "--no-identity-skip" => dd_config.identity_skip = false,
            "--no-simd" => dd_config.simd = false,
            "--gc-threshold" => {
                dd_config.gc_threshold = parse_value(argv.get(i + 1), "--gc-threshold")?;
                i += 1;
            }
            "--max-nodes" => {
                let nodes: usize = parse_value(argv.get(i + 1), "--max-nodes")?;
                if nodes == 0 {
                    return Err(ParseArgsError("--max-nodes must be positive".into()));
                }
                dd_config.max_live_nodes = Some(nodes);
                i += 1;
            }
            "--max-table-bytes" => {
                let bytes: usize = parse_value(argv.get(i + 1), "--max-table-bytes")?;
                if bytes == 0 {
                    return Err(ParseArgsError("--max-table-bytes must be positive".into()));
                }
                dd_config.max_table_bytes = Some(bytes);
                i += 1;
            }
            "--deadline" => {
                let secs: f64 = parse_value(argv.get(i + 1), "--deadline")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(ParseArgsError(
                        "--deadline needs a positive number of seconds".into(),
                    ));
                }
                deadline = Some(Duration::from_secs_f64(secs));
                i += 1;
            }
            "--threads" => {
                threads = parse_value(argv.get(i + 1), "--threads")?;
                i += 1;
            }
            "--checkpoint-every" => {
                checkpoint_every = parse_value(argv.get(i + 1), "--checkpoint-every")?;
                if checkpoint_every == 0 {
                    return Err(ParseArgsError("--checkpoint-every must be positive".into()));
                }
                i += 1;
            }
            "--checkpoint-file" => {
                let path = argv
                    .get(i + 1)
                    .ok_or_else(|| ParseArgsError("--checkpoint-file needs a path".into()))?;
                checkpoint_file = path.clone();
                i += 1;
            }
            "--resume" => {
                let path = argv
                    .get(i + 1)
                    .ok_or_else(|| ParseArgsError("--resume needs a path".into()))?;
                resume = Some(path.clone());
                i += 1;
            }
            other if !other.starts_with('-') => {
                if source.is_some() {
                    return Err(ParseArgsError(format!(
                        "unexpected extra positional argument `{other}`"
                    )));
                }
                source = Some(CircuitSource::QasmFile(other.to_string()));
            }
            other => {
                return Err(ParseArgsError(format!("unknown option `{other}`")));
            }
        }
        i += 1;
    }

    let source = source.ok_or_else(|| ParseArgsError(format!("no circuit given\n\n{USAGE}")))?;
    Ok(Args {
        source,
        strategy,
        reorder,
        seed,
        shots,
        output,
        dot_out,
        trace,
        dd_config,
        deadline,
        threads,
        checkpoint_every,
        checkpoint_file,
        resume,
    })
}

fn parse_value<T: std::str::FromStr>(
    raw: Option<&String>,
    flag: &str,
) -> Result<T, ParseArgsError> {
    raw.ok_or_else(|| ParseArgsError(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| ParseArgsError(format!("bad value for {flag}")))
}

fn parse_strategy(spec: &str) -> Result<Strategy, ParseArgsError> {
    // The grammar lives on `Strategy` itself (`FromStr`), shared with the
    // server's SUBMIT option parser.
    spec.parse()
        .map_err(|e: ddsim_core::ParseStrategyError| ParseArgsError(format!("{e} (see --help)")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_qasm_file_with_defaults() {
        let a = parse(&argv(&["bell.qasm"])).expect("valid");
        assert_eq!(a.source, CircuitSource::QasmFile("bell.qasm".into()));
        assert_eq!(a.strategy, Strategy::Sequential);
        assert_eq!(a.output, OutputMode::Counts);
        assert_eq!(a.shots, 1024);
    }

    #[test]
    fn parses_generator_and_strategy() {
        let a = parse(&argv(&[
            "--generate",
            "grover:13:5",
            "--strategy",
            "ddrepeating:8",
            "--stats",
        ]))
        .expect("valid");
        assert_eq!(a.source, CircuitSource::Generator("grover:13:5".into()));
        assert_eq!(a.strategy, Strategy::DdRepeating { k: 8 });
        assert_eq!(a.output, OutputMode::Stats);
    }

    #[test]
    fn parses_all_strategies() {
        for (spec, want) in [
            ("sequential", Strategy::Sequential),
            ("kops:16", Strategy::KOperations { k: 16 }),
            ("maxsize:512", Strategy::MaxSize { s_max: 512 }),
            ("adaptive", Strategy::adaptive()),
        ] {
            let a = parse(&argv(&["x.qasm", "--strategy", spec])).expect("valid");
            assert_eq!(a.strategy, want, "{spec}");
        }
    }

    #[test]
    fn reorder_flag() {
        let a = parse(&argv(&["x.qasm"])).expect("valid");
        assert_eq!(a.reorder, ReorderMode::None, "reordering off by default");
        let b = parse(&argv(&["x.qasm", "--reorder", "sifting"])).expect("valid");
        assert_eq!(b.reorder, ReorderMode::Sifting);
        let c = parse(&argv(&["x.qasm", "--reorder", "none"])).expect("valid");
        assert_eq!(c.reorder, ReorderMode::None);
        let e = parse(&argv(&["x.qasm", "--reorder", "bubble"])).expect_err("invalid");
        assert!(e.0.contains("unknown reorder mode"));
        assert!(parse(&argv(&["x.qasm", "--reorder"])).is_err());
    }

    #[test]
    fn rejects_unknown_flag() {
        let e = parse(&argv(&["x.qasm", "--frobnicate"])).expect_err("invalid");
        assert!(e.0.contains("unknown option"));
    }

    #[test]
    fn rejects_missing_source() {
        let e = parse(&argv(&["--stats"])).expect_err("invalid");
        assert!(e.0.contains("no circuit given"));
    }

    #[test]
    fn seed_and_shots() {
        let a = parse(&argv(&["x.qasm", "--seed", "7", "--shots", "99"])).expect("valid");
        assert_eq!(a.seed, 7);
        assert_eq!(a.shots, 99);
    }

    #[test]
    fn dd_config_defaults() {
        let a = parse(&argv(&["x.qasm"])).expect("valid");
        let d = DdConfig::default();
        assert_eq!(a.dd_config.compute_table_bits, d.compute_table_bits);
        assert_eq!(a.dd_config.unique_table_bits, d.unique_table_bits);
        assert!(a.dd_config.cache_enabled);
        assert!(a.dd_config.identity_skip);
        assert!(a.dd_config.simd, "SIMD kernels on by default");
        assert_eq!(a.dd_config.gc_threshold, d.gc_threshold);
    }

    #[test]
    fn dd_config_flags() {
        let a = parse(&argv(&[
            "x.qasm",
            "--ct-bits",
            "12",
            "--ut-bits",
            "10",
            "--no-cache",
            "--no-identity-skip",
            "--no-simd",
            "--gc-threshold",
            "5000",
        ]))
        .expect("valid");
        assert_eq!(a.dd_config.compute_table_bits, 12);
        assert_eq!(a.dd_config.unique_table_bits, 10);
        assert!(!a.dd_config.cache_enabled);
        assert!(!a.dd_config.identity_skip);
        assert!(!a.dd_config.simd);
        assert_eq!(a.dd_config.gc_threshold, 5000);
    }

    #[test]
    fn budget_flags() {
        let a = parse(&argv(&[
            "x.qasm",
            "--max-nodes",
            "5000",
            "--max-table-bytes",
            "1048576",
            "--deadline",
            "2.5",
        ]))
        .expect("valid");
        assert_eq!(a.dd_config.max_live_nodes, Some(5000));
        assert_eq!(a.dd_config.max_table_bytes, Some(1048576));
        assert_eq!(a.deadline, Some(Duration::from_secs_f64(2.5)));
    }

    #[test]
    fn budget_flags_default_off() {
        let a = parse(&argv(&["x.qasm"])).expect("valid");
        assert_eq!(a.dd_config.max_live_nodes, None);
        assert_eq!(a.dd_config.max_table_bytes, None);
        assert_eq!(a.deadline, None);
        assert_eq!(a.checkpoint_every, 0);
        assert_eq!(a.resume, None);
    }

    #[test]
    fn rejects_degenerate_budgets() {
        assert!(parse(&argv(&["x.qasm", "--max-nodes", "0"])).is_err());
        assert!(parse(&argv(&["x.qasm", "--deadline", "0"])).is_err());
        assert!(parse(&argv(&["x.qasm", "--deadline", "-1"])).is_err());
        assert!(parse(&argv(&["x.qasm", "--checkpoint-every", "0"])).is_err());
    }

    #[test]
    fn threads_flag() {
        let a = parse(&argv(&["x.qasm"])).expect("valid");
        assert_eq!(a.threads, 1, "sequential by default");
        let b = parse(&argv(&["x.qasm", "--threads", "4"])).expect("valid");
        assert_eq!(b.threads, 4);
        let c = parse(&argv(&["x.qasm", "--threads", "0"])).expect("valid");
        assert_eq!(c.threads, 0, "0 = all cores");
        assert!(parse(&argv(&["x.qasm", "--threads", "lots"])).is_err());
    }

    #[test]
    fn checkpoint_and_resume_flags() {
        let a = parse(&argv(&[
            "x.qasm",
            "--checkpoint-every",
            "100",
            "--checkpoint-file",
            "/tmp/run.snapshot",
        ]))
        .expect("valid");
        assert_eq!(a.checkpoint_every, 100);
        assert_eq!(a.checkpoint_file, "/tmp/run.snapshot");
        let b = parse(&argv(&["x.qasm", "--resume", "old.snapshot"])).expect("valid");
        assert_eq!(b.resume, Some("old.snapshot".to_string()));
        assert_eq!(b.checkpoint_file, "ddsim.snapshot");
    }

    #[test]
    fn rejects_out_of_range_table_bits() {
        let e = parse(&argv(&["x.qasm", "--ct-bits", "40"])).expect_err("invalid");
        assert!(e.0.contains("--ct-bits"));
        let e = parse(&argv(&["x.qasm", "--ut-bits", "0"])).expect_err("invalid");
        assert!(e.0.contains("--ut-bits"));
    }
}

//! Built-in circuit generators for the `--generate` flag.

use ddsim_algorithms::grover::{grover_circuit, GroverInstance};
use ddsim_algorithms::qaoa::{qaoa_maxcut_circuit, Graph, QaoaParameters};
use ddsim_algorithms::qft::qft_circuit;
use ddsim_algorithms::shor::{shor_circuit, ShorInstance};
use ddsim_algorithms::simple::{bernstein_vazirani_circuit, ghz_circuit};
use ddsim_algorithms::supremacy::{supremacy_circuit, SupremacyInstance};
use ddsim_circuit::Circuit;

use crate::args::ParseArgsError;

/// Builds a circuit from a generator spec like `grover:13:5`.
///
/// # Errors
///
/// Returns a user-facing message for malformed specs.
pub fn generate(spec: &str) -> Result<Circuit, ParseArgsError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let bad = |msg: &str| ParseArgsError(format!("bad generator spec `{spec}`: {msg}"));
    let num = |s: &str| -> Result<u64, ParseArgsError> {
        s.parse().map_err(|_| bad("expected an integer"))
    };
    let fnum = |s: &str| -> Result<f64, ParseArgsError> {
        s.parse().map_err(|_| bad("expected a number"))
    };
    match parts.as_slice() {
        ["grover", q, m] => Ok(grover_circuit(GroverInstance::new(
            num(q)? as u32,
            num(m)?,
        ))),
        ["shor", n, a] => Ok(shor_circuit(ShorInstance::new(num(n)?, num(a)?))),
        ["supremacy", r, c, d, s] => Ok(supremacy_circuit(SupremacyInstance::new(
            num(r)? as u32,
            num(c)? as u32,
            num(d)? as u32,
            num(s)?,
        ))),
        ["ghz", n] => Ok(ghz_circuit(num(n)? as u32)),
        ["qft", n] => Ok(qft_circuit(num(n)? as u32)),
        ["bv", n, secret] => Ok(bernstein_vazirani_circuit(num(n)? as u32, num(secret)?)),
        ["qaoa-ring", n, gamma, beta] => {
            let graph = Graph::ring(num(n)? as u32);
            let params = QaoaParameters::new(vec![fnum(gamma)?], vec![fnum(beta)?]);
            Ok(qaoa_maxcut_circuit(&graph, &params))
        }
        _ => Err(bad(
            "known kinds: grover:Q:M, shor:N:A, supremacy:R:C:D:S, ghz:N, qft:N, bv:N:SECRET, qaoa-ring:N:GAMMA:BETA",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_each_kind() {
        for spec in [
            "grover:7:3",
            "shor:15:7",
            "supremacy:2:3:6:1",
            "ghz:5",
            "qft:4",
            "bv:5:9",
            "qaoa-ring:4:0.5:0.25",
        ] {
            let c = generate(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(c.qubits() >= 2, "{spec}");
            assert!(c.elementary_count() > 0, "{spec}");
        }
    }

    #[test]
    fn rejects_unknown_kind() {
        assert!(generate("teleport:3").is_err());
    }

    #[test]
    fn rejects_malformed_numbers() {
        assert!(generate("ghz:five").is_err());
        assert!(generate("qaoa-ring:4:x:y").is_err());
    }
}

//! `ddsim trotter` — Trotterized Hamiltonian evolution swept across the
//! paper's combining strategies.
//!
//! A Trotter step is a long stream of small rotations (basis changes, CX
//! ladders, one Rz per term), repeated `--steps` times — exactly the shape
//! where matrix-matrix combining can pay: k-operations and max-size fold
//! the step's gates into few applied matrices, and DD-repeating caches the
//! whole step matrix once. This verb runs one instance under each
//! requested strategy and prints the split side by side.

use std::process::ExitCode;

use ddsim_algorithms::hamiltonian::{
    hamiltonian_matrix, trotter_circuit, PauliHamiltonian, TrotterOrder,
};
use ddsim_core::{RunStats, SimOptions, Simulator, Strategy};
use ddsim_dd::DdManager;

use crate::args::ParseArgsError;
use crate::exit_code_for;

const USAGE: &str = "\
ddsim trotter — Trotterized Hamiltonian evolution across combining strategies

USAGE:
    ddsim trotter [OPTIONS]

OPTIONS:
    --model ising:N:J:H      transverse-field Ising chain on N qubits,
                             H = -J Σ Z·Z - H Σ X  [default: ising:8:1.0:0.8]
    --model heisenberg:N:J   isotropic Heisenberg chain on N qubits
    --time T                 total evolution time [default: 1.0]
    --steps N                Trotter steps [default: 10]
    --order 1 | 2            product-formula order (Lie / Strang) [default: 1]
    --strategies LIST        comma-separated strategy specs to sweep
                             [default: sequential,kops:4,kops:16,maxsize:4096,ddrepeating:8]
    --seed N                 measurement seed [default: 0]
    --json FILE              append machine-readable results as JSON
    --help                   show this text

Exit codes follow the main binary (see `ddsim --help`).
";

struct TrotterArgs {
    model: String,
    time: f64,
    steps: u32,
    order: TrotterOrder,
    strategies: Vec<Strategy>,
    seed: u64,
    json: Option<String>,
}

fn parse_args(argv: &[String]) -> Result<TrotterArgs, ParseArgsError> {
    let mut args = TrotterArgs {
        model: "ising:8:1.0:0.8".to_string(),
        time: 1.0,
        steps: 10,
        order: TrotterOrder::First,
        strategies: vec![
            Strategy::Sequential,
            Strategy::KOperations { k: 4 },
            Strategy::KOperations { k: 16 },
            Strategy::MaxSize { s_max: 4096 },
            Strategy::DdRepeating { k: 8 },
        ],
        seed: 0,
        json: None,
    };
    let mut i = 0usize;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => return Err(ParseArgsError(USAGE.to_string())),
            "--model" => {
                args.model = required(argv.get(i + 1), "--model")?;
                i += 1;
            }
            "--time" => {
                args.time = parse_num(argv.get(i + 1), "--time")?;
                if !args.time.is_finite() {
                    return Err(ParseArgsError("--time must be finite".into()));
                }
                i += 1;
            }
            "--steps" => {
                args.steps = parse_num(argv.get(i + 1), "--steps")?;
                if args.steps == 0 {
                    return Err(ParseArgsError("--steps must be positive".into()));
                }
                i += 1;
            }
            "--order" => {
                let spec = required(argv.get(i + 1), "--order")?;
                args.order = TrotterOrder::parse(&spec)
                    .ok_or_else(|| ParseArgsError(format!("unknown Trotter order `{spec}`")))?;
                i += 1;
            }
            "--strategies" => {
                let list = required(argv.get(i + 1), "--strategies")?;
                args.strategies = list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<Strategy>()
                            .map_err(|e| ParseArgsError(e.to_string()))
                    })
                    .collect::<Result<_, _>>()?;
                if args.strategies.is_empty() {
                    return Err(ParseArgsError(
                        "--strategies needs at least one spec".into(),
                    ));
                }
                i += 1;
            }
            "--seed" => {
                args.seed = parse_num(argv.get(i + 1), "--seed")?;
                i += 1;
            }
            "--json" => {
                args.json = Some(required(argv.get(i + 1), "--json")?);
                i += 1;
            }
            other => return Err(ParseArgsError(format!("unknown option `{other}`"))),
        }
        i += 1;
    }
    Ok(args)
}

fn required(raw: Option<&String>, flag: &str) -> Result<String, ParseArgsError> {
    raw.cloned()
        .ok_or_else(|| ParseArgsError(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(raw: Option<&String>, flag: &str) -> Result<T, ParseArgsError> {
    raw.ok_or_else(|| ParseArgsError(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| ParseArgsError(format!("bad value for {flag}")))
}

/// Parses a `--model` spec into a Hamiltonian.
pub fn parse_model(spec: &str) -> Result<PauliHamiltonian, ParseArgsError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let bad = || {
        ParseArgsError(format!(
            "bad model spec `{spec}` (see ddsim trotter --help)"
        ))
    };
    match parts.as_slice() {
        ["ising", n, j, h] => {
            let n: u32 = n.parse().map_err(|_| bad())?;
            let j: f64 = j.parse().map_err(|_| bad())?;
            let h: f64 = h.parse().map_err(|_| bad())?;
            if n < 2 {
                return Err(bad());
            }
            Ok(PauliHamiltonian::ising_chain(n, j, h))
        }
        ["heisenberg", n, j] => {
            let n: u32 = n.parse().map_err(|_| bad())?;
            let j: f64 = j.parse().map_err(|_| bad())?;
            if n < 2 {
                return Err(bad());
            }
            Ok(PauliHamiltonian::heisenberg_chain(n, j))
        }
        _ => Err(bad()),
    }
}

struct StrategyResult {
    strategy: Strategy,
    stats: RunStats,
}

fn sweep(args: &TrotterArgs) -> Result<(PauliHamiltonian, Vec<StrategyResult>), ParseArgsError> {
    let ham = parse_model(&args.model)?;
    let circuit = trotter_circuit(&ham, args.time, args.steps, args.order);
    eprintln!(
        "{}: {} qubits, {} terms, {} steps (order {}), {} elementary gates",
        circuit.name(),
        ham.qubits(),
        ham.terms().len(),
        args.steps,
        args.order.label(),
        circuit.elementary_count()
    );
    // The Hamiltonian itself as a matrix DD, through the governed
    // MxM/add construction path — its node count is the compactness
    // claim the Pauli-string representation makes.
    let mut dd = DdManager::new();
    match hamiltonian_matrix(&mut dd, &ham) {
        Ok(h) => eprintln!("H as matrix DD: {} nodes", dd.mat_node_count(h)),
        Err(e) => eprintln!("H construction failed: {e:?}"),
    }
    let mut results = Vec::new();
    for &strategy in &args.strategies {
        let options = SimOptions {
            strategy,
            seed: args.seed,
            ..SimOptions::default()
        };
        let mut sim = Simulator::with_options(ham.qubits(), options);
        match sim.run(&circuit) {
            Ok(stats) => results.push(StrategyResult { strategy, stats }),
            Err(e) => {
                return Err(ParseArgsError(format!(
                    "strategy {strategy} failed: {e} (exit {})",
                    exit_code_for(&e)
                )))
            }
        }
    }
    Ok((ham, results))
}

fn render_json(args: &TrotterArgs, ham: &PauliHamiltonian, results: &[StrategyResult]) -> String {
    let mut entries = Vec::new();
    for r in results {
        entries.push(format!(
            "    {{\"strategy\": \"{}\", \"wall_time_s\": {:.6}, \"mat_vec_mults\": {}, \
             \"mat_mat_mults\": {}, \"mult_recursions\": {}, \"add_recursions\": {}, \
             \"peak_state_nodes\": {}, \"peak_matrix_nodes\": {}, \"final_state_nodes\": {}}}",
            r.strategy,
            r.stats.wall_time.as_secs_f64(),
            r.stats.mat_vec_mults,
            r.stats.mat_mat_mults,
            r.stats.mult_recursions,
            r.stats.add_recursions,
            r.stats.peak_state_nodes,
            r.stats.peak_matrix_nodes,
            r.stats.final_state_nodes,
        ));
    }
    format!(
        "{{\n  \"workload\": \"trotter\",\n  \"model\": \"{}\",\n  \"qubits\": {},\n  \
         \"terms\": {},\n  \"time\": {},\n  \"steps\": {},\n  \"order\": \"{}\",\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        args.model,
        ham.qubits(),
        ham.terms().len(),
        args.time,
        args.steps,
        args.order.label(),
        entries.join(",\n")
    )
}

/// Entry point for `ddsim trotter`.
pub fn run_cli(argv: &[String]) -> ExitCode {
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let (ham, results) = match sweep(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{:<22} {:>10} {:>8} {:>8} {:>12} {:>10} {:>10}",
        "strategy", "wall_ms", "MxV", "MxM", "recursions", "peak_mat", "final_dd"
    );
    for r in &results {
        println!(
            "{:<22} {:>10.3} {:>8} {:>8} {:>12} {:>10} {:>10}",
            r.strategy.to_string(),
            r.stats.wall_time.as_secs_f64() * 1e3,
            r.stats.mat_vec_mults,
            r.stats.mat_mat_mults,
            r.stats.mult_recursions + r.stats.add_recursions,
            r.stats.peak_matrix_nodes,
            r.stats.final_state_nodes,
        );
    }
    if let Some(path) = &args.json {
        let json = render_json(&args, &ham, &results);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("results written to {path}");
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_parse() {
        let a = parse_args(&[]).expect("valid");
        assert_eq!(a.model, "ising:8:1.0:0.8");
        assert_eq!(a.steps, 10);
        assert_eq!(a.order, TrotterOrder::First);
        assert_eq!(a.strategies.len(), 5);
    }

    #[test]
    fn model_specs_parse() {
        assert_eq!(parse_model("ising:6:1.0:0.5").expect("valid").qubits(), 6);
        assert_eq!(parse_model("heisenberg:5:0.3").expect("valid").qubits(), 5);
        assert!(parse_model("ising:1:1:1").is_err());
        assert!(parse_model("xy:4:1").is_err());
    }

    #[test]
    fn strategy_list_parses() {
        let a = parse_args(&argv(&["--strategies", "sequential, kops:2"])).expect("valid");
        assert_eq!(
            a.strategies,
            vec![Strategy::Sequential, Strategy::KOperations { k: 2 }]
        );
        assert!(parse_args(&argv(&["--strategies", "bogus"])).is_err());
    }

    #[test]
    fn small_sweep_runs_and_strategies_agree() {
        let a = parse_args(&argv(&[
            "--model",
            "ising:4:1.0:0.7",
            "--steps",
            "3",
            "--strategies",
            "sequential,kops:8,maxsize:4096,ddrepeating:8",
        ]))
        .expect("valid");
        let (_, results) = sweep(&a).expect("sweep");
        assert_eq!(results.len(), 4);
        // Combining strategies must actually combine on this workload…
        assert!(results[1].stats.mat_mat_mults > 0, "kops performed no MxM");
        // …and sequential must not.
        assert_eq!(results[0].stats.mat_mat_mults, 0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let a = parse_args(&argv(&[
            "--model",
            "ising:3:1.0:0.5",
            "--steps",
            "2",
            "--strategies",
            "sequential",
        ]))
        .expect("valid");
        let (ham, results) = sweep(&a).expect("sweep");
        let json = render_json(&a, &ham, &results);
        assert!(json.contains("\"workload\": \"trotter\""));
        assert!(json.contains("\"strategy\": \"sequential\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn errors_map_to_documented_exit_code() {
        let e = ddsim_core::SimError::DeadlineExceeded;
        assert_eq!(exit_code_for(&e), 3);
    }
}

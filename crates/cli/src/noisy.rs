//! `ddsim noisy` — depolarizing-noise workloads, two ways.
//!
//! The default mode samples a Monte-Carlo trajectory ensemble
//! ([`run_noisy_ensemble_with`]): each trajectory inserts Pauli errors
//! after gates and runs through the ordinary pure-state engine. With
//! `--exact` the verb instead evolves the density matrix ρ as a matrix DD
//! ([`DensitySimulator`]), applying each depolarizing channel as a Kraus
//! sum through the same matrix-matrix kernels the combining strategies
//! use. `--compare` runs both and reports the largest per-qubit marginal
//! deviation, which is the convergence check the fuzzing oracle applies.

use std::process::ExitCode;
use std::time::Duration;

use ddsim_circuit::{qasm, Circuit};
use ddsim_core::density::{simulate_density, DensitySimulator};
use ddsim_core::noise::{run_noisy_ensemble_with, DepolarizingNoise, NoisyEnsemble};
use ddsim_core::{SimError, SimOptions};

use crate::args::ParseArgsError;
use crate::exit_code_for;
use crate::generate;

const USAGE: &str = "\
ddsim noisy — depolarizing-noise simulation (trajectories or exact density matrix)

USAGE:
    ddsim noisy <circuit.qasm> [OPTIONS]
    ddsim noisy --generate SPEC [OPTIONS]

OPTIONS:
    --generate SPEC        built-in circuit generator (same specs as ddsim)
    -p, --probability P    depolarizing probability per touched qubit [default: 0.01]
    --trajectories N       Monte-Carlo trajectories [default: 1024]
    --seed N               base RNG seed [default: 0]
    --threads N            trajectory-level worker threads (0 = auto) [default: 0]
    --deadline SECS        abort the whole run after SECS seconds
    --exact                evolve the density matrix exactly instead of sampling
    --compare              run both paths and report the largest marginal deviation
    --help                 show this text

Exit codes follow the main binary (see `ddsim --help`).
";

struct NoisyArgs {
    source: Option<String>,
    generate: Option<String>,
    probability: f64,
    trajectories: u32,
    seed: u64,
    threads: u32,
    deadline: Option<Duration>,
    exact: bool,
    compare: bool,
}

fn parse_args(argv: &[String]) -> Result<NoisyArgs, ParseArgsError> {
    let mut args = NoisyArgs {
        source: None,
        generate: None,
        probability: 0.01,
        trajectories: 1024,
        seed: 0,
        threads: 0,
        deadline: None,
        exact: false,
        compare: false,
    };
    let mut i = 0usize;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => return Err(ParseArgsError(USAGE.to_string())),
            "--generate" => {
                args.generate = Some(required(argv.get(i + 1), "--generate")?);
                i += 1;
            }
            "-p" | "--probability" => {
                args.probability = parse_num(argv.get(i + 1), "--probability")?;
                if !(0.0..=1.0).contains(&args.probability) {
                    return Err(ParseArgsError("--probability must be in [0, 1]".into()));
                }
                i += 1;
            }
            "--trajectories" => {
                args.trajectories = parse_num(argv.get(i + 1), "--trajectories")?;
                if args.trajectories == 0 {
                    return Err(ParseArgsError("--trajectories must be positive".into()));
                }
                i += 1;
            }
            "--seed" => {
                args.seed = parse_num(argv.get(i + 1), "--seed")?;
                i += 1;
            }
            "--threads" => {
                args.threads = parse_num(argv.get(i + 1), "--threads")?;
                i += 1;
            }
            "--deadline" => {
                let secs: f64 = parse_num(argv.get(i + 1), "--deadline")?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(ParseArgsError("--deadline must be non-negative".into()));
                }
                args.deadline = Some(Duration::from_secs_f64(secs));
                i += 1;
            }
            "--exact" => args.exact = true,
            "--compare" => args.compare = true,
            other if !other.starts_with('-') && args.source.is_none() => {
                args.source = Some(other.to_string());
            }
            other => return Err(ParseArgsError(format!("unknown option `{other}`"))),
        }
        i += 1;
    }
    if args.source.is_some() && args.generate.is_some() {
        return Err(ParseArgsError(
            "give either a QASM file or --generate, not both".into(),
        ));
    }
    if args.source.is_none() && args.generate.is_none() {
        return Err(ParseArgsError(USAGE.to_string()));
    }
    Ok(args)
}

fn required(raw: Option<&String>, flag: &str) -> Result<String, ParseArgsError> {
    raw.cloned()
        .ok_or_else(|| ParseArgsError(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(raw: Option<&String>, flag: &str) -> Result<T, ParseArgsError> {
    raw.ok_or_else(|| ParseArgsError(format!("{flag} needs a value")))?
        .parse()
        .map_err(|_| ParseArgsError(format!("bad value for {flag}")))
}

fn load(args: &NoisyArgs) -> Result<Circuit, String> {
    if let Some(spec) = &args.generate {
        return generate::generate(spec).map_err(|e| e.to_string());
    }
    let path = args.source.as_deref().expect("checked in parse_args");
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    qasm::parse(&text).map_err(|e| e.to_string())
}

fn template(args: &NoisyArgs) -> SimOptions {
    SimOptions {
        seed: args.seed,
        deadline: args.deadline,
        threads: args.threads,
        ..SimOptions::default()
    }
}

fn run_exact(
    circuit: &Circuit,
    noise: DepolarizingNoise,
    options: SimOptions,
) -> Result<DensitySimulator, SimError> {
    let (sim, stats) = simulate_density(circuit, noise, options)?;
    eprintln!(
        "exact density: {:?}, {} MxM, ρ has {} nodes, trace {:.9}",
        stats.wall_time,
        stats.mat_mat_mults,
        sim.rho_nodes(),
        sim.trace()
    );
    Ok(sim)
}

fn run_trajectories(
    circuit: &Circuit,
    noise: DepolarizingNoise,
    args: &NoisyArgs,
) -> Result<NoisyEnsemble, SimError> {
    run_noisy_ensemble_with(circuit, noise, args.trajectories, &template(args), None)
}

/// Per-qubit marginal P(qubit = 1) from the exact diagonal.
fn exact_marginals(sim: &DensitySimulator) -> Vec<f64> {
    let n = sim.qubits();
    let diag = sim.diagonal();
    (0..n)
        .map(|q| {
            diag.iter()
                .enumerate()
                .filter(|(idx, _)| (*idx >> q) & 1 == 1)
                .map(|(_, p)| p)
                .sum()
        })
        .collect()
}

/// Per-qubit marginal estimates from ensemble counts.
fn ensemble_marginals(ensemble: &NoisyEnsemble, n: u32) -> Vec<f64> {
    let total: u64 = ensemble.counts.values().map(|&c| u64::from(c)).sum();
    (0..n)
        .map(|q| {
            let ones: u64 = ensemble
                .counts
                .iter()
                .filter(|(outcome, _)| (**outcome >> q) & 1 == 1)
                .map(|(_, &c)| u64::from(c))
                .sum();
            ones as f64 / total.max(1) as f64
        })
        .collect()
}

fn print_counts(ensemble: &NoisyEnsemble, n: u32) {
    let mut counts: Vec<(u64, u32)> = ensemble.counts.iter().map(|(&k, &v)| (k, v)).collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!(
        "outcome  count  (of {} trajectories)",
        ensemble.trajectories
    );
    for (outcome, count) in counts.iter().take(32) {
        println!("{outcome:0width$b}  {count}", width = n as usize);
    }
    if counts.len() > 32 {
        println!("… {} more distinct outcomes", counts.len() - 32);
    }
}

fn print_diagonal(sim: &DensitySimulator) {
    let n = sim.qubits();
    let mut diag: Vec<(usize, f64)> = sim
        .diagonal()
        .into_iter()
        .enumerate()
        .filter(|(_, p)| *p > 1e-9)
        .collect();
    diag.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    println!("outcome  probability");
    for (idx, p) in diag.iter().take(32) {
        println!("{idx:0width$b}  {p:.9}", width = n as usize);
    }
    if diag.len() > 32 {
        println!("… {} more outcomes above 1e-9", diag.len() - 32);
    }
}

fn run_verb(args: &NoisyArgs) -> Result<(), (String, u8)> {
    let circuit = load(args).map_err(|e| (e, 1u8))?;
    let n = circuit.qubits();
    eprintln!(
        "{}: {} qubits, {} elementary gates, depolarizing p = {}",
        if circuit.name().is_empty() {
            "circuit"
        } else {
            circuit.name()
        },
        n,
        circuit.elementary_count(),
        args.probability
    );
    let noise = DepolarizingNoise::new(args.probability);
    let sim_err = |e: SimError| (e.to_string(), exit_code_for(&e));

    if args.compare {
        if n > 12 {
            return Err(("--compare is limited to 12 qubits".into(), 1));
        }
        let exact = run_exact(&circuit, noise, template(args)).map_err(sim_err)?;
        let ensemble = run_trajectories(&circuit, noise, args).map_err(sim_err)?;
        let em = exact_marginals(&exact);
        let tm = ensemble_marginals(&ensemble, n);
        println!("qubit  exact_P1     trajectory_P1  |delta|");
        let mut worst = 0.0f64;
        for q in 0..n as usize {
            let delta = (em[q] - tm[q]).abs();
            worst = worst.max(delta);
            println!("{q:<6} {:.9}  {:.9}    {delta:.6}", em[q], tm[q]);
        }
        println!(
            "largest marginal deviation {worst:.6} over {} trajectories",
            ensemble.trajectories
        );
        return Ok(());
    }

    if args.exact {
        if n > 12 {
            return Err((
                "--exact prints the full diagonal and is limited to 12 qubits".into(),
                1,
            ));
        }
        let sim = run_exact(&circuit, noise, template(args)).map_err(sim_err)?;
        print_diagonal(&sim);
        return Ok(());
    }

    let ensemble = run_trajectories(&circuit, noise, args).map_err(sim_err)?;
    print_counts(&ensemble, n);
    Ok(())
}

/// Entry point for `ddsim noisy`.
pub fn run_cli(argv: &[String]) -> ExitCode {
    let args = match parse_args(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run_verb(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err((msg, code)) => {
            eprintln!("error: {msg}");
            ExitCode::from(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn requires_a_circuit() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&argv(&["a.qasm", "--generate", "ghz:3"])).is_err());
    }

    #[test]
    fn flags_parse() {
        let a = parse_args(&argv(&[
            "--generate",
            "ghz:3",
            "-p",
            "0.05",
            "--trajectories",
            "64",
            "--seed",
            "7",
            "--exact",
        ]))
        .expect("valid");
        assert_eq!(a.generate.as_deref(), Some("ghz:3"));
        assert!((a.probability - 0.05).abs() < 1e-12);
        assert_eq!(a.trajectories, 64);
        assert_eq!(a.seed, 7);
        assert!(a.exact);
        assert!(parse_args(&argv(&["--generate", "ghz:3", "-p", "1.5"])).is_err());
    }

    #[test]
    fn exact_and_trajectory_marginals_agree_on_a_small_instance() {
        let a = parse_args(&argv(&[
            "--generate",
            "ghz:3",
            "-p",
            "0.02",
            "--trajectories",
            "600",
            "--seed",
            "11",
        ]))
        .expect("valid");
        let circuit = load(&a).expect("generator");
        let noise = DepolarizingNoise::new(a.probability);
        let exact = run_exact(&circuit, noise, template(&a)).expect("density run");
        let ensemble = run_trajectories(&circuit, noise, &a).expect("ensemble");
        let em = exact_marginals(&exact);
        let tm = ensemble_marginals(&ensemble, circuit.qubits());
        for (e, t) in em.iter().zip(&tm) {
            assert!((e - t).abs() < 0.08, "marginal {e} vs estimate {t}");
        }
        assert!((exact.trace() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deadline_surfaces_the_documented_exit_code() {
        let a = parse_args(&argv(&[
            "--generate",
            "ghz:6",
            "--trajectories",
            "64",
            "--deadline",
            "0",
        ]))
        .expect("valid");
        let err = run_verb(&a).expect_err("deadline must trip");
        assert_eq!(err.1, 3);
    }
}

//! Canonicity-audit battery: `DdManager::audit()` re-derives every
//! structural invariant (hash-cons uniqueness, normalization fixpoint,
//! level structure, identity flags, refcounts, complex interning) after
//! each class of mutating operation — gate application, garbage
//! collection, adjacent-level swaps, full sifting passes, and snapshot
//! round trips. The final test corrupts a manager on purpose, proving the
//! auditor actually fires on each violation class it claims to cover.

use ddsim_complex::Complex;
use ddsim_dd::{Control, DdManager, Matrix2, Snapshot, VecEdge};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn h_gate() -> Matrix2 {
    let s = Complex::SQRT2_INV;
    [[s, s], [s, -s]]
}

fn x_gate() -> Matrix2 {
    [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]
}

fn t_gate() -> Matrix2 {
    [
        [Complex::ONE, Complex::ZERO],
        [Complex::ZERO, Complex::cis(std::f64::consts::FRAC_PI_4)],
    ]
}

/// Drives a phase-rich random gate stream through both the specialized
/// apply kernels and explicit matrix builds, so the vector *and* matrix
/// arenas end up populated with nontrivial weights.
fn random_state(dd: &mut DdManager, n: u32, seed: u64, gates: usize) -> VecEdge {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut state = dd.vec_zero_state(n);
    dd.inc_ref_vec(state);
    for _ in 0..gates {
        let target = rng.gen_range(0..n);
        let control = (target + rng.gen_range(1..n)) % n;
        let next = match rng.gen_range(0..4u8) {
            0 => dd.apply_single_qubit(target, h_gate(), state).unwrap(),
            1 => dd.apply_single_qubit(target, t_gate(), state).unwrap(),
            2 => dd
                .apply_controlled(&[Control::pos(control)], target, x_gate(), state)
                .unwrap(),
            _ => {
                let m = dd.mat_controlled(n, &[Control::pos(control)], target, t_gate());
                dd.mat_vec_mul(m, state).unwrap()
            }
        };
        dd.inc_ref_vec(next);
        dd.dec_ref_vec(state);
        state = next;
    }
    state
}

#[test]
fn audit_passes_on_a_fresh_manager_and_after_applies() {
    let mut dd = DdManager::new();
    dd.audit().expect("fresh manager audits clean");
    let mut state = dd.vec_zero_state(5);
    dd.inc_ref_vec(state);
    let mut rng = StdRng::seed_from_u64(7);
    for step in 0..40 {
        let target = rng.gen_range(0..5u32);
        let next = match step % 3 {
            0 => dd.apply_single_qubit(target, h_gate(), state).unwrap(),
            1 => dd.apply_single_qubit(target, t_gate(), state).unwrap(),
            _ => {
                let c = (target + 1) % 5;
                dd.apply_controlled(&[Control::pos(c)], target, x_gate(), state)
                    .unwrap()
            }
        };
        dd.inc_ref_vec(next);
        dd.dec_ref_vec(state);
        state = next;
        dd.audit()
            .unwrap_or_else(|e| panic!("audit failed after apply {step}:\n{e}"));
    }
}

#[test]
fn audit_passes_after_garbage_collection() {
    for seed in 0..3u64 {
        let mut dd = DdManager::new();
        let state = random_state(&mut dd, 6, seed, 50);
        dd.collect_garbage();
        dd.audit()
            .unwrap_or_else(|e| panic!("seed {seed}: audit failed after GC:\n{e}"));
        // The protected root must still be live and normalized.
        let norm = dd.vec_norm_sqr(state);
        assert!((norm - 1.0).abs() < 1e-8, "seed {seed}: norm {norm}");
    }
}

#[test]
fn audit_passes_after_every_adjacent_swap() {
    for seed in 0..3u64 {
        let n = 6u32;
        let mut dd = DdManager::new();
        let mut state = random_state(&mut dd, n, seed, 50);
        let reference = dd.vec_to_amplitudes(state);
        // Sweep the swap through every adjacent pair, twice (down and
        // back), auditing the full manager after each individual swap.
        for l in (1..n).chain((1..n).rev()) {
            let next = dd.swap_levels(state, l);
            dd.inc_ref_vec(next);
            dd.dec_ref_vec(state);
            state = next;
            dd.audit()
                .unwrap_or_else(|e| panic!("seed {seed}: audit failed after swap at {l}:\n{e}"));
        }
        // Amplitudes read through the order-aware accessor are unchanged.
        for (i, want) in reference.iter().enumerate() {
            let got = dd.vec_amplitude(state, i as u64);
            assert!(
                got.approx_eq(*want, 1e-9),
                "seed {seed}, amplitude {i}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn audit_passes_after_sift_and_restore() {
    for seed in 0..3u64 {
        let mut dd = DdManager::new();
        let state = random_state(&mut dd, 6, seed, 50);
        let (sifted, stats) = dd.sift_state(state, usize::MAX);
        assert!(stats.nodes_after <= stats.nodes_before);
        dd.audit()
            .unwrap_or_else(|e| panic!("seed {seed}: audit failed after sift:\n{e}"));
        let restored = dd.restore_identity_order(sifted);
        assert!(dd.var_order().is_identity());
        dd.audit()
            .unwrap_or_else(|e| panic!("seed {seed}: audit failed after restore:\n{e}"));
        let norm = dd.vec_norm_sqr(restored);
        assert!((norm - 1.0).abs() < 1e-8, "seed {seed}: norm {norm}");
    }
}

#[test]
fn audit_passes_after_snapshot_round_trip() {
    for seed in 0..3u64 {
        let mut dd = DdManager::new();
        let state = random_state(&mut dd, 6, seed, 50);
        // Round-trip a *reordered* diagram so the order section is
        // exercised too.
        let (sifted, _) = dd.sift_state(state, usize::MAX);
        let snap = Snapshot::capture(&dd, sifted, 6, 17, 0xABCD, [1, 2, 3, 4], vec![true, false])
            .expect("capture");
        let mut bytes = Vec::new();
        snap.write_to(&mut bytes).expect("serialize");
        let reread = Snapshot::read_from(&mut bytes.as_slice()).expect("deserialize");
        let (mut dd2, root) = reread.restore(Default::default()).expect("restore");
        dd2.audit()
            .unwrap_or_else(|e| panic!("seed {seed}: audit failed after round trip:\n{e}"));
        // Restore re-normalizes through make_vec_node, which on rare
        // usurped-pivot nodes is not the identity — so the restored
        // diagram is tolerance-equal to the writer's, not bitwise.
        for i in 0..(1u64 << 6) {
            let a = dd.vec_amplitude(sifted, i);
            let b = dd2.vec_amplitude(root, i);
            assert!(
                a.approx_eq(b, 1e-9),
                "seed {seed}, amplitude {i}: {a} vs {b}"
            );
        }
        // Restoring the same snapshot twice is deterministic down to the
        // bit — this is what makes checkpoint/resume lockstep exact: the
        // writer reloads from its own snapshot at every checkpoint, and a
        // later resume replays the identical restore.
        let (mut dd3, root3) = reread.restore(Default::default()).expect("re-restore");
        dd3.audit()
            .unwrap_or_else(|e| panic!("seed {seed}: audit failed after second restore:\n{e}"));
        for i in 0..(1u64 << 6) {
            let a = dd2.vec_amplitude(root, i);
            let b = dd3.vec_amplitude(root3, i);
            assert_eq!(
                (a.re.to_bits(), a.im.to_bits()),
                (b.re.to_bits(), b.im.to_bits()),
                "seed {seed}, amplitude {i} not bitwise across restores: {a} vs {b}"
            );
        }
    }
}

/// Each corruption class the auditor claims to cover must actually fire.
#[test]
fn audit_detects_each_corruption_class() {
    for (which, expect) in [
        ("refcount", "refcount"),
        ("weight", "not normalized"),
        ("identity", "identity flag"),
        ("unique", "unique table"),
    ] {
        let mut dd = DdManager::new();
        let state = random_state(&mut dd, 5, 11, 40);
        // Pin a non-identity matrix so the identity corruption has a
        // victim even after the gate stream's temporaries die.
        let m = dd.mat_single_qubit(5, 2, h_gate());
        dd.inc_ref_mat(m);
        let _ = state;
        dd.audit().expect("clean before corruption");
        dd.corrupt_for_audit_test(which);
        let err = dd
            .audit()
            .expect_err(&format!("corruption {which:?} went unnoticed"));
        assert!(
            err.contains(expect),
            "corruption {which:?} reported without {expect:?}:\n{err}"
        );
    }
}

//! Property-based cross-validation of DD operations against the dense
//! array-based reference backend.

use ddsim_complex::Complex;
use ddsim_dd::reference::{DenseMatrix, DenseVector};
use ddsim_dd::{Control, DdConfig, DdManager, Matrix2};
use proptest::prelude::*;

const N: u32 = 4; // qubits per generated instance (dense dim 16)

fn amplitude() -> impl Strategy<Value = Complex> {
    prop_oneof![
        3 => (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(re, im)| Complex::new(re, im)),
        2 => Just(Complex::ZERO),
        1 => Just(Complex::ONE),
    ]
}

fn dense_vector() -> impl Strategy<Value = Vec<Complex>> {
    proptest::collection::vec(amplitude(), 1usize << N)
}

fn dense_matrix() -> impl Strategy<Value = Vec<Vec<Complex>>> {
    proptest::collection::vec(
        proptest::collection::vec(amplitude(), 1usize << N),
        1usize << N,
    )
}

/// Unitary 2x2 matrices drawn from the common gate set.
fn gate2() -> impl Strategy<Value = Matrix2> {
    let s = Complex::SQRT2_INV;
    prop_oneof![
        Just([[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]), // X
        Just([[s, s], [s, -s]]),                                              // H
        Just([[Complex::ONE, Complex::ZERO], [Complex::ZERO, Complex::I]]),   // S
        Just([
            [Complex::ONE, Complex::ZERO],
            [Complex::ZERO, Complex::cis(std::f64::consts::FRAC_PI_4)]
        ]), // T
        Just([
            [Complex::ONE, Complex::ZERO],
            [Complex::ZERO, Complex::real(-1.0)]
        ]), // Z
        (0.0f64..std::f64::consts::TAU).prop_map(|theta| {
            let (s2, c2) = (theta / 2.0).sin_cos();
            [
                [Complex::real(c2), Complex::new(0.0, -s2)],
                [Complex::new(0.0, -s2), Complex::real(c2)],
            ] // Rx(theta)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vec_roundtrip_through_dd(amps in dense_vector()) {
        let mut dd = DdManager::new();
        let e = dd.vec_from_amplitudes(&amps);
        let back = dd.vec_to_amplitudes(e);
        for (i, (a, b)) in amps.iter().zip(back.iter()).enumerate() {
            prop_assert!(a.approx_eq(*b, 1e-8), "index {i}: {a} vs {b}");
        }
    }

    #[test]
    fn mat_vec_matches_dense(m in dense_matrix(), v in dense_vector()) {
        let mut dd = DdManager::new();
        let m_dd = dd.mat_from_dense(&m);
        let v_dd = dd.vec_from_amplitudes(&v);
        let r_dd = dd.mat_vec_mul(m_dd, v_dd).unwrap();
        let got = dd.vec_to_amplitudes(r_dd);

        let mut dense = DenseVector::from_amplitudes(v.clone());
        dense.apply(&DenseMatrix::from_rows(m.clone()));
        for (i, (a, b)) in dense.amplitudes().iter().zip(got.iter()).enumerate() {
            prop_assert!(a.approx_eq(*b, 1e-6), "index {i}: {a} vs {b}");
        }
    }

    #[test]
    fn mat_mat_matches_dense(a in dense_matrix(), b in dense_matrix()) {
        let mut dd = DdManager::new();
        let a_dd = dd.mat_from_dense(&a);
        let b_dd = dd.mat_from_dense(&b);
        let p_dd = dd.mat_mat_mul(a_dd, b_dd).unwrap();
        let got = DenseMatrix::from_rows(dd.mat_to_dense(p_dd));
        let want = DenseMatrix::from_rows(a).mul(&DenseMatrix::from_rows(b));
        prop_assert!(want.max_deviation(&got) < 1e-5);
    }

    #[test]
    fn associativity_on_dds(m1 in dense_matrix(), m2 in dense_matrix(), v in dense_vector()) {
        // The paper's Eq. 1 vs Eq. 2: (M2 × M1) × v == M2 × (M1 × v).
        let mut dd = DdManager::new();
        let m1_dd = dd.mat_from_dense(&m1);
        let m2_dd = dd.mat_from_dense(&m2);
        let v_dd = dd.vec_from_amplitudes(&v);
        let seq = {
            let t = dd.mat_vec_mul(m1_dd, v_dd).unwrap();
            dd.mat_vec_mul(m2_dd, t).unwrap()
        };
        let combined = {
            let p = dd.mat_mat_mul(m2_dd, m1_dd).unwrap();
            dd.mat_vec_mul(p, v_dd).unwrap()
        };
        let xs = dd.vec_to_amplitudes(seq);
        let ys = dd.vec_to_amplitudes(combined);
        for (i, (x, y)) in xs.iter().zip(ys.iter()).enumerate() {
            prop_assert!(x.approx_eq(*y, 1e-6), "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn gate_application_matches_dense_kernel(
        u in gate2(),
        target in 0u32..N,
        v in dense_vector(),
    ) {
        let mut dd = DdManager::new();
        let g = dd.mat_single_qubit(N, target, u);
        let v_dd = dd.vec_from_amplitudes(&v);
        let r = dd.mat_vec_mul(g, v_dd).unwrap();
        let got = dd.vec_to_amplitudes(r);

        let mut dense = DenseVector::from_amplitudes(v);
        dense.apply_single_qubit(u, target, &[]);
        for (i, (a, b)) in dense.amplitudes().iter().zip(got.iter()).enumerate() {
            prop_assert!(a.approx_eq(*b, 1e-7), "index {i}");
        }
    }

    #[test]
    fn controlled_gate_matches_dense_kernel(
        u in gate2(),
        (target, control) in (0u32..N, 0u32..N).prop_filter("distinct", |(t, c)| t != c),
        v in dense_vector(),
    ) {
        let mut dd = DdManager::new();
        let g = dd.mat_controlled(N, &[Control::pos(control)], target, u);
        let v_dd = dd.vec_from_amplitudes(&v);
        let r = dd.mat_vec_mul(g, v_dd).unwrap();
        let got = dd.vec_to_amplitudes(r);

        let mut dense = DenseVector::from_amplitudes(v);
        dense.apply_single_qubit(u, target, &[control]);
        for (i, (a, b)) in dense.amplitudes().iter().zip(got.iter()).enumerate() {
            prop_assert!(a.approx_eq(*b, 1e-7), "index {i}");
        }
    }

    #[test]
    fn unitary_gates_preserve_norm(u in gate2(), target in 0u32..N, v in dense_vector()) {
        let norm = v.iter().map(|a| a.norm_sqr()).sum::<f64>();
        prop_assume!(norm > 1e-6);
        let mut dd = DdManager::new();
        let g = dd.mat_single_qubit(N, target, u);
        let v_dd = dd.vec_from_amplitudes(&v);
        let r = dd.mat_vec_mul(g, v_dd).unwrap();
        let after = dd.vec_norm_sqr(r);
        prop_assert!((after - norm).abs() / norm < 1e-6);
    }

    #[test]
    fn gate_unitarity_u_dagger_u(u in gate2(), target in 0u32..N) {
        let mut dd = DdManager::new();
        let g = dd.mat_single_qubit(N, target, u);
        let gd = dd.mat_conj_transpose(g).unwrap();
        let p = dd.mat_mat_mul(gd, g).unwrap();
        let id = dd.mat_identity(N);
        let dense_p = DenseMatrix::from_rows(dd.mat_to_dense(p));
        let dense_id = DenseMatrix::from_rows(dd.mat_to_dense(id));
        prop_assert!(dense_p.max_deviation(&dense_id) < 1e-8);
    }

    #[test]
    fn addition_commutes_and_matches_dense(a in dense_vector(), b in dense_vector()) {
        let mut dd = DdManager::new();
        let a_dd = dd.vec_from_amplitudes(&a);
        let b_dd = dd.vec_from_amplitudes(&b);
        let ab = dd.add_vec(a_dd, b_dd).unwrap();
        let ba = dd.add_vec(b_dd, a_dd).unwrap();
        prop_assert_eq!(ab, ba);
        let got = dd.vec_to_amplitudes(ab);
        for i in 0..a.len() {
            prop_assert!(got[i].approx_eq(a[i] + b[i], 1e-7), "index {i}");
        }
    }

    #[test]
    fn canonicity_same_vector_same_edge(amps in dense_vector()) {
        let norm = amps.iter().map(|a| a.norm_sqr()).sum::<f64>();
        prop_assume!(norm > 1e-6);
        let mut dd = DdManager::new();
        let e1 = dd.vec_from_amplitudes(&amps);
        let e2 = dd.vec_from_amplitudes(&amps);
        prop_assert_eq!(e1, e2);
    }

    #[test]
    fn permutation_dd_is_unitary(seed in 0u64..1000) {
        // Build a pseudo-random permutation on 2^N from a seeded shuffle.
        let size = 1u64 << N;
        let mut perm: Vec<u64> = (0..size).collect();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..size as usize).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let mut dd = DdManager::new();
        let m = dd.mat_permutation(N, |x| perm[x as usize]);
        let md = dd.mat_conj_transpose(m).unwrap();
        let p = dd.mat_mat_mul(md, m).unwrap();
        let id = dd.mat_identity(N);
        prop_assert_eq!(p, id);
    }

    #[test]
    fn measurement_probabilities_match_dense(v in dense_vector(), qubit in 0u32..N) {
        let norm = v.iter().map(|a| a.norm_sqr()).sum::<f64>();
        prop_assume!(norm > 1e-6);
        let normalized: Vec<Complex> = v.iter().map(|a| *a * (1.0 / norm.sqrt())).collect();
        let mut dd = DdManager::new();
        let e = dd.vec_from_amplitudes(&normalized);
        let p1 = dd.prob_one(e, qubit);
        let bit = 1u64 << (N - 1 - qubit);
        let want: f64 = normalized
            .iter()
            .enumerate()
            .filter(|(i, _)| (*i as u64) & bit != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        prop_assert!((p1 - want).abs() < 1e-7, "p1 {p1} vs dense {want}");
    }

    #[test]
    fn collapse_preserves_conditional_distribution(v in dense_vector(), qubit in 0u32..N) {
        let norm = v.iter().map(|a| a.norm_sqr()).sum::<f64>();
        prop_assume!(norm > 1e-6);
        let normalized: Vec<Complex> = v.iter().map(|a| *a * (1.0 / norm.sqrt())).collect();
        let mut dd = DdManager::new();
        let e = dd.vec_from_amplitudes(&normalized);
        let p1 = dd.prob_one(e, qubit);
        prop_assume!(p1 > 1e-3 && p1 < 1.0 - 1e-3);
        let c = dd.collapse(e, qubit, true);
        prop_assert!((dd.vec_norm_sqr(c) - 1.0).abs() < 1e-7);
        let amps = dd.vec_to_amplitudes(c);
        let bit = 1u64 << (N - 1 - qubit);
        let scale = 1.0 / p1.sqrt();
        for (i, got) in amps.iter().enumerate() {
            let want = if (i as u64) & bit != 0 {
                normalized[i] * scale
            } else {
                Complex::ZERO
            };
            prop_assert!(got.approx_eq(want, 1e-6), "index {i}");
        }
    }
}

// ---------------------------------------------------------------------------
// Memoization transparency: the compute tables must never change *what* is
// computed, only how fast. Because recomputation replays the identical
// arithmetic on identical interned operands and node construction is
// hash-consed, runs with caches on and off must agree on every amplitude
// BIT FOR BIT — not just within tolerance.
// ---------------------------------------------------------------------------

/// A random gate sequence: `(gate, target, optional control)` triples
/// (a drawn control of `N` means "uncontrolled").
fn random_ops() -> impl Strategy<Value = Vec<(Matrix2, u32, Option<u32>)>> {
    proptest::collection::vec(
        (gate2(), 0u32..N, 0u32..N + 1)
            .prop_map(|(u, t, c)| (u, t, if c == N { None } else { Some(c) })),
        1..24,
    )
}

/// Applies `ops` to |0…0⟩ under `config`, optionally forcing a garbage
/// collection after every gate, and returns the final amplitudes.
fn run_ops(
    config: DdConfig,
    ops: &[(Matrix2, u32, Option<u32>)],
    gc_each_gate: bool,
) -> Vec<Complex> {
    let mut dd = DdManager::with_config(config);
    let mut state = dd.vec_basis(N, 0);
    dd.inc_ref_vec(state);
    for (u, target, control) in ops {
        let gate = match control {
            Some(c) if c != target => dd.mat_controlled(N, &[Control::pos(*c)], *target, *u),
            _ => dd.mat_single_qubit(N, *target, *u),
        };
        let next = dd.mat_vec_mul(gate, state).unwrap();
        dd.dec_ref_vec(state);
        dd.inc_ref_vec(next);
        state = next;
        if gc_each_gate {
            dd.collect_garbage();
        }
    }
    dd.vec_to_amplitudes(state)
}

fn assert_bitwise_equal(a: &[Complex], b: &[Complex]) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.re.to_bits(),
            y.re.to_bits(),
            "re differs at index {i}: {x} vs {y}"
        );
        assert_eq!(
            x.im.to_bits(),
            y.im.to_bits(),
            "im differs at index {i}: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn caches_on_and_off_agree_bitwise(ops in random_ops()) {
        let on = run_ops(DdConfig::default(), &ops, false);
        let off = run_ops(
            DdConfig { cache_enabled: false, ..DdConfig::default() },
            &ops,
            false,
        );
        assert_bitwise_equal(&on, &off);
    }

    #[test]
    fn tiny_tables_agree_bitwise(ops in random_ops()) {
        // 2^2-slot tables evict on almost every insert; lossiness must not
        // leak into results.
        let on = run_ops(DdConfig::default(), &ops, false);
        let tiny = run_ops(
            DdConfig { compute_table_bits: 2, unique_table_bits: 1, ..DdConfig::default() },
            &ops,
            false,
        );
        assert_bitwise_equal(&on, &tiny);
    }

    #[test]
    fn identity_skip_on_and_off_agree_bitwise(ops in random_ops()) {
        // The identity short-circuits return exactly the edge the generic
        // recursion would have produced (the recursion's arithmetic reduces
        // to `mul(ONE, x) = x` fast paths on identity operands), so skipping
        // is invisible even at the bit level.
        let on = run_ops(DdConfig::default(), &ops, false);
        let off = run_ops(
            DdConfig { identity_skip: false, ..DdConfig::default() },
            &ops,
            false,
        );
        assert_bitwise_equal(&on, &off);
    }

    #[test]
    fn specialized_kernels_match_generic(ops in random_ops()) {
        // The specialized apply kernels skip the gate-matrix DD and with it
        // that DD's normalization pivots, so they associate the same scalar
        // products differently — e.g. fl(s·v0) + fl(s·v1) where the generic
        // recursion computes fl(s·(v0 + v1)). Single-step drift is ≤ a few
        // ulp and usually collapses to the same interned weight, but over a
        // deep random circuit it can straddle a 1e-13 interning bucket, so
        // exact edge equality is checked only for shallow circuits (see the
        // module tests in apply.rs); here the two paths must agree on every
        // amplitude far below the weight-unification tolerance.
        let mut dd = DdManager::new();
        let mut generic = dd.vec_basis(N, 0);
        let mut fast = generic;
        dd.inc_ref_vec(generic);
        dd.inc_ref_vec(fast);
        for (u, target, control) in &ops {
            let (gate, next_fast) = match control {
                Some(c) if c != target => {
                    let ctrls = [Control::pos(*c)];
                    (
                        dd.mat_controlled(N, &ctrls, *target, *u),
                        dd.apply_controlled(&ctrls, *target, *u, fast).unwrap(),
                    )
                }
                _ => (
                    dd.mat_single_qubit(N, *target, *u),
                    dd.apply_single_qubit(*target, *u, fast).unwrap(),
                ),
            };
            let next_generic = dd.mat_vec_mul(gate, generic).unwrap();
            dd.dec_ref_vec(generic);
            dd.dec_ref_vec(fast);
            dd.inc_ref_vec(next_generic);
            dd.inc_ref_vec(next_fast);
            generic = next_generic;
            fast = next_fast;
        }
        let want = dd.vec_to_amplitudes(generic);
        let got = dd.vec_to_amplitudes(fast);
        for (i, (x, y)) in want.iter().zip(got.iter()).enumerate() {
            prop_assert!(x.approx_eq(*y, 1e-10), "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn gc_surviving_caches_stay_correct(ops in random_ops()) {
        // Collecting after every gate exercises the epoch invalidation on
        // each step: stale entries must be dropped, surviving ones reused.
        // Across *different GC schedules* bitwise identity is not expected
        // — addition canonicalizes operand order by node id, and GC changes
        // allocation history, so `b/a` may round where the calm run
        // computed `a/b` — but the amplitudes must agree to far better
        // than the weight-unification tolerance.
        let calm = run_ops(DdConfig::default(), &ops, false);
        let churned = run_ops(DdConfig::default(), &ops, true);
        prop_assert_eq!(calm.len(), churned.len());
        for (i, (x, y)) in calm.iter().zip(churned.iter()).enumerate() {
            prop_assert!(x.approx_eq(*y, 1e-9), "index {i}: {x} vs {y}");
        }
    }
}

//! Garbage-collection stress tests: random op interleavings with
//! collections forced between every step must never corrupt protected
//! diagrams.

use ddsim_complex::Complex;
use ddsim_dd::{Control, DdConfig, DdManager, Matrix2, VecEdge};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn h_gate() -> Matrix2 {
    let s = Complex::SQRT2_INV;
    [[s, s], [s, -s]]
}

fn x_gate() -> Matrix2 {
    [[Complex::ZERO, Complex::ONE], [Complex::ONE, Complex::ZERO]]
}

fn t_gate() -> Matrix2 {
    [
        [Complex::ONE, Complex::ZERO],
        [Complex::ZERO, Complex::cis(std::f64::consts::FRAC_PI_4)],
    ]
}

/// Applies a random gate, collecting garbage after every single step, and
/// checks the state remains normalized and reproducible.
#[test]
fn collect_after_every_gate_preserves_the_state() {
    let n = 6u32;
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dd = DdManager::new();
        let mut state = dd.vec_zero_state(n);
        dd.inc_ref_vec(state);

        let mut gate_log: Vec<(u8, u32, u32)> = Vec::new();
        for _ in 0..60 {
            let kind = rng.gen_range(0..3u8);
            let target = rng.gen_range(0..n);
            let control = (target + rng.gen_range(1..n)) % n;
            gate_log.push((kind, target, control));

            let m = match kind {
                0 => dd.mat_single_qubit(n, target, h_gate()),
                1 => dd.mat_single_qubit(n, target, t_gate()),
                _ => dd.mat_controlled(n, &[Control::pos(control)], target, x_gate()),
            };
            let next = dd.mat_vec_mul(m, state).unwrap();
            dd.inc_ref_vec(next);
            dd.dec_ref_vec(state);
            state = next;
            // The hostile part: collect after EVERY operation.
            dd.collect_garbage();
            let norm = dd.vec_norm_sqr(state);
            assert!(
                (norm - 1.0).abs() < 1e-8,
                "seed {seed}: norm drifted to {norm}"
            );
        }

        // Replay without mid-run collections; the final states must agree.
        let mut dd2 = DdManager::new();
        let mut replay = dd2.vec_zero_state(n);
        dd2.inc_ref_vec(replay);
        for &(kind, target, control) in &gate_log {
            let m = match kind {
                0 => dd2.mat_single_qubit(n, target, h_gate()),
                1 => dd2.mat_single_qubit(n, target, t_gate()),
                _ => dd2.mat_controlled(n, &[Control::pos(control)], target, x_gate()),
            };
            let next = dd2.mat_vec_mul(m, replay).unwrap();
            dd2.inc_ref_vec(next);
            dd2.dec_ref_vec(replay);
            replay = next;
        }
        for idx in 0..(1u64 << n) {
            let a = dd.vec_amplitude(state, idx);
            let b = dd2.vec_amplitude(replay, idx);
            assert!(
                a.approx_eq(b, 1e-8),
                "seed {seed}: amplitude {idx} diverged ({a} vs {b})"
            );
        }
    }
}

/// A tiny GC threshold forces constant collection through a long run.
#[test]
fn aggressive_gc_threshold_still_computes_correctly() {
    let n = 5u32;
    let config = DdConfig {
        gc_threshold: 50, // pathologically small
        ..DdConfig::default()
    };
    let mut dd = DdManager::with_config(config);
    let mut state = dd.vec_zero_state(n);
    dd.inc_ref_vec(state);
    // Build a GHZ state with constant collections.
    let h = dd.mat_single_qubit(n, 0, h_gate());
    dd.inc_ref_mat(h);
    let next = dd.mat_vec_mul(h, state).unwrap();
    dd.inc_ref_vec(next);
    dd.dec_ref_vec(state);
    state = next;
    dd.maybe_collect();
    for q in 1..n {
        let cx = dd.mat_controlled(n, &[Control::pos(q - 1)], q, x_gate());
        let next = dd.mat_vec_mul(cx, state).unwrap();
        dd.inc_ref_vec(next);
        dd.dec_ref_vec(state);
        state = next;
        dd.maybe_collect();
    }
    let all_ones = (1u64 << n) - 1;
    assert!((dd.vec_amplitude(state, 0).norm_sqr() - 0.5).abs() < 1e-9);
    assert!((dd.vec_amplitude(state, all_ones).norm_sqr() - 0.5).abs() < 1e-9);
    assert!(
        dd.stats().gc_runs >= 1,
        "tiny threshold must trigger GC at least once"
    );
}

/// Protected matrices survive collections triggered by unrelated garbage.
#[test]
fn protected_matrices_survive_unrelated_churn() {
    let n = 5u32;
    let mut dd = DdManager::new();
    let keep = dd.mat_controlled(n, &[Control::pos(0), Control::pos(2)], 4, x_gate());
    dd.inc_ref_mat(keep);
    let reference = dd.mat_to_dense(keep);

    for round in 0..10 {
        // Churn: unprotected junk.
        for i in 0..20u64 {
            let _ = dd.vec_basis(n, (round * 20 + i) % (1 << n));
            let _ = dd.mat_single_qubit(n, (i % u64::from(n)) as u32, t_gate());
        }
        dd.collect_garbage();
        let now = dd.mat_to_dense(keep);
        for r in 0..(1usize << n) {
            for c in 0..(1usize << n) {
                assert!(
                    now[r][c].approx_eq(reference[r][c], 1e-12),
                    "round {round}: entry ({r},{c}) changed"
                );
            }
        }
    }
}

/// Dropping the last reference makes a diagram collectible; taking a new
/// reference first must keep it alive.
#[test]
fn refcount_lifecycle() {
    let mut dd = DdManager::new();
    let a = dd.vec_basis(4, 9);
    dd.inc_ref_vec(a);
    let before = dd.live_vec_nodes();
    dd.collect_garbage();
    assert_eq!(dd.live_vec_nodes(), before, "referenced state must survive");

    dd.dec_ref_vec(a);
    dd.collect_garbage();
    assert!(
        dd.live_vec_nodes() < before,
        "unreferenced state must be reclaimed"
    );
}

/// Rebuilding an identical state after GC must reproduce identical
/// amplitudes (the unique tables were properly cleaned).
#[test]
fn unique_table_is_consistent_after_collection() {
    let mut dd = DdManager::new();
    let a = dd.vec_basis(6, 33);
    dd.inc_ref_vec(a);
    dd.collect_garbage();
    let b = dd.vec_basis(6, 33);
    assert_eq!(a, b, "canonical rebuild must share the protected nodes");

    dd.dec_ref_vec(a);
    dd.collect_garbage();
    let c = dd.vec_basis(6, 33);
    assert!(c.weight.is_one());
    assert!(dd.vec_amplitude(c, 33).approx_eq(Complex::ONE, 1e-12));
}

/// Zero-probability branches never resurrect freed nodes.
#[test]
fn collapse_then_collect_is_safe() {
    let mut dd = DdManager::new();
    let h = dd.mat_single_qubit(3, 0, h_gate());
    let z = dd.vec_zero_state(3);
    let s = dd.mat_vec_mul(h, z).unwrap();
    dd.inc_ref_vec(s);
    let collapsed = dd.collapse(s, 0, true);
    dd.inc_ref_vec(collapsed);
    dd.dec_ref_vec(s);
    dd.collect_garbage();
    assert!((dd.vec_norm_sqr(collapsed) - 1.0).abs() < 1e-9);
    assert!((dd.prob_one(collapsed, 0) - 1.0).abs() < 1e-9);
}

/// `VecEdge::ZERO` is inert under every lifecycle operation.
#[test]
fn zero_edge_is_gc_inert() {
    let mut dd = DdManager::new();
    dd.inc_ref_vec(VecEdge::ZERO);
    dd.dec_ref_vec(VecEdge::ZERO);
    dd.collect_garbage();
    assert_eq!(dd.vec_node_count(VecEdge::ZERO), 0);
}

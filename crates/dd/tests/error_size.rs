//! The governed recursions return `Result<Edge, DdError>` at every level,
//! so the error must stay a bare discriminant: any payload (budget
//! limit/observed details live on the manager instead — see
//! `DdManager::last_breach`) would push the `Result` past two registers
//! and tax the success path of every multiply.

use ddsim_dd::{DdError, MatEdge, VecEdge};

#[test]
fn governor_types_stay_register_sized() {
    assert_eq!(std::mem::size_of::<DdError>(), 1);
    assert!(std::mem::size_of::<Result<VecEdge, DdError>>() <= 16);
    assert!(std::mem::size_of::<Result<MatEdge, DdError>>() <= 16);
}
